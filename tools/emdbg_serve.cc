/// Multi-tenant debug service daemon: hosts many concurrent DebugSessions
/// over one shared in-memory corpus, speaking the length-prefixed protocol
/// of src/serve/wire.h on a loopback TCP port. See src/serve/server.h for
/// the protocol and the failure model.
///
/// Usage:
///   emdbg_serve --dataset=products [--scale=0.02] [--port=0]
///               [--workers=2] [--session-threads=1] [--block[=N]]
///               [--max-sessions=64] [--max-queue=16] [--max-conns=128]
///               [--deadline-ms=0] [--checkpoint-every=16]
///               [--durability-root=DIR]
///               [--mem-budget=BYTES] [--session-quota=BYTES]
///               [--retry-after-ms=N] [--idem-window=N]
///               [--watchdog-ms=N] [--stuck-ms=N] [--stats-every=SECS]
///               [--fault=SITE:EVERY[:SKIP[:MAX]]]...
///               [--fault-prob=SITE:P[:SEED]]...
///
/// Resource governor: --mem-budget caps the total bytes all sessions'
/// memos, token/id caches and interner arenas may hold (K/M/G suffixes
/// accepted); --session-quota is the per-session child cap. Under
/// pressure the server degrades (evicts idle sessions' caches, then
/// answers ResourceExhausted with a retry_after_ms hint) instead of
/// OOM-aborting. --idem-window sizes the per-session idempotency-key
/// dedup window ("idem=K <cmd>" → exactly-once retries); --watchdog-ms
/// arms the stuck-task watchdog; --stats-every logs a governor stats
/// line to stderr periodically.
///
/// The corpus is generated deterministically from the named paper profile
/// (gen_dataset's generator), so a load generator pointed at the same
/// --dataset/--scale/--seed flags can replay sessions bit-identically.
///
/// Prints "listening host=127.0.0.1 port=<p>" on stdout once ready (the
/// soak script scrapes the ephemeral port). SIGTERM / SIGHUP / SIGINT all
/// shut down gracefully: stop admitting, drain queued requests, checkpoint
/// every durable session, exit 0. kill -9 is the crash case the durability
/// layer is built for — acknowledged edits survive in the fsync'd journals
/// under --durability-root and `resume <token>` rebuilds each session.
///
/// --fault arms deterministic fault injection (see
/// src/util/fault_injection.h) inside the *server* process: e.g.
/// --fault=journal.fsync:7 fails every 7th journal fsync,
/// --fault-prob=serve.read:0.01:42 drops ~1% of connection reads with a
/// fixed schedule derived from seed 42.

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/data/datasets.h"
#include "src/data/generator.h"
#include "src/serve/server.h"
#include "src/util/cancellation.h"
#include "src/util/fault_injection.h"
#include "src/util/string_util.h"

using namespace emdbg;

namespace {

struct Args {
  std::string dataset = "products";
  double scale = 0.02;
  int64_t seed = -1;  // -1 = the profile's own seed
  double stats_every_s = 0;  // 0 = no periodic stats log
  Server::Options server;
  std::vector<std::pair<std::string, FaultInjection::Plan>> faults;

  /// "1048576", "64K", "16M", "1G" (case-insensitive suffix).
  static bool ParseBytes(std::string_view s, size_t* out) {
    size_t mult = 1;
    if (!s.empty()) {
      const char c = s.back();
      if (c == 'k' || c == 'K') mult = size_t{1} << 10;
      if (c == 'm' || c == 'M') mult = size_t{1} << 20;
      if (c == 'g' || c == 'G') mult = size_t{1} << 30;
      if (mult != 1) s.remove_suffix(1);
    }
    int64_t n = 0;
    if (!ParseInt64(s, &n) || n < 0) return false;
    *out = static_cast<size_t>(n) * mult;
    return true;
  }

  static bool ParseFault(std::string_view spec, std::string* site,
                         FaultInjection::Plan* plan, bool probabilistic) {
    // SITE:EVERY[:SKIP[:MAX]]  or  SITE:P[:SEED]
    std::vector<std::string_view> parts;
    size_t start = 0;
    while (start <= spec.size()) {
      const size_t colon = spec.find(':', start);
      if (colon == std::string_view::npos) {
        parts.push_back(spec.substr(start));
        break;
      }
      parts.push_back(spec.substr(start, colon - start));
      start = colon + 1;
    }
    if (parts.size() < 2 || parts[0].empty()) return false;
    *site = std::string(parts[0]);
    int64_t n = 0;
    if (probabilistic) {
      if (!ParseDouble(parts[1], &plan->probability) ||
          plan->probability < 0 || plan->probability > 1) {
        return false;
      }
      if (parts.size() > 2) {
        if (!ParseInt64(parts[2], &n) || n < 0) return false;
        plan->seed = static_cast<uint64_t>(n);
      }
      return parts.size() <= 3;
    }
    if (!ParseInt64(parts[1], &n) || n < 0) return false;
    plan->every = static_cast<uint64_t>(n);
    if (parts.size() > 2) {
      if (!ParseInt64(parts[2], &n) || n < 0) return false;
      plan->skip = static_cast<uint64_t>(n);
    }
    if (parts.size() > 3) {
      if (!ParseInt64(parts[3], &n) || n < 0) return false;
      plan->max_failures = static_cast<uint64_t>(n);
    }
    return parts.size() <= 4;
  }

  static bool Parse(int argc, char** argv, Args* out) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      int64_t n = 0;
      if (StartsWith(arg, "--dataset=")) {
        out->dataset = arg.substr(10);
      } else if (StartsWith(arg, "--scale=") &&
                 ParseDouble(arg.substr(8), &out->scale) &&
                 out->scale > 0 && out->scale <= 1.0) {
      } else if (StartsWith(arg, "--seed=") &&
                 ParseInt64(arg.substr(7), &out->seed) && out->seed >= 0) {
      } else if (StartsWith(arg, "--port=") &&
                 ParseInt64(arg.substr(7), &n) && n >= 0 && n <= 65535) {
        out->server.port = static_cast<uint16_t>(n);
      } else if (StartsWith(arg, "--workers=") &&
                 ParseInt64(arg.substr(10), &n) && n > 0) {
        out->server.num_workers = static_cast<size_t>(n);
      } else if (StartsWith(arg, "--session-threads=") &&
                 ParseInt64(arg.substr(18), &n) && n >= 0) {
        out->server.session_threads = static_cast<size_t>(n);
      } else if (arg == "--block") {
        out->server.session_block_size = 0;  // bare flag = auto block size
      } else if (StartsWith(arg, "--block=") &&
                 ParseInt64(arg.substr(8), &n) && n >= 0) {
        out->server.session_block_size = static_cast<size_t>(n);
      } else if (arg == "--sharded") {
        out->server.session_sharded = true;
      } else if (StartsWith(arg, "--shard-pairs=") &&
                 ParseInt64(arg.substr(14), &n) && n >= 0) {
        out->server.session_sharded = true;
        out->server.session_shard_pairs = static_cast<size_t>(n);
      } else if (StartsWith(arg, "--max-sessions=") &&
                 ParseInt64(arg.substr(15), &n) && n > 0) {
        out->server.max_sessions = static_cast<size_t>(n);
      } else if (StartsWith(arg, "--max-queue=") &&
                 ParseInt64(arg.substr(12), &n) && n > 0) {
        out->server.max_queue_per_session = static_cast<size_t>(n);
      } else if (StartsWith(arg, "--max-conns=") &&
                 ParseInt64(arg.substr(12), &n) && n > 0) {
        out->server.max_connections = static_cast<size_t>(n);
      } else if (StartsWith(arg, "--deadline-ms=") &&
                 ParseInt64(arg.substr(14), &n) && n >= 0) {
        out->server.default_deadline_ms = static_cast<double>(n);
      } else if (StartsWith(arg, "--checkpoint-every=") &&
                 ParseInt64(arg.substr(19), &n) && n > 0) {
        out->server.checkpoint_every = static_cast<size_t>(n);
      } else if (StartsWith(arg, "--durability-root=")) {
        out->server.durability_root = arg.substr(18);
      } else if (StartsWith(arg, "--mem-budget=")) {
        if (!ParseBytes(std::string_view(arg).substr(13),
                        &out->server.mem_budget_bytes)) {
          return false;
        }
      } else if (StartsWith(arg, "--session-quota=")) {
        if (!ParseBytes(std::string_view(arg).substr(16),
                        &out->server.session_quota_bytes)) {
          return false;
        }
      } else if (StartsWith(arg, "--retry-after-ms=") &&
                 ParseDouble(arg.substr(17), &out->server.retry_after_ms) &&
                 out->server.retry_after_ms >= 0) {
      } else if (StartsWith(arg, "--idem-window=") &&
                 ParseInt64(arg.substr(14), &n) && n >= 0) {
        out->server.idempotency_window = static_cast<size_t>(n);
      } else if (StartsWith(arg, "--watchdog-ms=") &&
                 ParseInt64(arg.substr(14), &n) && n >= 0) {
        out->server.watchdog_interval_ms = static_cast<double>(n);
      } else if (StartsWith(arg, "--stuck-ms=") &&
                 ParseInt64(arg.substr(11), &n) && n > 0) {
        out->server.stuck_task_ms = static_cast<double>(n);
      } else if (StartsWith(arg, "--stats-every=") &&
                 ParseDouble(arg.substr(14), &out->stats_every_s) &&
                 out->stats_every_s >= 0) {
      } else if (StartsWith(arg, "--fault=")) {
        std::string site;
        FaultInjection::Plan plan;
        if (!ParseFault(arg.substr(8), &site, &plan, false)) return false;
        out->faults.emplace_back(site, plan);
      } else if (StartsWith(arg, "--fault-prob=")) {
        std::string site;
        FaultInjection::Plan plan;
        if (!ParseFault(arg.substr(13), &site, &plan, true)) return false;
        out->faults.emplace_back(site, plan);
      } else {
        return false;
      }
    }
    return true;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Args::Parse(argc, argv, &args)) {
    std::fprintf(
        stderr,
        "usage: emdbg_serve --dataset=NAME [--scale=F] [--seed=N] "
        "[--port=N] [--workers=N] [--session-threads=N] [--block[=N]] "
        "[--sharded] [--shard-pairs=N] "
        "[--max-sessions=N] "
        "[--max-queue=N] [--max-conns=N] [--deadline-ms=N] "
        "[--checkpoint-every=N] [--durability-root=DIR] "
        "[--mem-budget=BYTES] [--session-quota=BYTES] [--retry-after-ms=N] "
        "[--idem-window=N] [--watchdog-ms=N] [--stuck-ms=N] "
        "[--stats-every=SECS] "
        "[--fault=SITE:EVERY[:SKIP[:MAX]]] [--fault-prob=SITE:P[:SEED]]\n");
    return 2;
  }

  Result<DatasetId> id = DatasetIdFromName(args.dataset);
  if (!id.ok()) {
    std::fprintf(stderr, "error: %s\n", id.status().message().c_str());
    return 2;
  }
  DatasetProfile profile = ScaleProfile(PaperDatasetProfile(*id), args.scale);
  if (args.seed >= 0) profile.seed = static_cast<uint64_t>(args.seed);
  std::fprintf(stderr, "generating %s (scale %g, seed %llu)...\n",
               profile.name.c_str(), args.scale,
               static_cast<unsigned long long>(profile.seed));
  GeneratedDataset ds = GenerateDataset(profile);
  std::fprintf(stderr, "corpus: %zu x %zu rows, %zu candidate pairs\n",
               ds.a.num_rows(), ds.b.num_rows(), ds.candidates.size());

  for (const auto& fault : args.faults) {
    FaultInjection::Arm(fault.first, fault.second);
    std::fprintf(stderr, "fault armed: %s\n", fault.first.c_str());
  }

  auto a = std::make_shared<const Table>(std::move(ds.a));
  auto b = std::make_shared<const Table>(std::move(ds.b));
  auto pairs = std::make_shared<const CandidateSet>(std::move(ds.candidates));
  Server server(a, b, pairs, args.server);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.message().c_str());
    return 1;
  }
  std::printf("listening host=127.0.0.1 port=%u\n", server.port());
  std::fflush(stdout);

  // SIGINT / SIGTERM / SIGHUP all request a graceful exit; the poll below
  // is the only place the main thread spends time (plus the periodic
  // governor stats line when --stats-every is set).
  CancellationToken stop;
  ShutdownSignals signals(stop);
  double since_stats_s = 0;
  while (!stop.cancelled() && !signals.exit_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (args.stats_every_s <= 0) continue;
    since_stats_s += 0.1;
    if (since_stats_s + 1e-9 < args.stats_every_s) continue;
    since_stats_s = 0;
    const Server::Stats s = server.stats();
    std::fprintf(
        stderr,
        "stats: sessions=%zu conns=%zu executed=%llu shed=%llu "
        "mem_used=%zu mem_limit=%zu mem_denials=%llu reclaims=%llu "
        "reclaimed=%llu replays=%llu stuck=%llu memo=%zu tokens=%zu "
        "ids=%zu interner=%zu\n",
        s.live_sessions, s.live_connections,
        static_cast<unsigned long long>(s.requests_executed),
        static_cast<unsigned long long>(s.requests_shed), s.mem_used_bytes,
        s.mem_limit_bytes, static_cast<unsigned long long>(s.mem_denials),
        static_cast<unsigned long long>(s.mem_reclaim_runs),
        static_cast<unsigned long long>(s.mem_reclaimed_bytes),
        static_cast<unsigned long long>(s.idem_replays),
        static_cast<unsigned long long>(s.tasks_stuck), s.memo_bytes,
        s.token_cache_bytes, s.id_cache_bytes, s.interner_bytes);
  }

  std::fprintf(stderr, "shutting down: draining + checkpointing...\n");
  server.Shutdown();
  const Server::Stats stats = server.stats();
  std::fprintf(stderr,
               "done: opened=%llu resumed=%llu degraded=%llu executed=%llu "
               "shed_requests=%llu shed_conns=%llu expired=%llu "
               "dropped=%llu\n",
               static_cast<unsigned long long>(stats.sessions_opened),
               static_cast<unsigned long long>(stats.sessions_resumed),
               static_cast<unsigned long long>(stats.sessions_degraded),
               static_cast<unsigned long long>(stats.requests_executed),
               static_cast<unsigned long long>(stats.requests_shed),
               static_cast<unsigned long long>(stats.connections_shed),
               static_cast<unsigned long long>(stats.requests_expired),
               static_cast<unsigned long long>(stats.requests_dropped));
  if (args.server.mem_budget_bytes > 0 ||
      args.server.session_quota_bytes > 0) {
    std::fprintf(stderr,
                 "governor: denials=%llu reclaims=%llu reclaimed=%llu "
                 "replays=%llu stuck=%llu\n",
                 static_cast<unsigned long long>(stats.mem_denials),
                 static_cast<unsigned long long>(stats.mem_reclaim_runs),
                 static_cast<unsigned long long>(stats.mem_reclaimed_bytes),
                 static_cast<unsigned long long>(stats.idem_replays),
                 static_cast<unsigned long long>(stats.tasks_stuck));
  }
  return 0;
}
