/// Batch matching tool: loads two CSV tables, a candidate-pair file (or
/// blocks with an equality key), and a rule file, runs the optimized
/// DM+EE matcher, and writes the matched pairs to CSV. Completes the
/// offline toolchain: gen_dataset → (edit rules in emdbg_repl) →
/// emdbg_match.
///
/// Usage:
///   emdbg_match --a=a.csv --b=b.csv --rules=r.rules
///               (--pairs=pairs.csv | --block-key=category)
///               [--out=matches.csv] [--threads=N] [--deadline-ms=N]
///               [--block[=N] | --no-block]
///               [--shards[=N]] [--spill-dir=DIR] [--mem-budget=BYTES]
///
/// Engine selection: by default the tool picks between classic per-pair
/// early-exit evaluation and columnar block evaluation (one feature
/// across a whole block of pairs, see src/core/block_matcher.h) from the
/// match rate observed on the cost-model sample — a high rate means
/// pairs survive deep into the rules and columnar amortization pays; a
/// near-zero rate means per-pair early exit kills most pairs on their
/// first predicate. --block (bare or =0 auto-sized, =N explicit) forces
/// columnar; --no-block forces per-pair. Results are bit-identical in
/// every mode.
///
/// --shards streams the run through the out-of-core sharded driver
/// (src/core/shard_driver.h): the memo exists one shard at a time, so
/// candidate sets whose memo footprint exceeds RAM complete inside
/// --mem-budget. Bare --shards (or =0) derives the shard size from the
/// budget; =N uses N pairs per shard. --spill-dir keeps each shard's
/// state on disk for later inspection (default: state is dropped as
/// shards complete).
///
/// Ctrl-C (SIGINT), SIGTERM, SIGHUP, or an exceeded --deadline-ms stops
/// the run cleanly: the pairs evaluated so far are still written out,
/// with a warning that the result is partial.

#include <sys/stat.h>

#include <cstdio>
#include <memory>
#include <string>

#include "src/block/key_blocker.h"
#include "src/core/block_matcher.h"
#include "src/core/cost_model.h"
#include "src/core/memo_matcher.h"
#include "src/core/ordering.h"
#include "src/core/parallel_matcher.h"
#include "src/core/rule_parser.h"
#include "src/core/sampler.h"
#include "src/core/shard_driver.h"
#include "src/data/candidate_io.h"
#include "src/data/table_io.h"
#include "src/util/cancellation.h"
#include "src/util/memory_budget.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"
#include "src/util/thread_pool.h"

using namespace emdbg;

namespace {

enum class Engine { kAuto, kPerPair, kBlock };

struct Args {
  std::string a_path;
  std::string b_path;
  std::string rules_path;
  std::string pairs_path;
  std::string block_key;
  std::string out_path = "matches.csv";
  std::string spill_dir;
  size_t threads = 1;
  int64_t deadline_ms = 0;  // 0 = no deadline
  Engine engine = Engine::kAuto;
  size_t block = 0;         // block size when engine == kBlock; 0 = auto
  bool sharded = false;
  size_t shard_pairs = 0;   // 0 = derive from budget
  size_t mem_budget = 0;    // 0 = unbudgeted

  /// "1048576", "64K", "16M", "1G" (case-insensitive suffix).
  static bool ParseBytes(std::string_view s, size_t* out) {
    size_t mult = 1;
    if (!s.empty()) {
      const char c = s.back();
      if (c == 'k' || c == 'K') mult = size_t{1} << 10;
      if (c == 'm' || c == 'M') mult = size_t{1} << 20;
      if (c == 'g' || c == 'G') mult = size_t{1} << 30;
      if (mult != 1) s.remove_suffix(1);
    }
    int64_t n = 0;
    if (!ParseInt64(s, &n) || n < 0) return false;
    *out = static_cast<size_t>(n) * mult;
    return true;
  }

  static bool Parse(int argc, char** argv, Args* out) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      int64_t n = 0;
      if (StartsWith(arg, "--a=")) {
        out->a_path = arg.substr(4);
      } else if (StartsWith(arg, "--b=")) {
        out->b_path = arg.substr(4);
      } else if (StartsWith(arg, "--rules=")) {
        out->rules_path = arg.substr(8);
      } else if (StartsWith(arg, "--pairs=")) {
        out->pairs_path = arg.substr(8);
      } else if (StartsWith(arg, "--block-key=")) {
        out->block_key = arg.substr(12);
      } else if (StartsWith(arg, "--out=")) {
        out->out_path = arg.substr(6);
      } else if (StartsWith(arg, "--spill-dir=")) {
        out->spill_dir = arg.substr(12);
      } else if (StartsWith(arg, "--threads=") &&
                 ParseInt64(arg.substr(10), &n) && n >= 0) {
        // 0 = all hardware threads.
        out->threads = static_cast<size_t>(n);
      } else if (StartsWith(arg, "--deadline-ms=") &&
                 ParseInt64(arg.substr(14), &n) && n > 0) {
        out->deadline_ms = n;
      } else if (arg == "--block") {
        out->engine = Engine::kBlock;
        out->block = 0;  // bare flag = auto block size
      } else if (StartsWith(arg, "--block=") &&
                 ParseInt64(arg.substr(8), &n) && n >= 0) {
        out->engine = Engine::kBlock;
        out->block = static_cast<size_t>(n);
      } else if (arg == "--no-block") {
        out->engine = Engine::kPerPair;
      } else if (arg == "--shards") {
        out->sharded = true;
      } else if (StartsWith(arg, "--shards=") &&
                 ParseInt64(arg.substr(9), &n) && n >= 0) {
        out->sharded = true;
        out->shard_pairs = static_cast<size_t>(n);
      } else if (StartsWith(arg, "--mem-budget=")) {
        if (!ParseBytes(std::string_view(arg).substr(13),
                        &out->mem_budget)) {
          return false;
        }
      } else {
        return false;
      }
    }
    return !out->a_path.empty() && !out->b_path.empty() &&
           !out->rules_path.empty() &&
           (!out->pairs_path.empty() || !out->block_key.empty());
  }
};

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Args::Parse(argc, argv, &args)) {
    std::fprintf(
        stderr,
        "usage: emdbg_match --a=a.csv --b=b.csv --rules=r.rules "
        "(--pairs=p.csv | --block-key=attr) [--out=matches.csv] "
        "[--threads=N] [--deadline-ms=N] [--block[=N] | --no-block] "
        "[--shards[=N]] [--spill-dir=DIR] [--mem-budget=BYTES]\n");
    return 1;
  }

  auto table_a = LoadTableCsv(args.a_path);
  auto table_b = LoadTableCsv(args.b_path);
  if (!table_a.ok() || !table_b.ok()) {
    std::fprintf(stderr, "table load failed: %s %s\n",
                 table_a.status().ToString().c_str(),
                 table_b.status().ToString().c_str());
    return 1;
  }

  FeatureCatalog catalog(table_a->schema(), table_b->schema());
  auto fn = LoadRulesFile(args.rules_path, catalog);
  if (!fn.ok()) {
    std::fprintf(stderr, "rules load failed: %s\n",
                 fn.status().ToString().c_str());
    return 1;
  }

  CandidateSet pairs;
  if (!args.pairs_path.empty()) {
    auto loaded = LoadCandidatesCsv(args.pairs_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "pairs load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    pairs = std::move(loaded->candidates);
  } else {
    auto blocked = KeyBlocker(args.block_key).Block(*table_a, *table_b);
    if (!blocked.ok()) {
      std::fprintf(stderr, "blocking failed: %s\n",
                   blocked.status().ToString().c_str());
      return 1;
    }
    pairs = std::move(*blocked);
  }
  std::printf("%zu rules over %zu candidate pairs\n", fn->num_rules(),
              pairs.size());

  std::unique_ptr<MemoryBudget> budget;
  if (args.mem_budget > 0) {
    budget = std::make_unique<MemoryBudget>(args.mem_budget, "emdbg_match");
  }

  // The budget governs the O(pairs) matching state — memo shards, spill
  // buffers, matcher scratch. The per-record text caches stay outside it
  // (they are O(records) and shared by every engine; DESIGN.md Sec. 12),
  // so a sharded run's budget is spent on shards, not tokenization.
  PairContext ctx(*table_a, *table_b, catalog,
                  PairContext::Options{
                      .budget = args.sharded ? nullptr : budget.get()});
  Rng rng(1);
  const CandidateSet sample = SamplePairs(pairs, 0.01, rng, 100);
  const CostModel model = CostModel::EstimateForFunction(*fn, ctx, sample);
  ApplyOrdering(*fn, OrderingStrategy::kGreedyReduction, model, nullptr);

  // Engine auto-selection: observe the match rate on the cost-model
  // sample (already cached in ctx, so this is nearly free). Pairs that
  // match survive every predicate of some rule — columnar per-feature
  // evaluation amortizes that work; pairs that miss usually die on their
  // first predicate — per-pair early exit skips the rest. A sample match
  // rate >= 2% tips the balance to the block engine.
  size_t block_size = 1;  // per-pair
  if (args.engine == Engine::kBlock) {
    block_size = args.block;
  } else if (args.engine == Engine::kAuto && !sample.empty()) {
    MemoMatcher probe(MemoMatcher::Options{.check_cache_first = true});
    const MatchResult probe_result = probe.Run(*fn, sample, ctx);
    const double match_rate =
        static_cast<double>(probe_result.MatchCount()) /
        static_cast<double>(sample.size());
    const bool use_block = match_rate >= 0.02;
    block_size = use_block ? 0 : 1;
    std::printf("auto engine: %s (sample match rate %.1f%%)\n",
                use_block ? "block (columnar)" : "per-pair",
                match_rate * 100.0);
  }

  // Ctrl-C, SIGTERM, and SIGHUP all trip the token; the matcher drains
  // and returns a partial result — written out below — instead of the
  // process dying mid-run with nothing on disk.
  CancellationToken cancel;
  ShutdownSignals shutdown(cancel);
  RunControl control =
      args.deadline_ms > 0
          ? RunControl(cancel, Deadline::AfterMillis(
                                   static_cast<double>(args.deadline_ms)))
          : RunControl(cancel);

  // Persistent pool (0 = all hardware threads): spawned once here, so a
  // tool embedding several runs would reuse the same workers.
  std::unique_ptr<ThreadPool> pool;
  if (args.threads != 1) pool = std::make_unique<ThreadPool>(args.threads);

  Stopwatch timer;
  MatchResult result;
  if (args.sharded) {
    if (!args.spill_dir.empty()) ::mkdir(args.spill_dir.c_str(), 0755);
    ShardedMatchDriver driver(ShardedMatchDriver::Options{
        .shard_pairs = args.shard_pairs,
        .spill_dir = args.spill_dir,
        .budget = budget.get(),
        .pool = pool.get(),
        .block_size = block_size,
        .cost_model = &model,
        .keep_state = !args.spill_dir.empty()});
    result = driver.Run(*fn, pairs, ctx, control);
    std::printf("sharded: %zu pairs/shard, %zu shards, %.1f MiB spilled\n",
                driver.shard_pairs(), driver.shards().size(),
                static_cast<double>(driver.spilled_bytes()) / (1u << 20));
  } else if (pool != nullptr) {
    ParallelMemoMatcher matcher(ParallelMemoMatcher::Options{
        .check_cache_first = true,
        .pool = pool.get(),
        .budget = budget.get(),
        .block_size = block_size,
        .cost_model = &model});
    result = matcher.Run(*fn, pairs, ctx, control);
  } else if (block_size != 1) {
    BlockMatcher matcher(BlockMatcher::Options{.block_size = block_size,
                                               .cost_model = &model,
                                               .budget = budget.get()});
    result = matcher.Run(*fn, pairs, ctx, control);
  } else {
    MemoMatcher matcher(MemoMatcher::Options{.check_cache_first = true});
    result = matcher.Run(*fn, pairs, ctx, control);
  }
  std::printf("%zu matches in %.1f ms (%s)\n", result.MatchCount(),
              timer.ElapsedMillis(), result.stats.ToString().c_str());
  if (result.partial) {
    std::fprintf(stderr,
                 "warning: run stopped early (%s); writing the %zu of %zu "
                 "pairs that were evaluated\n",
                 result.status.ToString().c_str(), result.pairs_completed,
                 pairs.size());
  }

  // Matched pairs only; on a partial run, only evaluated pairs count.
  CandidateSet matched;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (result.partial && !result.evaluated.Get(i)) continue;
    if (result.matches.Get(i)) matched.Add(pairs.pair(i));
  }
  const Status save = SaveCandidatesCsv(matched, nullptr, args.out_path);
  if (!save.ok()) {
    std::fprintf(stderr, "write failed: %s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", args.out_path.c_str());
  if (shutdown.exit_requested()) {
    std::fprintf(stderr, "shutdown requested: partial results are on disk; "
                         "re-run to complete\n");
  }
  return 0;
}
