/// Batch matching tool: loads two CSV tables, a candidate-pair file (or
/// blocks with an equality key), and a rule file, runs the optimized
/// DM+EE matcher, and writes the matched pairs to CSV. Completes the
/// offline toolchain: gen_dataset → (edit rules in emdbg_repl) →
/// emdbg_match.
///
/// Usage:
///   emdbg_match --a=a.csv --b=b.csv --rules=r.rules
///               (--pairs=pairs.csv | --block-key=category)
///               [--out=matches.csv] [--threads=N] [--deadline-ms=N]
///               [--block[=N]]
///
/// --block switches to columnar batch evaluation (one feature across a
/// whole block of pairs at a time, see src/core/block_matcher.h): bare
/// --block or --block=0 picks a cost-model-driven size, --block=N uses N
/// pairs per block (rounded up to a multiple of 64). Results are
/// bit-identical to the per-pair default.
///
/// Ctrl-C (SIGINT), SIGTERM, SIGHUP, or an exceeded --deadline-ms stops
/// the run cleanly: the pairs evaluated so far are still written out,
/// with a warning that the result is partial.

#include <cstdio>
#include <string>

#include "src/block/key_blocker.h"
#include "src/core/block_matcher.h"
#include "src/core/cost_model.h"
#include "src/core/memo_matcher.h"
#include "src/core/ordering.h"
#include "src/core/parallel_matcher.h"
#include "src/core/rule_parser.h"
#include "src/core/sampler.h"
#include "src/data/candidate_io.h"
#include "src/data/table_io.h"
#include "src/util/cancellation.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

using namespace emdbg;

namespace {

struct Args {
  std::string a_path;
  std::string b_path;
  std::string rules_path;
  std::string pairs_path;
  std::string block_key;
  std::string out_path = "matches.csv";
  size_t threads = 1;
  int64_t deadline_ms = 0;  // 0 = no deadline
  size_t block = 1;         // 1 = per-pair; 0 = auto; >=2 explicit

  static bool Parse(int argc, char** argv, Args* out) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      int64_t n = 0;
      if (StartsWith(arg, "--a=")) {
        out->a_path = arg.substr(4);
      } else if (StartsWith(arg, "--b=")) {
        out->b_path = arg.substr(4);
      } else if (StartsWith(arg, "--rules=")) {
        out->rules_path = arg.substr(8);
      } else if (StartsWith(arg, "--pairs=")) {
        out->pairs_path = arg.substr(8);
      } else if (StartsWith(arg, "--block-key=")) {
        out->block_key = arg.substr(12);
      } else if (StartsWith(arg, "--out=")) {
        out->out_path = arg.substr(6);
      } else if (StartsWith(arg, "--threads=") &&
                 ParseInt64(arg.substr(10), &n) && n >= 0) {
        // 0 = all hardware threads.
        out->threads = static_cast<size_t>(n);
      } else if (StartsWith(arg, "--deadline-ms=") &&
                 ParseInt64(arg.substr(14), &n) && n > 0) {
        out->deadline_ms = n;
      } else if (arg == "--block") {
        out->block = 0;  // bare flag = auto block size
      } else if (StartsWith(arg, "--block=") &&
                 ParseInt64(arg.substr(8), &n) && n >= 0) {
        out->block = static_cast<size_t>(n);
      } else {
        return false;
      }
    }
    return !out->a_path.empty() && !out->b_path.empty() &&
           !out->rules_path.empty() &&
           (!out->pairs_path.empty() || !out->block_key.empty());
  }
};

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Args::Parse(argc, argv, &args)) {
    std::fprintf(
        stderr,
        "usage: emdbg_match --a=a.csv --b=b.csv --rules=r.rules "
        "(--pairs=p.csv | --block-key=attr) [--out=matches.csv] "
        "[--threads=N] [--deadline-ms=N] [--block[=N]]\n");
    return 1;
  }

  auto table_a = LoadTableCsv(args.a_path);
  auto table_b = LoadTableCsv(args.b_path);
  if (!table_a.ok() || !table_b.ok()) {
    std::fprintf(stderr, "table load failed: %s %s\n",
                 table_a.status().ToString().c_str(),
                 table_b.status().ToString().c_str());
    return 1;
  }

  FeatureCatalog catalog(table_a->schema(), table_b->schema());
  auto fn = LoadRulesFile(args.rules_path, catalog);
  if (!fn.ok()) {
    std::fprintf(stderr, "rules load failed: %s\n",
                 fn.status().ToString().c_str());
    return 1;
  }

  CandidateSet pairs;
  if (!args.pairs_path.empty()) {
    auto loaded = LoadCandidatesCsv(args.pairs_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "pairs load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    pairs = std::move(loaded->candidates);
  } else {
    auto blocked = KeyBlocker(args.block_key).Block(*table_a, *table_b);
    if (!blocked.ok()) {
      std::fprintf(stderr, "blocking failed: %s\n",
                   blocked.status().ToString().c_str());
      return 1;
    }
    pairs = std::move(*blocked);
  }
  std::printf("%zu rules over %zu candidate pairs\n", fn->num_rules(),
              pairs.size());

  PairContext ctx(*table_a, *table_b, catalog);
  Rng rng(1);
  const CandidateSet sample = SamplePairs(pairs, 0.01, rng, 100);
  const CostModel model = CostModel::EstimateForFunction(*fn, ctx, sample);
  ApplyOrdering(*fn, OrderingStrategy::kGreedyReduction, model, nullptr);

  // Ctrl-C, SIGTERM, and SIGHUP all trip the token; the matcher drains
  // and returns a partial result — written out below — instead of the
  // process dying mid-run with nothing on disk.
  CancellationToken cancel;
  ShutdownSignals shutdown(cancel);
  RunControl control =
      args.deadline_ms > 0
          ? RunControl(cancel, Deadline::AfterMillis(
                                   static_cast<double>(args.deadline_ms)))
          : RunControl(cancel);

  Stopwatch timer;
  MatchResult result;
  if (args.threads != 1) {
    // Persistent pool (0 = all hardware threads): spawned once here, so a
    // tool embedding several runs would reuse the same workers.
    ThreadPool pool(args.threads);
    ParallelMemoMatcher matcher(ParallelMemoMatcher::Options{
        .check_cache_first = true,
        .pool = &pool,
        .block_size = args.block,
        .cost_model = &model});
    result = matcher.Run(*fn, pairs, ctx, control);
  } else if (args.block != 1) {
    BlockMatcher matcher(BlockMatcher::Options{.block_size = args.block,
                                               .cost_model = &model});
    result = matcher.Run(*fn, pairs, ctx, control);
  } else {
    MemoMatcher matcher(MemoMatcher::Options{.check_cache_first = true});
    result = matcher.Run(*fn, pairs, ctx, control);
  }
  std::printf("%zu matches in %.1f ms (%s)\n", result.MatchCount(),
              timer.ElapsedMillis(), result.stats.ToString().c_str());
  if (result.partial) {
    std::fprintf(stderr,
                 "warning: run stopped early (%s); writing the %zu of %zu "
                 "pairs that were evaluated\n",
                 result.status.ToString().c_str(), result.pairs_completed,
                 pairs.size());
  }

  // Matched pairs only; on a partial run, only evaluated pairs count.
  CandidateSet matched;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (result.partial && !result.evaluated.Get(i)) continue;
    if (result.matches.Get(i)) matched.Add(pairs.pair(i));
  }
  const Status save = SaveCandidatesCsv(matched, nullptr, args.out_path);
  if (!save.ok()) {
    std::fprintf(stderr, "write failed: %s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", args.out_path.c_str());
  if (shutdown.exit_requested()) {
    std::fprintf(stderr, "shutdown requested: partial results are on disk; "
                         "re-run to complete\n");
  }
  return 0;
}
