/// Command-line dataset generator: materializes one of the six Table 2
/// synthetic datasets (or a custom scale/seed variant) as CSV files —
/// table A, table B, and the blocked candidate pairs with ground-truth
/// labels — so external tools (or the emdbg_repl) can consume them.
///
/// Usage:
///   gen_dataset --dataset=products --scale=0.05 --seed=42 --out=./data
///
/// Writes <out>/<name>_a.csv, <out>/<name>_b.csv,
/// <out>/<name>_pairs.csv (a,b,label).

#include <cstdio>
#include <string>

#include "src/data/candidate_io.h"
#include "src/data/datasets.h"
#include "src/data/table_io.h"
#include "src/util/string_util.h"

using namespace emdbg;

int main(int argc, char** argv) {
  DatasetId dataset = DatasetId::kProducts;
  double scale = 0.05;
  uint64_t seed = 0;  // 0 = keep the profile's default seed
  std::string out = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    double d = 0.0;
    int64_t n = 0;
    if (StartsWith(arg, "--dataset=")) {
      auto id = DatasetIdFromName(arg.substr(10));
      if (!id.ok()) {
        std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
        return 1;
      }
      dataset = *id;
    } else if (StartsWith(arg, "--scale=") &&
               ParseDouble(arg.substr(8), &d)) {
      scale = d;
    } else if (StartsWith(arg, "--seed=") && ParseInt64(arg.substr(7), &n)) {
      seed = static_cast<uint64_t>(n);
    } else if (StartsWith(arg, "--out=")) {
      out = arg.substr(6);
    } else {
      std::fprintf(stderr,
                   "usage: gen_dataset [--dataset=<name>] [--scale=<f>] "
                   "[--seed=<n>] [--out=<dir>]\n");
      return 1;
    }
  }

  DatasetProfile profile = ScaleProfile(PaperDatasetProfile(dataset), scale);
  if (seed != 0) profile.seed = seed;
  std::printf("generating %s at scale %.3g (seed %llu)...\n",
              profile.name.c_str(), scale,
              static_cast<unsigned long long>(profile.seed));
  const GeneratedDataset ds = GenerateDataset(profile);
  std::printf("%s\n", DescribeDataset(profile, ds).c_str());

  const std::string base = out + "/" + profile.name;
  Status s = SaveTableCsv(ds.a, base + "_a.csv");
  if (s.ok()) s = SaveTableCsv(ds.b, base + "_b.csv");
  if (s.ok()) {
    s = SaveCandidatesCsv(ds.candidates, &ds.labels, base + "_pairs.csv");
  }
  if (!s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s_a.csv, %s_b.csv, %s_pairs.csv\n", base.c_str(),
              base.c_str(), base.c_str());
  return 0;
}
