/// Load generator + recovery benchmark for the debug service
/// (tools/emdbg_serve.cc). Drives N concurrent sessions, each streaming a
/// deterministic rule-editing workload, and writes BENCH_serve.json with
/// session throughput, edit→result latency percentiles, and — in
/// self-contained mode — the recovery time after a real kill -9.
///
/// Two modes:
///
///   External server (CI smoke / manual):
///     emdbg_loadgen --port=P [--host=127.0.0.1] --dataset=products
///                   --sessions=8 --edits=40 [--durable]
///
///   Self-contained (spawns the server, kill -9s it, restarts, resumes):
///     emdbg_loadgen --server-bin=./emdbg_serve --dataset=products
///                   --scale=0.02 --sessions=8 --edits=40
///                   --durability-root=/tmp/emdbg_soak
///                   [--server-arg=--fault=journal.fsync:11] ...
///
/// In self-contained mode every session is durable with a deterministic
/// token; after the load phase the tool records each session's state
/// digest, SIGKILLs the server, restarts it on the same durability root,
/// resumes every session, and requires the post-crash digests to be
/// bit-identical — zero lost acknowledged edits. Exit status is nonzero
/// on any digest mismatch.
///
/// Overload mode (--overload, self-contained only) is the resource
/// governor's soak drill: the server runs under a deliberately small
/// --mem-budget/--session-quota with fault injection (pass
/// --server-arg=--fault-prob=mem.reserve:0.02 etc.), clients are
/// RetryingClients with client-side lost-ack injection (serve.retry) and
/// idempotency keys, and the tool writes BENCH_governor.json asserting
/// the three governor invariants: every acknowledged edit is present
/// exactly once after a kill -9 + resume (0 lost acks, 0 duplicate
/// applies — unacked edits are retried only after a `rules` resync shows
/// they did not land), and the server never OOM-aborts under pressure.

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <map>

#include "src/data/datasets.h"
#include "src/serve/client.h"
#include "src/serve/retrying_client.h"
#include "src/util/fault_injection.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

using namespace emdbg;

namespace {

struct Args {
  std::string host = "127.0.0.1";
  int64_t port = 0;
  std::string server_bin;  // non-empty = self-contained mode
  std::vector<std::string> server_args;
  std::string dataset = "products";
  double scale = 0.02;
  int64_t seed = -1;
  size_t sessions = 8;
  size_t edits = 40;
  bool durable = false;
  std::string durability_root = "/tmp/emdbg_loadgen";
  std::string out_path;  // default depends on mode
  size_t workers = 2;
  // ---- Overload mode (resource-governor drill). ----
  bool overload = false;
  std::string mem_budget = "24M";     // forwarded to the server verbatim
  std::string session_quota = "8M";
  double lost_ack_prob = 0.05;  // client-side serve.retry probability

  static bool Parse(int argc, char** argv, Args* out) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      int64_t n = 0;
      if (StartsWith(arg, "--host=")) {
        out->host = arg.substr(7);
      } else if (StartsWith(arg, "--port=") &&
                 ParseInt64(arg.substr(7), &out->port)) {
      } else if (StartsWith(arg, "--server-bin=")) {
        out->server_bin = arg.substr(13);
      } else if (StartsWith(arg, "--server-arg=")) {
        out->server_args.push_back(arg.substr(13));
      } else if (StartsWith(arg, "--dataset=")) {
        out->dataset = arg.substr(10);
      } else if (StartsWith(arg, "--scale=") &&
                 ParseDouble(arg.substr(8), &out->scale) && out->scale > 0 &&
                 out->scale <= 1.0) {
      } else if (StartsWith(arg, "--seed=") &&
                 ParseInt64(arg.substr(7), &out->seed) && out->seed >= 0) {
      } else if (StartsWith(arg, "--sessions=") &&
                 ParseInt64(arg.substr(11), &n) && n > 0) {
        out->sessions = static_cast<size_t>(n);
      } else if (StartsWith(arg, "--edits=") &&
                 ParseInt64(arg.substr(8), &n) && n >= 0) {
        out->edits = static_cast<size_t>(n);
      } else if (arg == "--durable") {
        out->durable = true;
      } else if (StartsWith(arg, "--durability-root=")) {
        out->durability_root = arg.substr(18);
      } else if (StartsWith(arg, "--out=")) {
        out->out_path = arg.substr(6);
      } else if (StartsWith(arg, "--workers=") &&
                 ParseInt64(arg.substr(10), &n) && n > 0) {
        out->workers = static_cast<size_t>(n);
      } else if (arg == "--overload") {
        out->overload = true;
      } else if (StartsWith(arg, "--mem-budget=")) {
        out->mem_budget = arg.substr(13);
      } else if (StartsWith(arg, "--session-quota=")) {
        out->session_quota = arg.substr(16);
      } else if (StartsWith(arg, "--lost-ack-prob=") &&
                 ParseDouble(arg.substr(16), &out->lost_ack_prob) &&
                 out->lost_ack_prob >= 0 && out->lost_ack_prob <= 1) {
      } else {
        return false;
      }
    }
    if (out->out_path.empty()) {
      out->out_path =
          out->overload ? "BENCH_governor.json" : "BENCH_serve.json";
    }
    // Self-contained mode implies durable sessions (that is the point).
    if (!out->server_bin.empty()) out->durable = true;
    if (out->overload && out->server_bin.empty()) return false;
    return !out->server_bin.empty() || out->port > 0;
  }
};

// ---------------------------------------------------------------------------
// Child server management (self-contained mode).
// ---------------------------------------------------------------------------

struct ChildServer {
  pid_t pid = -1;
  int out_fd = -1;  // child's stdout (the "listening ... port=" line)
  uint16_t port = 0;
};

bool SpawnServer(const Args& args, ChildServer* child) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return false;
  std::vector<std::string> argv_s;
  argv_s.push_back(args.server_bin);
  argv_s.push_back("--dataset=" + args.dataset);
  argv_s.push_back(StrFormat("--scale=%g", args.scale));
  if (args.seed >= 0) {
    argv_s.push_back(StrFormat("--seed=%lld",
                               static_cast<long long>(args.seed)));
  }
  argv_s.push_back(StrFormat("--workers=%zu", args.workers));
  argv_s.push_back("--durability-root=" + args.durability_root);
  for (const std::string& extra : args.server_args) argv_s.push_back(extra);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return false;
  }
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    std::vector<char*> argv_c;
    for (std::string& s : argv_s) argv_c.push_back(s.data());
    argv_c.push_back(nullptr);
    ::execv(argv_c[0], argv_c.data());
    std::fprintf(stderr, "execv %s failed: %s\n", argv_c[0],
                 std::strerror(errno));
    ::_exit(127);
  }
  ::close(pipe_fds[1]);

  // Scrape the ephemeral port from the child's first complete stdout line.
  std::string line;
  char c;
  for (;;) {
    const ssize_t r = ::read(pipe_fds[0], &c, 1);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      std::fprintf(stderr, "server exited before announcing a port\n");
      ::close(pipe_fds[0]);
      int st = 0;
      ::waitpid(pid, &st, 0);
      return false;
    }
    if (c != '\n') {
      line.push_back(c);
      continue;
    }
    if (line.find("port=") != std::string::npos) break;
    line.clear();
  }
  const size_t at = line.find("port=");
  int64_t port = 0;
  if (!ParseInt64(TrimAscii(line.substr(at + 5)), &port) || port <= 0 ||
      port > 65535) {
    std::fprintf(stderr, "unparseable server banner: %s\n", line.c_str());
    ::close(pipe_fds[0]);
    ::kill(pid, SIGKILL);
    int st = 0;
    ::waitpid(pid, &st, 0);
    return false;
  }
  child->pid = pid;
  child->out_fd = pipe_fds[0];
  child->port = static_cast<uint16_t>(port);
  return true;
}

void KillServer(ChildServer* child, int sig) {
  if (child->pid <= 0) return;
  ::kill(child->pid, sig);
  int st = 0;
  ::waitpid(child->pid, &st, 0);
  if (child->out_fd >= 0) ::close(child->out_fd);
  child->pid = -1;
  child->out_fd = -1;
}

// ---------------------------------------------------------------------------
// Workload.
// ---------------------------------------------------------------------------

struct SessionOutcome {
  bool ok = false;
  std::string token;
  std::string digest;  // "d3adb33f" from the final digest call
  double open_ms = 0;
  double first_run_ms = 0;
  std::vector<double> edit_ms;
  size_t err_shed = 0;
  size_t err_io = 0;
  size_t degraded_resumes = 0;
  size_t err_other = 0;
};

/// Deterministic per-(session, step) threshold in [0.30, 0.75).
double StepThreshold(size_t session, size_t step) {
  return 0.30 + 0.45 * static_cast<double>((session * 131 + step * 53) % 90) /
                    90.0;
}

Result<ServeClient> ConnectRetry(const std::string& host, uint16_t port,
                                 int attempts) {
  Status last = Status::Ok();
  for (int i = 0; i < attempts; ++i) {
    Result<ServeClient> c = ServeClient::Connect(host, port);
    if (c.ok()) return c;
    last = c.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return last;
}

/// Reattaches (or resumes) after a dropped connection / degraded session.
bool Reestablish(ServeClient& client, const Args& args, uint16_t port,
                 const std::string& token, SessionOutcome* out) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    if (!client.connected()) {
      Result<ServeClient> c = ConnectRetry(args.host, port, 20);
      if (!c.ok()) return false;
      client = std::move(*c);
    }
    Result<std::string> r = client.Call("attach " + token);
    if (r.ok() && r->find("degraded=1") == std::string::npos) return true;
    if (r.ok() || r.status().code() == StatusCode::kNotFound) {
      // Degraded (or gone from the live table entirely): rebuild from the
      // durable state.
      Result<std::string> res = client.Call("resume " + token);
      if (res.ok()) {
        out->degraded_resumes++;
        return true;
      }
      if (res.status().code() == StatusCode::kIoError) {
        client.Close();
        continue;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    if (r.status().code() == StatusCode::kIoError) {
      client.Close();
      continue;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// One Call with reconnect-on-failure; returns false when the session is
/// unreachable. Latency (ms) for successful acknowledged calls is
/// appended to `lat` when non-null.
bool RobustCall(ServeClient& client, const Args& args, uint16_t port,
                const std::string& token, const std::string& cmd,
                SessionOutcome* out, std::vector<double>* lat,
                std::string* resp_out = nullptr) {
  for (int attempt = 0; attempt < 10; ++attempt) {
    Stopwatch sw;
    Result<std::string> r = client.Call(cmd);
    const double ms = sw.ElapsedMillis();
    if (r.ok()) {
      if (lat != nullptr) lat->push_back(ms);
      if (resp_out != nullptr) *resp_out = *r;
      return true;
    }
    switch (r.status().code()) {
      case StatusCode::kResourceExhausted:
        out->err_shed++;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        break;
      case StatusCode::kIoError:
        // Connection loss or journal degrade: the call's fate is
        // indeterminate. Re-establish and move on (the digest at the end
        // reflects whatever actually committed).
        out->err_io++;
        if (r.status().message().find("degraded") == std::string::npos) {
          client.Close();
        }
        if (!Reestablish(client, args, port, token, out)) return false;
        return true;  // treat as settled; do not re-apply the edit
      case StatusCode::kFailedPrecondition:
        if (r.status().message().find("degraded") != std::string::npos) {
          if (!Reestablish(client, args, port, token, out)) return false;
          break;  // session rebuilt; retry the command
        }
        out->err_other++;
        return true;
      default:
        out->err_other++;
        return true;
    }
  }
  return false;
}

SessionOutcome RunSession(const Args& args, uint16_t port, size_t index,
                          const std::string& attr0,
                          const std::string& attr1) {
  SessionOutcome out;
  out.token = StrFormat("lg%zu", index);
  Result<ServeClient> conn = ConnectRetry(args.host, port, 100);
  if (!conn.ok()) return out;
  ServeClient client = std::move(*conn);

  Stopwatch sw;
  const std::string open_cmd =
      args.durable ? "open durable token=" + out.token
                   : "open token=" + out.token;
  // The open itself can be the request a fault eats (dropped read, shed
  // connection): reconnect and retry. A kAlreadyExists answer means an
  // earlier attempt actually landed — attach to it instead.
  bool open_ok = false;
  for (int attempt = 0; attempt < 50 && !open_ok; ++attempt) {
    if (!client.connected()) {
      Result<ServeClient> c = ConnectRetry(args.host, port, 20);
      if (!c.ok()) return out;
      client = std::move(*c);
    }
    Result<std::string> opened = client.Call(open_cmd);
    if (!opened.ok() &&
        opened.status().code() == StatusCode::kAlreadyExists) {
      open_ok = Reestablish(client, args, port, out.token, &out);
      break;
    }
    if (opened.ok()) {
      open_ok = true;
      break;
    }
    switch (opened.status().code()) {
      case StatusCode::kIoError:
        out.err_io++;
        client.Close();
        break;
      case StatusCode::kResourceExhausted:
        out.err_shed++;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        break;
      default:
        return out;  // a real refusal (bad token, no durability root)
    }
  }
  if (!open_ok) return out;
  out.open_ms = sw.ElapsedMillis();

  sw.Restart();
  if (!RobustCall(client, args, port, out.token,
                  StrFormat("add_rule base: jaccard(%s, %s) >= 0.55",
                            attr0.c_str(), attr0.c_str()),
                  &out, nullptr) ||
      !RobustCall(client, args, port, out.token, "run", &out, nullptr)) {
    return out;
  }
  out.first_run_ms = sw.ElapsedMillis();

  size_t added = 0;
  for (size_t e = 0; e < args.edits; ++e) {
    std::string cmd;
    if (e % 2 == 0) {
      cmd = StrFormat("set_threshold 0 0 %.3f", StepThreshold(index, e));
    } else {
      cmd = StrFormat("add_rule r%zu: jaccard(%s, %s) >= %.3f",
                      added++, attr1.c_str(), attr1.c_str(),
                      StepThreshold(index, e));
    }
    if (!RobustCall(client, args, port, out.token, cmd, &out,
                    &out.edit_ms)) {
      return out;
    }
  }

  std::string digest_resp;
  if (!RobustCall(client, args, port, out.token, "digest", &out, nullptr,
                  &digest_resp)) {
    return out;
  }
  const size_t at = digest_resp.find("digest=");
  if (at == std::string::npos) return out;
  out.digest = digest_resp.substr(at + 7, 8);
  out.ok = true;
  return out;
}

struct LatencyStats {
  double mean = 0, p50 = 0, p95 = 0, p99 = 0, max = 0;
  size_t n = 0;
};

LatencyStats Summarize(std::vector<double> v) {
  LatencyStats s;
  s.n = v.size();
  if (v.empty()) return s;
  std::sort(v.begin(), v.end());
  double sum = 0;
  for (double x : v) sum += x;
  s.mean = sum / static_cast<double>(v.size());
  auto pct = [&v](double p) {
    const size_t i = static_cast<size_t>(p * static_cast<double>(v.size()));
    return v[std::min(i, v.size() - 1)];
  };
  s.p50 = pct(0.50);
  s.p95 = pct(0.95);
  s.p99 = pct(0.99);
  s.max = v.back();
  return s;
}

// ---------------------------------------------------------------------------
// Overload mode: the resource-governor drill (see the file comment).
// ---------------------------------------------------------------------------

struct OverloadOutcome {
  bool ok = false;
  std::string token;
  /// Rule names the server acknowledged ("ok" response seen by the
  /// RetryingClient, possibly via an idempotent replay).
  std::vector<std::string> acked;
  /// (name, step) pairs whose edits never got an acknowledgement.
  std::vector<std::pair<std::string, size_t>> unacked;
  size_t shed = 0;
  uint64_t retries = 0;
  uint64_t reconnects = 0;
};

/// Parses a `rules` response body ("rules=N ; name: dsl ; ...") into
/// name -> occurrence count. A name appearing twice is a duplicate apply.
std::map<std::string, size_t> RuleCounts(const std::string& body) {
  std::map<std::string, size_t> counts;
  size_t start = 0;
  bool first = true;  // the leading "rules=N" chunk is not a rule
  while (start <= body.size()) {
    const size_t sep = body.find(" ; ", start);
    const std::string seg =
        sep == std::string::npos ? body.substr(start)
                                 : body.substr(start, sep - start);
    if (!first) {
      std::string_view name = TrimAscii(seg);
      const size_t cut = name.find_first_of(": ");
      if (cut != std::string_view::npos) name = name.substr(0, cut);
      if (!name.empty()) counts[std::string(name)]++;
    }
    first = false;
    if (sep == std::string::npos) break;
    start = sep + 3;
  }
  return counts;
}

std::string OverloadRuleCmd(const std::string& name, const std::string& attr,
                            size_t session, size_t step) {
  return StrFormat("add_rule %s: jaccard(%s, %s) >= %.3f", name.c_str(),
                   attr.c_str(), attr.c_str(), StepThreshold(session, step));
}

OverloadOutcome RunOverloadSession(const Args& args, uint16_t port, size_t i,
                                   const std::string& attr0,
                                   const std::string& attr1) {
  OverloadOutcome out;
  out.token = StrFormat("ov%zu", i);
  RetryPolicy pol;
  pol.max_attempts = 6;
  pol.initial_backoff_ms = 5;
  pol.max_backoff_ms = 250;
  pol.seed = 1000 + i;
  RetryingClient rc(args.host, port, pol);
  Status os = Status::Ok();
  for (int attempt = 0; attempt < 50; ++attempt) {
    os = rc.Open(/*durable=*/true, out.token);
    if (os.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (!os.ok()) return out;

  // A base rule plus a run gives the session real memo/cache footprint,
  // so the budget has something to squeeze.
  const std::string base_name = StrFormat("ov%zubase", i);
  Result<std::string> base =
      rc.Call(StrFormat("add_rule %s: jaccard(%s, %s) >= 0.55",
                        base_name.c_str(), attr0.c_str(), attr0.c_str()));
  if (base.ok()) {
    out.acked.push_back(base_name);
  } else {
    if (base.status().code() == StatusCode::kResourceExhausted) out.shed++;
    out.unacked.emplace_back(base_name, size_t{0});
  }
  (void)rc.Call("run");

  for (size_t e = 0; e < args.edits; ++e) {
    const std::string name = StrFormat("ov%zur%zu", i, e);
    Result<std::string> r = rc.Call(OverloadRuleCmd(name, attr1, i, e));
    if (r.ok()) {
      out.acked.push_back(name);
    } else {
      if (r.status().code() == StatusCode::kResourceExhausted) out.shed++;
      out.unacked.emplace_back(name, e);
    }
    if (e % 8 == 7) (void)rc.Call("run");  // keep memo pressure on
  }
  out.retries = rc.retries();
  out.reconnects = rc.reconnects();
  out.ok = true;
  return out;
}

struct VerifyResult {
  bool resumed = false;
  size_t lost = 0;          // acked rules missing after recovery
  size_t dup = 0;           // any rule applied more than once
  size_t resent = 0;        // unacked edits safely retried post-resync
  size_t still_unacked = 0;
};

/// Post-crash resync for one session: resume, read `rules`, and only then
/// retry unacked edits — re-sending an edit whose ack was merely lost
/// would double-apply it, so the resync read is what makes the retry
/// exactly-once across the crash (the in-process idem window died with
/// the server).
VerifyResult VerifyOverloadSession(const Args& args, uint16_t port, size_t i,
                                   OverloadOutcome& o,
                                   const std::string& attr1) {
  VerifyResult v;
  RetryPolicy pol;
  pol.max_attempts = 8;
  pol.seed = 5000 + i;
  RetryingClient rc(args.host, port, pol);
  Status s = Status::Ok();
  for (int attempt = 0; attempt < 50; ++attempt) {
    s = rc.Attach(o.token, /*durable=*/true);
    if (s.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (!s.ok()) {
    v.lost = o.acked.size();
    return v;
  }
  v.resumed = true;

  Result<std::string> rules = rc.Call("rules");
  if (!rules.ok()) {
    v.lost = o.acked.size();
    return v;
  }
  const std::map<std::string, size_t> counts = RuleCounts(*rules);
  for (const auto& kv : o.unacked) {
    if (counts.count(kv.first) != 0) continue;  // landed; ack was lost
    Result<std::string> r =
        rc.Call(OverloadRuleCmd(kv.first, attr1, i, kv.second));
    if (r.ok()) v.resent++;
  }

  // Final verification against the recovered session.
  Result<std::string> final_rules = rc.Call("rules");
  if (!final_rules.ok()) {
    v.lost = o.acked.size();
    return v;
  }
  const std::map<std::string, size_t> fin = RuleCounts(*final_rules);
  auto count_of = [&fin](const std::string& name) -> size_t {
    auto it = fin.find(name);
    return it == fin.end() ? 0 : it->second;
  };
  for (const std::string& name : o.acked) {
    const size_t c = count_of(name);
    if (c == 0) v.lost++;
    if (c > 1) v.dup++;
  }
  for (const auto& kv : o.unacked) {
    const size_t c = count_of(kv.first);
    if (c > 1) v.dup++;
    if (c == 0) v.still_unacked++;
  }
  return v;
}

/// "mem_denials=42" -> 42; -1 when the key is absent.
long long StatField(const std::string& body, const char* key) {
  const size_t at = body.find(key);
  if (at == std::string::npos) return -1;
  return std::atoll(body.c_str() + at + std::strlen(key));
}

int RunOverloadMode(Args args, const std::string& attr0,
                    const std::string& attr1) {
  // Client-side lost-ack injection: drop ~P of acknowledged responses so
  // the RetryingClients actually exercise the idempotent-replay path.
  if (args.lost_ack_prob > 0) {
    FaultInjection::Plan plan;
    plan.probability = args.lost_ack_prob;
    plan.seed = 42;
    FaultInjection::Arm("serve.retry", plan);
  }
  args.server_args.push_back("--mem-budget=" + args.mem_budget);
  args.server_args.push_back("--session-quota=" + args.session_quota);
  args.server_args.push_back("--idem-window=128");
  args.server_args.push_back("--watchdog-ms=250");
  ::mkdir(args.durability_root.c_str(), 0755);

  ChildServer child;
  if (!SpawnServer(args, &child)) return 1;
  uint16_t port = child.port;
  std::fprintf(stderr,
               "overload: server pid=%d port=%u budget=%s quota=%s\n",
               child.pid, port, args.mem_budget.c_str(),
               args.session_quota.c_str());

  Stopwatch load_sw;
  std::vector<OverloadOutcome> outcomes(args.sessions);
  {
    std::vector<std::thread> threads;
    threads.reserve(args.sessions);
    for (size_t i = 0; i < args.sessions; ++i) {
      threads.emplace_back([&, i] {
        outcomes[i] = RunOverloadSession(args, port, i, attr0, attr1);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const double load_s = load_sw.ElapsedSeconds();

  // Governor invariant #3: the server must survive the pressure — a
  // budget denial is an error response, never an OOM abort.
  int wst = 0;
  const bool server_died = ::waitpid(child.pid, &wst, WNOHANG) != 0;

  // Server-side governor counters, best effort, before the crash.
  long long mem_denials = -1, reclaims = -1, reclaimed = -1, replays = -1,
            stuck = -1;
  if (!server_died) {
    Result<ServeClient> sc = ConnectRetry(args.host, port, 20);
    if (sc.ok()) {
      Result<std::string> st = sc->Call("stats");
      if (st.ok()) {
        mem_denials = StatField(*st, "mem_denials=");
        reclaims = StatField(*st, "reclaims=");
        reclaimed = StatField(*st, "reclaimed=");
        replays = StatField(*st, "replays=");
        stuck = StatField(*st, "stuck=");
      }
    }
  }

  size_t ok_sessions = 0, acked = 0, unacked = 0, shed = 0;
  uint64_t retries = 0, reconnects = 0;
  for (const OverloadOutcome& o : outcomes) {
    if (o.ok) ok_sessions++;
    acked += o.acked.size();
    unacked += o.unacked.size();
    shed += o.shed;
    retries += o.retries;
    reconnects += o.reconnects;
  }
  std::fprintf(stderr,
               "overload load: %zu/%zu sessions, %zu acked, %zu unacked, "
               "shed=%zu retries=%llu reconnects=%llu in %.2fs%s\n",
               ok_sessions, args.sessions, acked, unacked, shed,
               static_cast<unsigned long long>(retries),
               static_cast<unsigned long long>(reconnects), load_s,
               server_died ? " [SERVER DIED]" : "");

  // Crash + resync-then-retry recovery.
  size_t lost = 0, dup = 0, resent = 0, still_unacked = 0, resumed = 0;
  double restart_ms = -1;
  if (!server_died) {
    std::fprintf(stderr, "kill -9 %d...\n", child.pid);
    KillServer(&child, SIGKILL);
    Stopwatch restart_sw;
    if (!SpawnServer(args, &child)) return 1;
    restart_ms = restart_sw.ElapsedMillis();
    port = child.port;

    std::vector<VerifyResult> verdicts(args.sessions);
    std::vector<std::thread> threads;
    for (size_t i = 0; i < args.sessions; ++i) {
      if (!outcomes[i].ok) continue;
      threads.emplace_back([&, i] {
        verdicts[i] =
            VerifyOverloadSession(args, port, i, outcomes[i], attr1);
      });
    }
    for (std::thread& t : threads) t.join();
    for (size_t i = 0; i < args.sessions; ++i) {
      if (!outcomes[i].ok) continue;
      if (verdicts[i].resumed) resumed++;
      lost += verdicts[i].lost;
      dup += verdicts[i].dup;
      resent += verdicts[i].resent;
      still_unacked += verdicts[i].still_unacked;
    }
    std::fprintf(stderr,
                 "overload recovery: %zu/%zu resumed, lost=%zu dup=%zu "
                 "resent=%zu still_unacked=%zu\n",
                 resumed, ok_sessions, lost, dup, resent, still_unacked);
    KillServer(&child, SIGTERM);
  } else {
    KillServer(&child, SIGKILL);
  }

  const std::string tmp = args.out_path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"governor\",\n");
  std::fprintf(f, "  \"dataset\": \"%s\",\n", args.dataset.c_str());
  std::fprintf(f, "  \"scale\": %g,\n", args.scale);
  std::fprintf(f, "  \"sessions\": %zu,\n", args.sessions);
  std::fprintf(f, "  \"edits_per_session\": %zu,\n", args.edits);
  std::fprintf(f, "  \"mem_budget\": \"%s\",\n", args.mem_budget.c_str());
  std::fprintf(f, "  \"session_quota\": \"%s\",\n",
               args.session_quota.c_str());
  std::fprintf(f, "  \"lost_ack_prob\": %g,\n", args.lost_ack_prob);
  std::fprintf(f, "  \"sessions_ok\": %zu,\n", ok_sessions);
  std::fprintf(f, "  \"load_wall_s\": %.3f,\n", load_s);
  std::fprintf(f, "  \"acked_edits\": %zu,\n", acked);
  std::fprintf(f, "  \"unacked_edits\": %zu,\n", unacked);
  std::fprintf(f, "  \"shed_responses\": %zu,\n", shed);
  std::fprintf(f, "  \"client_retries\": %llu,\n",
               static_cast<unsigned long long>(retries));
  std::fprintf(f, "  \"client_reconnects\": %llu,\n",
               static_cast<unsigned long long>(reconnects));
  std::fprintf(f,
               "  \"server_stats\": {\"mem_denials\": %lld, \"reclaims\": "
               "%lld, \"reclaimed_bytes\": %lld, \"idem_replays\": %lld, "
               "\"tasks_stuck\": %lld},\n",
               mem_denials, reclaims, reclaimed, replays, stuck);
  std::fprintf(f, "  \"server_restart_ms\": %.1f,\n", restart_ms);
  std::fprintf(f, "  \"sessions_resumed\": %zu,\n", resumed);
  std::fprintf(f, "  \"unacked_resent\": %zu,\n", resent);
  std::fprintf(f, "  \"still_unacked\": %zu,\n", still_unacked);
  std::fprintf(f, "  \"lost_acked_edits\": %zu,\n", lost);
  std::fprintf(f, "  \"duplicate_applies\": %zu,\n", dup);
  std::fprintf(f, "  \"oom_aborts\": %d\n", server_died ? 1 : 0);
  std::fprintf(f, "}\n");
  std::fclose(f);
  if (std::rename(tmp.c_str(), args.out_path.c_str()) != 0) {
    std::fprintf(stderr, "cannot rename %s\n", tmp.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", args.out_path.c_str());

  if (server_died) {
    std::fprintf(stderr, "FAIL: server died under memory pressure\n");
    return 1;
  }
  if (lost > 0 || dup > 0) {
    std::fprintf(stderr,
                 "FAIL: lost_acked=%zu duplicate_applies=%zu\n", lost, dup);
    return 1;
  }
  if (resumed < ok_sessions) {
    std::fprintf(stderr, "FAIL: only %zu/%zu sessions resumed\n", resumed,
                 ok_sessions);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Args::Parse(argc, argv, &args)) {
    std::fprintf(
        stderr,
        "usage: emdbg_loadgen (--port=P | --server-bin=PATH) "
        "[--host=H] [--dataset=NAME] [--scale=F] [--seed=N] "
        "[--sessions=N] [--edits=N] [--durable] [--durability-root=DIR] "
        "[--workers=N] [--server-arg=ARG]... [--out=FILE] "
        "[--overload --mem-budget=B --session-quota=B "
        "--lost-ack-prob=P]\n");
    return 2;
  }

  // Attribute names for the edit DSL come from the (tiny) dataset profile;
  // no corpus is generated on the loadgen side.
  Result<DatasetId> id = DatasetIdFromName(args.dataset);
  if (!id.ok()) {
    std::fprintf(stderr, "error: %s\n", id.status().message().c_str());
    return 2;
  }
  const DatasetProfile profile = PaperDatasetProfile(*id);
  const std::string attr0 = profile.attributes[0].name;
  const std::string attr1 =
      profile.attributes[profile.attributes.size() > 1 ? 1 : 0].name;

  if (args.overload) return RunOverloadMode(args, attr0, attr1);

  const bool self_contained = !args.server_bin.empty();
  ChildServer child;
  uint16_t port = static_cast<uint16_t>(args.port);
  if (self_contained) {
    ::mkdir(args.durability_root.c_str(), 0755);
    if (!SpawnServer(args, &child)) return 1;
    port = child.port;
    std::fprintf(stderr, "server up: pid=%d port=%u\n", child.pid, port);
  }

  // ---- Load phase. ----
  Stopwatch load_sw;
  std::vector<SessionOutcome> outcomes(args.sessions);
  {
    std::vector<std::thread> threads;
    threads.reserve(args.sessions);
    for (size_t i = 0; i < args.sessions; ++i) {
      threads.emplace_back([&, i] {
        outcomes[i] = RunSession(args, port, i, attr0, attr1);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const double load_s = load_sw.ElapsedSeconds();

  size_t ok_sessions = 0, err_shed = 0, err_io = 0, err_other = 0,
         degraded_resumes = 0;
  std::vector<double> all_edit, all_open, all_run;
  for (const SessionOutcome& o : outcomes) {
    if (o.ok) ok_sessions++;
    err_shed += o.err_shed;
    err_io += o.err_io;
    err_other += o.err_other;
    degraded_resumes += o.degraded_resumes;
    all_edit.insert(all_edit.end(), o.edit_ms.begin(), o.edit_ms.end());
    if (o.ok) {
      all_open.push_back(o.open_ms);
      all_run.push_back(o.first_run_ms);
    }
  }
  const LatencyStats edit = Summarize(all_edit);
  const LatencyStats open = Summarize(all_open);
  const LatencyStats run = Summarize(all_run);
  std::fprintf(stderr,
               "load: %zu/%zu sessions ok in %.2fs, %zu edits acked, "
               "edit p99 %.2fms (shed=%zu io=%zu resumes=%zu other=%zu)\n",
               ok_sessions, args.sessions, load_s, edit.n, edit.p99,
               err_shed, err_io, degraded_resumes, err_other);

  // ---- Crash + recovery phase (self-contained mode only). ----
  double restart_ms = -1, resume_wall_ms = -1;
  LatencyStats resume_lat;
  size_t digest_mismatches = 0, resumed = 0;
  if (self_contained && ok_sessions > 0) {
    std::fprintf(stderr, "kill -9 %d...\n", child.pid);
    KillServer(&child, SIGKILL);
    Stopwatch restart_sw;
    if (!SpawnServer(args, &child)) return 1;
    restart_ms = restart_sw.ElapsedMillis();
    port = child.port;
    std::fprintf(stderr, "server back: pid=%d port=%u (%.0fms)\n",
                 child.pid, port, restart_ms);

    Stopwatch resume_sw;
    std::vector<double> resume_ms(args.sessions, -1);
    std::vector<int> verdicts(args.sessions, 0);  // 1 ok, -1 mismatch
    std::vector<std::thread> threads;
    for (size_t i = 0; i < args.sessions; ++i) {
      if (!outcomes[i].ok) continue;
      threads.emplace_back([&, i] {
        Result<ServeClient> c = ConnectRetry(args.host, port, 100);
        if (!c.ok()) return;
        Stopwatch sw;
        Result<std::string> r = c->Call("resume " + outcomes[i].token);
        if (!r.ok()) return;
        resume_ms[i] = sw.ElapsedMillis();
        Result<std::string> d = c->Call("digest");
        if (!d.ok()) return;
        const size_t at = d->find("digest=");
        const std::string digest =
            at == std::string::npos ? "" : d->substr(at + 7, 8);
        verdicts[i] = digest == outcomes[i].digest ? 1 : -1;
        if (verdicts[i] < 0) {
          std::fprintf(stderr,
                       "DIGEST MISMATCH session %s: pre-crash %s, "
                       "post-recovery %s\n",
                       outcomes[i].token.c_str(),
                       outcomes[i].digest.c_str(), digest.c_str());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    resume_wall_ms = resume_sw.ElapsedMillis();
    std::vector<double> ok_resumes;
    for (size_t i = 0; i < args.sessions; ++i) {
      if (verdicts[i] == 1) {
        resumed++;
        ok_resumes.push_back(resume_ms[i]);
      } else if (verdicts[i] == -1) {
        digest_mismatches++;
      } else if (outcomes[i].ok) {
        digest_mismatches++;  // could not resume at all: counts as loss
      }
    }
    resume_lat = Summarize(ok_resumes);
    std::fprintf(stderr,
                 "recovery: %zu/%zu sessions resumed in %.0fms "
                 "(mismatches=%zu)\n",
                 resumed, ok_sessions, resume_wall_ms, digest_mismatches);

    KillServer(&child, SIGTERM);  // graceful this time
  }

  // ---- BENCH_serve.json. ----
  const std::string tmp = args.out_path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serve\",\n");
  std::fprintf(f, "  \"dataset\": \"%s\",\n", args.dataset.c_str());
  std::fprintf(f, "  \"scale\": %g,\n", args.scale);
  std::fprintf(f, "  \"sessions\": %zu,\n", args.sessions);
  std::fprintf(f, "  \"edits_per_session\": %zu,\n", args.edits);
  std::fprintf(f, "  \"durable\": %s,\n", args.durable ? "true" : "false");
  std::fprintf(f, "  \"server_workers\": %zu,\n", args.workers);
  std::fprintf(f, "  \"sessions_ok\": %zu,\n", ok_sessions);
  std::fprintf(f, "  \"load_wall_s\": %.3f,\n", load_s);
  std::fprintf(f, "  \"sessions_per_sec\": %.3f,\n",
               load_s > 0 ? static_cast<double>(ok_sessions) / load_s : 0);
  std::fprintf(f, "  \"edits_per_sec\": %.1f,\n",
               load_s > 0 ? static_cast<double>(edit.n) / load_s : 0);
  std::fprintf(f,
               "  \"edit_latency_ms\": {\"n\": %zu, \"mean\": %.3f, "
               "\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f, "
               "\"max\": %.3f},\n",
               edit.n, edit.mean, edit.p50, edit.p95, edit.p99, edit.max);
  std::fprintf(f,
               "  \"open_latency_ms\": {\"mean\": %.3f, \"max\": %.3f},\n",
               open.mean, open.max);
  std::fprintf(
      f, "  \"first_run_latency_ms\": {\"mean\": %.3f, \"max\": %.3f},\n",
      run.mean, run.max);
  std::fprintf(f,
               "  \"errors\": {\"shed\": %zu, \"io\": %zu, "
               "\"degraded_resumes\": %zu, \"other\": %zu},\n",
               err_shed, err_io, degraded_resumes, err_other);
  if (self_contained) {
    std::fprintf(f, "  \"recovery\": {\n");
    std::fprintf(f, "    \"server_restart_ms\": %.1f,\n", restart_ms);
    std::fprintf(f, "    \"sessions_resumed\": %zu,\n", resumed);
    std::fprintf(f, "    \"resume_wall_ms\": %.1f,\n", resume_wall_ms);
    std::fprintf(f,
                 "    \"resume_latency_ms\": {\"mean\": %.3f, \"p99\": "
                 "%.3f, \"max\": %.3f},\n",
                 resume_lat.mean, resume_lat.p99, resume_lat.max);
    std::fprintf(f, "    \"digest_mismatches\": %zu\n", digest_mismatches);
    std::fprintf(f, "  }\n");
  } else {
    std::fprintf(f, "  \"recovery\": null\n");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  if (std::rename(tmp.c_str(), args.out_path.c_str()) != 0) {
    std::fprintf(stderr, "cannot rename %s\n", tmp.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", args.out_path.c_str());

  if (self_contained && (digest_mismatches > 0 || resumed < ok_sessions)) {
    std::fprintf(stderr, "FAIL: lost acknowledged edits\n");
    return 1;
  }
  if (ok_sessions < args.sessions) {
    std::fprintf(stderr, "FAIL: %zu sessions did not complete\n",
                 args.sessions - ok_sessions);
    return 1;
  }
  return 0;
}
