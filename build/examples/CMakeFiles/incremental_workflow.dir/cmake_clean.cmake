file(REMOVE_RECURSE
  "CMakeFiles/incremental_workflow.dir/incremental_workflow.cpp.o"
  "CMakeFiles/incremental_workflow.dir/incremental_workflow.cpp.o.d"
  "incremental_workflow"
  "incremental_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
