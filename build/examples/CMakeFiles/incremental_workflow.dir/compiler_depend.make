# Empty compiler generated dependencies file for incremental_workflow.
# This may be replaced when dependencies are built.
