# Empty dependencies file for incremental_workflow.
# This may be replaced when dependencies are built.
