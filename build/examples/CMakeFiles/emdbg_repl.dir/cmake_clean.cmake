file(REMOVE_RECURSE
  "CMakeFiles/emdbg_repl.dir/emdbg_repl.cpp.o"
  "CMakeFiles/emdbg_repl.dir/emdbg_repl.cpp.o.d"
  "emdbg_repl"
  "emdbg_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdbg_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
