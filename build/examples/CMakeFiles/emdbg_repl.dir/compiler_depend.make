# Empty compiler generated dependencies file for emdbg_repl.
# This may be replaced when dependencies are built.
