file(REMOVE_RECURSE
  "CMakeFiles/ordering_explorer.dir/ordering_explorer.cpp.o"
  "CMakeFiles/ordering_explorer.dir/ordering_explorer.cpp.o.d"
  "ordering_explorer"
  "ordering_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
