# Empty dependencies file for ordering_explorer.
# This may be replaced when dependencies are built.
