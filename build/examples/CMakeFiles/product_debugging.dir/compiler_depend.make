# Empty compiler generated dependencies file for product_debugging.
# This may be replaced when dependencies are built.
