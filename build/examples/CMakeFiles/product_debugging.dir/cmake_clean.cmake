file(REMOVE_RECURSE
  "CMakeFiles/product_debugging.dir/product_debugging.cpp.o"
  "CMakeFiles/product_debugging.dir/product_debugging.cpp.o.d"
  "product_debugging"
  "product_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/product_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
