file(REMOVE_RECURSE
  "CMakeFiles/learn_rules.dir/learn_rules.cpp.o"
  "CMakeFiles/learn_rules.dir/learn_rules.cpp.o.d"
  "learn_rules"
  "learn_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learn_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
