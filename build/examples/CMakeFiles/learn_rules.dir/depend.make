# Empty dependencies file for learn_rules.
# This may be replaced when dependencies are built.
