# Empty compiler generated dependencies file for gen_dataset.
# This may be replaced when dependencies are built.
