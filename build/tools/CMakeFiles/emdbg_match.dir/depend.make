# Empty dependencies file for emdbg_match.
# This may be replaced when dependencies are built.
