file(REMOVE_RECURSE
  "CMakeFiles/emdbg_match.dir/emdbg_match.cc.o"
  "CMakeFiles/emdbg_match.dir/emdbg_match.cc.o.d"
  "emdbg_match"
  "emdbg_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdbg_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
