file(REMOVE_RECURSE
  "libemdbg.a"
)
