# Empty dependencies file for emdbg.
# This may be replaced when dependencies are built.
