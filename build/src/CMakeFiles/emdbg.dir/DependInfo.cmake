
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/block/blocking_stats.cc" "src/CMakeFiles/emdbg.dir/block/blocking_stats.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/block/blocking_stats.cc.o.d"
  "/root/repo/src/block/candidate_pairs.cc" "src/CMakeFiles/emdbg.dir/block/candidate_pairs.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/block/candidate_pairs.cc.o.d"
  "/root/repo/src/block/key_blocker.cc" "src/CMakeFiles/emdbg.dir/block/key_blocker.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/block/key_blocker.cc.o.d"
  "/root/repo/src/block/overlap_blocker.cc" "src/CMakeFiles/emdbg.dir/block/overlap_blocker.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/block/overlap_blocker.cc.o.d"
  "/root/repo/src/block/similarity_join.cc" "src/CMakeFiles/emdbg.dir/block/similarity_join.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/block/similarity_join.cc.o.d"
  "/root/repo/src/block/sorted_neighborhood.cc" "src/CMakeFiles/emdbg.dir/block/sorted_neighborhood.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/block/sorted_neighborhood.cc.o.d"
  "/root/repo/src/core/adaptive_matcher.cc" "src/CMakeFiles/emdbg.dir/core/adaptive_matcher.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/adaptive_matcher.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/CMakeFiles/emdbg.dir/core/cost_model.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/cost_model.cc.o.d"
  "/root/repo/src/core/debug_session.cc" "src/CMakeFiles/emdbg.dir/core/debug_session.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/debug_session.cc.o.d"
  "/root/repo/src/core/early_exit_matcher.cc" "src/CMakeFiles/emdbg.dir/core/early_exit_matcher.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/early_exit_matcher.cc.o.d"
  "/root/repo/src/core/edit_log.cc" "src/CMakeFiles/emdbg.dir/core/edit_log.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/edit_log.cc.o.d"
  "/root/repo/src/core/exhaustive_optimizer.cc" "src/CMakeFiles/emdbg.dir/core/exhaustive_optimizer.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/exhaustive_optimizer.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/CMakeFiles/emdbg.dir/core/explain.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/explain.cc.o.d"
  "/root/repo/src/core/feature.cc" "src/CMakeFiles/emdbg.dir/core/feature.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/feature.cc.o.d"
  "/root/repo/src/core/feature_profiler.cc" "src/CMakeFiles/emdbg.dir/core/feature_profiler.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/feature_profiler.cc.o.d"
  "/root/repo/src/core/greedy_cost_optimizer.cc" "src/CMakeFiles/emdbg.dir/core/greedy_cost_optimizer.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/greedy_cost_optimizer.cc.o.d"
  "/root/repo/src/core/greedy_reduction_optimizer.cc" "src/CMakeFiles/emdbg.dir/core/greedy_reduction_optimizer.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/greedy_reduction_optimizer.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/CMakeFiles/emdbg.dir/core/incremental.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/incremental.cc.o.d"
  "/root/repo/src/core/match_result.cc" "src/CMakeFiles/emdbg.dir/core/match_result.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/match_result.cc.o.d"
  "/root/repo/src/core/match_state.cc" "src/CMakeFiles/emdbg.dir/core/match_state.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/match_state.cc.o.d"
  "/root/repo/src/core/matching_function.cc" "src/CMakeFiles/emdbg.dir/core/matching_function.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/matching_function.cc.o.d"
  "/root/repo/src/core/memo.cc" "src/CMakeFiles/emdbg.dir/core/memo.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/memo.cc.o.d"
  "/root/repo/src/core/memo_matcher.cc" "src/CMakeFiles/emdbg.dir/core/memo_matcher.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/memo_matcher.cc.o.d"
  "/root/repo/src/core/ordering.cc" "src/CMakeFiles/emdbg.dir/core/ordering.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/ordering.cc.o.d"
  "/root/repo/src/core/pair_context.cc" "src/CMakeFiles/emdbg.dir/core/pair_context.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/pair_context.cc.o.d"
  "/root/repo/src/core/parallel_matcher.cc" "src/CMakeFiles/emdbg.dir/core/parallel_matcher.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/parallel_matcher.cc.o.d"
  "/root/repo/src/core/precompute_matcher.cc" "src/CMakeFiles/emdbg.dir/core/precompute_matcher.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/precompute_matcher.cc.o.d"
  "/root/repo/src/core/predicate.cc" "src/CMakeFiles/emdbg.dir/core/predicate.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/predicate.cc.o.d"
  "/root/repo/src/core/rudimentary_matcher.cc" "src/CMakeFiles/emdbg.dir/core/rudimentary_matcher.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/rudimentary_matcher.cc.o.d"
  "/root/repo/src/core/rule.cc" "src/CMakeFiles/emdbg.dir/core/rule.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/rule.cc.o.d"
  "/root/repo/src/core/rule_generator.cc" "src/CMakeFiles/emdbg.dir/core/rule_generator.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/rule_generator.cc.o.d"
  "/root/repo/src/core/rule_parser.cc" "src/CMakeFiles/emdbg.dir/core/rule_parser.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/rule_parser.cc.o.d"
  "/root/repo/src/core/rule_simplifier.cc" "src/CMakeFiles/emdbg.dir/core/rule_simplifier.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/rule_simplifier.cc.o.d"
  "/root/repo/src/core/sampler.cc" "src/CMakeFiles/emdbg.dir/core/sampler.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/sampler.cc.o.d"
  "/root/repo/src/core/state_io.cc" "src/CMakeFiles/emdbg.dir/core/state_io.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/state_io.cc.o.d"
  "/root/repo/src/core/threshold_advisor.cc" "src/CMakeFiles/emdbg.dir/core/threshold_advisor.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/core/threshold_advisor.cc.o.d"
  "/root/repo/src/data/candidate_io.cc" "src/CMakeFiles/emdbg.dir/data/candidate_io.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/data/candidate_io.cc.o.d"
  "/root/repo/src/data/datasets.cc" "src/CMakeFiles/emdbg.dir/data/datasets.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/data/datasets.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/CMakeFiles/emdbg.dir/data/generator.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/data/generator.cc.o.d"
  "/root/repo/src/data/record.cc" "src/CMakeFiles/emdbg.dir/data/record.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/data/record.cc.o.d"
  "/root/repo/src/data/table.cc" "src/CMakeFiles/emdbg.dir/data/table.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/data/table.cc.o.d"
  "/root/repo/src/data/table_io.cc" "src/CMakeFiles/emdbg.dir/data/table_io.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/data/table_io.cc.o.d"
  "/root/repo/src/learn/decision_tree.cc" "src/CMakeFiles/emdbg.dir/learn/decision_tree.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/learn/decision_tree.cc.o.d"
  "/root/repo/src/learn/random_forest.cc" "src/CMakeFiles/emdbg.dir/learn/random_forest.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/learn/random_forest.cc.o.d"
  "/root/repo/src/learn/rule_extraction.cc" "src/CMakeFiles/emdbg.dir/learn/rule_extraction.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/learn/rule_extraction.cc.o.d"
  "/root/repo/src/text/alignment.cc" "src/CMakeFiles/emdbg.dir/text/alignment.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/text/alignment.cc.o.d"
  "/root/repo/src/text/cosine.cc" "src/CMakeFiles/emdbg.dir/text/cosine.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/text/cosine.cc.o.d"
  "/root/repo/src/text/exact.cc" "src/CMakeFiles/emdbg.dir/text/exact.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/text/exact.cc.o.d"
  "/root/repo/src/text/jaro.cc" "src/CMakeFiles/emdbg.dir/text/jaro.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/text/jaro.cc.o.d"
  "/root/repo/src/text/levenshtein.cc" "src/CMakeFiles/emdbg.dir/text/levenshtein.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/text/levenshtein.cc.o.d"
  "/root/repo/src/text/monge_elkan.cc" "src/CMakeFiles/emdbg.dir/text/monge_elkan.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/text/monge_elkan.cc.o.d"
  "/root/repo/src/text/numeric.cc" "src/CMakeFiles/emdbg.dir/text/numeric.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/text/numeric.cc.o.d"
  "/root/repo/src/text/set_similarity.cc" "src/CMakeFiles/emdbg.dir/text/set_similarity.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/text/set_similarity.cc.o.d"
  "/root/repo/src/text/similarity_registry.cc" "src/CMakeFiles/emdbg.dir/text/similarity_registry.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/text/similarity_registry.cc.o.d"
  "/root/repo/src/text/soft_tfidf.cc" "src/CMakeFiles/emdbg.dir/text/soft_tfidf.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/text/soft_tfidf.cc.o.d"
  "/root/repo/src/text/soundex.cc" "src/CMakeFiles/emdbg.dir/text/soundex.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/text/soundex.cc.o.d"
  "/root/repo/src/text/tfidf.cc" "src/CMakeFiles/emdbg.dir/text/tfidf.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/text/tfidf.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/emdbg.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/util/bitmap.cc" "src/CMakeFiles/emdbg.dir/util/bitmap.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/util/bitmap.cc.o.d"
  "/root/repo/src/util/cancellation.cc" "src/CMakeFiles/emdbg.dir/util/cancellation.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/util/cancellation.cc.o.d"
  "/root/repo/src/util/crc32c.cc" "src/CMakeFiles/emdbg.dir/util/crc32c.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/util/crc32c.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/emdbg.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/util/csv.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/emdbg.dir/util/random.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/util/random.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/emdbg.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/util/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/emdbg.dir/util/status.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/emdbg.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/emdbg.dir/util/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
