file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sample.dir/bench_ablation_sample.cc.o"
  "CMakeFiles/bench_ablation_sample.dir/bench_ablation_sample.cc.o.d"
  "bench_ablation_sample"
  "bench_ablation_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
