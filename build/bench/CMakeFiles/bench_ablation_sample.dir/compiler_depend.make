# Empty compiler generated dependencies file for bench_ablation_sample.
# This may be replaced when dependencies are built.
