# Empty compiler generated dependencies file for bench_fig3_matchers.
# This may be replaced when dependencies are built.
