file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_matchers.dir/bench_fig3_matchers.cc.o"
  "CMakeFiles/bench_fig3_matchers.dir/bench_fig3_matchers.cc.o.d"
  "bench_fig3_matchers"
  "bench_fig3_matchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_matchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
