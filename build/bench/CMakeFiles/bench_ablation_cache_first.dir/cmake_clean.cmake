file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cache_first.dir/bench_ablation_cache_first.cc.o"
  "CMakeFiles/bench_ablation_cache_first.dir/bench_ablation_cache_first.cc.o.d"
  "bench_ablation_cache_first"
  "bench_ablation_cache_first.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cache_first.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
