# Empty dependencies file for bench_ablation_cache_first.
# This may be replaced when dependencies are built.
