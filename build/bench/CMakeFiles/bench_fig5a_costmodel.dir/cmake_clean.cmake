file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_costmodel.dir/bench_fig5a_costmodel.cc.o"
  "CMakeFiles/bench_fig5a_costmodel.dir/bench_fig5a_costmodel.cc.o.d"
  "bench_fig5a_costmodel"
  "bench_fig5a_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
