file(REMOVE_RECURSE
  "CMakeFiles/bench_all_datasets.dir/bench_all_datasets.cc.o"
  "CMakeFiles/bench_all_datasets.dir/bench_all_datasets.cc.o.d"
  "bench_all_datasets"
  "bench_all_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_all_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
