# Empty compiler generated dependencies file for bench_all_datasets.
# This may be replaced when dependencies are built.
