# Empty compiler generated dependencies file for bench_ablation_memo.
# This may be replaced when dependencies are built.
