file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_memo.dir/bench_ablation_memo.cc.o"
  "CMakeFiles/bench_ablation_memo.dir/bench_ablation_memo.cc.o.d"
  "bench_ablation_memo"
  "bench_ablation_memo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_memo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
