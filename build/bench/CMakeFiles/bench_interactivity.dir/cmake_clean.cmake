file(REMOVE_RECURSE
  "CMakeFiles/bench_interactivity.dir/bench_interactivity.cc.o"
  "CMakeFiles/bench_interactivity.dir/bench_interactivity.cc.o.d"
  "bench_interactivity"
  "bench_interactivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interactivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
