# Empty dependencies file for bench_ablation_optimal.
# This may be replaced when dependencies are built.
