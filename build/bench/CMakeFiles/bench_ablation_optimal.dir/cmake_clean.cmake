file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_optimal.dir/bench_ablation_optimal.cc.o"
  "CMakeFiles/bench_ablation_optimal.dir/bench_ablation_optimal.cc.o.d"
  "bench_ablation_optimal"
  "bench_ablation_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
