# Empty dependencies file for bench_fig5c_addrule.
# This may be replaced when dependencies are built.
