file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5c_addrule.dir/bench_fig5c_addrule.cc.o"
  "CMakeFiles/bench_fig5c_addrule.dir/bench_fig5c_addrule.cc.o.d"
  "bench_fig5c_addrule"
  "bench_fig5c_addrule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c_addrule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
