# Empty dependencies file for bench_fig3c_ordering.
# This may be replaced when dependencies are built.
