# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/emdbg_util_tests[1]_include.cmake")
include("/root/repo/build/tests/emdbg_text_tests[1]_include.cmake")
include("/root/repo/build/tests/emdbg_data_tests[1]_include.cmake")
include("/root/repo/build/tests/emdbg_core_tests[1]_include.cmake")
include("/root/repo/build/tests/emdbg_learn_tests[1]_include.cmake")
include("/root/repo/build/tests/emdbg_integration_tests[1]_include.cmake")
