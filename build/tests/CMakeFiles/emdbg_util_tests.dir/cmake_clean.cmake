file(REMOVE_RECURSE
  "CMakeFiles/emdbg_util_tests.dir/util/bitmap_fuzz_test.cc.o"
  "CMakeFiles/emdbg_util_tests.dir/util/bitmap_fuzz_test.cc.o.d"
  "CMakeFiles/emdbg_util_tests.dir/util/bitmap_test.cc.o"
  "CMakeFiles/emdbg_util_tests.dir/util/bitmap_test.cc.o.d"
  "CMakeFiles/emdbg_util_tests.dir/util/crc32c_test.cc.o"
  "CMakeFiles/emdbg_util_tests.dir/util/crc32c_test.cc.o.d"
  "CMakeFiles/emdbg_util_tests.dir/util/csv_test.cc.o"
  "CMakeFiles/emdbg_util_tests.dir/util/csv_test.cc.o.d"
  "CMakeFiles/emdbg_util_tests.dir/util/random_test.cc.o"
  "CMakeFiles/emdbg_util_tests.dir/util/random_test.cc.o.d"
  "CMakeFiles/emdbg_util_tests.dir/util/stats_test.cc.o"
  "CMakeFiles/emdbg_util_tests.dir/util/stats_test.cc.o.d"
  "CMakeFiles/emdbg_util_tests.dir/util/status_test.cc.o"
  "CMakeFiles/emdbg_util_tests.dir/util/status_test.cc.o.d"
  "CMakeFiles/emdbg_util_tests.dir/util/string_util_test.cc.o"
  "CMakeFiles/emdbg_util_tests.dir/util/string_util_test.cc.o.d"
  "emdbg_util_tests"
  "emdbg_util_tests.pdb"
  "emdbg_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdbg_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
