
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/bitmap_fuzz_test.cc" "tests/CMakeFiles/emdbg_util_tests.dir/util/bitmap_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_util_tests.dir/util/bitmap_fuzz_test.cc.o.d"
  "/root/repo/tests/util/bitmap_test.cc" "tests/CMakeFiles/emdbg_util_tests.dir/util/bitmap_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_util_tests.dir/util/bitmap_test.cc.o.d"
  "/root/repo/tests/util/crc32c_test.cc" "tests/CMakeFiles/emdbg_util_tests.dir/util/crc32c_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_util_tests.dir/util/crc32c_test.cc.o.d"
  "/root/repo/tests/util/csv_test.cc" "tests/CMakeFiles/emdbg_util_tests.dir/util/csv_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_util_tests.dir/util/csv_test.cc.o.d"
  "/root/repo/tests/util/random_test.cc" "tests/CMakeFiles/emdbg_util_tests.dir/util/random_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_util_tests.dir/util/random_test.cc.o.d"
  "/root/repo/tests/util/stats_test.cc" "tests/CMakeFiles/emdbg_util_tests.dir/util/stats_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_util_tests.dir/util/stats_test.cc.o.d"
  "/root/repo/tests/util/status_test.cc" "tests/CMakeFiles/emdbg_util_tests.dir/util/status_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_util_tests.dir/util/status_test.cc.o.d"
  "/root/repo/tests/util/string_util_test.cc" "tests/CMakeFiles/emdbg_util_tests.dir/util/string_util_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_util_tests.dir/util/string_util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/emdbg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
