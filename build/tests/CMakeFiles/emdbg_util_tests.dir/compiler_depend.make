# Empty compiler generated dependencies file for emdbg_util_tests.
# This may be replaced when dependencies are built.
