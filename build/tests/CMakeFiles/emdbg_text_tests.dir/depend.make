# Empty dependencies file for emdbg_text_tests.
# This may be replaced when dependencies are built.
