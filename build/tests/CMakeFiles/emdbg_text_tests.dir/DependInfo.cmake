
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/text/alignment_test.cc" "tests/CMakeFiles/emdbg_text_tests.dir/text/alignment_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_text_tests.dir/text/alignment_test.cc.o.d"
  "/root/repo/tests/text/cosine_test.cc" "tests/CMakeFiles/emdbg_text_tests.dir/text/cosine_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_text_tests.dir/text/cosine_test.cc.o.d"
  "/root/repo/tests/text/jaro_test.cc" "tests/CMakeFiles/emdbg_text_tests.dir/text/jaro_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_text_tests.dir/text/jaro_test.cc.o.d"
  "/root/repo/tests/text/levenshtein_test.cc" "tests/CMakeFiles/emdbg_text_tests.dir/text/levenshtein_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_text_tests.dir/text/levenshtein_test.cc.o.d"
  "/root/repo/tests/text/monge_elkan_test.cc" "tests/CMakeFiles/emdbg_text_tests.dir/text/monge_elkan_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_text_tests.dir/text/monge_elkan_test.cc.o.d"
  "/root/repo/tests/text/numeric_test.cc" "tests/CMakeFiles/emdbg_text_tests.dir/text/numeric_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_text_tests.dir/text/numeric_test.cc.o.d"
  "/root/repo/tests/text/set_similarity_test.cc" "tests/CMakeFiles/emdbg_text_tests.dir/text/set_similarity_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_text_tests.dir/text/set_similarity_test.cc.o.d"
  "/root/repo/tests/text/similarity_properties_test.cc" "tests/CMakeFiles/emdbg_text_tests.dir/text/similarity_properties_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_text_tests.dir/text/similarity_properties_test.cc.o.d"
  "/root/repo/tests/text/similarity_registry_test.cc" "tests/CMakeFiles/emdbg_text_tests.dir/text/similarity_registry_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_text_tests.dir/text/similarity_registry_test.cc.o.d"
  "/root/repo/tests/text/soft_tfidf_test.cc" "tests/CMakeFiles/emdbg_text_tests.dir/text/soft_tfidf_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_text_tests.dir/text/soft_tfidf_test.cc.o.d"
  "/root/repo/tests/text/soundex_test.cc" "tests/CMakeFiles/emdbg_text_tests.dir/text/soundex_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_text_tests.dir/text/soundex_test.cc.o.d"
  "/root/repo/tests/text/tfidf_test.cc" "tests/CMakeFiles/emdbg_text_tests.dir/text/tfidf_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_text_tests.dir/text/tfidf_test.cc.o.d"
  "/root/repo/tests/text/tokenizer_test.cc" "tests/CMakeFiles/emdbg_text_tests.dir/text/tokenizer_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_text_tests.dir/text/tokenizer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/emdbg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
