file(REMOVE_RECURSE
  "CMakeFiles/emdbg_text_tests.dir/text/alignment_test.cc.o"
  "CMakeFiles/emdbg_text_tests.dir/text/alignment_test.cc.o.d"
  "CMakeFiles/emdbg_text_tests.dir/text/cosine_test.cc.o"
  "CMakeFiles/emdbg_text_tests.dir/text/cosine_test.cc.o.d"
  "CMakeFiles/emdbg_text_tests.dir/text/jaro_test.cc.o"
  "CMakeFiles/emdbg_text_tests.dir/text/jaro_test.cc.o.d"
  "CMakeFiles/emdbg_text_tests.dir/text/levenshtein_test.cc.o"
  "CMakeFiles/emdbg_text_tests.dir/text/levenshtein_test.cc.o.d"
  "CMakeFiles/emdbg_text_tests.dir/text/monge_elkan_test.cc.o"
  "CMakeFiles/emdbg_text_tests.dir/text/monge_elkan_test.cc.o.d"
  "CMakeFiles/emdbg_text_tests.dir/text/numeric_test.cc.o"
  "CMakeFiles/emdbg_text_tests.dir/text/numeric_test.cc.o.d"
  "CMakeFiles/emdbg_text_tests.dir/text/set_similarity_test.cc.o"
  "CMakeFiles/emdbg_text_tests.dir/text/set_similarity_test.cc.o.d"
  "CMakeFiles/emdbg_text_tests.dir/text/similarity_properties_test.cc.o"
  "CMakeFiles/emdbg_text_tests.dir/text/similarity_properties_test.cc.o.d"
  "CMakeFiles/emdbg_text_tests.dir/text/similarity_registry_test.cc.o"
  "CMakeFiles/emdbg_text_tests.dir/text/similarity_registry_test.cc.o.d"
  "CMakeFiles/emdbg_text_tests.dir/text/soft_tfidf_test.cc.o"
  "CMakeFiles/emdbg_text_tests.dir/text/soft_tfidf_test.cc.o.d"
  "CMakeFiles/emdbg_text_tests.dir/text/soundex_test.cc.o"
  "CMakeFiles/emdbg_text_tests.dir/text/soundex_test.cc.o.d"
  "CMakeFiles/emdbg_text_tests.dir/text/tfidf_test.cc.o"
  "CMakeFiles/emdbg_text_tests.dir/text/tfidf_test.cc.o.d"
  "CMakeFiles/emdbg_text_tests.dir/text/tokenizer_test.cc.o"
  "CMakeFiles/emdbg_text_tests.dir/text/tokenizer_test.cc.o.d"
  "emdbg_text_tests"
  "emdbg_text_tests.pdb"
  "emdbg_text_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdbg_text_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
