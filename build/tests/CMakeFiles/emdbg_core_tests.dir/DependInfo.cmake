
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/adaptive_matcher_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/adaptive_matcher_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/adaptive_matcher_test.cc.o.d"
  "/root/repo/tests/core/cancellation_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/cancellation_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/cancellation_test.cc.o.d"
  "/root/repo/tests/core/cost_model_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/cost_model_test.cc.o.d"
  "/root/repo/tests/core/debug_session_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/debug_session_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/debug_session_test.cc.o.d"
  "/root/repo/tests/core/durable_session_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/durable_session_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/durable_session_test.cc.o.d"
  "/root/repo/tests/core/edit_log_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/edit_log_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/edit_log_test.cc.o.d"
  "/root/repo/tests/core/exhaustive_optimizer_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/exhaustive_optimizer_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/exhaustive_optimizer_test.cc.o.d"
  "/root/repo/tests/core/explain_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/explain_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/explain_test.cc.o.d"
  "/root/repo/tests/core/feature_profiler_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/feature_profiler_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/feature_profiler_test.cc.o.d"
  "/root/repo/tests/core/feature_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/feature_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/feature_test.cc.o.d"
  "/root/repo/tests/core/greedy_optimizers_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/greedy_optimizers_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/greedy_optimizers_test.cc.o.d"
  "/root/repo/tests/core/guided_debugging_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/guided_debugging_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/guided_debugging_test.cc.o.d"
  "/root/repo/tests/core/incremental_stress_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/incremental_stress_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/incremental_stress_test.cc.o.d"
  "/root/repo/tests/core/incremental_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/incremental_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/incremental_test.cc.o.d"
  "/root/repo/tests/core/match_result_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/match_result_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/match_result_test.cc.o.d"
  "/root/repo/tests/core/match_state_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/match_state_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/match_state_test.cc.o.d"
  "/root/repo/tests/core/matcher_param_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/matcher_param_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/matcher_param_test.cc.o.d"
  "/root/repo/tests/core/matchers_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/matchers_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/matchers_test.cc.o.d"
  "/root/repo/tests/core/matching_function_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/matching_function_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/matching_function_test.cc.o.d"
  "/root/repo/tests/core/memo_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/memo_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/memo_test.cc.o.d"
  "/root/repo/tests/core/ordering_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/ordering_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/ordering_test.cc.o.d"
  "/root/repo/tests/core/pair_context_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/pair_context_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/pair_context_test.cc.o.d"
  "/root/repo/tests/core/parallel_matcher_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/parallel_matcher_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/parallel_matcher_test.cc.o.d"
  "/root/repo/tests/core/parser_fuzz_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/parser_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/parser_fuzz_test.cc.o.d"
  "/root/repo/tests/core/predicate_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/predicate_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/predicate_test.cc.o.d"
  "/root/repo/tests/core/rule_generator_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/rule_generator_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/rule_generator_test.cc.o.d"
  "/root/repo/tests/core/rule_parser_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/rule_parser_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/rule_parser_test.cc.o.d"
  "/root/repo/tests/core/rule_simplifier_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/rule_simplifier_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/rule_simplifier_test.cc.o.d"
  "/root/repo/tests/core/rule_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/rule_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/rule_test.cc.o.d"
  "/root/repo/tests/core/rules_io_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/rules_io_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/rules_io_test.cc.o.d"
  "/root/repo/tests/core/sampler_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/sampler_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/sampler_test.cc.o.d"
  "/root/repo/tests/core/state_io_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/state_io_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/state_io_test.cc.o.d"
  "/root/repo/tests/core/threshold_advisor_test.cc" "tests/CMakeFiles/emdbg_core_tests.dir/core/threshold_advisor_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_core_tests.dir/core/threshold_advisor_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/emdbg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
