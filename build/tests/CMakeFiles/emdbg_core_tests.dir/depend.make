# Empty dependencies file for emdbg_core_tests.
# This may be replaced when dependencies are built.
