file(REMOVE_RECURSE
  "CMakeFiles/emdbg_integration_tests.dir/integration_test.cc.o"
  "CMakeFiles/emdbg_integration_tests.dir/integration_test.cc.o.d"
  "emdbg_integration_tests"
  "emdbg_integration_tests.pdb"
  "emdbg_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdbg_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
