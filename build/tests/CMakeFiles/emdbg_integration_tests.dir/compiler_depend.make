# Empty compiler generated dependencies file for emdbg_integration_tests.
# This may be replaced when dependencies are built.
