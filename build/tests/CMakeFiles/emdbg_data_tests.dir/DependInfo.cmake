
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/block/blocking_stats_test.cc" "tests/CMakeFiles/emdbg_data_tests.dir/block/blocking_stats_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_data_tests.dir/block/blocking_stats_test.cc.o.d"
  "/root/repo/tests/block/candidate_pairs_test.cc" "tests/CMakeFiles/emdbg_data_tests.dir/block/candidate_pairs_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_data_tests.dir/block/candidate_pairs_test.cc.o.d"
  "/root/repo/tests/block/key_blocker_test.cc" "tests/CMakeFiles/emdbg_data_tests.dir/block/key_blocker_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_data_tests.dir/block/key_blocker_test.cc.o.d"
  "/root/repo/tests/block/overlap_blocker_test.cc" "tests/CMakeFiles/emdbg_data_tests.dir/block/overlap_blocker_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_data_tests.dir/block/overlap_blocker_test.cc.o.d"
  "/root/repo/tests/block/similarity_join_test.cc" "tests/CMakeFiles/emdbg_data_tests.dir/block/similarity_join_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_data_tests.dir/block/similarity_join_test.cc.o.d"
  "/root/repo/tests/block/sorted_neighborhood_test.cc" "tests/CMakeFiles/emdbg_data_tests.dir/block/sorted_neighborhood_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_data_tests.dir/block/sorted_neighborhood_test.cc.o.d"
  "/root/repo/tests/data/attr_kind_param_test.cc" "tests/CMakeFiles/emdbg_data_tests.dir/data/attr_kind_param_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_data_tests.dir/data/attr_kind_param_test.cc.o.d"
  "/root/repo/tests/data/candidate_io_test.cc" "tests/CMakeFiles/emdbg_data_tests.dir/data/candidate_io_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_data_tests.dir/data/candidate_io_test.cc.o.d"
  "/root/repo/tests/data/datasets_test.cc" "tests/CMakeFiles/emdbg_data_tests.dir/data/datasets_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_data_tests.dir/data/datasets_test.cc.o.d"
  "/root/repo/tests/data/generator_test.cc" "tests/CMakeFiles/emdbg_data_tests.dir/data/generator_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_data_tests.dir/data/generator_test.cc.o.d"
  "/root/repo/tests/data/record_test.cc" "tests/CMakeFiles/emdbg_data_tests.dir/data/record_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_data_tests.dir/data/record_test.cc.o.d"
  "/root/repo/tests/data/table_io_test.cc" "tests/CMakeFiles/emdbg_data_tests.dir/data/table_io_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_data_tests.dir/data/table_io_test.cc.o.d"
  "/root/repo/tests/data/table_test.cc" "tests/CMakeFiles/emdbg_data_tests.dir/data/table_test.cc.o" "gcc" "tests/CMakeFiles/emdbg_data_tests.dir/data/table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/emdbg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
