file(REMOVE_RECURSE
  "CMakeFiles/emdbg_data_tests.dir/block/blocking_stats_test.cc.o"
  "CMakeFiles/emdbg_data_tests.dir/block/blocking_stats_test.cc.o.d"
  "CMakeFiles/emdbg_data_tests.dir/block/candidate_pairs_test.cc.o"
  "CMakeFiles/emdbg_data_tests.dir/block/candidate_pairs_test.cc.o.d"
  "CMakeFiles/emdbg_data_tests.dir/block/key_blocker_test.cc.o"
  "CMakeFiles/emdbg_data_tests.dir/block/key_blocker_test.cc.o.d"
  "CMakeFiles/emdbg_data_tests.dir/block/overlap_blocker_test.cc.o"
  "CMakeFiles/emdbg_data_tests.dir/block/overlap_blocker_test.cc.o.d"
  "CMakeFiles/emdbg_data_tests.dir/block/similarity_join_test.cc.o"
  "CMakeFiles/emdbg_data_tests.dir/block/similarity_join_test.cc.o.d"
  "CMakeFiles/emdbg_data_tests.dir/block/sorted_neighborhood_test.cc.o"
  "CMakeFiles/emdbg_data_tests.dir/block/sorted_neighborhood_test.cc.o.d"
  "CMakeFiles/emdbg_data_tests.dir/data/attr_kind_param_test.cc.o"
  "CMakeFiles/emdbg_data_tests.dir/data/attr_kind_param_test.cc.o.d"
  "CMakeFiles/emdbg_data_tests.dir/data/candidate_io_test.cc.o"
  "CMakeFiles/emdbg_data_tests.dir/data/candidate_io_test.cc.o.d"
  "CMakeFiles/emdbg_data_tests.dir/data/datasets_test.cc.o"
  "CMakeFiles/emdbg_data_tests.dir/data/datasets_test.cc.o.d"
  "CMakeFiles/emdbg_data_tests.dir/data/generator_test.cc.o"
  "CMakeFiles/emdbg_data_tests.dir/data/generator_test.cc.o.d"
  "CMakeFiles/emdbg_data_tests.dir/data/record_test.cc.o"
  "CMakeFiles/emdbg_data_tests.dir/data/record_test.cc.o.d"
  "CMakeFiles/emdbg_data_tests.dir/data/table_io_test.cc.o"
  "CMakeFiles/emdbg_data_tests.dir/data/table_io_test.cc.o.d"
  "CMakeFiles/emdbg_data_tests.dir/data/table_test.cc.o"
  "CMakeFiles/emdbg_data_tests.dir/data/table_test.cc.o.d"
  "emdbg_data_tests"
  "emdbg_data_tests.pdb"
  "emdbg_data_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdbg_data_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
