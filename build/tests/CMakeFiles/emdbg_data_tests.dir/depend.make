# Empty dependencies file for emdbg_data_tests.
# This may be replaced when dependencies are built.
