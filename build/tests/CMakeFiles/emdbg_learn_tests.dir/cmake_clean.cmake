file(REMOVE_RECURSE
  "CMakeFiles/emdbg_learn_tests.dir/learn/decision_tree_test.cc.o"
  "CMakeFiles/emdbg_learn_tests.dir/learn/decision_tree_test.cc.o.d"
  "CMakeFiles/emdbg_learn_tests.dir/learn/random_forest_test.cc.o"
  "CMakeFiles/emdbg_learn_tests.dir/learn/random_forest_test.cc.o.d"
  "CMakeFiles/emdbg_learn_tests.dir/learn/rule_extraction_test.cc.o"
  "CMakeFiles/emdbg_learn_tests.dir/learn/rule_extraction_test.cc.o.d"
  "emdbg_learn_tests"
  "emdbg_learn_tests.pdb"
  "emdbg_learn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emdbg_learn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
