# Empty dependencies file for emdbg_learn_tests.
# This may be replaced when dependencies are built.
