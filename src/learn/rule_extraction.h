#ifndef EMDBG_LEARN_RULE_EXTRACTION_H_
#define EMDBG_LEARN_RULE_EXTRACTION_H_

#include <vector>

#include "src/block/candidate_pairs.h"
#include "src/core/pair_context.h"
#include "src/core/rule.h"
#include "src/learn/random_forest.h"

namespace emdbg {

/// Controls which forest paths become matching rules.
struct RuleExtractionConfig {
  /// Minimum positive fraction at a leaf for its path to become a rule
  /// (only "positive rules" are kept — Sec. 3).
  double min_purity = 0.9;
  /// Minimum training samples at the leaf.
  size_t min_samples = 2;
  /// Drop duplicate rules (identical predicate sets).
  bool dedup = true;
};

/// Converts every positive leaf of every tree into a CNF rule: the
/// root-to-leaf path contributes one predicate per split —
/// "f <= t" (left branch) or "f > t" (right branch) — with repeated
/// features collapsed to their tightest bounds. `column_features[c]` maps
/// feature-matrix column c to its FeatureId.
///
/// This reproduces how the paper's 255-rule Products set was built from a
/// random forest (Sec. 7.1; cf. the mixed-direction rules of Fig. 4).
std::vector<Rule> ExtractRules(const RandomForest& forest,
                               const std::vector<FeatureId>& column_features,
                               const RuleExtractionConfig& config);

/// Computes the column-major feature matrix of `features` over `sample`
/// via `ctx` (training input for the forest).
FeatureMatrix BuildFeatureMatrix(PairContext& ctx,
                                 const CandidateSet& sample,
                                 const std::vector<FeatureId>& features);

}  // namespace emdbg

#endif  // EMDBG_LEARN_RULE_EXTRACTION_H_
