#include "src/learn/random_forest.h"

#include <cmath>

namespace emdbg {

namespace {

/// Shared training loop; when `diag` is non-null, tracks out-of-bag
/// score sums and counts per sample.
RandomForest TrainInternal(const FeatureMatrix& features,
                           const std::vector<char>& labels,
                           const ForestConfig& config,
                           std::vector<double>* oob_score_sum,
                           std::vector<size_t>* oob_count) {
  const bool track_oob = oob_score_sum != nullptr;
  RandomForest forest;
  if (features.empty() || features[0].empty()) return forest;
  const size_t num_samples = features[0].size();
  Rng rng(config.seed);

  TreeConfig tree_config = config.tree;
  tree_config.features_per_split =
      config.features_per_split != 0
          ? config.features_per_split
          : static_cast<size_t>(
                std::lround(std::sqrt(static_cast<double>(features.size()))));

  const size_t bootstrap =
      std::max<size_t>(1, static_cast<size_t>(config.bootstrap_fraction *
                                              static_cast<double>(
                                                  num_samples)));
  std::vector<char> in_bag;
  std::vector<float> row_values(features.size());
  std::vector<DecisionTree>& trees = forest.mutable_trees();
  for (size_t t = 0; t < config.num_trees; ++t) {
    std::vector<size_t> rows;
    rows.reserve(bootstrap);
    if (track_oob) in_bag.assign(num_samples, 0);
    for (size_t i = 0; i < bootstrap; ++i) {
      const size_t row = static_cast<size_t>(rng.Uniform(num_samples));
      rows.push_back(row);
      if (track_oob) in_bag[row] = 1;
    }
    trees.push_back(
        DecisionTree::Train(features, labels, rows, tree_config, rng));
    if (!track_oob) continue;
    const DecisionTree& tree = trees.back();
    for (size_t s = 0; s < num_samples; ++s) {
      if (in_bag[s]) continue;
      for (size_t f = 0; f < features.size(); ++f) {
        row_values[f] = features[f][s];
      }
      (*oob_score_sum)[s] += tree.Predict(row_values);
      ++(*oob_count)[s];
    }
  }
  return forest;
}

}  // namespace

RandomForest RandomForest::Train(const FeatureMatrix& features,
                                 const std::vector<char>& labels,
                                 const ForestConfig& config) {
  return TrainInternal(features, labels, config, nullptr, nullptr);
}

RandomForest::Diagnostics RandomForest::TrainWithDiagnostics(
    const FeatureMatrix& features, const std::vector<char>& labels,
    const ForestConfig& config) {
  Diagnostics diag;
  const size_t num_samples = features.empty() ? 0 : features[0].size();
  std::vector<double> oob_score_sum(num_samples, 0.0);
  std::vector<size_t> oob_count(num_samples, 0);
  diag.forest = TrainInternal(features, labels, config, &oob_score_sum,
                              &oob_count);
  size_t covered = 0;
  size_t correct = 0;
  for (size_t s = 0; s < num_samples; ++s) {
    if (oob_count[s] == 0) continue;
    ++covered;
    const bool predicted =
        oob_score_sum[s] / static_cast<double>(oob_count[s]) >= 0.5;
    if (predicted == (labels[s] != 0)) ++correct;
  }
  diag.oob_accuracy =
      covered == 0 ? -1.0
                   : static_cast<double>(correct) /
                         static_cast<double>(covered);
  diag.feature_importance =
      diag.forest.FeatureImportance(features.size());
  return diag;
}

std::vector<double> RandomForest::FeatureImportance(
    size_t num_features) const {
  std::vector<double> total(num_features, 0.0);
  if (trees_.empty()) return total;
  for (const DecisionTree& tree : trees_) {
    const std::vector<double> imp = tree.FeatureImportance(num_features);
    for (size_t f = 0; f < num_features; ++f) total[f] += imp[f];
  }
  double sum = 0.0;
  for (const double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

double RandomForest::Predict(const std::vector<float>& row) const {
  if (trees_.empty()) return 0.0;
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) sum += tree.Predict(row);
  return sum / static_cast<double>(trees_.size());
}

}  // namespace emdbg
