#ifndef EMDBG_LEARN_DECISION_TREE_H_
#define EMDBG_LEARN_DECISION_TREE_H_

#include <cstddef>
#include <vector>

#include "src/util/random.h"

namespace emdbg {

/// Column-major feature matrix: matrix[f][s] = value of feature column f
/// for sample s. All columns must have equal length.
using FeatureMatrix = std::vector<std::vector<float>>;

/// Training configuration for one CART-style tree (Gini impurity,
/// axis-aligned "value <= threshold" splits).
struct TreeConfig {
  size_t max_depth = 8;
  size_t min_samples_leaf = 2;
  size_t min_samples_split = 4;
  /// Feature columns considered per split; 0 = all (sqrt(n) is typical for
  /// forests and is set by RandomForest).
  size_t features_per_split = 0;
  /// Cap on candidate thresholds per feature per split (quantile-spaced);
  /// keeps training O(samples · features · kMaxThresholds).
  size_t max_thresholds = 32;
};

/// A binary classification tree over similarity features. The learner is
/// the substrate behind the paper's rule set: the authors trained a random
/// forest on a labeled sample and extracted its root-to-leaf paths as
/// matching rules (Sec. 7.1, citing [7]).
class DecisionTree {
 public:
  struct Node {
    /// Split: feature column and threshold; samples with
    /// value <= threshold go left. feature < 0 marks a leaf.
    int feature = -1;
    float threshold = 0.0f;
    int left = -1;
    int right = -1;
    /// Fraction of positive (match) training samples reaching this node.
    double positive_fraction = 0.0;
    size_t num_samples = 0;
    /// Sample-weighted Gini gain of this node's split (0 at leaves) —
    /// the raw material of mean-decrease-in-impurity importances.
    double weighted_gain = 0.0;
  };

  DecisionTree() = default;

  /// Trains on the rows listed in `rows` (bootstrap sampling is the
  /// forest's job). `labels[s]` is 1 for a match.
  static DecisionTree Train(const FeatureMatrix& features,
                            const std::vector<char>& labels,
                            const std::vector<size_t>& rows,
                            const TreeConfig& config, Rng& rng);

  bool empty() const { return nodes_.empty(); }
  const std::vector<Node>& nodes() const { return nodes_; }
  size_t num_leaves() const;

  /// Probability-like score: positive fraction of the leaf the sample
  /// falls into. `row[f]` must supply every feature column used by the
  /// tree.
  double Predict(const std::vector<float>& row) const;

  /// Mean-decrease-in-impurity importance per feature column (length
  /// `num_features`, sums to 1 unless the tree has no splits).
  std::vector<double> FeatureImportance(size_t num_features) const;

 private:
  int Build(const FeatureMatrix& features, const std::vector<char>& labels,
            std::vector<size_t>& rows, size_t begin, size_t end,
            size_t depth, const TreeConfig& config, Rng& rng);

  std::vector<Node> nodes_;
};

}  // namespace emdbg

#endif  // EMDBG_LEARN_DECISION_TREE_H_
