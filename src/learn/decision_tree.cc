#include "src/learn/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace emdbg {

namespace {

double Gini(size_t positives, size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(positives) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

size_t DecisionTree::num_leaves() const {
  size_t n = 0;
  for (const Node& node : nodes_) {
    if (node.feature < 0) ++n;
  }
  return n;
}

DecisionTree DecisionTree::Train(const FeatureMatrix& features,
                                 const std::vector<char>& labels,
                                 const std::vector<size_t>& rows,
                                 const TreeConfig& config, Rng& rng) {
  DecisionTree tree;
  if (rows.empty() || features.empty()) return tree;
  std::vector<size_t> work = rows;
  tree.Build(features, labels, work, 0, work.size(), 0, config, rng);
  return tree;
}

int DecisionTree::Build(const FeatureMatrix& features,
                        const std::vector<char>& labels,
                        std::vector<size_t>& rows, size_t begin, size_t end,
                        size_t depth, const TreeConfig& config, Rng& rng) {
  const size_t n = end - begin;
  size_t positives = 0;
  for (size_t i = begin; i < end; ++i) positives += labels[rows[i]] ? 1 : 0;

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_index].num_samples = n;
  nodes_[node_index].positive_fraction =
      n == 0 ? 0.0 : static_cast<double>(positives) / static_cast<double>(n);

  const bool pure = positives == 0 || positives == n;
  if (pure || depth >= config.max_depth || n < config.min_samples_split) {
    return node_index;  // leaf
  }

  // Feature subset for this split.
  std::vector<size_t> candidate_features;
  if (config.features_per_split == 0 ||
      config.features_per_split >= features.size()) {
    candidate_features.resize(features.size());
    std::iota(candidate_features.begin(), candidate_features.end(),
              size_t{0});
  } else {
    candidate_features =
        rng.SampleIndices(features.size(), config.features_per_split);
  }

  const double parent_gini = Gini(positives, n);
  double best_gain = 1e-12;
  int best_feature = -1;
  float best_threshold = 0.0f;

  std::vector<float> values;
  values.reserve(n);
  for (const size_t f : candidate_features) {
    const std::vector<float>& col = features[f];
    values.clear();
    for (size_t i = begin; i < end; ++i) values.push_back(col[rows[i]]);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (values.size() < 2) continue;  // constant column

    // Candidate thresholds: midpoints between consecutive *distinct*
    // values, subsampled evenly when there are more boundaries than
    // max_thresholds. Using distinct-value boundaries (not raw quantile
    // positions) matters for discrete features, where quantiles rarely
    // land on a transition.
    const size_t num_boundaries = values.size() - 1;
    const size_t num_thr = std::min(config.max_thresholds, num_boundaries);
    for (size_t t = 0; t < num_thr; ++t) {
      const size_t j = t * num_boundaries / num_thr;
      const float thr = (values[j] + values[j + 1]) / 2.0f;

      size_t left_n = 0;
      size_t left_pos = 0;
      for (size_t i = begin; i < end; ++i) {
        if (col[rows[i]] <= thr) {
          ++left_n;
          if (labels[rows[i]]) ++left_pos;
        }
      }
      const size_t right_n = n - left_n;
      if (left_n < config.min_samples_leaf ||
          right_n < config.min_samples_leaf) {
        continue;
      }
      const size_t right_pos = positives - left_pos;
      const double child_gini =
          (static_cast<double>(left_n) * Gini(left_pos, left_n) +
           static_cast<double>(right_n) * Gini(right_pos, right_n)) /
          static_cast<double>(n);
      const double gain = parent_gini - child_gini;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = thr;
      }
    }
  }

  if (best_feature < 0) return node_index;  // no useful split → leaf

  // Partition rows in place: left = value <= threshold.
  const std::vector<float>& col = features[static_cast<size_t>(best_feature)];
  const auto mid_it = std::stable_partition(
      rows.begin() + static_cast<ptrdiff_t>(begin),
      rows.begin() + static_cast<ptrdiff_t>(end),
      [&](size_t r) { return col[r] <= best_threshold; });
  const size_t mid =
      static_cast<size_t>(mid_it - rows.begin());

  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  nodes_[node_index].weighted_gain = best_gain * static_cast<double>(n);
  const int left =
      Build(features, labels, rows, begin, mid, depth + 1, config, rng);
  nodes_[node_index].left = left;
  const int right =
      Build(features, labels, rows, mid, end, depth + 1, config, rng);
  nodes_[node_index].right = right;
  return node_index;
}

std::vector<double> DecisionTree::FeatureImportance(
    size_t num_features) const {
  std::vector<double> importance(num_features, 0.0);
  double total = 0.0;
  for (const Node& node : nodes_) {
    if (node.feature < 0) continue;
    importance[static_cast<size_t>(node.feature)] += node.weighted_gain;
    total += node.weighted_gain;
  }
  if (total > 0.0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

double DecisionTree::Predict(const std::vector<float>& row) const {
  if (nodes_.empty()) return 0.0;
  int idx = 0;
  while (nodes_[static_cast<size_t>(idx)].feature >= 0) {
    const Node& node = nodes_[static_cast<size_t>(idx)];
    idx = row[static_cast<size_t>(node.feature)] <= node.threshold
              ? node.left
              : node.right;
  }
  return nodes_[static_cast<size_t>(idx)].positive_fraction;
}

}  // namespace emdbg
