#ifndef EMDBG_LEARN_RANDOM_FOREST_H_
#define EMDBG_LEARN_RANDOM_FOREST_H_

#include <vector>

#include "src/learn/decision_tree.h"

namespace emdbg {

/// Forest configuration: bagged trees with per-split feature subsampling.
struct ForestConfig {
  size_t num_trees = 30;
  TreeConfig tree;
  /// Features per split; 0 = sqrt(#features), the standard default.
  size_t features_per_split = 0;
  /// Bootstrap sample size as a fraction of the training set.
  double bootstrap_fraction = 1.0;
  uint64_t seed = 11;
};

/// A bagging ensemble of DecisionTrees — the model class from which the
/// paper's rule set was extracted (Sec. 7.1: "we converted the random
/// forest to a set of positive rules").
class RandomForest {
 public:
  RandomForest() = default;

  static RandomForest Train(const FeatureMatrix& features,
                            const std::vector<char>& labels,
                            const ForestConfig& config);

  /// Trains with diagnostics (see ForestDiagnostics below).
  struct Diagnostics;
  static Diagnostics TrainWithDiagnostics(const FeatureMatrix& features,
                                          const std::vector<char>& labels,
                                          const ForestConfig& config);

  /// Average of per-tree mean-decrease-in-impurity importances.
  std::vector<double> FeatureImportance(size_t num_features) const;

  const std::vector<DecisionTree>& trees() const { return trees_; }
  size_t num_trees() const { return trees_.size(); }

  /// Mean of tree scores in [0, 1].
  double Predict(const std::vector<float>& row) const;

  /// Predict >= 0.5.
  bool Classify(const std::vector<float>& row) const {
    return Predict(row) >= 0.5;
  }

  /// For the training loop only.
  std::vector<DecisionTree>& mutable_trees() { return trees_; }

 private:
  std::vector<DecisionTree> trees_;
};

/// Training diagnostics: out-of-bag accuracy (each sample scored only by
/// trees whose bootstrap missed it — an unbiased generalization estimate
/// without a holdout) and normalized mean-decrease-in-impurity feature
/// importances.
struct RandomForest::Diagnostics {
  RandomForest forest;
  /// Fraction of OOB-covered samples classified correctly; -1 when no
  /// sample was out of bag (e.g. bootstrap covered every row).
  double oob_accuracy = -1.0;
  /// Per feature column, sums to 1 when any split exists.
  std::vector<double> feature_importance;
};

}  // namespace emdbg

#endif  // EMDBG_LEARN_RANDOM_FOREST_H_
