#include "src/learn/rule_extraction.h"

#include <algorithm>
#include <map>

namespace emdbg {

namespace {

/// Path constraint on one feature column: an open interval
/// (lower, upper]-style bound pair accumulated along the path.
struct Bounds {
  bool has_lower = false;
  float lower = 0.0f;  // value > lower
  bool has_upper = false;
  float upper = 0.0f;  // value <= upper
};

Rule PathToRule(const std::map<int, Bounds>& path,
                const std::vector<FeatureId>& column_features) {
  Rule rule;
  for (const auto& [column, bounds] : path) {
    const FeatureId feature = column_features[static_cast<size_t>(column)];
    if (bounds.has_lower) {
      Predicate p;
      p.feature = feature;
      p.op = CompareOp::kGt;
      p.threshold = static_cast<double>(bounds.lower);
      rule.AddPredicate(p);
    }
    if (bounds.has_upper) {
      Predicate p;
      p.feature = feature;
      p.op = CompareOp::kLe;
      p.threshold = static_cast<double>(bounds.upper);
      rule.AddPredicate(p);
    }
  }
  return rule;
}

void Walk(const DecisionTree& tree, int node_index,
          std::map<int, Bounds>& path,
          const std::vector<FeatureId>& column_features,
          const RuleExtractionConfig& config, std::vector<Rule>& out) {
  const DecisionTree::Node& node =
      tree.nodes()[static_cast<size_t>(node_index)];
  if (node.feature < 0) {
    if (node.positive_fraction >= config.min_purity &&
        node.num_samples >= config.min_samples && !path.empty()) {
      out.push_back(PathToRule(path, column_features));
    }
    return;
  }
  // Left: value <= threshold → tightens the upper bound.
  {
    Bounds saved = path[node.feature];
    Bounds& b = path[node.feature];
    if (!b.has_upper || node.threshold < b.upper) {
      b.has_upper = true;
      b.upper = node.threshold;
    }
    Walk(tree, node.left, path, column_features, config, out);
    path[node.feature] = saved;
  }
  // Right: value > threshold → tightens the lower bound.
  {
    Bounds saved = path[node.feature];
    Bounds& b = path[node.feature];
    if (!b.has_lower || node.threshold > b.lower) {
      b.has_lower = true;
      b.lower = node.threshold;
    }
    Walk(tree, node.right, path, column_features, config, out);
    path[node.feature] = saved;
  }
}

/// Canonical key of a rule for dedup: sorted (feature, op, threshold).
std::vector<std::tuple<FeatureId, int, double>> RuleKey(const Rule& r) {
  std::vector<std::tuple<FeatureId, int, double>> key;
  key.reserve(r.size());
  for (const Predicate& p : r.predicates()) {
    key.emplace_back(p.feature, static_cast<int>(p.op), p.threshold);
  }
  std::sort(key.begin(), key.end());
  return key;
}

}  // namespace

std::vector<Rule> ExtractRules(const RandomForest& forest,
                               const std::vector<FeatureId>& column_features,
                               const RuleExtractionConfig& config) {
  std::vector<Rule> rules;
  for (const DecisionTree& tree : forest.trees()) {
    if (tree.empty()) continue;
    std::map<int, Bounds> path;
    Walk(tree, 0, path, column_features, config, rules);
  }
  if (config.dedup) {
    std::vector<Rule> unique;
    std::vector<std::vector<std::tuple<FeatureId, int, double>>> seen;
    for (Rule& r : rules) {
      auto key = RuleKey(r);
      if (std::find(seen.begin(), seen.end(), key) == seen.end()) {
        seen.push_back(std::move(key));
        unique.push_back(std::move(r));
      }
    }
    rules = std::move(unique);
  }
  return rules;
}

FeatureMatrix BuildFeatureMatrix(PairContext& ctx,
                                 const CandidateSet& sample,
                                 const std::vector<FeatureId>& features) {
  FeatureMatrix matrix(features.size());
  for (size_t c = 0; c < features.size(); ++c) {
    matrix[c].reserve(sample.size());
    for (size_t s = 0; s < sample.size(); ++s) {
      matrix[c].push_back(
          static_cast<float>(ctx.ComputeFeature(features[c], sample.pair(s))));
    }
  }
  return matrix;
}

}  // namespace emdbg
