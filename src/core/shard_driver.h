#ifndef EMDBG_CORE_SHARD_DRIVER_H_
#define EMDBG_CORE_SHARD_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/block/external_sort.h"
#include "src/core/cost_model.h"
#include "src/core/match_state.h"
#include "src/core/matcher.h"
#include "src/util/memory_budget.h"
#include "src/util/thread_pool.h"

namespace emdbg {

/// Shard-streaming execution: matches candidate sets whose memo footprint
/// (pairs × features × 4 bytes) exceeds RAM by cutting the pair sequence
/// into fixed-size shards and running each through the columnar block
/// engine with a shard-sized MatchState. The full memo never exists; at
/// any instant the driver holds at most two shards of state (the one
/// being evaluated and the one being spilled), so peak memory is set by
/// `Options::shard_pairs` — or derived from the MemoryBudget — not by the
/// candidate count.
///
/// Pipeline per shard: slice pairs → BlockEvaluator (via BlockMatcher or
/// ParallelMemoMatcher when a pool is given) fills a shard MatchState →
/// match bits merge into the global bitmap at the shard's offset → the
/// state spills to `spill_dir/shard-<i>.state` (state_io v2 container,
/// CRC-checked) on a background IO thread while the next shard evaluates.
///
/// Bit-identity: shard boundaries are multiples of 64, so every output
/// bitmap word belongs to exactly one shard and merging is pure word ORs.
/// The memo is pair-major with no cross-pair sharing, and the block
/// engine performs exactly the serial matcher's (pair, rule, predicate)
/// evaluations, so the merged match bitmap, the concatenated decision
/// bitmaps, and the summed MatchStats counters are bit-identical to one
/// monolithic MemoMatcher::RunWithState over the same pairs (elapsed_ms
/// excluded — it is wall-clock).
///
/// Cancellation stops between (or, via the inner engine, inside) shards:
/// the result is partial with `evaluated` covering completed work, like
/// every other matcher. Spill IO failures ("spill.write" fault site) and
/// budget denials surface as partial results with IoError /
/// ResourceExhausted status.
///
/// Incremental re-match: after a Run with `keep_state` (default), edits
/// that dirty a subset of pairs re-evaluate only the shards containing a
/// dirty pair. Each dirty shard's state reloads from disk with its memo
/// warm — re-evaluation is pure memo probes for unchanged features — and
/// the global match bitmap is patched in place. Clean shards are never
/// touched, so an edit's cost scales with the dirty fraction, extending
/// the paper's Sec. 6 materialization to out-of-core scale.
class ShardedMatchDriver {
 public:
  struct Options {
    /// Pairs per shard; 0 = derive from `budget` and the feature-catalog
    /// width (AutoShardPairs). Rounded up to a multiple of 64.
    size_t shard_pairs = 0;
    /// Directory for spilled shard state (must exist). Required when
    /// `keep_state` is true.
    std::string spill_dir;
    /// Accountant for shard state, scratch and spill buffers; also the
    /// default source of the auto shard size. May be null (unbudgeted).
    MemoryBudget* budget = nullptr;
    /// Borrowed pool: shards evaluate with the parallel block engine
    /// instead of the serial one. Null = serial. Results are identical.
    ThreadPool* pool = nullptr;
    /// Inner block size (see BlockMatcher::Options); 0 = auto.
    size_t block_size = 0;
    const CostModel* cost_model = nullptr;
    /// Spill each shard's MatchState for later Rematch. When false, Run
    /// keeps only the match bits and shard state is discarded as each
    /// shard completes (Rematch then recomputes from scratch).
    bool keep_state = true;
    /// Overlap shard evaluation with the previous shard's spill IO.
    bool double_buffer = true;
  };

  struct ShardInfo {
    size_t begin = 0;  ///< first pair index (inclusive)
    size_t end = 0;    ///< past-the-end pair index
    std::string state_path;  ///< spilled state; empty when not kept
  };

  explicit ShardedMatchDriver(Options options);
  /// Out-of-line: joins any in-flight spill thread (SpillJob is opaque
  /// here).
  ~ShardedMatchDriver();

  /// Matches `pairs` shard by shard. The CandidateSet itself is in RAM
  /// (8 bytes/pair); what this avoids materializing is the
  /// O(pairs × features) memo and bitmap state. See RunStream for fully
  /// streamed pairs.
  MatchResult Run(const MatchingFunction& fn, const CandidateSet& pairs,
                  PairContext& ctx, const RunControl& control = RunControl());

  /// Matches a streamed candidate sequence (an ExternalPairSorter after
  /// Finish()): pairs are pulled one shard at a time, so not even the
  /// pair list is ever whole in memory. The stream must be sorted and
  /// deduped (the sorter guarantees it) — pair position defines bitmap
  /// indexing, exactly as with a materialized CandidateSet.
  MatchResult RunStream(const MatchingFunction& fn,
                        ExternalPairSorter& stream, PairContext& ctx,
                        const RunControl& control = RunControl());

  /// Re-evaluates only the shards containing a set bit of `dirty_pairs`
  /// (sized like the last run's pair sequence), reusing their spilled
  /// memos. Requires a prior complete Run/RunStream with `keep_state`.
  /// `pairs` must be the same sequence the last run evaluated. The
  /// returned result holds the full updated match bitmap; its stats
  /// count only the re-evaluated shards' work.
  MatchResult Rematch(const MatchingFunction& fn, const CandidateSet& pairs,
                      PairContext& ctx, const Bitmap& dirty_pairs,
                      const RunControl& control = RunControl());

  /// Shard layout of the last Run/RunStream.
  const std::vector<ShardInfo>& shards() const { return shards_; }
  /// Match bitmap of the last run (kept for Rematch patching).
  const Bitmap& matches() const { return matches_; }
  /// Total bytes written to shard state files so far.
  uint64_t spilled_bytes() const { return spilled_bytes_; }
  /// Resolved pairs-per-shard (after auto sizing; 0 before first run).
  size_t shard_pairs() const { return shard_pairs_; }

  /// Derives pairs-per-shard from a budget: the shard's memo slice plus
  /// its serialize-for-spill copy and the in-flight double-buffered shard
  /// must all fit comfortably, so the shard memo gets ~1/4 of the limit.
  /// Unbudgeted (null or unlimited) → 1<<18 pairs. Always a multiple of
  /// 64 in [64, 1<<22].
  static size_t AutoShardPairs(const MemoryBudget* budget,
                               size_t num_features);

  /// Loads the spilled state of shard `i` from the last run (differential
  /// tests, inspection). FailedPrecondition when not kept.
  Result<MatchState> LoadShardState(size_t i) const;

 private:
  struct SpillJob;

  /// Evaluates one shard and merges its results; used by all run modes.
  /// `global_offset` is the shard's first pair index. On success appends
  /// to shards_.
  Status ProcessShard(const MatchingFunction& fn,
                      std::vector<PairId> shard_pairs,
                      size_t global_offset, PairContext& ctx,
                      const RunControl& control, MatchResult* out,
                      MatchStats* stats);

  MatchResult RunShardsFromSet(const MatchingFunction& fn,
                               const CandidateSet& pairs, PairContext& ctx,
                               const RunControl& control);

  /// Waits for the in-flight spill (if any) and surfaces its status.
  Status DrainSpill();
  /// Spills `state` for shard index `shard` (synchronously or on the IO
  /// thread, per Options::double_buffer).
  Status SpillState(MatchState state, size_t shard);

  std::string ShardStatePath(size_t shard) const;

  Options options_;
  size_t shard_pairs_ = 0;
  std::vector<ShardInfo> shards_;
  Bitmap matches_;
  uint64_t spilled_bytes_ = 0;
  bool last_run_complete_ = false;

  std::unique_ptr<SpillJob> inflight_;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_SHARD_DRIVER_H_
