#ifndef EMDBG_CORE_EXPLAIN_H_
#define EMDBG_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "src/core/matching_function.h"
#include "src/core/pair_context.h"

namespace emdbg {

/// Debugging aids for the analyst loop (Fig. 1): explain exactly how the
/// matching function decided a candidate pair, and find "near misses" —
/// the rules that almost fired and the minimal threshold changes that
/// would flip them. This is the inspect half of the paper's
/// refine-run-inspect cycle.

/// Evaluation record of one predicate on one pair.
struct PredicateTrace {
  Predicate predicate;
  double value = 0.0;
  bool passed = false;
};

/// Evaluation record of one rule on one pair. With early-exit semantics
/// the trace stops at the first failing predicate; `fired` means every
/// predicate passed.
struct RuleTrace {
  RuleId rule_id = kInvalidRule;
  std::string rule_name;
  bool fired = false;
  std::vector<PredicateTrace> predicates;
};

/// Full decision trace of one candidate pair.
struct MatchExplanation {
  PairId pair;
  bool matched = false;
  /// Id of the first rule that fired; kInvalidRule when unmatched.
  RuleId responsible_rule = kInvalidRule;
  std::vector<RuleTrace> rules;

  /// Multi-line human-readable rendering.
  std::string ToString(const FeatureCatalog& catalog) const;
};

/// Evaluates every rule of `fn` on `pair` (no cross-rule early exit, so
/// the analyst sees all rules; within a rule the trace stops at the first
/// failure, matching production evaluation order).
MatchExplanation ExplainPair(const MatchingFunction& fn, PairId pair,
                             PairContext& ctx);

/// A rule that did not fire, with the cheapest threshold fix that would
/// make it fire for this pair.
struct NearMiss {
  RuleId rule_id = kInvalidRule;
  std::string rule_name;
  /// Predicates of the rule that fail for this pair.
  size_t failing_predicates = 0;
  /// Total |threshold - value| over failing predicates — how far the rule
  /// is from firing.
  double total_gap = 0.0;
  /// The single failing predicate with the smallest gap, and its value.
  Predicate closest_predicate;
  double closest_value = 0.0;
};

/// Rules ranked by how close they came to matching `pair`: fewest failing
/// predicates first, then smallest total threshold gap. Rules that fired
/// are excluded. Returns at most `top_k` entries.
std::vector<NearMiss> FindNearMisses(const MatchingFunction& fn,
                                     PairId pair, PairContext& ctx,
                                     size_t top_k = 3);

/// Formats a near-miss list.
std::string NearMissesToString(const std::vector<NearMiss>& misses,
                               const FeatureCatalog& catalog);

}  // namespace emdbg

#endif  // EMDBG_CORE_EXPLAIN_H_
