#include "src/core/early_exit_matcher.h"

#include "src/util/stopwatch.h"

namespace emdbg {

MatchResult EarlyExitMatcher::Run(const MatchingFunction& fn,
                                  const CandidateSet& pairs,
                                  PairContext& ctx,
                                  const RunControl& control) {
  Stopwatch timer;
  StopCheck stop(control);
  MatchResult result;
  result.matches = Bitmap(pairs.size());
  result.MarkComplete(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (stop.ShouldStop()) {
      result.MarkPartialPrefix(i, pairs.size(), stop.Reason());
      break;
    }
    const PairId pair = pairs.pair(i);
    for (const Rule& rule : fn.rules()) {
      if (rule.empty()) continue;
      ++result.stats.rule_evaluations;
      bool rule_true = true;
      for (const Predicate& p : rule.predicates()) {
        ++result.stats.predicate_evaluations;
        ++result.stats.feature_computations;
        const double value = ctx.ComputeFeature(p.feature, pair);
        if (!p.Test(value)) {
          rule_true = false;
          break;  // early exit: rule is false
        }
      }
      if (rule_true) {
        result.matches.Set(i);
        break;  // early exit: pair is a match
      }
    }
  }
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace emdbg
