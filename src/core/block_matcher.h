#ifndef EMDBG_CORE_BLOCK_MATCHER_H_
#define EMDBG_CORE_BLOCK_MATCHER_H_

#include <cstdint>
#include <vector>

#include "src/core/cost_model.h"
#include "src/core/match_state.h"
#include "src/core/matcher.h"

namespace emdbg {

/// The columnar (batch-at-a-time) evaluation engine behind BlockMatcher,
/// ParallelMemoMatcher's block mode, and the incremental engine's
/// gathered-block re-evaluation.
///
/// PR 3 made the similarity kernels 13–46x faster, but end-to-end
/// matching moved only 1.14–1.52x: Algorithm 4's per-pair loop now spends
/// its time on orchestration — a virtual memo probe per (pair, feature),
/// per-pair predicate dispatch, branchy rule short-circuiting — not on
/// similarity computation. This engine restructures the hot loop
/// MonetDB/X100-style, from *per pair, all features* to *per feature,
/// block of pairs*:
///
///   for each block of N pairs (N ≈ 1–4K, sized so the block's score
///   columns fit in L2):
///     undecided ← all pairs of the block
///     for each rule r (DNF order):
///       active ← undecided
///       for each predicate p of r (CNF order):
///         gather p's feature column from the memo (once per block),
///         batch-compute the missing lanes (PairContext::
///         ComputeFeatureBlock — kernel resolution hoisted out of the
///         pair loop), threshold-compare the span into a pass mask, and
///         combine: active &= pass
///       matches |= active; undecided &= ~active   // bitmap DNF
///     scatter the computed columns back to the memo (DenseMemo::
///     FillSpan), one cache-blocked bulk store per touched feature
///
/// Early exit survives at block granularity: a rule or predicate whose
/// `active` mask drains to zero is skipped for the rest of the block, and
/// feature computation is always masked to exactly the lanes the serial
/// matcher would have computed. That masking is what makes the result
/// **bit-identical** to the serial MemoMatcher — same match bitmap, same
/// decision bitmaps, same MatchStats counters — because the set of
/// (pair, rule, predicate) evaluations, memo probes, and feature
/// computations is the same set the per-pair loop performs, merely
/// reordered across pairs of one block (pairs are independent, Sec. 7.5).
///
/// Stats equivalence assumes the memo's contents do not change underneath
/// the run (true for DenseMemo; an evicting ShardedMemo under budget
/// pressure can shift hit counts — for such memos only the match bits are
/// guaranteed, exactly as with the parallel matcher, whose hit counts
/// already depend on eviction timing).
class BlockEvaluator {
 public:
  /// Worker-local buffers: one float column + presence/dirty masks per
  /// used feature, plus the block's undecided/active/pass masks. One
  /// Scratch per worker; InitScratch sizes it.
  struct Scratch {
    std::vector<float> cols;
    std::vector<uint64_t> bits;
    std::vector<uint8_t> touched;
    std::vector<uint8_t> used;    ///< slots referenced by live predicates
    std::vector<uint64_t> masks;  ///< per-slot accumulator for transpose
    /// Distinct slots the previous block's predicates actually read —
    /// the predictor for the transpose-vs-lazy-gather decision (blocks
    /// of one run are statistically alike). SIZE_MAX = no block yet.
    size_t last_used = static_cast<size_t>(-1);
  };

  /// `memo` may be null: the engine then evaluates with block-local
  /// columns only (the Run() fast path — features still computed at most
  /// once per pair, O(block × features) scratch instead of an
  /// O(pairs × features) matrix). `state` may be null: decision bitmaps
  /// are then not recorded. Both must outlive the evaluator; `state`'s
  /// bitmaps must be pre-materialized by the caller (serial phase).
  /// `block_size` is rounded up to a multiple of 64 (bitmap-word
  /// alignment: two workers evaluating different blocks never share a
  /// word of any output bitmap).
  BlockEvaluator(const MatchingFunction& fn, const CandidateSet& pairs,
                 PairContext& ctx, Memo* memo, MatchState* state,
                 size_t block_size);

  size_t block_size() const { return block_size_; }
  size_t num_blocks() const {
    return (num_pairs_ + block_size_ - 1) / block_size_;
  }
  size_t num_pairs() const { return num_pairs_; }

  /// Bytes one Scratch will hold once initialized (for budget
  /// reservations before workers start).
  size_t ScratchBytes() const;

  /// Sizes `s` for this evaluator (idempotent; reuses capacity).
  void InitScratch(Scratch& s) const;

  /// Evaluates block `b` (pairs [b*block_size, min(n, (b+1)*block_size))),
  /// ORing match bits into `matches`, accumulating counters into `stats`,
  /// and recording decision bitmaps into the attached MatchState.
  /// Concurrent calls on distinct blocks with distinct Scratches are safe
  /// (distinct memo rows, distinct bitmap words).
  void EvalBlock(size_t b, Bitmap& matches, MatchStats& stats,
                 Scratch& s) const;

 private:
  struct PredSlot {
    uint32_t slot;      ///< feature column index in Scratch
    FeatureId feature;
    CompareOp op;
    double threshold;
    Bitmap* pred_false;  ///< null when no state is attached
  };
  struct RuleSlot {
    std::vector<PredSlot> preds;
    Bitmap* rule_true;  ///< null when no state is attached
  };

  void GatherSlot(uint32_t slot, FeatureId feature, size_t base, size_t nb,
                  Scratch& s) const;

  /// Dense-memo fast path: gathers *every* slot's column for the block in
  /// one streaming pass over the memo's pair-major rows (a cache-blocked
  /// transpose), instead of one strided walk per slot. Each memo cache
  /// line is read once per block rather than once per feature, which is
  /// what makes warm (all-memoized) runs faster than the per-pair loop.
  void TransposeBlock(size_t base, size_t nb, Scratch& s) const;

  const CandidateSet& pairs_;
  PairContext& ctx_;
  Memo* memo_;          ///< null = block-local evaluation only
  DenseMemo* dense_;    ///< memo_ downcast when it is dense (fast path)
  size_t num_pairs_;
  size_t block_size_;   ///< multiple of 64
  size_t words_;        ///< mask words per block = block_size_ / 64
  std::vector<FeatureId> slot_features_;
  std::vector<RuleSlot> rules_;
};

/// Serial columnar DM+EE (Algorithm 4 over blocks — see BlockEvaluator).
/// Results are bit-identical to MemoMatcher with default options; the
/// check-cache-first reordering (Sec. 5.4.3) is intentionally not offered
/// in block mode, because bulk gathers already collapse the per-probe
/// lookup cost δ that reordering exists to exploit.
///
/// Cancellation is checked once per *block* (not per pair): a stopped run
/// returns a partial result whose evaluated prefix ends on a block
/// boundary.
class BlockMatcher final : public Matcher {
 public:
  struct Options {
    /// Pairs per block; 0 = auto (AutoBlockSize: fit the block's score
    /// columns in L2, refined by the cost model when one is supplied).
    /// Explicit values are rounded up to a multiple of 64.
    size_t block_size = 0;
    /// Optional measured cost model for the auto block size. Borrowed;
    /// may be null.
    const CostModel* cost_model = nullptr;
    /// When set, the block scratch (feature columns + masks) is reserved
    /// from this budget before evaluation; a denied reservation yields a
    /// clean ResourceExhausted result with zero pairs evaluated.
    MemoryBudget* budget = nullptr;
  };

  BlockMatcher() : BlockMatcher(Options{}) {}
  explicit BlockMatcher(Options options) : options_(options) {}

  using Matcher::Run;

  /// Runs with block-local feature columns only — no O(pairs × features)
  /// memo is allocated (the columnar equivalent of MemoMatcher::Run's
  /// private discarded memo; same stats, a fraction of the memory).
  MatchResult Run(const MatchingFunction& fn, const CandidateSet& pairs,
                  PairContext& ctx, const RunControl& control) override;

  /// Runs against a caller-supplied memo whose prior contents are reused
  /// and which receives every newly computed value (bulk scatter).
  MatchResult RunWithMemo(const MatchingFunction& fn,
                          const CandidateSet& pairs, PairContext& ctx,
                          Memo& memo,
                          const RunControl& control = RunControl());

  /// Columnar equivalent of MemoMatcher::RunWithState: reuses `state`'s
  /// memo and records per-rule true / per-predicate false bitmaps via
  /// word-level span ORs. Output state matches the serial matcher's.
  MatchResult RunWithState(const MatchingFunction& fn,
                           const CandidateSet& pairs, PairContext& ctx,
                           MatchState& state,
                           const RunControl& control = RunControl());

  const char* name() const override { return "DM+EE(block)"; }

  /// Cost-model-driven block-size default: fits the per-block feature
  /// columns (4 bytes × used features) into a ~256 KB L2 working set,
  /// clamped to [256, 4096]. A supplied model refines the choice:
  /// expensive measured features shrink the block (compute dominates;
  /// smaller blocks tighten cancellation latency), very cheap ones grow
  /// it (orchestration dominates; amortize harder). Always a multiple
  /// of 64.
  static size_t AutoBlockSize(const MatchingFunction& fn,
                              const CostModel* model);

  /// The block size a given Options would use for `fn`.
  static size_t ResolveBlockSize(const Options& options,
                                 const MatchingFunction& fn);

 private:
  MatchResult RunImpl(const MatchingFunction& fn, const CandidateSet& pairs,
                      PairContext& ctx, MatchState* state, Memo* memo,
                      const RunControl& control);

  Options options_;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_BLOCK_MATCHER_H_
