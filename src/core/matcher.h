#ifndef EMDBG_CORE_MATCHER_H_
#define EMDBG_CORE_MATCHER_H_

#include "src/block/candidate_pairs.h"
#include "src/core/match_result.h"
#include "src/core/matching_function.h"
#include "src/core/pair_context.h"
#include "src/util/cancellation.h"

namespace emdbg {

/// Interface of a batch matcher: applies a matching function to every
/// candidate pair. Implementations correspond to Algorithms 1-4 of the
/// paper (rudimentary, precomputation, early exit, early exit + dynamic
/// memoing).
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Evaluates `fn` over all pairs, checking `control` once per pair. A
  /// cancelled or deadline-exceeded run returns a partial MatchResult
  /// (see match_result.h) instead of blocking until completion. The
  /// context supplies feature computation (and its token caches persist
  /// across calls).
  virtual MatchResult Run(const MatchingFunction& fn,
                          const CandidateSet& pairs, PairContext& ctx,
                          const RunControl& control) = 0;

  /// Uncontrolled convenience overload: runs to completion.
  MatchResult Run(const MatchingFunction& fn, const CandidateSet& pairs,
                  PairContext& ctx) {
    return Run(fn, pairs, ctx, RunControl());
  }

  /// Short name for reports ("R", "EE", "DM+EE", ...).
  virtual const char* name() const = 0;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_MATCHER_H_
