#ifndef EMDBG_CORE_ADAPTIVE_MATCHER_H_
#define EMDBG_CORE_ADAPTIVE_MATCHER_H_

#include "src/core/cost_model.h"
#include "src/core/matcher.h"

namespace emdbg {

/// The dynamic-reordering idea the paper raises and leaves unimplemented
/// (Sec. 5.4.3): "one could further consider dynamically adjusting the
/// order of the remaining rules based on the current content of the memo.
/// This incurs nontrivial overhead, though."
///
/// This matcher implements it so the conjecture can be measured
/// (bench_ablation_adaptive): for every candidate pair it re-scores each
/// rule with the Algorithm 5 metric, but with the pair's *actual* memo
/// contents in place of the α probabilities (a feature is either memoized
/// or not — α ∈ {0, 1}), then evaluates rules in ascending score order
/// with early exit and check-cache-first predicates.
///
/// Overhead per pair: O(rules · predicates) scoring + an O(rules log
/// rules) sort, paid before any similarity computation.
class AdaptiveMemoMatcher final : public Matcher {
 public:
  /// `model` supplies per-feature costs and the precomputed prefix
  /// selectivities; it must cover the features of the functions this
  /// matcher runs (EnsureFeature/EstimateForFunction).
  explicit AdaptiveMemoMatcher(const CostModel& model) : model_(model) {}

  using Matcher::Run;
  MatchResult Run(const MatchingFunction& fn, const CandidateSet& pairs,
                  PairContext& ctx, const RunControl& control) override;

  const char* name() const override { return "DM+EE(adaptive)"; }

 private:
  const CostModel& model_;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_ADAPTIVE_MATCHER_H_
