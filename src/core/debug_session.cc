#include "src/core/debug_session.h"

#include "src/core/memo_matcher.h"
#include "src/core/sampler.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

namespace emdbg {

DebugSession::DebugSession(Table a, Table b, CandidateSet pairs,
                           Options options)
    : a_(std::move(a)),
      b_(std::move(b)),
      pairs_(std::move(pairs)),
      options_(options),
      catalog_(a_.schema(), b_.schema()),
      rng_(options.seed) {
  ctx_ = std::make_unique<PairContext>(a_, b_, catalog_);
}

const MatchingFunction& DebugSession::function() const {
  if (started_ && options_.incremental) return inc_->function();
  return fn_;
}

void DebugSession::PrepareRule(Rule& rule) {
  if (model_ == nullptr) return;
  for (const FeatureId f : rule.Features()) {
    model_->EnsureFeature(f, *ctx_);
  }
  if (options_.ordering != OrderingStrategy::kAsWritten &&
      options_.ordering != OrderingStrategy::kRandom) {
    OrderRulePredicates(rule, *model_);
  }
}

Result<RuleId> DebugSession::AddRuleText(std::string_view dsl) {
  Result<Rule> rule = ParseRule(dsl, catalog_);
  if (!rule.ok()) return rule.status();
  return AddRule(std::move(*rule));
}

Result<RuleId> DebugSession::AddRule(Rule rule) {
  PrepareRule(rule);
  if (started_ && options_.incremental) {
    Result<MatchStats> stats = log_.AddRule(*inc_, rule);
    if (!stats.ok()) return stats.status();
    last_stats_ = *stats;
    total_stats_ += *stats;
    return inc_->last_added_rule_id();
  }
  batch_dirty_ = true;
  return fn_.AddRule(std::move(rule));
}

Status DebugSession::RemoveRule(RuleId rid) {
  if (started_ && options_.incremental) {
    Result<MatchStats> stats = log_.RemoveRule(*inc_, rid);
    if (!stats.ok()) return stats.status();
    last_stats_ = *stats;
    total_stats_ += *stats;
    return Status::Ok();
  }
  batch_dirty_ = true;
  return fn_.RemoveRule(rid);
}

Result<PredicateId> DebugSession::AddPredicate(RuleId rid, Predicate p) {
  if (model_ != nullptr) model_->EnsureFeature(p.feature, *ctx_);
  if (started_ && options_.incremental) {
    Result<MatchStats> stats = log_.AddPredicate(*inc_, rid, p);
    if (!stats.ok()) return stats.status();
    last_stats_ = *stats;
    total_stats_ += *stats;
    return inc_->last_added_predicate_id();
  }
  batch_dirty_ = true;
  return fn_.AddPredicate(rid, p);
}

Status DebugSession::RemovePredicate(RuleId rid, PredicateId pid) {
  if (started_ && options_.incremental) {
    Result<MatchStats> stats = log_.RemovePredicate(*inc_, rid, pid);
    if (!stats.ok()) return stats.status();
    last_stats_ = *stats;
    total_stats_ += *stats;
    return Status::Ok();
  }
  batch_dirty_ = true;
  return fn_.RemovePredicate(rid, pid);
}

Status DebugSession::SetThreshold(RuleId rid, PredicateId pid,
                                  double threshold) {
  if (started_ && options_.incremental) {
    Result<MatchStats> stats =
        log_.SetThreshold(*inc_, rid, pid, threshold);
    if (!stats.ok()) return stats.status();
    last_stats_ = *stats;
    total_stats_ += *stats;
    return Status::Ok();
  }
  batch_dirty_ = true;
  return fn_.SetThreshold(rid, pid, threshold);
}

Status DebugSession::Undo() {
  if (!started_ || !options_.incremental) {
    return Status::FailedPrecondition(
        "undo requires a running incremental session");
  }
  Result<MatchStats> stats = log_.Undo(*inc_);
  if (!stats.ok()) return stats.status();
  last_stats_ = *stats;
  total_stats_ += *stats;
  return Status::Ok();
}

std::string DebugSession::History() const { return log_.Describe(catalog_); }

void DebugSession::FirstRun() {
  // Estimate the cost model on a small random sample (paper: 1%), order
  // the rules with the configured strategy, then run fully.
  const CandidateSet sample =
      SamplePairs(pairs_, options_.sample_fraction, rng_);
  model_ = std::make_unique<CostModel>(
      CostModel::EstimateForFunction(fn_, *ctx_, sample));
  ApplyOrdering(fn_, options_.ordering, *model_, &rng_);

  if (options_.incremental) {
    inc_ = std::make_unique<IncrementalMatcher>(
        *ctx_, pairs_,
        IncrementalMatcher::Options{
            .check_cache_first = options_.check_cache_first});
    last_stats_ = inc_->FullRun(fn_);
  } else {
    MemoMatcher matcher(MemoMatcher::Options{
        .check_cache_first = options_.check_cache_first});
    last_stats_ =
        matcher.RunWithState(fn_, pairs_, *ctx_, batch_state_).stats;
    batch_dirty_ = false;
  }
  total_stats_ += last_stats_;
  started_ = true;
}

const Bitmap& DebugSession::Run() {
  if (!started_) {
    FirstRun();
  } else if (!options_.incremental && batch_dirty_) {
    // Non-incremental mode: rerun everything, but keep the memo — the
    // "precomputation variation" of Sec. 7.6.
    MemoMatcher matcher(MemoMatcher::Options{
        .check_cache_first = options_.check_cache_first});
    last_stats_ =
        matcher.RunWithState(fn_, pairs_, *ctx_, batch_state_).stats;
    total_stats_ += last_stats_;
    batch_dirty_ = false;
  }
  return options_.incremental ? inc_->matches() : batch_state_.matches();
}

QualityMetrics DebugSession::Score(const PairLabels& labels) {
  return Evaluate(Run(), labels);
}

std::string DebugSession::MemoryReport() const {
  const MatchState& state =
      started_ && options_.incremental ? inc_->state() : batch_state_;
  return state.MemoryReport();
}

MatchExplanation DebugSession::Explain(PairId pair) {
  return ExplainPair(function(), pair, *ctx_);
}

std::vector<NearMiss> DebugSession::WhyNot(PairId pair, size_t top_k) {
  return FindNearMisses(function(), pair, *ctx_, top_k);
}

Status DebugSession::SaveSession(const std::string& prefix) const {
  if (!started_ || !options_.incremental) {
    return Status::FailedPrecondition(
        "saving requires a completed run in incremental mode");
  }
  EMDBG_RETURN_IF_ERROR(
      SaveRulesFile(inc_->function(), catalog_, prefix + ".rules"));
  return SaveMatchState(inc_->state(), prefix + ".state");
}

Status DebugSession::ResumeSession(const std::string& prefix) {
  if (started_) {
    return Status::FailedPrecondition(
        "resume must happen before the first run");
  }
  if (!options_.incremental) {
    return Status::FailedPrecondition("resume requires incremental mode");
  }
  Result<MatchingFunction> rules =
      LoadRulesFile(prefix + ".rules", catalog_);
  if (!rules.ok()) return rules.status();
  Result<MatchState> state = LoadMatchState(prefix + ".state");
  if (!state.ok()) return state.status();
  inc_ = std::make_unique<IncrementalMatcher>(
      *ctx_, pairs_,
      IncrementalMatcher::Options{
          .check_cache_first = options_.check_cache_first});
  EMDBG_RETURN_IF_ERROR(inc_->Resume(*rules, std::move(*state)));
  fn_ = *rules;
  started_ = true;
  return Status::Ok();
}

std::string DebugSession::RuleActivityReport() const {
  if (!started_) return "(no run yet)\n";
  const MatchState& state =
      options_.incremental ? inc_->state() : batch_state_;
  const MatchingFunction& fn = function();
  std::string out;
  for (const Rule& rule : fn.rules()) {
    const Bitmap* fired = state.FindRuleTrue(rule.id());
    out += StrFormat("%-10s matches %6zu pairs | rejects:",
                     rule.name().c_str(),
                     fired == nullptr ? 0 : fired->Count());
    for (const Predicate& p : rule.predicates()) {
      const Bitmap* rejected = state.FindPredFalse(p.id);
      out += StrFormat(" %s=%zu", catalog_.Name(p.feature).c_str(),
                       rejected == nullptr ? 0 : rejected->Count());
    }
    out += "\n";
  }
  return out;
}

MatchStats DebugSession::Reoptimize() {
  MatchingFunction current = function();
  const CandidateSet sample =
      SamplePairs(pairs_, options_.sample_fraction, rng_);
  model_ = std::make_unique<CostModel>(
      CostModel::EstimateForFunction(current, *ctx_, sample));
  ApplyOrdering(current, options_.ordering, *model_, &rng_);
  fn_ = current;
  if (options_.incremental) {
    if (inc_ == nullptr) {
      inc_ = std::make_unique<IncrementalMatcher>(
          *ctx_, pairs_,
          IncrementalMatcher::Options{
              .check_cache_first = options_.check_cache_first});
    }
    last_stats_ = inc_->FullRun(fn_);
  } else {
    MemoMatcher matcher(MemoMatcher::Options{
        .check_cache_first = options_.check_cache_first});
    last_stats_ =
        matcher.RunWithState(fn_, pairs_, *ctx_, batch_state_).stats;
    batch_dirty_ = false;
  }
  total_stats_ += last_stats_;
  started_ = true;
  return last_stats_;
}

}  // namespace emdbg
