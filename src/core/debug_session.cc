#include "src/core/debug_session.h"

#include <filesystem>
#include <unordered_map>

#include "src/core/block_matcher.h"
#include "src/core/memo_matcher.h"
#include "src/core/parallel_matcher.h"
#include "src/core/sampler.h"
#include "src/core/shard_driver.h"
#include "src/util/csv.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

namespace emdbg {

namespace {

// ---- Durability file layout inside the session directory:
//   checkpoint.meta             "EMDBGCK1 <epoch>" — names the live epoch
//   checkpoint.<epoch>.features catalog feature names, one per id-order line
//   checkpoint.<epoch>.rules    precise DSL, one rule per line
//   checkpoint.<epoch>.state    binary memo + bitmaps (state_io v2)
//   journal.log                 edits committed since the checkpoint
// The meta file is the commit point: it is rewritten (atomically) only
// after the new epoch's files are fully on disk, so a crash anywhere in
// checkpointing leaves a complete old or new checkpoint. ----

constexpr std::string_view kMetaTag = "EMDBGCK1 ";

std::string MetaPath(const std::string& dir) {
  return dir + "/checkpoint.meta";
}
std::string JournalPath(const std::string& dir) {
  return dir + "/journal.log";
}
std::string FeaturesPath(const std::string& dir, uint64_t epoch) {
  return StrFormat("%s/checkpoint.%llu.features", dir.c_str(),
                   static_cast<unsigned long long>(epoch));
}
std::string RulesPath(const std::string& dir, uint64_t epoch) {
  return StrFormat("%s/checkpoint.%llu.rules", dir.c_str(),
                   static_cast<unsigned long long>(epoch));
}
std::string StatePath(const std::string& dir, uint64_t epoch) {
  return StrFormat("%s/checkpoint.%llu.state", dir.c_str(),
                   static_cast<unsigned long long>(epoch));
}

Result<uint64_t> ReadMeta(const std::string& dir) {
  Result<std::string> text = ReadFileToString(MetaPath(dir));
  if (!text.ok()) return text.status();
  const std::string_view trimmed = TrimAscii(*text);
  if (trimmed.size() <= kMetaTag.size() ||
      trimmed.substr(0, kMetaTag.size()) != kMetaTag) {
    return Status::ParseError(
        StrFormat("%s is not an emdbg checkpoint meta file",
                  MetaPath(dir).c_str()));
  }
  int64_t epoch = 0;
  if (!ParseInt64(trimmed.substr(kMetaTag.size()), &epoch) || epoch <= 0) {
    return Status::ParseError("checkpoint meta has a bad epoch");
  }
  return static_cast<uint64_t>(epoch);
}

/// The catalog's features, one "simfn(attrA, attrB)" name per line in id
/// order. Recovery re-interns them in the same order, so the feature ids
/// baked into the saved memo columns stay valid.
std::string CheckpointFeaturesText(const FeatureCatalog& catalog) {
  std::string text;
  for (FeatureId f = 0; f < catalog.size(); ++f) {
    text += catalog.Name(f);
    text += "\n";
  }
  return text;
}

Status LoadCheckpointFeatures(const std::string& path,
                              FeatureCatalog& catalog) {
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  std::string_view rest(*text);
  while (!rest.empty()) {
    const size_t nl = rest.find('\n');
    const std::string_view line =
        TrimAscii(nl == std::string_view::npos ? rest : rest.substr(0, nl));
    rest = nl == std::string_view::npos ? std::string_view()
                                        : rest.substr(nl + 1);
    if (line.empty()) continue;
    // "simfn(attrA, attrB)"
    const size_t lparen = line.find('(');
    const size_t comma = line.find(',', lparen);
    const size_t rparen = line.find(')', comma);
    if (lparen == std::string_view::npos ||
        comma == std::string_view::npos ||
        rparen == std::string_view::npos) {
      return Status::ParseError(StrFormat(
          "bad feature name '%.*s' in %s", static_cast<int>(line.size()),
          line.data(), path.c_str()));
    }
    Result<SimFunction> fn =
        SimFunctionFromName(std::string(TrimAscii(line.substr(0, lparen))));
    if (!fn.ok()) return fn.status();
    Result<FeatureId> id = catalog.InternByName(
        *fn, TrimAscii(line.substr(lparen + 1, comma - lparen - 1)),
        TrimAscii(line.substr(comma + 1, rparen - comma - 1)));
    if (!id.ok()) return id.status();
  }
  return Status::Ok();
}

/// Checkpoint rules: precise DSL, plus a "!empty [name]" escape for rules
/// with no predicates (the DSL cannot express them, but a live function
/// can contain them and journal positions must line up).
std::string CheckpointRulesText(const MatchingFunction& fn,
                                const FeatureCatalog& catalog) {
  std::string text;
  for (const Rule& rule : fn.rules()) {
    if (rule.empty()) {
      text += "!empty";
      if (!rule.name().empty()) {
        text += " ";
        text += rule.name();
      }
    } else {
      text += RuleToDsl(rule, catalog);
    }
    text += "\n";
  }
  return text;
}

Result<MatchingFunction> LoadCheckpointRules(const std::string& path,
                                             FeatureCatalog& catalog) {
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  MatchingFunction fn;
  std::string_view rest(*text);
  while (!rest.empty()) {
    const size_t nl = rest.find('\n');
    const std::string_view line =
        TrimAscii(nl == std::string_view::npos ? rest : rest.substr(0, nl));
    rest = nl == std::string_view::npos ? std::string_view()
                                        : rest.substr(nl + 1);
    if (line.empty() || line[0] == '#') continue;
    if (line.substr(0, 6) == "!empty") {
      fn.AddRule(Rule(std::string(TrimAscii(line.substr(6)))));
      continue;
    }
    Result<Rule> rule = ParseRule(line, catalog);
    if (!rule.ok()) return rule.status();
    fn.AddRule(std::move(*rule));
  }
  return fn;
}

/// Consumes a leading non-negative integer token from `rest`.
bool TakeIndex(std::string_view& rest, size_t* out) {
  const size_t sp = rest.find(' ');
  const std::string_view tok =
      sp == std::string_view::npos ? rest : rest.substr(0, sp);
  rest = sp == std::string_view::npos ? std::string_view()
                                      : rest.substr(sp + 1);
  int64_t v = 0;
  if (!ParseInt64(tok, &v) || v < 0) return false;
  *out = static_cast<size_t>(v);
  return true;
}

}  // namespace

DebugSession::DebugSession(Table a, Table b, CandidateSet pairs,
                           Options options)
    : DebugSession(std::make_shared<const Table>(std::move(a)),
                   std::make_shared<const Table>(std::move(b)),
                   std::make_shared<const CandidateSet>(std::move(pairs)),
                   options) {}

DebugSession::DebugSession(std::shared_ptr<const Table> a,
                           std::shared_ptr<const Table> b,
                           std::shared_ptr<const CandidateSet> pairs,
                           Options options)
    : a_(std::move(a)),
      b_(std::move(b)),
      pairs_(std::move(pairs)),
      options_(options),
      catalog_(a_->schema(), b_->schema()),
      rng_(options.seed) {
  ctx_ = std::make_unique<PairContext>(
      *a_, *b_, catalog_, PairContext::Options{.budget = options_.budget});
  // batch_state_ is still empty, so attaching cannot bill anything yet.
  (void)batch_state_.AttachBudget(options_.budget);
  if (options_.num_threads != 1) {
    // One persistent pool for the session's lifetime: threads spawn here
    // once and are reused by every full run, prewarm, and edit.
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

IncrementalMatcher::Options DebugSession::IncOptions() {
  return IncrementalMatcher::Options{
      .check_cache_first = options_.check_cache_first,
      .pool = pool_.get(),
      .budget = options_.budget,
      .block_size = options_.block_size};
}

MatchResult DebugSession::BatchRun(const RunControl& control) {
  if (options_.sharded) {
    // Out-of-core: shard-sized memo slices instead of one resident
    // matrix. keep_state=false — the session only needs the match bits,
    // so shard state is dropped as each shard completes and no spill
    // directory is required.
    ShardedMatchDriver driver(ShardedMatchDriver::Options{
        .shard_pairs = options_.shard_pairs,
        .budget = options_.budget,
        .pool = pool_.get(),
        .block_size = options_.block_size,
        .cost_model = model_.get(),
        .keep_state = false});
    MatchResult result = driver.Run(fn_, *pairs_, *ctx_, control);
    if (!result.partial) batch_state_.matches() = result.matches;
    return result;
  }
  if (pool_ != nullptr && pool_->num_workers() > 1) {
    ParallelMemoMatcher matcher(ParallelMemoMatcher::Options{
        .check_cache_first = options_.check_cache_first,
        .pool = pool_.get(),
        .budget = options_.budget,
        .block_size = options_.block_size,
        .cost_model = model_.get()});
    return matcher.RunWithState(fn_, *pairs_, *ctx_, batch_state_, control);
  }
  if (options_.block_size != 1) {
    BlockMatcher matcher(BlockMatcher::Options{
        .block_size = options_.block_size,
        .cost_model = model_.get(),
        .budget = options_.budget});
    return matcher.RunWithState(fn_, *pairs_, *ctx_, batch_state_, control);
  }
  MemoMatcher matcher(
      MemoMatcher::Options{.check_cache_first = options_.check_cache_first});
  return matcher.RunWithState(fn_, *pairs_, *ctx_, batch_state_, control);
}

const MatchingFunction& DebugSession::function() const {
  if (started_ && options_.incremental) return inc_->function();
  return fn_;
}

void DebugSession::PrepareRule(Rule& rule) {
  if (model_ == nullptr) return;
  for (const FeatureId f : rule.Features()) {
    model_->EnsureFeature(f, *ctx_);
  }
  if (options_.ordering != OrderingStrategy::kAsWritten &&
      options_.ordering != OrderingStrategy::kRandom) {
    OrderRulePredicates(rule, *model_);
  }
}

Result<RuleId> DebugSession::AddRuleText(std::string_view dsl) {
  Result<Rule> rule = ParseRule(dsl, catalog_);
  if (!rule.ok()) return rule.status();
  return AddRule(std::move(*rule));
}

Result<RuleId> DebugSession::AddRule(Rule rule) {
  PrepareRule(rule);
  if (started_ && options_.incremental) {
    Result<MatchStats> stats = log_.AddRule(*inc_, rule);
    if (!stats.ok()) return stats.status();
    last_stats_ = *stats;
    total_stats_ += *stats;
    return inc_->last_added_rule_id();
  }
  batch_dirty_ = true;
  return fn_.AddRule(std::move(rule));
}

Status DebugSession::RemoveRule(RuleId rid) {
  if (started_ && options_.incremental) {
    Result<MatchStats> stats = log_.RemoveRule(*inc_, rid);
    if (!stats.ok()) return stats.status();
    last_stats_ = *stats;
    total_stats_ += *stats;
    return Status::Ok();
  }
  batch_dirty_ = true;
  return fn_.RemoveRule(rid);
}

Result<PredicateId> DebugSession::AddPredicate(RuleId rid, Predicate p) {
  if (model_ != nullptr) model_->EnsureFeature(p.feature, *ctx_);
  if (started_ && options_.incremental) {
    Result<MatchStats> stats = log_.AddPredicate(*inc_, rid, p);
    if (!stats.ok()) return stats.status();
    last_stats_ = *stats;
    total_stats_ += *stats;
    return inc_->last_added_predicate_id();
  }
  batch_dirty_ = true;
  return fn_.AddPredicate(rid, p);
}

Status DebugSession::RemovePredicate(RuleId rid, PredicateId pid) {
  if (started_ && options_.incremental) {
    Result<MatchStats> stats = log_.RemovePredicate(*inc_, rid, pid);
    if (!stats.ok()) return stats.status();
    last_stats_ = *stats;
    total_stats_ += *stats;
    return Status::Ok();
  }
  batch_dirty_ = true;
  return fn_.RemovePredicate(rid, pid);
}

Status DebugSession::SetThreshold(RuleId rid, PredicateId pid,
                                  double threshold) {
  if (started_ && options_.incremental) {
    Result<MatchStats> stats =
        log_.SetThreshold(*inc_, rid, pid, threshold);
    if (!stats.ok()) return stats.status();
    last_stats_ = *stats;
    total_stats_ += *stats;
    return Status::Ok();
  }
  batch_dirty_ = true;
  return fn_.SetThreshold(rid, pid, threshold);
}

Status DebugSession::Undo() {
  if (!started_ || !options_.incremental) {
    return Status::FailedPrecondition(
        "undo requires a running incremental session");
  }
  Result<MatchStats> stats = log_.Undo(*inc_);
  if (!stats.ok()) return stats.status();
  last_stats_ = *stats;
  total_stats_ += *stats;
  return Status::Ok();
}

std::string DebugSession::History() const { return log_.Describe(catalog_); }

MatchResult DebugSession::FirstRun(const RunControl& control) {
  // Estimate the cost model on a small random sample (paper: 1%), order
  // the rules with the configured strategy, then run fully.
  const CandidateSet sample =
      SamplePairs(*pairs_, options_.sample_fraction, rng_);
  model_ = std::make_unique<CostModel>(
      CostModel::EstimateForFunction(fn_, *ctx_, sample));
  ApplyOrdering(fn_, options_.ordering, *model_, &rng_);

  MatchResult result;
  if (options_.incremental) {
    if (inc_ == nullptr) {
      inc_ = std::make_unique<IncrementalMatcher>(*ctx_, *pairs_,
                                                   IncOptions());
    }
    result = inc_->FullRun(fn_, control);
  } else {
    result = BatchRun(control);
    batch_dirty_ = result.partial;
  }
  last_stats_ = result.stats;
  total_stats_ += last_stats_;
  // A partial first run leaves the session in the pre-run regime: the
  // memo keeps everything computed so far, a retry resumes cheaply.
  started_ = !result.partial;
  return result;
}

const Bitmap& DebugSession::Run() {
  if (!started_) {
    FirstRun(RunControl());
  } else if (!options_.incremental && batch_dirty_) {
    // Non-incremental mode: rerun everything, but keep the memo — the
    // "precomputation variation" of Sec. 7.6.
    last_stats_ = BatchRun(RunControl()).stats;
    total_stats_ += last_stats_;
    batch_dirty_ = false;
  }
  return options_.incremental ? inc_->matches() : batch_state_.matches();
}

MatchResult DebugSession::Run(const RunControl& control) {
  if (!started_) return FirstRun(control);
  if (!options_.incremental && batch_dirty_) {
    MatchResult result = BatchRun(control);
    last_stats_ = result.stats;
    total_stats_ += last_stats_;
    batch_dirty_ = result.partial;
    return result;
  }
  // The maintained result is already up to date (incremental mode keeps
  // it current through edits); return it as a complete result.
  MatchResult result;
  result.matches =
      options_.incremental ? inc_->matches() : batch_state_.matches();
  result.MarkComplete(pairs_->size());
  return result;
}

QualityMetrics DebugSession::Score(const PairLabels& labels) {
  return Evaluate(Run(), labels);
}

std::string DebugSession::MemoryReport() const {
  const MatchState& state =
      started_ && options_.incremental ? inc_->state() : batch_state_;
  return state.MemoryReport();
}

DebugSession::MemoryFootprint DebugSession::Footprint() const {
  MemoryFootprint fp;
  const MatchState& state =
      started_ && options_.incremental && inc_ != nullptr ? inc_->state()
                                                          : batch_state_;
  fp.memo_bytes = state.MemoryBytes();
  fp.token_cache_bytes = ctx_->TokenCacheBytes();
  fp.id_cache_bytes = ctx_->IdCacheBytes();
  if (const TokenInterner* interner = ctx_->interner()) {
    fp.interner_bytes =
        interner->ArenaBytes() + interner->DictionaryBytes();
  }
  return fp;
}

MatchExplanation DebugSession::Explain(PairId pair) {
  return ExplainPair(function(), pair, *ctx_);
}

std::vector<NearMiss> DebugSession::WhyNot(PairId pair, size_t top_k) {
  return FindNearMisses(function(), pair, *ctx_, top_k);
}

Status DebugSession::SaveSession(const std::string& prefix) const {
  if (!started_ || !options_.incremental) {
    return Status::FailedPrecondition(
        "saving requires a completed run in incremental mode");
  }
  EMDBG_RETURN_IF_ERROR(
      SaveRulesFile(inc_->function(), catalog_, prefix + ".rules"));
  return SaveMatchState(inc_->state(), prefix + ".state");
}

Status DebugSession::ResumeSession(const std::string& prefix) {
  if (started_) {
    return Status::FailedPrecondition(
        "resume must happen before the first run");
  }
  if (!options_.incremental) {
    return Status::FailedPrecondition("resume requires incremental mode");
  }
  Result<MatchingFunction> rules =
      LoadRulesFile(prefix + ".rules", catalog_);
  if (!rules.ok()) return rules.status();
  Result<MatchState> state = LoadMatchState(prefix + ".state");
  if (!state.ok()) return state.status();
  inc_ = std::make_unique<IncrementalMatcher>(*ctx_, *pairs_, IncOptions());
  EMDBG_RETURN_IF_ERROR(inc_->Resume(*rules, std::move(*state)));
  fn_ = *rules;
  started_ = true;
  return Status::Ok();
}

std::string DebugSession::RuleActivityReport() const {
  if (!started_) return "(no run yet)\n";
  const MatchState& state =
      options_.incremental ? inc_->state() : batch_state_;
  const MatchingFunction& fn = function();
  std::string out;
  for (const Rule& rule : fn.rules()) {
    const Bitmap* fired = state.FindRuleTrue(rule.id());
    out += StrFormat("%-10s matches %6zu pairs | rejects:",
                     rule.name().c_str(),
                     fired == nullptr ? 0 : fired->Count());
    for (const Predicate& p : rule.predicates()) {
      const Bitmap* rejected = state.FindPredFalse(p.id);
      out += StrFormat(" %s=%zu", catalog_.Name(p.feature).c_str(),
                       rejected == nullptr ? 0 : rejected->Count());
    }
    out += "\n";
  }
  return out;
}

MatchStats DebugSession::Reoptimize() {
  MatchingFunction current = function();
  const CandidateSet sample =
      SamplePairs(*pairs_, options_.sample_fraction, rng_);
  model_ = std::make_unique<CostModel>(
      CostModel::EstimateForFunction(current, *ctx_, sample));
  ApplyOrdering(current, options_.ordering, *model_, &rng_);
  fn_ = current;
  if (options_.incremental) {
    if (inc_ == nullptr) {
      inc_ = std::make_unique<IncrementalMatcher>(*ctx_, *pairs_,
                                                   IncOptions());
    }
    last_stats_ = inc_->FullRun(fn_);
  } else {
    last_stats_ = BatchRun(RunControl()).stats;
    batch_dirty_ = false;
  }
  total_stats_ += last_stats_;
  started_ = true;
  return last_stats_;
}

Status DebugSession::EnableDurability(const std::string& dir,
                                      size_t checkpoint_every) {
  if (!options_.incremental) {
    return Status::FailedPrecondition(
        "durability requires incremental mode");
  }
  if (!started_) {
    return Status::FailedPrecondition(
        "durability requires a completed run; call Run() first");
  }
  if (journal_ != nullptr) {
    return Status::FailedPrecondition("durability is already enabled");
  }
  if (checkpoint_every == 0) {
    return Status::InvalidArgument("checkpoint_every must be positive");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError(StrFormat("cannot create %s: %s", dir.c_str(),
                                     ec.message().c_str()));
  }
  durability_dir_ = dir;
  checkpoint_every_ = checkpoint_every;
  Status s = WriteCheckpoint();
  if (!s.ok()) {
    journal_.reset();
    durability_dir_.clear();
    return s;
  }
  AttachJournalSink();
  return Status::Ok();
}

Status DebugSession::Checkpoint() {
  if (!durable()) {
    return Status::FailedPrecondition("durability is not enabled");
  }
  return WriteCheckpoint();
}

Status DebugSession::WriteCheckpoint() {
  const uint64_t next_epoch = epoch_ + 1;
  const MatchingFunction& fn = inc_->function();
  EMDBG_RETURN_IF_ERROR(
      WriteFileAtomic(FeaturesPath(durability_dir_, next_epoch),
                      CheckpointFeaturesText(catalog_)));
  EMDBG_RETURN_IF_ERROR(
      WriteFileAtomic(RulesPath(durability_dir_, next_epoch),
                      CheckpointRulesText(fn, catalog_)));
  // Recovery re-parses the rules file, which assigns dense ids in file
  // order; save the bitmaps under those ids so the two files line up.
  std::unordered_map<RuleId, RuleId> rule_ids;
  std::unordered_map<PredicateId, PredicateId> predicate_ids;
  RuleId next_rid = 0;
  PredicateId next_pid = 0;
  for (const Rule& rule : fn.rules()) {
    rule_ids[rule.id()] = next_rid++;
    for (const Predicate& p : rule.predicates()) {
      predicate_ids[p.id] = next_pid++;
    }
  }
  EMDBG_RETURN_IF_ERROR(SaveMatchStateRemapped(
      inc_->state(), rule_ids, predicate_ids,
      StatePath(durability_dir_, next_epoch)));
  // Commit point: repoint the meta file at the fully-written epoch.
  EMDBG_RETURN_IF_ERROR(WriteFileAtomic(
      MetaPath(durability_dir_),
      StrFormat("EMDBGCK1 %llu\n",
                static_cast<unsigned long long>(next_epoch))));
  // Fresh journal for the new epoch. If a crash lands between the meta
  // write and this, recovery sees an epoch-mismatched (stale) journal and
  // correctly ignores it — its edits are inside the checkpoint.
  journal_.reset();
  Result<std::unique_ptr<EditJournal>> journal =
      EditJournal::Create(JournalPath(durability_dir_), next_epoch);
  if (!journal.ok()) return journal.status();
  journal_ = std::move(*journal);
  if (epoch_ != 0) {
    std::error_code ec;
    std::filesystem::remove(FeaturesPath(durability_dir_, epoch_), ec);
    std::filesystem::remove(RulesPath(durability_dir_, epoch_), ec);
    std::filesystem::remove(StatePath(durability_dir_, epoch_), ec);
  }
  epoch_ = next_epoch;
  edits_since_checkpoint_ = 0;
  return Status::Ok();
}

void DebugSession::AttachJournalSink() {
  log_.SetJournal(&catalog_, [this](std::string_view payload) {
    EMDBG_RETURN_IF_ERROR(journal_->Append(payload));
    if (++edits_since_checkpoint_ >= checkpoint_every_) {
      return WriteCheckpoint();
    }
    return Status::Ok();
  });
}

Status DebugSession::ApplyJournalRecord(std::string_view payload) {
  const size_t sp = payload.find(' ');
  const std::string_view verb =
      sp == std::string_view::npos ? payload : payload.substr(0, sp);
  std::string_view rest = sp == std::string_view::npos
                              ? std::string_view()
                              : payload.substr(sp + 1);
  auto bad = [&payload](const char* why) {
    return Status::ParseError(
        StrFormat("bad journal record '%.*s': %s",
                  static_cast<int>(payload.size()), payload.data(), why));
  };

  if (verb == "add_rule") {
    Result<Rule> rule = ParseRule(rest, catalog_);
    if (!rule.ok()) return rule.status();
    return AddRule(std::move(*rule)).status();
  }
  if (verb == "add_rule_empty") {
    return AddRule(Rule(std::string(TrimAscii(rest)))).status();
  }
  if (verb == "remove_rule") {
    size_t pos = 0;
    if (!TakeIndex(rest, &pos)) return bad("expected rule index");
    const std::vector<Rule>& rules = function().rules();
    if (pos >= rules.size()) return bad("rule index out of range");
    return RemoveRule(rules[pos].id());
  }
  if (verb == "add_pred") {
    size_t pos = 0;
    if (!TakeIndex(rest, &pos)) return bad("expected rule index");
    const std::vector<Rule>& rules = function().rules();
    if (pos >= rules.size()) return bad("rule index out of range");
    const RuleId rid = rules[pos].id();
    // A single predicate parses as a one-predicate anonymous rule.
    Result<Rule> parsed = ParseRule(rest, catalog_);
    if (!parsed.ok()) return parsed.status();
    if (parsed->size() != 1) return bad("expected one predicate");
    return AddPredicate(rid, parsed->predicate(0)).status();
  }
  if (verb == "remove_pred") {
    size_t rpos = 0, ppos = 0;
    if (!TakeIndex(rest, &rpos) || !TakeIndex(rest, &ppos)) {
      return bad("expected rule and predicate indices");
    }
    const std::vector<Rule>& rules = function().rules();
    if (rpos >= rules.size()) return bad("rule index out of range");
    if (ppos >= rules[rpos].size()) {
      return bad("predicate index out of range");
    }
    return RemovePredicate(rules[rpos].id(), rules[rpos].predicate(ppos).id);
  }
  if (verb == "set_threshold") {
    size_t rpos = 0, ppos = 0;
    if (!TakeIndex(rest, &rpos) || !TakeIndex(rest, &ppos)) {
      return bad("expected rule and predicate indices");
    }
    double threshold = 0.0;
    if (!ParseDouble(TrimAscii(rest), &threshold)) {
      return bad("expected threshold");
    }
    const std::vector<Rule>& rules = function().rules();
    if (rpos >= rules.size()) return bad("rule index out of range");
    if (ppos >= rules[rpos].size()) {
      return bad("predicate index out of range");
    }
    return SetThreshold(rules[rpos].id(), rules[rpos].predicate(ppos).id,
                        threshold);
  }
  return bad("unknown verb");
}

Status DebugSession::Recover(const std::string& dir,
                             size_t checkpoint_every) {
  if (started_) {
    return Status::FailedPrecondition(
        "recover must happen before the first run");
  }
  if (!options_.incremental) {
    return Status::FailedPrecondition("recovery requires incremental mode");
  }
  Result<uint64_t> epoch = ReadMeta(dir);
  if (!epoch.ok()) return epoch.status();

  // Re-intern the catalog's features in saved id order, so the feature
  // ids baked into the memo columns stay valid.
  EMDBG_RETURN_IF_ERROR(
      LoadCheckpointFeatures(FeaturesPath(dir, *epoch), catalog_));
  Result<MatchingFunction> rules =
      LoadCheckpointRules(RulesPath(dir, *epoch), catalog_);
  if (!rules.ok()) return rules.status();
  Result<MatchState> state = LoadMatchState(StatePath(dir, *epoch));
  if (!state.ok()) return state.status();

  inc_ = std::make_unique<IncrementalMatcher>(*ctx_, *pairs_, IncOptions());
  EMDBG_RETURN_IF_ERROR(inc_->Resume(*rules, std::move(*state)));
  fn_ = *rules;
  started_ = true;

  // Replay edits committed after the checkpoint. A missing journal means
  // nothing to replay; a journal from an older epoch was superseded by
  // the checkpoint (crash between the meta write and the journal reset)
  // and is ignored. Corruption before the final record is an error — the
  // torn-final-record case (crash mid-append) is tolerated because that
  // edit never committed.
  Result<EditJournal::Contents> journal =
      EditJournal::Read(JournalPath(dir));
  if (journal.ok()) {
    if (journal->epoch == *epoch) {
      for (const std::string& record : journal->records) {
        EMDBG_RETURN_IF_ERROR(ApplyJournalRecord(record));
      }
    }
  } else if (journal.status().code() != StatusCode::kIoError) {
    return journal.status();
  }

  // Re-enable durability here: fold the replayed edits into a fresh
  // checkpoint and start a clean journal.
  epoch_ = *epoch;
  durability_dir_ = dir;
  checkpoint_every_ = checkpoint_every;
  Status s = WriteCheckpoint();
  if (!s.ok()) {
    journal_.reset();
    durability_dir_.clear();
    return s;
  }
  AttachJournalSink();
  return Status::Ok();
}

}  // namespace emdbg
