#ifndef EMDBG_CORE_MEMO_H_
#define EMDBG_CORE_MEMO_H_

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/feature.h"
#include "src/util/memory_budget.h"
#include "src/util/status.h"

namespace emdbg {

/// Storage for computed similarity values, addressed by (pair index,
/// feature id) — the paper's Γ (Sec. 4.3). Two implementations:
/// a dense matrix (the paper's 2-D array, Sec. 7.4) and a hash map
/// (the alternative it suggests for low fill rates).
class Memo {
 public:
  virtual ~Memo() = default;

  /// Retrieves a stored value; returns false if not present.
  virtual bool Lookup(size_t pair_index, FeatureId feature,
                      double* value) const = 0;

  /// Stores a computed value.
  virtual void Store(size_t pair_index, FeatureId feature, double value) = 0;

  /// True if the value is present (no value copy).
  virtual bool Contains(size_t pair_index, FeatureId feature) const = 0;

  /// Number of stored values.
  virtual size_t FilledCount() const = 0;

  /// Heap bytes used by the store.
  virtual size_t MemoryBytes() const = 0;

  /// Removes all stored values.
  virtual void Clear() = 0;

  /// Thread-safety contract: true if concurrent Store/Lookup/Contains on
  /// *different pair rows* is safe (the parallel matcher's access
  /// pattern — each candidate pair is evaluated by exactly one worker).
  /// Implementations returning false (HashMemo: a rehash moves every
  /// bucket) are rejected by ParallelMemoMatcher with a clear Status
  /// instead of racing; wrap them in a ShardedMemo to share across
  /// workers.
  virtual bool SafeForConcurrentRows() const { return false; }
};

/// Dense pairs x features float matrix with NaN as the "absent" sentinel.
/// All similarity scores are in [0, 1], so NaN is unambiguous. This is the
/// representation measured in the paper's Sec. 7.4 (22 MB for
/// 291,649 pairs x 33 features at 4 bytes each, modulo JVM overhead).
class DenseMemo final : public Memo {
 public:
  DenseMemo(size_t num_pairs, size_t num_features);

  bool Lookup(size_t pair_index, FeatureId feature,
              double* value) const override {
    const float v = data_[pair_index * num_features_ + feature];
    if (std::isnan(v)) return false;
    *value = static_cast<double>(v);
    return true;
  }

  /// Thread-safety: concurrent Store/Lookup on *different pair rows* is
  /// safe (distinct cells; the fill counter is relaxed-atomic). Same-cell
  /// concurrency is not supported.
  void Store(size_t pair_index, FeatureId feature, double value) override {
    float& slot = data_[pair_index * num_features_ + feature];
    if (std::isnan(slot)) {
      filled_.fetch_add(1, std::memory_order_relaxed);
    }
    slot = static_cast<float>(value);
  }

  bool Contains(size_t pair_index, FeatureId feature) const override {
    return !std::isnan(data_[pair_index * num_features_ + feature]);
  }

  size_t FilledCount() const override {
    return filled_.load(std::memory_order_relaxed);
  }
  size_t MemoryBytes() const override {
    return data_.size() * sizeof(float);
  }
  void Clear() override;

  bool SafeForConcurrentRows() const override { return true; }

  size_t num_pairs() const { return num_pairs_; }
  size_t num_features() const { return num_features_; }

  /// Grows the feature dimension (e.g. when the analyst's new rule uses a
  /// feature interned after the memo was created). Existing values are
  /// preserved. No-op if `num_features` is not larger.
  void GrowFeatures(size_t num_features);

  // ---- Columnar bulk access (the block matcher's gather/scatter,
  // src/core/block_matcher.h). Storage is pair-major, so a column walk is
  // strided by num_features(); one cache-sized block of rows (~1–4K)
  // keeps the strides inside L2. ----

  /// Pointer to row `pair_index`'s values (num_features() floats, NaN =
  /// absent). Valid until the next GrowFeatures/LoadRawValues.
  const float* RowView(size_t pair_index) const {
    return &data_[pair_index * num_features_];
  }

  /// Gathers column `feature` for rows [row, row + n): out[i] receives
  /// the stored float (NaN when absent) and bit i of `present`
  /// (ceil(n/64) words, fully overwritten) is set iff the cell holds a
  /// value. Thread-safety matches Lookup: safe concurrently with
  /// Store/FillSpan on *other* rows.
  void GatherColumn(size_t row, size_t n, FeatureId feature, float* out,
                    uint64_t* present) const;

  /// Bulk store: for every set bit i of `mask` (ceil(n/64) words),
  /// stores vals[i] into cell (row + i, feature). The fill counter is
  /// bumped once with the batch's newly-filled count instead of once per
  /// cell. Thread-safety matches Store: rows [row, row + n) must not be
  /// concurrently written by another thread.
  void FillSpan(size_t row, size_t n, FeatureId feature, const float* vals,
                const uint64_t* mask);

  /// Raw value matrix in pair-major order (for binary persistence);
  /// absent cells are NaN.
  const std::vector<float>& raw_values() const { return data_; }

  /// Restores persisted values (size must be pairs x features) and
  /// recounts the fill statistic.
  Status LoadRawValues(const std::vector<float>& values);

 private:
  size_t num_pairs_;
  size_t num_features_;
  std::atomic<size_t> filled_{0};
  std::vector<float> data_;
};

/// Sparse hash-map memo keyed by (pair, feature). Lower memory at low fill
/// rates, higher lookup cost — the trade-off discussed in Sec. 7.4.
class HashMemo final : public Memo {
 public:
  HashMemo() = default;
  ~HashMemo() override { ReleaseBilling(); }

  bool Lookup(size_t pair_index, FeatureId feature,
              double* value) const override {
    const auto it = map_.find(Key(pair_index, feature));
    if (it == map_.end()) return false;
    *value = static_cast<double>(it->second);
    return true;
  }

  void Store(size_t pair_index, FeatureId feature, double value) override;

  bool Contains(size_t pair_index, FeatureId feature) const override {
    return map_.count(Key(pair_index, feature)) > 0;
  }

  size_t FilledCount() const override { return map_.size(); }
  size_t MemoryBytes() const override;
  void Clear() override {
    map_.clear();
    ReleaseBilling();
  }

  /// Attaches a memory budget (nullptr detaches and releases billing).
  /// Growth is billed in chunks as entries accumulate; a denied
  /// reservation drops the whole map — a memo is a cache, losing it
  /// costs recomputation, never correctness. The budget must outlive
  /// the memo.
  void SetBudget(MemoryBudget* budget);

 private:
  static uint64_t Key(size_t pair_index, FeatureId feature) {
    return (static_cast<uint64_t>(pair_index) << 32) |
           static_cast<uint64_t>(feature);
  }
  void ReleaseBilling();

  std::unordered_map<uint64_t, float> map_;
  MemoryBudget* budget_ = nullptr;
  size_t billed_bytes_ = 0;
};

/// Sparse memo safe for concurrent workers: the key space is split into
/// shards by pair index, each shard a mutex-protected hash map. Pair-row
/// striping means one worker's pairs always land in the same shards it is
/// already touching, so lock contention is limited to hash collisions of
/// the stripe function — in practice near zero for the parallel matcher's
/// disjoint-row access pattern. This is the low-fill-rate (Sec. 7.4)
/// alternative when a dense pairs × features matrix is too large.
class ShardedMemo final : public Memo {
 public:
  static constexpr size_t kDefaultShards = 64;

  explicit ShardedMemo(size_t num_shards = kDefaultShards);
  ~ShardedMemo() override;  // out-of-line: Shard is incomplete here

  bool Lookup(size_t pair_index, FeatureId feature,
              double* value) const override;
  void Store(size_t pair_index, FeatureId feature, double value) override;
  bool Contains(size_t pair_index, FeatureId feature) const override;
  size_t FilledCount() const override;
  size_t MemoryBytes() const override;
  void Clear() override;

  bool SafeForConcurrentRows() const override { return true; }

  size_t num_shards() const { return shards_.size(); }

  /// Attaches a memory budget (nullptr detaches and releases billing).
  /// Each shard bills its growth in chunks under its own mutex; when a
  /// reservation is denied, the memo first evicts its coldest shards
  /// (least-recently-accessed; recomputable cache, so always safe) and
  /// retries, and if the budget still refuses it drops the overflowing
  /// shard itself. Stores never fail — they just stop caching. The
  /// budget must outlive the memo.
  void SetBudget(MemoryBudget* budget);

  /// Evicts least-recently-accessed shards until at least `want` billed
  /// bytes are freed or all evictable shards are empty; returns the bytes
  /// freed. Shards whose lock is currently held (a concurrent Store) are
  /// skipped, which also makes this safe to call from within a budget
  /// reclaimer while some worker is mid-Store.
  size_t EvictColdestShards(size_t want);

  /// Evictions performed by budget pressure (self-evictions + explicit
  /// EvictColdestShards calls that freed something).
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard;

  static uint64_t Key(size_t pair_index, FeatureId feature) {
    return (static_cast<uint64_t>(pair_index) << 32) |
           static_cast<uint64_t>(feature);
  }
  const Shard& ShardFor(size_t pair_index) const {
    return *shards_[pair_index & (shards_.size() - 1)];
  }
  Shard& ShardFor(size_t pair_index) {
    return *shards_[pair_index & (shards_.size() - 1)];
  }
  /// Current heap estimate of one shard's map (caller holds its mutex).
  static size_t ShardBytes(const Shard& shard);

  std::vector<std::unique_ptr<Shard>> shards_;
  MemoryBudget* budget_ = nullptr;
  mutable std::atomic<uint64_t> access_clock_{1};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace emdbg

#endif  // EMDBG_CORE_MEMO_H_
