#ifndef EMDBG_CORE_MATCHING_FUNCTION_H_
#define EMDBG_CORE_MATCHING_FUNCTION_H_

#include <string>
#include <vector>

#include "src/core/rule.h"
#include "src/util/status.h"

namespace emdbg {

/// A DNF matching function: a disjunction of CNF rules (Sec. 3). A pair is
/// a match iff at least one rule is true. Rule order is the evaluation
/// order used by early-exit matchers; optimizers permute it.
///
/// Rules and predicates carry stable ids assigned at insertion, so the
/// incremental engine can key materialized state on them across edits and
/// reorderings.
class MatchingFunction {
 public:
  MatchingFunction() = default;

  size_t num_rules() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }
  const Rule& rule(size_t i) const { return rules_[i]; }
  Rule& mutable_rule(size_t i) { return rules_[i]; }
  const std::vector<Rule>& rules() const { return rules_; }

  /// Total number of predicates across all rules.
  size_t num_predicates() const;

  /// Adds a rule (copying it), assigning the rule and all its predicates
  /// fresh stable ids. Returns the rule's id.
  RuleId AddRule(Rule rule);

  /// Removes the rule with id `rid`. NotFound if absent.
  Status RemoveRule(RuleId rid);

  /// Adds `p` to rule `rid`, assigning the predicate a fresh stable id
  /// which is returned. NotFound if the rule is absent.
  Result<PredicateId> AddPredicate(RuleId rid, Predicate p);

  /// Removes predicate `pid` from rule `rid`.
  Status RemovePredicate(RuleId rid, PredicateId pid);

  /// Replaces the threshold of predicate `pid` in rule `rid`.
  Status SetThreshold(RuleId rid, PredicateId pid, double threshold);

  /// Position of rule `rid` in the current order, or num_rules() if absent.
  size_t FindRule(RuleId rid) const;

  /// Pointer to the rule with id `rid`, or nullptr.
  const Rule* RuleById(RuleId rid) const;
  Rule* MutableRuleById(RuleId rid);

  /// Reorders rules to the permutation `order` (indices into the current
  /// rule list).
  void PermuteRules(const std::vector<size_t>& order);

  /// Distinct features used anywhere in the function ("used features").
  std::vector<FeatureId> UsedFeatures() const;

  /// One rule per line.
  std::string ToString(const FeatureCatalog& catalog) const;

 private:
  std::vector<Rule> rules_;
  RuleId next_rule_id_ = 0;
  PredicateId next_predicate_id_ = 0;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_MATCHING_FUNCTION_H_
