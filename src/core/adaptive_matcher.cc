#include "src/core/adaptive_matcher.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/core/memo.h"
#include "src/core/rule_profile.h"
#include "src/util/stopwatch.h"

namespace emdbg {

MatchResult AdaptiveMemoMatcher::Run(const MatchingFunction& fn,
                                     const CandidateSet& pairs,
                                     PairContext& ctx,
                                     const RunControl& control) {
  Stopwatch timer;
  StopCheck stop(control);
  MatchResult result;
  result.matches = Bitmap(pairs.size());
  result.MarkComplete(pairs.size());

  const size_t n = fn.num_rules();
  std::vector<RuleProfile> profiles;
  profiles.reserve(n);
  for (const Rule& r : fn.rules()) {
    profiles.push_back(RuleProfile::Build(r, model_));
  }
  const double lookup = model_.lookup_cost_us();

  DenseMemo memo(pairs.size(), ctx.catalog().size());
  std::vector<double> scores(n);
  std::vector<size_t> rule_order(n);
  std::vector<size_t> pred_order;

  for (size_t i = 0; i < pairs.size(); ++i) {
    if (stop.ShouldStop()) {
      result.MarkPartialPrefix(i, pairs.size(), stop.Reason());
      break;
    }
    const PairId pair = pairs.pair(i);
    // Score every rule under the pair's actual memo contents (α ∈ {0,1}).
    for (size_t r = 0; r < n; ++r) {
      const RuleProfile& p = profiles[r];
      double cost = 0.0;
      for (size_t k = 0; k < p.prefix_sel.size(); ++k) {
        const double acquire =
            !p.first_on_feature[k] || memo.Contains(i, p.feature[k])
                ? lookup
                : p.feature_cost[k];
        cost += p.prefix_sel[k] * acquire;
      }
      scores[r] = cost;
    }
    std::iota(rule_order.begin(), rule_order.end(), size_t{0});
    std::sort(rule_order.begin(), rule_order.end(),
              [&](size_t x, size_t y) { return scores[x] < scores[y]; });

    for (const size_t r : rule_order) {
      const Rule& rule = fn.rule(r);
      if (rule.empty()) continue;
      ++result.stats.rule_evaluations;
      // Check-cache-first within the rule (Sec. 5.4.3).
      const size_t m = rule.size();
      pred_order.clear();
      for (size_t k = 0; k < m; ++k) {
        if (memo.Contains(i, rule.predicate(k).feature)) {
          pred_order.push_back(k);
        }
      }
      for (size_t k = 0; k < m; ++k) {
        if (!memo.Contains(i, rule.predicate(k).feature)) {
          pred_order.push_back(k);
        }
      }
      bool rule_true = true;
      for (const size_t k : pred_order) {
        const Predicate& p = rule.predicate(k);
        ++result.stats.predicate_evaluations;
        double value = 0.0;
        if (memo.Lookup(i, p.feature, &value)) {
          ++result.stats.memo_hits;
        } else {
          value = ctx.ComputeFeature(p.feature, pair);
          memo.Store(i, p.feature, value);
          ++result.stats.feature_computations;
        }
        if (!p.Test(value)) {
          rule_true = false;
          break;
        }
      }
      if (rule_true) {
        result.matches.Set(i);
        break;
      }
    }
  }
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace emdbg
