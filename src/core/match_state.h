#ifndef EMDBG_CORE_MATCH_STATE_H_
#define EMDBG_CORE_MATCH_STATE_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "src/core/matching_function.h"
#include "src/core/memo.h"
#include "src/util/bitmap.h"
#include "src/util/memory_budget.h"

namespace emdbg {

/// Materialized state carried between debugging iterations (Sec. 6.1):
///   * the memo of computed similarity values (shared Γ);
///   * per rule, the pairs for which that rule evaluated true;
///   * per predicate, the pairs for which that predicate evaluated false.
///
/// Bitmaps are keyed by stable rule/predicate ids, so rule reordering and
/// sibling removals do not invalidate them. A bit being *unset* in
/// rule_true / pred_false means "unknown or false/true respectively" —
/// early exit leaves many pairs unevaluated, and the incremental
/// algorithms only rely on set bits.
class MatchState {
 public:
  MatchState() = default;
  ~MatchState();

  /// Moves transfer the memory-budget billing with the memo — a default
  /// move would leave both states releasing the same reservation.
  MatchState(MatchState&& other) noexcept;
  MatchState& operator=(MatchState&& other) noexcept;
  MatchState(const MatchState&) = delete;
  MatchState& operator=(const MatchState&) = delete;

  /// Allocates the memo and the match bitmap for `num_pairs` pairs and
  /// `num_features` catalog features. Clears all rule/predicate bitmaps.
  /// This is the unbudgeted path (any prior billing is released);
  /// budget-aware callers use EnsureCapacity instead.
  void Initialize(size_t num_pairs, size_t num_features);

  /// Budget-aware Initialize/GrowFeatures: reserves the memo matrix bytes
  /// from the attached budget *before* allocating, so the dominant
  /// O(pairs × features) allocation fails as a clean ResourceExhausted
  /// instead of bad_alloc. On denial the existing state is untouched.
  /// Without an attached budget this is Initialize/GrowFeatures with an
  /// always-OK status. The decision bitmaps (1 bit per pair per rule) are
  /// small relative to the 4-byte-per-cell memo and stay unbilled.
  Status EnsureCapacity(size_t num_pairs, size_t num_features);

  /// Attaches `budget` (nullptr detaches) and bills the current memo
  /// bytes, for states loaded or adopted before a budget existed (resume,
  /// recovery). On denial the budget is not attached and the state is
  /// usable but unbudgeted.
  Status AttachBudget(MemoryBudget* budget);
  MemoryBudget* budget() const { return budget_; }

  bool initialized() const { return memo_ != nullptr; }
  size_t num_pairs() const { return num_pairs_; }

  DenseMemo& memo() { return *memo_; }
  const DenseMemo& memo() const { return *memo_; }

  Bitmap& matches() { return matches_; }
  const Bitmap& matches() const { return matches_; }

  /// Bitmap of pairs where rule `rid` is known true. Created empty (sized)
  /// on first access.
  Bitmap& RuleTrue(RuleId rid);
  /// Read-only peek; nullptr if the rule has no bitmap yet.
  const Bitmap* FindRuleTrue(RuleId rid) const;

  /// Bitmap of pairs where predicate `pid` is known false.
  Bitmap& PredFalse(PredicateId pid);
  const Bitmap* FindPredFalse(PredicateId pid) const;

  /// Drops state attached to removed rules/predicates.
  void EraseRule(RuleId rid) { rule_true_.erase(rid); }
  void ErasePredicate(PredicateId pid) { pred_false_.erase(pid); }

  /// Heap bytes of memo + bitmaps (the Sec. 7.4 accounting).
  size_t MemoryBytes() const;

  /// Formats a Sec. 7.4-style memory report.
  std::string MemoryReport() const;

  size_t num_rule_bitmaps() const { return rule_true_.size(); }
  size_t num_predicate_bitmaps() const { return pred_false_.size(); }

  /// Ids with materialized bitmaps (sorted; for persistence/iteration).
  std::vector<RuleId> RuleIdsWithState() const;
  std::vector<PredicateId> PredicateIdsWithState() const;

 private:
  /// Replaces memo + bitmaps for a new shape (no billing).
  void AllocateState(size_t num_pairs, size_t num_features);
  void ReleaseBilling();

  size_t num_pairs_ = 0;
  std::unique_ptr<DenseMemo> memo_;
  Bitmap matches_;
  std::unordered_map<RuleId, Bitmap> rule_true_;
  std::unordered_map<PredicateId, Bitmap> pred_false_;
  /// Billing for the memo matrix (see EnsureCapacity). The budget must
  /// outlive the state.
  MemoryBudget* budget_ = nullptr;
  size_t billed_bytes_ = 0;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_MATCH_STATE_H_
