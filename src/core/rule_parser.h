#ifndef EMDBG_CORE_RULE_PARSER_H_
#define EMDBG_CORE_RULE_PARSER_H_

#include <string_view>

#include "src/core/matching_function.h"
#include "src/util/status.h"

namespace emdbg {

/// Textual rule DSL — how an analyst writes rules in examples and tests.
///
/// Grammar (case-insensitive keywords, '#' comments to end of line):
///
///   function  := rule_line (("\n" | "OR") rule_line)*
///   rule_line := [name ":"] predicate ("AND" predicate)*
///   predicate := simfn "(" attrA "," attrB ")" op number
///   op        := ">=" | ">" | "<" | "<="
///
/// Example:
///   r1: jaccard(title, title) >= 0.7 AND exact_match(modelno, modelno) >= 1
///   r2: jaro_winkler(modelno, modelno) >= 0.97 AND cosine(title, title) >= 0.69
///
/// Features are interned into `catalog` on first use (attribute names must
/// exist in the respective schemas).
///
/// Defensive limits (ParseError when exceeded, so untrusted rule files
/// cannot trigger unbounded allocation): rule text <= 64 KiB, input text
/// <= 8 MiB, <= 256 predicates per rule, <= 4096 rules per function,
/// identifiers <= 256 bytes. Thresholds must be finite — NaN or infinity
/// (e.g. an overflowing literal like 1e999) is rejected.

/// Parses a single rule (no leading name handling beyond the grammar).
Result<Rule> ParseRule(std::string_view text, FeatureCatalog& catalog);

/// Parses a whole matching function: rules separated by newlines, ';', or
/// the keyword OR. Blank lines and comments are skipped.
Result<MatchingFunction> ParseMatchingFunction(std::string_view text,
                                               FeatureCatalog& catalog);

/// Persists a rule set as DSL text (one rule per line; round-trips
/// through ParseMatchingFunction, modulo rule/predicate ids).
Status SaveRulesFile(const MatchingFunction& fn,
                     const FeatureCatalog& catalog, const std::string& path);

/// Loads a rule-set file written by SaveRulesFile (or by hand).
Result<MatchingFunction> LoadRulesFile(const std::string& path,
                                       FeatureCatalog& catalog);

// ---- Precise DSL serialization. Unlike the display-oriented ToString
// methods (which round thresholds for readability), these print
// thresholds with enough digits that re-parsing reconstructs the
// identical double. Used by checkpointing and the durable edit journal,
// where exact round-trips matter. ----

std::string PredicateToDsl(const Predicate& p, const FeatureCatalog& catalog);

/// Single-line form "name: pred AND pred ..." — the name prefix is
/// emitted only when it is a plain identifier the grammar can re-parse.
/// The rule must be non-empty (the DSL cannot express empty rules).
std::string RuleToDsl(const Rule& rule, const FeatureCatalog& catalog);

std::string FunctionToDsl(const MatchingFunction& fn,
                          const FeatureCatalog& catalog);

}  // namespace emdbg

#endif  // EMDBG_CORE_RULE_PARSER_H_
