#ifndef EMDBG_CORE_EDIT_LOG_H_
#define EMDBG_CORE_EDIT_LOG_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/incremental.h"

namespace emdbg {

/// Append-only durable journal of session edits — the redo log behind
/// DebugSession's crash recovery. One text file:
///
///   EMDBGJ1 <epoch>\n                  header: format tag + checkpoint
///                                      epoch this journal extends
///   <crc32c-hex8> <payload>\n          one record per committed edit
///
/// Each record's CRC-32C covers its payload, so corruption is detected
/// line by line. Appends are flushed and fsync'd before returning — once
/// Append succeeds the edit survives a crash. A torn final line (crash
/// mid-append) is tolerated on read; a bad CRC anywhere earlier is
/// reported as ParseError.
///
/// Payloads are the concrete position-based edit commands DebugSession
/// replays (add_rule / remove_rule / add_pred / remove_pred /
/// set_threshold); the journal itself treats them as opaque single-line
/// strings.
class EditJournal {
 public:
  /// Creates (truncating) a journal for checkpoint `epoch` and syncs the
  /// header to disk.
  static Result<std::unique_ptr<EditJournal>> Create(
      const std::string& path, uint64_t epoch);

  /// Reopens an existing journal to append further records (after
  /// recovery has replayed it).
  static Result<std::unique_ptr<EditJournal>> OpenForAppend(
      const std::string& path);

  ~EditJournal();
  EditJournal(const EditJournal&) = delete;
  EditJournal& operator=(const EditJournal&) = delete;

  /// Appends one record (payload must be a single line without '\n') and
  /// fsyncs. The edit is durable once this returns Ok.
  Status Append(std::string_view payload);

  struct Contents {
    uint64_t epoch = 0;
    std::vector<std::string> records;
    /// True if the final line was incomplete or failed its CRC — the
    /// signature of a crash mid-append; the line is ignored.
    bool torn_tail = false;
  };

  /// Reads and verifies a journal. IoError if the file cannot be read,
  /// ParseError on a bad header or on corruption before the final line.
  static Result<Contents> Read(const std::string& path);

 private:
  explicit EditJournal(std::FILE* f) : file_(f) {}

  std::FILE* file_ = nullptr;
};

/// Recorded, undoable edit history over an IncrementalMatcher — the
/// session journal of the paper's debugging loop. Route edits through the
/// log instead of calling the matcher directly:
///
///   EditLog log;
///   log.SetThreshold(inc, rid, pid, 0.8);   // applied incrementally
///   log.Undo(inc);                          // restored incrementally
///
/// Undo re-applies the inverse edit through the same incremental
/// machinery, so it costs milliseconds, not a full re-run. Rules and
/// predicates re-created by an undo receive fresh stable ids; the log
/// transparently remaps older history entries to them.
class EditLog {
 public:
  EditLog() = default;

  /// Journal sink: receives one single-line payload per committed edit
  /// (see EditJournal) and persists it. A non-Ok return is propagated to
  /// the edit's caller — the in-memory edit stays applied, but the
  /// durable copy is behind, which the caller must surface.
  using JournalSink = std::function<Status(std::string_view payload)>;

  /// Enables journaling. `catalog` is used to serialize rules/predicates
  /// into replayable DSL and must outlive the log. Undo is journaled as
  /// its concrete inverse edit (e.g. undoing a threshold change journals
  /// a set_threshold back to the old value), so replaying a journal never
  /// depends on undo history that predates it. Pass nullptr/empty to
  /// disable.
  void SetJournal(const FeatureCatalog* catalog, JournalSink sink) {
    journal_catalog_ = catalog;
    journal_sink_ = std::move(sink);
  }

  // ---- Edits (forwarded to the matcher, recorded on success). ----
  Result<MatchStats> AddRule(IncrementalMatcher& inc, const Rule& rule);
  Result<MatchStats> RemoveRule(IncrementalMatcher& inc, RuleId rid);
  Result<MatchStats> AddPredicate(IncrementalMatcher& inc, RuleId rid,
                                  Predicate p);
  Result<MatchStats> RemovePredicate(IncrementalMatcher& inc, RuleId rid,
                                     PredicateId pid);
  Result<MatchStats> SetThreshold(IncrementalMatcher& inc, RuleId rid,
                                  PredicateId pid, double threshold);

  /// Reverts the most recent not-yet-undone edit. FailedPrecondition when
  /// the history is empty.
  Result<MatchStats> Undo(IncrementalMatcher& inc);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Human-readable history, most recent last.
  std::string Describe(const FeatureCatalog& catalog) const;

 private:
  enum class Kind {
    kAddRule,
    kRemoveRule,
    kAddPredicate,
    kRemovePredicate,
    kSetThreshold,
  };

  struct Entry {
    Kind kind;
    RuleId rule_id = kInvalidRule;
    PredicateId predicate_id = kInvalidPredicate;
    /// Snapshot for undo: removed rule (kRemoveRule), removed predicate
    /// (kRemovePredicate).
    Rule rule_snapshot;
    Predicate predicate_snapshot;
    double old_threshold = 0.0;
    double new_threshold = 0.0;
  };

  /// Resolve an id recorded earlier through the remap chains (ids change
  /// when an undo re-creates a rule/predicate).
  RuleId ResolveRule(RuleId rid) const;
  PredicateId ResolvePredicate(PredicateId pid) const;

  /// Sends `payload` to the journal sink, if one is attached.
  Status Journal(std::string_view payload);

  std::vector<Entry> entries_;
  std::unordered_map<RuleId, RuleId> rule_remap_;
  std::unordered_map<PredicateId, PredicateId> predicate_remap_;
  const FeatureCatalog* journal_catalog_ = nullptr;
  JournalSink journal_sink_;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_EDIT_LOG_H_
