#ifndef EMDBG_CORE_EDIT_LOG_H_
#define EMDBG_CORE_EDIT_LOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/incremental.h"

namespace emdbg {

/// Recorded, undoable edit history over an IncrementalMatcher — the
/// session journal of the paper's debugging loop. Route edits through the
/// log instead of calling the matcher directly:
///
///   EditLog log;
///   log.SetThreshold(inc, rid, pid, 0.8);   // applied incrementally
///   log.Undo(inc);                          // restored incrementally
///
/// Undo re-applies the inverse edit through the same incremental
/// machinery, so it costs milliseconds, not a full re-run. Rules and
/// predicates re-created by an undo receive fresh stable ids; the log
/// transparently remaps older history entries to them.
class EditLog {
 public:
  EditLog() = default;

  // ---- Edits (forwarded to the matcher, recorded on success). ----
  Result<MatchStats> AddRule(IncrementalMatcher& inc, const Rule& rule);
  Result<MatchStats> RemoveRule(IncrementalMatcher& inc, RuleId rid);
  Result<MatchStats> AddPredicate(IncrementalMatcher& inc, RuleId rid,
                                  Predicate p);
  Result<MatchStats> RemovePredicate(IncrementalMatcher& inc, RuleId rid,
                                     PredicateId pid);
  Result<MatchStats> SetThreshold(IncrementalMatcher& inc, RuleId rid,
                                  PredicateId pid, double threshold);

  /// Reverts the most recent not-yet-undone edit. FailedPrecondition when
  /// the history is empty.
  Result<MatchStats> Undo(IncrementalMatcher& inc);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Human-readable history, most recent last.
  std::string Describe(const FeatureCatalog& catalog) const;

 private:
  enum class Kind {
    kAddRule,
    kRemoveRule,
    kAddPredicate,
    kRemovePredicate,
    kSetThreshold,
  };

  struct Entry {
    Kind kind;
    RuleId rule_id = kInvalidRule;
    PredicateId predicate_id = kInvalidPredicate;
    /// Snapshot for undo: removed rule (kRemoveRule), removed predicate
    /// (kRemovePredicate).
    Rule rule_snapshot;
    Predicate predicate_snapshot;
    double old_threshold = 0.0;
    double new_threshold = 0.0;
  };

  /// Resolve an id recorded earlier through the remap chains (ids change
  /// when an undo re-creates a rule/predicate).
  RuleId ResolveRule(RuleId rid) const;
  PredicateId ResolvePredicate(PredicateId pid) const;

  std::vector<Entry> entries_;
  std::unordered_map<RuleId, RuleId> rule_remap_;
  std::unordered_map<PredicateId, PredicateId> predicate_remap_;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_EDIT_LOG_H_
