#ifndef EMDBG_CORE_ORDERING_H_
#define EMDBG_CORE_ORDERING_H_

#include <string_view>

#include "src/core/cost_model.h"
#include "src/core/matching_function.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace emdbg {

/// Rule/predicate ordering strategies evaluated in the paper's Fig. 3C.
enum class OrderingStrategy {
  kAsWritten,        ///< keep the analyst's order
  kRandom,           ///< random permutation of rules and predicates
  kIndependent,      ///< Lemma 1 + Theorem 1 (ignores memo interactions)
  kGreedyCost,       ///< Algorithm 5: min expected memo-aware rule cost
  kGreedyReduction,  ///< Algorithm 6: max expected overall cost reduction
};

const char* OrderingStrategyName(OrderingStrategy s);
Result<OrderingStrategy> OrderingStrategyFromName(std::string_view name);

/// Reorders the predicates of `rule` per Lemma 2 + Lemma 3: predicates are
/// grouped by feature; inside a group they run in ascending selectivity
/// (the second one costs only δ); groups run in ascending
/// rank = (sel(group) - 1) / cost(group).
void OrderRulePredicates(Rule& rule, const CostModel& model);

/// Lemma 3 for every rule of `fn`.
void OrderAllRulePredicates(MatchingFunction& fn, const CostModel& model);

/// Lemma 1: ascending (sel(p) - 1) / cost(p), ignoring shared features.
void OrderRulePredicatesIndependent(Rule& rule, const CostModel& model);

/// Theorem 1: rules in ascending rank(r) = -sel(r) / cost(r), with
/// predicates pre-ordered by Lemma 1. Assumes independence (no memo).
void OrderRulesIndependent(MatchingFunction& fn, const CostModel& model);

/// Shuffles rule order and each rule's predicate order.
void RandomizeOrder(MatchingFunction& fn, Rng& rng);

/// Applies a complete strategy (predicate ordering + rule ordering) in
/// place. `rng` is only consulted for kRandom (may be null otherwise).
void ApplyOrdering(MatchingFunction& fn, OrderingStrategy strategy,
                   const CostModel& model, Rng* rng);

}  // namespace emdbg

#endif  // EMDBG_CORE_ORDERING_H_
