#ifndef EMDBG_CORE_EARLY_EXIT_MATCHER_H_
#define EMDBG_CORE_EARLY_EXIT_MATCHER_H_

#include "src/core/matcher.h"

namespace emdbg {

/// Algorithm 3: early exit without memoing. A rule stops at its first
/// false predicate; a pair stops at its first true rule. Every predicate
/// evaluation still recomputes its similarity value from scratch.
class EarlyExitMatcher final : public Matcher {
 public:
  using Matcher::Run;
  MatchResult Run(const MatchingFunction& fn, const CandidateSet& pairs,
                  PairContext& ctx, const RunControl& control) override;
  const char* name() const override { return "EE"; }
};

}  // namespace emdbg

#endif  // EMDBG_CORE_EARLY_EXIT_MATCHER_H_
