#include "src/core/sampler.h"

#include <algorithm>

namespace emdbg {

CandidateSet SamplePairs(const CandidateSet& pairs, double fraction,
                         Rng& rng, size_t min_size) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  size_t k = static_cast<size_t>(fraction *
                                 static_cast<double>(pairs.size()));
  k = std::max(k, std::min(min_size, pairs.size()));
  CandidateSet out;
  out.Reserve(k);
  for (const size_t idx : rng.SampleIndices(pairs.size(), k)) {
    out.Add(pairs.pair(idx));
  }
  return out;
}

}  // namespace emdbg
