#ifndef EMDBG_CORE_DEBUG_SESSION_H_
#define EMDBG_CORE_DEBUG_SESSION_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/block/candidate_pairs.h"
#include "src/core/cost_model.h"
#include "src/core/edit_log.h"
#include "src/core/explain.h"
#include "src/core/incremental.h"
#include "src/core/match_result.h"
#include "src/core/ordering.h"
#include "src/core/rule_parser.h"
#include "src/core/state_io.h"
#include "src/util/random.h"

namespace emdbg {

/// The analyst-facing entry point: owns the two tables, the candidate
/// pairs, the feature catalog, and the evolving matching function, and
/// drives the paper's debugging loop (Fig. 1):
///
///   DebugSession session(a, b, candidates);
///   session.AddRuleText("jaccard(title, title) >= 0.7 AND ...");
///   session.Run();                         // full optimized run
///   session.Score(labels);                 // inspect quality
///   session.SetThreshold(rid, pid, 0.8);   // refine (incremental)
///   session.Score(labels);                 // inspect again
///
/// The first Run() estimates the cost model on a random sample, orders
/// rules/predicates with the configured strategy, and performs a full
/// DM+EE run. Subsequent edits are applied incrementally (Sec. 6) unless
/// Options::incremental is false, in which case every Run() re-evaluates
/// all rules (still reusing the memo — the "precomputation variation" of
/// Sec. 7.6).
class DebugSession {
 public:
  struct Options {
    OrderingStrategy ordering = OrderingStrategy::kGreedyReduction;
    bool check_cache_first = true;
    bool incremental = true;
    /// Sample fraction for cost/selectivity estimation (paper: 1%).
    double sample_fraction = 0.01;
    uint64_t seed = 42;
    /// Worker threads for full runs and incremental re-matching: 1 =
    /// serial (default), 0 = hardware_concurrency(), N = exactly N. The
    /// session owns one persistent work-stealing ThreadPool for its
    /// whole lifetime (threads spawn once, not per run); results are
    /// identical to serial for every value (see DESIGN.md, Threading
    /// model).
    size_t num_threads = 1;
    /// Memory accountant for everything large the session allocates —
    /// the memo matrix, token/id caches, interner arenas, per-worker
    /// scratch (null = unbudgeted). Typically a per-session child quota
    /// of a process-wide budget (see util/memory_budget.h). A denied
    /// reservation surfaces as ResourceExhausted from Run()/edits or
    /// degrades a cache layer with bit-identical results; it never
    /// aborts. Must outlive the session.
    MemoryBudget* budget = nullptr;
    /// Pairs per columnar block for full runs and incremental edits. 1
    /// (the default) = classic per-pair evaluation; 0 = cost-model-auto
    /// block size; >= 2 = explicit, rounded up to a multiple of 64 (see
    /// src/core/block_matcher.h). Match and decision bitmaps are
    /// identical in every mode; in block mode check_cache_first is
    /// ignored (block semantics are the ccf-off ordering) and
    /// cancellation lands on block boundaries.
    size_t block_size = 1;
    /// Out-of-core full runs (non-incremental mode only): stream the
    /// candidates through the ShardedMatchDriver — shard-sized memo
    /// slices bounded by `budget` instead of one O(pairs × features)
    /// matrix (see src/core/shard_driver.h). Match bitmaps are
    /// bit-identical; the memo is not retained between reruns (bounded
    /// RAM trades away the Sec. 7.6 precomputation reuse). Ignored in
    /// incremental mode, which needs the whole memo resident.
    bool sharded = false;
    /// Pairs per shard when `sharded`; 0 = derive from `budget`.
    size_t shard_pairs = 0;
  };

  /// Large allocations the session currently holds, by consumer (for
  /// the serve layer's stats and eviction decisions).
  struct MemoryFootprint {
    size_t memo_bytes = 0;         ///< memo matrix + decision bitmaps
    size_t token_cache_bytes = 0;  ///< per-record token lists
    size_t id_cache_bytes = 0;     ///< interned-id columns + weight rows
    size_t interner_bytes = 0;     ///< dictionary + arena
    size_t total() const {
      return memo_bytes + token_cache_bytes + id_cache_bytes +
             interner_bytes;
    }
  };

  /// Takes ownership of the data. The candidate pairs index into the
  /// tables' rows.
  DebugSession(Table a, Table b, CandidateSet pairs)
      : DebugSession(std::move(a), std::move(b), std::move(pairs),
                     Options{}) {}
  DebugSession(Table a, Table b, CandidateSet pairs, Options options);

  /// Shared-corpus constructor: many sessions (the multi-tenant debug
  /// service) reference one immutable copy of the tables and candidate
  /// set instead of each owning a private copy. The corpus must stay
  /// alive for the session's lifetime (the shared_ptrs enforce it) and is
  /// never mutated by the session — all mutable state (rules, memo,
  /// bitmaps, feature caches) is per-session.
  DebugSession(std::shared_ptr<const Table> a,
               std::shared_ptr<const Table> b,
               std::shared_ptr<const CandidateSet> pairs, Options options);

  DebugSession(const DebugSession&) = delete;
  DebugSession& operator=(const DebugSession&) = delete;

  FeatureCatalog& catalog() { return catalog_; }
  PairContext& context() { return *ctx_; }
  const CandidateSet& candidates() const { return *pairs_; }
  const Options& options() const { return options_; }

  /// The current matching function (authoritative copy).
  const MatchingFunction& function() const;

  // ---- Rule editing. Before the first Run() edits are free; afterwards
  // they are applied to the maintained result (incrementally when
  // enabled). ----

  /// Parses one DSL rule ("[name:] pred AND pred ...") and adds it.
  Result<RuleId> AddRuleText(std::string_view dsl);
  Result<RuleId> AddRule(Rule rule);
  Status RemoveRule(RuleId rid);
  Result<PredicateId> AddPredicate(RuleId rid, Predicate p);
  Status RemovePredicate(RuleId rid, PredicateId pid);
  Status SetThreshold(RuleId rid, PredicateId pid, double threshold);

  /// Reverts the most recent post-run edit (incremental mode only;
  /// edits before the first Run() and batch-mode edits are not journaled).
  Status Undo();

  /// Human-readable journal of post-run edits, oldest first.
  std::string History() const;

  // ---- Running and inspecting. ----

  /// Ensures the maintained result reflects the current rules. Returns
  /// the match bitmap (aligned with candidates()).
  const Bitmap& Run();

  /// Controlled variant: honours `control`'s cancellation token and
  /// deadline (checked once per candidate pair). When the run is stopped
  /// early the returned result is partial — `result.partial` is true,
  /// `result.status` says why (kCancelled / kDeadlineExceeded), and only
  /// the bits flagged in `result.evaluated` are meaningful. A partial
  /// first run does NOT mark the session as started: the memo keeps all
  /// values computed so far (a retry resumes cheaply), but edits stay in
  /// the pre-run regime until a run completes. When the maintained result
  /// is already up to date this returns it immediately as complete.
  MatchResult Run(const RunControl& control);

  /// True if Run() has been called at least once.
  bool has_run() const { return started_; }

  /// Work performed by the most recent Run()/edit.
  const MatchStats& last_stats() const { return last_stats_; }

  /// Cumulative work since construction.
  const MatchStats& total_stats() const { return total_stats_; }

  /// Quality against ground-truth labels (size must equal candidates()).
  QualityMetrics Score(const PairLabels& labels);

  /// Sec. 7.4-style memory accounting of the materialized state.
  std::string MemoryReport() const;

  /// Current per-consumer byte counts (memo, token caches, id caches,
  /// interner).
  MemoryFootprint Footprint() const;

  /// Per-rule activity from the materialized state: how many pairs each
  /// rule currently matches and how many pairs each of its predicates has
  /// rejected — the at-a-glance "which rules pull their weight" view.
  std::string RuleActivityReport() const;

  /// Full decision trace of one candidate pair under the current rules
  /// (see explain.h).
  MatchExplanation Explain(PairId pair);

  /// The rules that came closest to matching `pair`, with the smallest
  /// threshold gaps (see explain.h).
  std::vector<NearMiss> WhyNot(PairId pair, size_t top_k = 3);

  /// The cost model built at first Run() (null before).
  const CostModel* cost_model() const { return model_.get(); }

  /// The session's persistent worker pool, or null when running serially
  /// (Options::num_threads == 1).
  ThreadPool* pool() { return pool_.get(); }

  /// Re-estimates the cost model, re-orders all rules with the configured
  /// strategy, and performs a fresh full run. Useful after many edits
  /// have drifted away from the original ordering.
  MatchStats Reoptimize();

  /// Suspends the session to disk: `<prefix>.rules` (DSL) and
  /// `<prefix>.state` (binary memo + bitmaps). Requires a completed run
  /// in incremental mode.
  Status SaveSession(const std::string& prefix) const;

  /// Restores a suspended session into this (not-yet-run) session. The
  /// tables and candidate pairs must be the same ones the saved session
  /// used (e.g. regenerated from the same profile seed or reloaded from
  /// CSV). No similarity values are recomputed.
  Status ResumeSession(const std::string& prefix);

  // ---- Crash-safe durability. Once enabled, every committed edit is
  // appended to an fsync'd journal before the edit call returns, and the
  // full state (rules + memo + bitmaps) is checkpointed every N edits.
  // After a crash (kill -9 included), Recover() on a fresh session
  // rebuilds exactly the state of the last committed edit: it loads the
  // newest checkpoint and replays the journal records on top. ----

  /// Turns on durability in `dir` (created if missing). Requires a
  /// completed run in incremental mode — durability covers the
  /// interactive post-run editing loop. Writes an initial checkpoint
  /// immediately. `checkpoint_every` is the number of journaled edits
  /// after which the session checkpoints and truncates the journal.
  Status EnableDurability(const std::string& dir,
                          size_t checkpoint_every = 25);

  /// Forces a checkpoint now (normally automatic). Writes
  /// checkpoint.<epoch>.rules / .state, atomically repoints
  /// checkpoint.meta at the new epoch, starts a fresh journal, and
  /// removes the previous epoch's files. A crash at any point leaves
  /// either the old or the new checkpoint fully intact.
  Status Checkpoint();

  /// Restores a crashed durable session into this (not-yet-run) session:
  /// loads the checkpoint named by `dir`/checkpoint.meta, replays the
  /// journal, re-enables durability in `dir`, and writes a fresh
  /// checkpoint. The tables/candidates must match the crashed session's.
  /// ParseError on corrupt files (a torn final journal record — a crash
  /// mid-append — is tolerated and dropped; that edit never committed).
  Status Recover(const std::string& dir, size_t checkpoint_every = 25);

  bool durable() const { return journal_ != nullptr; }

  /// Journaled edits since the last checkpoint.
  size_t edits_since_checkpoint() const { return edits_since_checkpoint_; }

 private:
  /// First-run path: estimate, order, full run. Returns the full result;
  /// a partial one (stopped by `control`) leaves the session not-started.
  MatchResult FirstRun(const RunControl& control);

  /// Brings the cost model up to date with `fn`'s features and orders a
  /// freshly added rule's predicates (Lemma 3).
  void PrepareRule(Rule& rule);

  /// Options for constructing the incremental engine (check-cache-first
  /// plus the session's pool).
  IncrementalMatcher::Options IncOptions();

  /// Non-incremental full run of `fn_` into batch_state_ — parallel when
  /// the session has a pool, serial MemoMatcher otherwise (identical
  /// results either way).
  MatchResult BatchRun(const RunControl& control);

  /// Immutable corpus, possibly shared with other sessions (see the
  /// shared-corpus constructor). Only read after construction.
  std::shared_ptr<const Table> a_;
  std::shared_ptr<const Table> b_;
  std::shared_ptr<const CandidateSet> pairs_;
  Options options_;
  FeatureCatalog catalog_;
  std::unique_ptr<PairContext> ctx_;
  /// Persistent worker pool (null when num_threads == 1). Declared
  /// before the matchers that borrow it so it outlives them.
  std::unique_ptr<ThreadPool> pool_;
  Rng rng_;

  /// Authoritative function before the first run / in non-incremental
  /// mode.
  MatchingFunction fn_;
  /// Non-incremental mode: persistent state so the memo survives reruns.
  MatchState batch_state_;
  bool batch_dirty_ = true;

  std::unique_ptr<IncrementalMatcher> inc_;
  EditLog log_;
  std::unique_ptr<CostModel> model_;
  bool started_ = false;
  MatchStats last_stats_;
  MatchStats total_stats_;

  // ---- Durability (see EnableDurability). ----

  /// Writes checkpoint epoch_+1 and swaps the journal; shared by
  /// EnableDurability / Checkpoint / Recover.
  Status WriteCheckpoint();

  /// Routes committed edits into the journal and triggers the periodic
  /// checkpoint.
  void AttachJournalSink();

  /// Applies one journal payload during Recover (journaling is not yet
  /// attached, so replay does not re-journal).
  Status ApplyJournalRecord(std::string_view payload);

  std::string durability_dir_;
  uint64_t epoch_ = 0;
  size_t checkpoint_every_ = 0;
  size_t edits_since_checkpoint_ = 0;
  std::unique_ptr<EditJournal> journal_;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_DEBUG_SESSION_H_
