#ifndef EMDBG_CORE_PREDICATE_ORDER_H_
#define EMDBG_CORE_PREDICATE_ORDER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/memo.h"
#include "src/core/rule.h"

namespace emdbg {

/// Per-evaluation predicate order with small-buffer storage.
///
/// Every matcher builds, per (pair, rule), the evaluation order of the
/// rule's predicates — either as-written or the Sec. 5.4.3
/// check-cache-first partition (memoized features first, both halves
/// keeping the optimizer's relative order). This used to be a
/// `std::vector` rebuilt per rule evaluation; on the parallel hot path
/// that is one heap allocation per (pair, rule). Rules are short (the
/// paper's Products set has 4–9 predicates), so a small inline buffer
/// covers essentially every evaluation; longer rules spill to a reused
/// heap vector. One scratch instance per worker, reused across pairs.
class PredicateOrderScratch {
 public:
  static constexpr size_t kInlineCapacity = 16;

  /// Fills the order for `rule` at pair row `pair_index` and returns a
  /// pointer to rule.size() indices. The buffer is valid until the next
  /// Build call on this scratch.
  const uint32_t* Build(const Rule& rule, const Memo& memo,
                        size_t pair_index, bool check_cache_first) {
    const size_t m = rule.size();
    uint32_t* out = inline_;
    if (m > kInlineCapacity) {
      if (heap_.size() < m) heap_.resize(m);
      out = heap_.data();
    }
    if (!check_cache_first) {
      for (size_t k = 0; k < m; ++k) out[k] = static_cast<uint32_t>(k);
      return out;
    }
    // Stable partition: memoized features first (Sec. 5.4.3).
    size_t filled = 0;
    for (size_t k = 0; k < m; ++k) {
      if (memo.Contains(pair_index, rule.predicate(k).feature)) {
        out[filled++] = static_cast<uint32_t>(k);
      }
    }
    for (size_t k = 0; k < m; ++k) {
      if (!memo.Contains(pair_index, rule.predicate(k).feature)) {
        out[filled++] = static_cast<uint32_t>(k);
      }
    }
    return out;
  }

 private:
  uint32_t inline_[kInlineCapacity];
  std::vector<uint32_t> heap_;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_PREDICATE_ORDER_H_
