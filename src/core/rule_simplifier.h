#ifndef EMDBG_CORE_RULE_SIMPLIFIER_H_
#define EMDBG_CORE_RULE_SIMPLIFIER_H_

#include <string>
#include <vector>

#include "src/core/cost_model.h"
#include "src/core/matching_function.h"

namespace emdbg {

/// Static analysis of a rule set — the lint pass of the debugging loop.
/// As analysts accrete rules (the paper's 255-rule sets come from a
/// random forest), redundancies creep in; each finding here is a concrete
/// cleanup the analyst can apply with one incremental edit.
enum class FindingKind {
  /// Two lower bounds (or two upper bounds) on the same feature in one
  /// rule: the tighter one implies the looser one.
  kRedundantPredicate,
  /// Lower bound >= upper bound on the same feature: the rule can never
  /// fire.
  kUnsatisfiableRule,
  /// Every predicate of the subsuming rule is implied by some predicate
  /// of the subsumed rule (same features, tighter-or-equal thresholds):
  /// the subsumed rule can never add a match.
  kSubsumedRule,
  /// A predicate that passed every sample pair that reached it — it
  /// filters nothing and only costs time (sample-based, so advisory).
  kIneffectivePredicate,
};

const char* FindingKindName(FindingKind kind);

struct SimplifierFinding {
  FindingKind kind;
  RuleId rule_id = kInvalidRule;
  /// The redundant/ineffective predicate (predicate findings only).
  PredicateId predicate_id = kInvalidPredicate;
  /// The rule that makes `rule_id` redundant (kSubsumedRule only).
  RuleId by_rule_id = kInvalidRule;
  std::string description;
};

/// Logical analysis only (no sample needed): redundant predicates,
/// unsatisfiable rules, subsumed rules.
std::vector<SimplifierFinding> AnalyzeRules(const MatchingFunction& fn,
                                            const FeatureCatalog& catalog);

/// Adds sample-based kIneffectivePredicate findings (predicates with
/// selectivity >= `selectivity_threshold` on the model's sample).
std::vector<SimplifierFinding> AnalyzeRulesWithModel(
    const MatchingFunction& fn, const FeatureCatalog& catalog,
    const CostModel& model, double selectivity_threshold = 0.999);

}  // namespace emdbg

#endif  // EMDBG_CORE_RULE_SIMPLIFIER_H_
