#ifndef EMDBG_CORE_MEMO_MATCHER_H_
#define EMDBG_CORE_MEMO_MATCHER_H_

#include "src/core/match_state.h"
#include "src/core/matcher.h"

namespace emdbg {

/// Algorithm 4: early exit + dynamic memoing ("DM+EE"). A feature is
/// computed at most once per pair — the first predicate that needs it
/// computes and memoizes it; later references (same or other rules) pay
/// only the lookup cost δ.
///
/// With `check_cache_first` (Sec. 5.4.3), the predicates of each rule are
/// re-partitioned per pair so that predicates whose features are already
/// in the memo run first (keeping their relative optimizer order), and the
/// remaining predicates keep theirs.
class MemoMatcher final : public Matcher {
 public:
  struct Options {
    bool check_cache_first = false;
  };

  MemoMatcher() : MemoMatcher(Options{}) {}
  explicit MemoMatcher(Options options) : options_(options) {}

  using Matcher::Run;

  /// Runs with a private DenseMemo that is discarded afterwards.
  MatchResult Run(const MatchingFunction& fn, const CandidateSet& pairs,
                  PairContext& ctx, const RunControl& control) override;

  /// Runs against a caller-supplied memo (e.g. a HashMemo for the
  /// Sec. 7.4 dense-vs-sparse trade-off). The memo's prior contents are
  /// reused; no decision bitmaps are recorded.
  MatchResult RunWithMemo(const MatchingFunction& fn,
                          const CandidateSet& pairs, PairContext& ctx,
                          Memo& memo,
                          const RunControl& control = RunControl());

  /// Runs against persistent state: reuses `state`'s memo if already
  /// initialized (values computed in previous debugging iterations are
  /// reused, Sec. 6), and records the per-rule true / per-predicate false
  /// bitmaps the incremental algorithms need. Rule/predicate bitmaps are
  /// reset; the memo is not.
  ///
  /// If the run is stopped early (partial result), `state`'s decision
  /// bitmaps cover only the evaluated prefix; the memo keeps everything
  /// computed so far, so a re-run resumes cheaply. Callers must not treat
  /// a partial state as a complete materialization.
  MatchResult RunWithState(const MatchingFunction& fn,
                           const CandidateSet& pairs, PairContext& ctx,
                           MatchState& state,
                           const RunControl& control = RunControl());

  const char* name() const override { return "DM+EE"; }

 private:
  MatchResult RunImpl(const MatchingFunction& fn, const CandidateSet& pairs,
                      PairContext& ctx, MatchState* state, Memo& memo,
                      const RunControl& control);

  Options options_;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_MEMO_MATCHER_H_
