#ifndef EMDBG_CORE_GREEDY_REDUCTION_OPTIMIZER_H_
#define EMDBG_CORE_GREEDY_REDUCTION_OPTIMIZER_H_

#include <vector>

#include "src/core/cost_model.h"
#include "src/core/matching_function.h"

namespace emdbg {

/// Algorithm 6: greedy rule ordering by expected overall cost reduction.
///
/// For each not-yet-emitted rule r, reduction(r) sums, over the other
/// remaining rules r' sharing features with r, the expected savings that
/// executing r first would give r':
///
///   contribution(r', r, f) = sel(pred(f, r')) · Δ · (cost(f) − δ)
///   Δ = cache(f, after r) − cache(f, before) = (1 − cache(f)) · sel(prev(f, r))
///
/// The rule with maximum reduction is emitted next (ties broken by the
/// Algorithm 5 metric: smaller expected cost first), then the cache
/// probabilities are advanced and the remaining rules re-scored.
///
/// Returns the permutation without modifying fn.
std::vector<size_t> GreedyReductionOrder(const MatchingFunction& fn,
                                         const CostModel& model);

/// Orders predicates (Lemma 3) and applies GreedyReductionOrder in place.
void ApplyGreedyReductionOrder(MatchingFunction& fn, const CostModel& model);

}  // namespace emdbg

#endif  // EMDBG_CORE_GREEDY_REDUCTION_OPTIMIZER_H_
