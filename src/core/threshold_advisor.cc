#include "src/core/threshold_advisor.h"

#include <cmath>

#include "src/core/match_result.h"
#include "src/core/memo.h"
#include "src/util/string_util.h"

namespace emdbg {

namespace {

/// Evaluates `fn` over all pairs with the candidate threshold substituted
/// into the target predicate, using `memo` for feature values.
ThresholdOption EvaluateOption(const MatchingFunction& fn, size_t rule_pos,
                               size_t pred_pos, double threshold,
                               const CandidateSet& pairs,
                               const PairLabels& labels, PairContext& ctx,
                               Memo& memo) {
  ThresholdOption opt;
  opt.threshold = threshold;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const PairId pair = pairs.pair(i);
    bool matched = false;
    for (size_t r = 0; r < fn.num_rules() && !matched; ++r) {
      const Rule& rule = fn.rule(r);
      if (rule.empty()) continue;
      bool rule_true = true;
      for (size_t k = 0; k < rule.size(); ++k) {
        Predicate p = rule.predicate(k);
        if (r == rule_pos && k == pred_pos) p.threshold = threshold;
        double value = 0.0;
        if (!memo.Lookup(i, p.feature, &value)) {
          value = ctx.ComputeFeature(p.feature, pair);
          memo.Store(i, p.feature, value);
        }
        if (!p.Test(value)) {
          rule_true = false;
          break;
        }
      }
      matched = rule_true;
    }
    const bool truth = labels.Get(i);
    if (matched && truth) {
      ++opt.true_positives;
    } else if (matched && !truth) {
      ++opt.false_positives;
    } else if (!matched && truth) {
      ++opt.false_negatives;
    }
  }
  const double tp = static_cast<double>(opt.true_positives);
  if (opt.true_positives + opt.false_positives > 0) {
    opt.precision =
        tp / static_cast<double>(opt.true_positives + opt.false_positives);
  }
  if (opt.true_positives + opt.false_negatives > 0) {
    opt.recall =
        tp / static_cast<double>(opt.true_positives + opt.false_negatives);
  }
  if (opt.precision + opt.recall > 0.0) {
    opt.f1 = 2.0 * opt.precision * opt.recall / (opt.precision + opt.recall);
  }
  return opt;
}

}  // namespace

Result<ThresholdAdvice> AdviseThreshold(const MatchingFunction& fn,
                                        RuleId rid, PredicateId pid,
                                        const CandidateSet& pairs,
                                        const PairLabels& labels,
                                        PairContext& ctx, size_t num_steps,
                                        double lo, double hi) {
  const size_t rule_pos = fn.FindRule(rid);
  if (rule_pos == fn.num_rules()) {
    return Status::NotFound(StrFormat("rule %u not found", rid));
  }
  const Rule& rule = fn.rule(rule_pos);
  const size_t pred_pos = rule.FindPredicate(pid);
  if (pred_pos == rule.size()) {
    return Status::NotFound(
        StrFormat("predicate %u not found in rule %u", pid, rid));
  }
  if (labels.size() != pairs.size()) {
    return Status::InvalidArgument("labels size must match pairs size");
  }
  if (num_steps < 2) num_steps = 2;

  ThresholdAdvice advice;
  advice.rule_id = rid;
  advice.predicate_id = pid;
  const double current = rule.predicate(pred_pos).threshold;

  DenseMemo memo(pairs.size(), ctx.catalog().size());
  advice.options.reserve(num_steps);
  for (size_t s = 0; s < num_steps; ++s) {
    const double t =
        lo + (hi - lo) * static_cast<double>(s) /
                 static_cast<double>(num_steps - 1);
    advice.options.push_back(EvaluateOption(fn, rule_pos, pred_pos, t,
                                            pairs, labels, ctx, memo));
  }
  // Best F1; break ties toward the current threshold (smallest change).
  double best_f1 = -1.0;
  double best_dist = 0.0;
  for (size_t s = 0; s < advice.options.size(); ++s) {
    const ThresholdOption& opt = advice.options[s];
    const double dist = std::fabs(opt.threshold - current);
    if (opt.f1 > best_f1 ||
        (opt.f1 == best_f1 && dist < best_dist)) {
      best_f1 = opt.f1;
      best_dist = dist;
      advice.best_index = s;
    }
  }
  return advice;
}

}  // namespace emdbg
