#ifndef EMDBG_CORE_THRESHOLD_ADVISOR_H_
#define EMDBG_CORE_THRESHOLD_ADVISOR_H_

#include <vector>

#include "src/block/candidate_pairs.h"
#include "src/core/matching_function.h"
#include "src/core/pair_context.h"

namespace emdbg {

/// Analyst aid for the refine step: given labeled pairs, score candidate
/// thresholds for a predicate and suggest the one that maximizes F1 of
/// the *whole matching function* with that threshold substituted.
///
/// This closes the paper's debugging loop: `explain`/`FindNearMisses`
/// point at the predicate to blame, the advisor proposes where to move
/// its threshold.

/// One evaluated threshold option.
struct ThresholdOption {
  double threshold = 0.0;
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Result of a sweep over candidate thresholds for one predicate.
struct ThresholdAdvice {
  RuleId rule_id = kInvalidRule;
  PredicateId predicate_id = kInvalidPredicate;
  /// Evaluated options, ascending by threshold.
  std::vector<ThresholdOption> options;
  /// Index into `options` of the F1-maximal choice (ties: closest to the
  /// current threshold).
  size_t best_index = 0;

  const ThresholdOption& best() const { return options[best_index]; }
};

/// Sweeps `num_steps` evenly spaced thresholds in [lo, hi] for predicate
/// `pid` of rule `rid`, evaluating the full function on `pairs` against
/// `labels` for each. Uses a private memo so repeated sweeps are cheap.
/// Returns NotFound if the rule/predicate does not exist.
Result<ThresholdAdvice> AdviseThreshold(const MatchingFunction& fn,
                                        RuleId rid, PredicateId pid,
                                        const CandidateSet& pairs,
                                        const PairLabels& labels,
                                        PairContext& ctx,
                                        size_t num_steps = 21,
                                        double lo = 0.0, double hi = 1.0);

}  // namespace emdbg

#endif  // EMDBG_CORE_THRESHOLD_ADVISOR_H_
