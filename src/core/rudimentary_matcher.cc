#include "src/core/rudimentary_matcher.h"

#include "src/util/stopwatch.h"

namespace emdbg {

MatchResult RudimentaryMatcher::Run(const MatchingFunction& fn,
                                    const CandidateSet& pairs,
                                    PairContext& ctx,
                                    const RunControl& control) {
  Stopwatch timer;
  StopCheck stop(control);
  MatchResult result;
  result.matches = Bitmap(pairs.size());
  result.MarkComplete(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (stop.ShouldStop()) {
      result.MarkPartialPrefix(i, pairs.size(), stop.Reason());
      break;
    }
    const PairId pair = pairs.pair(i);
    bool any_rule_true = false;
    for (const Rule& rule : fn.rules()) {
      ++result.stats.rule_evaluations;
      bool rule_true = true;
      for (const Predicate& p : rule.predicates()) {
        ++result.stats.predicate_evaluations;
        ++result.stats.feature_computations;
        const double value = ctx.ComputeFeature(p.feature, pair);
        // No early exit: the conjunction result is folded but every
        // predicate is still evaluated (Algorithm 1, lines 5-7).
        rule_true = rule_true && p.Test(value);
      }
      any_rule_true = any_rule_true || (rule_true && !rule.empty());
    }
    if (any_rule_true) result.matches.Set(i);
  }
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace emdbg
