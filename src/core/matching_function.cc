#include "src/core/matching_function.h"

#include <algorithm>
#include <cassert>

#include "src/util/string_util.h"

namespace emdbg {

size_t MatchingFunction::num_predicates() const {
  size_t n = 0;
  for (const Rule& r : rules_) n += r.size();
  return n;
}

RuleId MatchingFunction::AddRule(Rule rule) {
  rule.set_id(next_rule_id_++);
  for (size_t i = 0; i < rule.size(); ++i) {
    rule.mutable_predicate(i).id = next_predicate_id_++;
  }
  if (rule.name().empty()) {
    rule.set_name(StrFormat("r%u", rule.id()));
  }
  rules_.push_back(std::move(rule));
  return rules_.back().id();
}

Status MatchingFunction::RemoveRule(RuleId rid) {
  const size_t pos = FindRule(rid);
  if (pos == rules_.size()) {
    return Status::NotFound(StrFormat("rule %u not found", rid));
  }
  rules_.erase(rules_.begin() + static_cast<ptrdiff_t>(pos));
  return Status::Ok();
}

Result<PredicateId> MatchingFunction::AddPredicate(RuleId rid, Predicate p) {
  Rule* rule = MutableRuleById(rid);
  if (rule == nullptr) {
    return Status::NotFound(StrFormat("rule %u not found", rid));
  }
  p.id = next_predicate_id_++;
  rule->AddPredicate(p);
  return p.id;
}

Status MatchingFunction::RemovePredicate(RuleId rid, PredicateId pid) {
  Rule* rule = MutableRuleById(rid);
  if (rule == nullptr) {
    return Status::NotFound(StrFormat("rule %u not found", rid));
  }
  if (!rule->RemovePredicateById(pid)) {
    return Status::NotFound(
        StrFormat("predicate %u not found in rule %u", pid, rid));
  }
  return Status::Ok();
}

Status MatchingFunction::SetThreshold(RuleId rid, PredicateId pid,
                                      double threshold) {
  Rule* rule = MutableRuleById(rid);
  if (rule == nullptr) {
    return Status::NotFound(StrFormat("rule %u not found", rid));
  }
  const size_t pos = rule->FindPredicate(pid);
  if (pos == rule->size()) {
    return Status::NotFound(
        StrFormat("predicate %u not found in rule %u", pid, rid));
  }
  rule->mutable_predicate(pos).threshold = threshold;
  return Status::Ok();
}

size_t MatchingFunction::FindRule(RuleId rid) const {
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].id() == rid) return i;
  }
  return rules_.size();
}

const Rule* MatchingFunction::RuleById(RuleId rid) const {
  const size_t pos = FindRule(rid);
  return pos == rules_.size() ? nullptr : &rules_[pos];
}

Rule* MatchingFunction::MutableRuleById(RuleId rid) {
  const size_t pos = FindRule(rid);
  return pos == rules_.size() ? nullptr : &rules_[pos];
}

void MatchingFunction::PermuteRules(const std::vector<size_t>& order) {
  assert(order.size() == rules_.size());
  std::vector<Rule> reordered;
  reordered.reserve(rules_.size());
  for (size_t idx : order) reordered.push_back(std::move(rules_[idx]));
  rules_ = std::move(reordered);
}

std::vector<FeatureId> MatchingFunction::UsedFeatures() const {
  std::vector<FeatureId> out;
  for (const Rule& r : rules_) {
    for (const FeatureId f : r.Features()) {
      if (std::find(out.begin(), out.end(), f) == out.end()) {
        out.push_back(f);
      }
    }
  }
  return out;
}

std::string MatchingFunction::ToString(const FeatureCatalog& catalog) const {
  std::vector<std::string> lines;
  lines.reserve(rules_.size());
  for (const Rule& r : rules_) lines.push_back(r.ToString(catalog));
  return Join(lines, "\n");
}

}  // namespace emdbg
