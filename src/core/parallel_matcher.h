#ifndef EMDBG_CORE_PARALLEL_MATCHER_H_
#define EMDBG_CORE_PARALLEL_MATCHER_H_

#include "src/core/matcher.h"

namespace emdbg {

/// Multi-threaded DM+EE (Algorithm 4). Candidate pairs are independent
/// (Sec. 7.5's linearity observation), so the pair loop parallelizes
/// embarrassingly: the dense memo is partitioned by pair row, and the
/// shared token caches / TF-IDF models are prewarmed before the parallel
/// phase so worker threads only read shared state.
///
/// An extension beyond the paper (which is single-threaded Java); the
/// speedup compounds with the paper's techniques since they all reduce
/// per-pair work.
class ParallelMemoMatcher final : public Matcher {
 public:
  struct Options {
    /// 0 = std::thread::hardware_concurrency().
    size_t num_threads = 0;
    bool check_cache_first = false;
  };

  ParallelMemoMatcher() : ParallelMemoMatcher(Options{}) {}
  explicit ParallelMemoMatcher(Options options) : options_(options) {}

  using Matcher::Run;

  /// Cancellation/deadline: every worker checks `control` once per pair
  /// and drains cleanly; all threads are joined before Run returns (no
  /// detached or leaked threads). On a partial result, `evaluated` is the
  /// union of the per-worker completed ranges — not necessarily a prefix.
  MatchResult Run(const MatchingFunction& fn, const CandidateSet& pairs,
                  PairContext& ctx, const RunControl& control) override;

  const char* name() const override { return "DM+EE(parallel)"; }

 private:
  Options options_;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_PARALLEL_MATCHER_H_
