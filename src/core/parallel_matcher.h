#ifndef EMDBG_CORE_PARALLEL_MATCHER_H_
#define EMDBG_CORE_PARALLEL_MATCHER_H_

#include "src/core/cost_model.h"
#include "src/core/match_state.h"
#include "src/core/matcher.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace emdbg {

/// Multi-threaded DM+EE (Algorithm 4). Candidate pairs are independent
/// (Sec. 7.5's linearity observation), so the pair loop parallelizes: the
/// dense memo partitions by pair row, and the shared token caches /
/// TF-IDF models are prewarmed before the parallel phase so worker
/// threads only read shared state.
///
/// Scheduling is dynamic: workers claim 64-aligned chunks from a
/// work-stealing ThreadPool instead of static equal partitions. Early
/// exit makes per-pair cost wildly skewed (a match stops at its first
/// true rule; a non-match evaluates every rule), so a static carve-up
/// lets one unlucky chunk dominate wall-clock; chunk claiming + stealing
/// keeps all workers busy until the range drains. The 64-index chunk
/// alignment (ThreadPool::kIndexAlign) also means workers never share a
/// bitmap word, so RunWithState records the per-rule/per-predicate
/// decision bitmaps concurrently with zero locking.
///
/// Every pair's evaluation touches only its own memo row and bitmap bit,
/// so the output — match bits, decision bitmaps, even the MatchStats
/// counters — is bit-identical to the serial MemoMatcher for every
/// thread count and schedule.
///
/// An extension beyond the paper (which is single-threaded Java); the
/// speedup compounds with the paper's techniques since they all reduce
/// per-pair work.
class ParallelMemoMatcher final : public Matcher {
 public:
  struct Options {
    /// Used only when `pool` is null: 0 = hardware_concurrency(). A
    /// private pool is then created (and its threads spawned) per Run —
    /// prefer passing a persistent `pool`.
    size_t num_threads = 0;
    bool check_cache_first = false;
    /// Borrowed persistent pool (e.g. the DebugSession's); must outlive
    /// the matcher's runs. Overrides num_threads.
    ThreadPool* pool = nullptr;
    /// When false, each worker only drains its static equal span — the
    /// pre-work-stealing baseline, kept for benchmarking the scheduler.
    bool dynamic_schedule = true;
    /// Items per claimed chunk; 0 = auto.
    size_t grain = 0;
    /// Debug/bench hook: when set, resized to the worker count and
    /// filled with each worker's MatchStats (their sum equals the
    /// result's stats, minus elapsed_ms which is wall-clock).
    std::vector<MatchStats>* per_worker_stats = nullptr;
    /// When set, the per-worker scratch (stats + predicate-order
    /// buffers) is reserved from this budget before workers start; a
    /// denied reservation yields a clean ResourceExhausted result with
    /// zero pairs evaluated. The budget must outlive the run.
    MemoryBudget* budget = nullptr;
    /// Pairs per columnar block. 1 (the default) = the classic per-pair
    /// loop above. Any other value switches to the BlockEvaluator: each
    /// 64-aligned block of pairs becomes the work-stealing unit, one
    /// feature is evaluated across the whole block at a time, and rules
    /// combine via bitmap algebra (see src/core/block_matcher.h). 0 =
    /// auto-size (BlockMatcher::AutoBlockSize); explicit values round up
    /// to a multiple of 64. Results stay bit-identical either way;
    /// check_cache_first is ignored in block mode (block semantics are
    /// the ccf-off ordering), and cancellation is checked once per block
    /// instead of once per pair.
    size_t block_size = 1;
    /// Optional cost model for the auto block size (block mode only).
    const CostModel* cost_model = nullptr;
  };

  ParallelMemoMatcher() : ParallelMemoMatcher(Options{}) {}
  explicit ParallelMemoMatcher(Options options);

  using Matcher::Run;

  /// Cancellation/deadline: every worker checks `control` once per pair
  /// and drains cleanly; all workers quiesce before Run returns (no
  /// detached or leaked threads). On a partial result, `evaluated` is
  /// exactly the set of pairs whose evaluation completed — a union of
  /// claimed chunks, not necessarily a prefix.
  MatchResult Run(const MatchingFunction& fn, const CandidateSet& pairs,
                  PairContext& ctx, const RunControl& control) override;

  /// Runs against a caller-supplied memo whose prior contents are
  /// reused. The memo must be safe for concurrent distinct-row access
  /// (DenseMemo, ShardedMemo); a memo that is not (HashMemo) yields an
  /// InvalidArgument result with zero pairs evaluated instead of a data
  /// race.
  MatchResult RunWithMemo(const MatchingFunction& fn,
                          const CandidateSet& pairs, PairContext& ctx,
                          Memo& memo,
                          const RunControl& control = RunControl());

  /// Parallel equivalent of MemoMatcher::RunWithState: reuses `state`'s
  /// memo and records the per-rule true / per-predicate false bitmaps
  /// the incremental engine needs. Decision bitmaps are pre-materialized
  /// serially, then written by workers at their own pair bits only
  /// (64-aligned chunks: no shared words). Output state is identical to
  /// the serial matcher's.
  MatchResult RunWithState(const MatchingFunction& fn,
                           const CandidateSet& pairs, PairContext& ctx,
                           MatchState& state,
                           const RunControl& control = RunControl());

  const char* name() const override { return "DM+EE(parallel)"; }

 private:
  MatchResult RunImpl(const MatchingFunction& fn, const CandidateSet& pairs,
                      PairContext& ctx, MatchState* state, Memo& memo,
                      const RunControl& control);

  /// Block-mode body of RunImpl (Options::block_size != 1): blocks are
  /// the scheduling unit; each worker owns a BlockEvaluator::Scratch.
  MatchResult RunBlocks(const MatchingFunction& fn,
                        const CandidateSet& pairs, PairContext& ctx,
                        MatchState* state, Memo& memo,
                        const RunControl& control, ThreadPool& pool,
                        const Stopwatch& timer);

  /// The configured pool, creating a private one on first use if none
  /// was supplied.
  ThreadPool& pool();

  Options options_;
  std::unique_ptr<ThreadPool> owned_pool_;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_PARALLEL_MATCHER_H_
