#ifndef EMDBG_CORE_RULE_GENERATOR_H_
#define EMDBG_CORE_RULE_GENERATOR_H_

#include <vector>

#include "src/core/matching_function.h"
#include "src/core/pair_context.h"
#include "src/util/random.h"

namespace emdbg {

/// Configuration for synthetic rule-set generation. Defaults mirror the
/// paper's Products rule set: 255 rules, ~6.6 predicates per rule
/// (1688 / 255), 32 of 33 catalog features used, thresholds placed on the
/// observed feature-value distribution so predicate selectivities are
/// realistic (neither always-true nor always-false).
struct RuleGeneratorConfig {
  size_t num_rules = 255;
  size_t min_predicates = 4;
  size_t max_predicates = 9;
  /// Fraction of predicates that are upper bounds (feature < t), like the
  /// mixed-direction random-forest rules in the paper's Fig. 4.
  double upper_bound_fraction = 0.3;
  /// How many distinct catalog features the rule set draws from (0 = all).
  size_t feature_pool = 0;
  /// Zipf skew of feature popularity across rules; > 0 makes some features
  /// appear in many rules (which is what makes memoing pay off).
  double feature_skew = 0.8;
  /// Optional override of the threshold-quantile draw (both bound kinds).
  /// Negative = keep the built-in ranges (0.55–0.98 upper, 0.55–0.95
  /// lower). Setting e.g. lo=0.97, hi=0.999 yields highly selective
  /// rules that rarely match — the realistic low-match-rate regime of
  /// production EM, where the DNF loop must try every rule per pair.
  double quantile_lo = -1.0;
  double quantile_hi = -1.0;
  uint64_t seed = 7;
};

/// Generates random CNF rule sets whose thresholds are quantiles of the
/// feature values observed on a sample of candidate pairs.
class RuleGenerator {
 public:
  /// Computes feature-value samples for every catalog feature over
  /// `sample` (this is the expensive part; reuse one generator for many
  /// rule sets).
  RuleGenerator(PairContext& ctx, const CandidateSet& sample,
                RuleGeneratorConfig config);

  /// One random rule (no stable ids; assign by adding to a function).
  Rule GenerateRule(Rng& rng) const;

  /// A full rule set of config.num_rules rules.
  MatchingFunction Generate() const;

  /// A pool of rules for incremental sweeps (rules not yet in a function).
  std::vector<Rule> GenerateRules(size_t count, Rng& rng) const;

  const RuleGeneratorConfig& config() const { return config_; }

 private:
  /// Quantile of feature f's sampled values.
  double FeatureQuantile(FeatureId f, double q) const;

  RuleGeneratorConfig config_;
  std::vector<FeatureId> pool_;
  std::vector<std::vector<double>> sorted_values_;  // per catalog feature
};

}  // namespace emdbg

#endif  // EMDBG_CORE_RULE_GENERATOR_H_
