#ifndef EMDBG_CORE_EXHAUSTIVE_OPTIMIZER_H_
#define EMDBG_CORE_EXHAUSTIVE_OPTIMIZER_H_

#include <vector>

#include "src/core/cost_model.h"
#include "src/core/matching_function.h"
#include "src/util/status.h"

namespace emdbg {

/// Brute-force optimal rule ordering under the Sec. 4.4.4 memo-aware cost
/// model. The general problem is NP-hard (Sec. 5.4, by reduction from
/// TSP), so this enumerates all n! permutations and is only admissible for
/// small rule sets — its purpose is validating how close the greedy
/// Algorithms 5/6 get to the true model-optimal order (an ablation the
/// paper does not run but that the cost model makes possible).
///
/// Predicate order inside each rule is taken as-is (callers normally apply
/// Lemma 3 first). Returns InvalidArgument if fn has more than
/// `max_rules` rules.
Result<std::vector<size_t>> ExhaustiveOptimalOrder(
    const MatchingFunction& fn, const CostModel& model,
    size_t max_rules = 9);

/// Expected per-pair cost (µs) of evaluating the rules in the given
/// permutation, under the memo-aware model with sample-exact rule-reach
/// probabilities. Exposed so ablations can score greedy orders with
/// exactly the same evaluator.
double OrderCostWithMemo(const MatchingFunction& fn, const CostModel& model,
                         const std::vector<size_t>& order);

}  // namespace emdbg

#endif  // EMDBG_CORE_EXHAUSTIVE_OPTIMIZER_H_
