#ifndef EMDBG_CORE_RULE_H_
#define EMDBG_CORE_RULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/predicate.h"

namespace emdbg {

/// Stable identifier of a rule within a MatchingFunction (survives
/// reordering and removal of sibling rules).
using RuleId = uint32_t;

inline constexpr RuleId kInvalidRule = 0xffffffffu;

/// A CNF rule: a conjunction of predicates. Predicate order is the
/// *evaluation* order used by early-exit matchers; optimizers permute it.
class Rule {
 public:
  Rule() = default;
  explicit Rule(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  RuleId id() const { return id_; }
  void set_id(RuleId id) { id_ = id; }

  size_t size() const { return predicates_.size(); }
  bool empty() const { return predicates_.empty(); }
  const Predicate& predicate(size_t i) const { return predicates_[i]; }
  Predicate& mutable_predicate(size_t i) { return predicates_[i]; }
  const std::vector<Predicate>& predicates() const { return predicates_; }

  void AddPredicate(Predicate p) { predicates_.push_back(p); }

  /// Removes the predicate with stable id `pid`; false if absent.
  bool RemovePredicateById(PredicateId pid);

  /// Position of the predicate with id `pid`, or size() if absent.
  size_t FindPredicate(PredicateId pid) const;

  /// Distinct features used by this rule, in first-appearance order
  /// (feature(r) in the paper).
  std::vector<FeatureId> Features() const;

  /// Positions of the predicates referring to `feature`, in order
  /// (predicate(f, r) in the paper; at most 2 in canonical rules:
  /// one lower bound and one upper bound).
  std::vector<size_t> PredicatesOnFeature(FeatureId feature) const;

  /// Reorders predicates to the permutation `order` (indices into the
  /// current predicate list; must be a permutation — checked in debug).
  void Permute(const std::vector<size_t>& order);

  /// True if no feature has two predicates of the same bound kind
  /// (the canonical-form assumption of Sec. 5.4).
  bool IsCanonical() const;

  std::string ToString(const FeatureCatalog& catalog) const;

 private:
  std::string name_;
  RuleId id_ = kInvalidRule;
  std::vector<Predicate> predicates_;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_RULE_H_
