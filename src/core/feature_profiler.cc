#include "src/core/feature_profiler.h"

#include <algorithm>
#include <vector>

#include "src/util/string_util.h"

namespace emdbg {

namespace {

size_t BucketOf(double value) {
  const size_t b = static_cast<size_t>(value * FeatureProfile::kBuckets);
  return std::min(b, FeatureProfile::kBuckets - 1);
}

std::string Bar(size_t count, size_t max_count, size_t width) {
  if (max_count == 0) return "";
  const size_t len = count * width / max_count;
  return std::string(len, '#');
}

}  // namespace

std::string FeatureProfile::ToString(const FeatureCatalog& catalog) const {
  std::string out = StrFormat(
      "%s over %zu matches / %zu non-matches\n"
      "mean(match)=%.3f mean(non-match)=%.3f AUC=%.3f\n",
      catalog.Name(feature).c_str(), matches, nonmatches, match_mean,
      nonmatch_mean, auc);
  // Normalize each column independently: match and non-match counts are
  // usually orders of magnitude apart, and the analyst reads the shapes.
  size_t max_match = 1;
  size_t max_nonmatch = 1;
  for (size_t b = 0; b < kBuckets; ++b) {
    max_match = std::max(max_match, match_hist[b]);
    max_nonmatch = std::max(max_nonmatch, nonmatch_hist[b]);
  }
  out += StrFormat("%11s %-22s %-22s\n", "bucket", "matches",
                   "non-matches");
  for (size_t b = 0; b < kBuckets; ++b) {
    out += StrFormat(
        "[%.1f, %.1f%c %-22s %-22s\n", static_cast<double>(b) / kBuckets,
        static_cast<double>(b + 1) / kBuckets,
        b + 1 == kBuckets ? ']' : ')',
        Bar(match_hist[b], max_match, 20).c_str(),
        Bar(nonmatch_hist[b], max_nonmatch, 20).c_str());
  }
  return out;
}

Result<FeatureProfile> ProfileFeature(FeatureId feature,
                                      const CandidateSet& pairs,
                                      const PairLabels& labels,
                                      PairContext& ctx, size_t max_pairs) {
  if (labels.size() != pairs.size()) {
    return Status::InvalidArgument("labels size must match pairs size");
  }
  if (feature >= ctx.catalog().size()) {
    return Status::NotFound("feature not in catalog");
  }
  FeatureProfile profile;
  profile.feature = feature;

  // Deterministic stride-based subsample when capped — keeps all matches
  // (usually rare and the interesting side of the histogram).
  const size_t n = pairs.size();
  const size_t step =
      max_pairs == 0 || n <= max_pairs ? 1 : (n + max_pairs - 1) / max_pairs;

  std::vector<double> match_values;
  std::vector<double> nonmatch_values;
  double match_sum = 0.0;
  double nonmatch_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const bool is_match = labels.Get(i);
    if (!is_match && i % step != 0) continue;
    const double v = ctx.ComputeFeature(feature, pairs.pair(i));
    if (is_match) {
      ++profile.match_hist[BucketOf(v)];
      match_values.push_back(v);
      match_sum += v;
    } else {
      ++profile.nonmatch_hist[BucketOf(v)];
      nonmatch_values.push_back(v);
      nonmatch_sum += v;
    }
  }
  profile.matches = match_values.size();
  profile.nonmatches = nonmatch_values.size();
  if (profile.matches > 0) {
    profile.match_mean = match_sum / static_cast<double>(profile.matches);
  }
  if (profile.nonmatches > 0) {
    profile.nonmatch_mean =
        nonmatch_sum / static_cast<double>(profile.nonmatches);
  }

  // AUC via rank statistics: sort non-match values once, then for each
  // match value count how many non-matches it beats.
  if (!match_values.empty() && !nonmatch_values.empty()) {
    std::sort(nonmatch_values.begin(), nonmatch_values.end());
    double wins = 0.0;
    for (const double m : match_values) {
      const auto lo = std::lower_bound(nonmatch_values.begin(),
                                       nonmatch_values.end(), m);
      const auto hi = std::upper_bound(nonmatch_values.begin(),
                                       nonmatch_values.end(), m);
      const double below =
          static_cast<double>(lo - nonmatch_values.begin());
      const double ties = static_cast<double>(hi - lo);
      wins += below + ties / 2.0;
    }
    profile.auc = wins / (static_cast<double>(match_values.size()) *
                          static_cast<double>(nonmatch_values.size()));
  }
  return profile;
}

}  // namespace emdbg
