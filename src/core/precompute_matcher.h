#ifndef EMDBG_CORE_PRECOMPUTE_MATCHER_H_
#define EMDBG_CORE_PRECOMPUTE_MATCHER_H_

#include "src/core/matcher.h"
#include "src/core/memo.h"

namespace emdbg {

/// Algorithm 2: precomputes feature values for every candidate pair before
/// matching, then evaluates rules via memo lookups.
///
/// Two scopes match the paper's Fig. 3 variants:
///   * kProduction ("PPR"): precompute exactly the features used by the
///     current rule set — feasible only once the rule set is final;
///   * kFull ("FPR"): precompute every feature in the catalog — the
///     superset the analyst might use, modeling the up-front lag the
///     paper's introduction argues against.
///
/// The matching phase runs with early exit by default (the paper's Fig. 3
/// plots PPR+EE and FPR+EE); set `early_exit=false` for the pure
/// Algorithm 2 behaviour.
class PrecomputeMatcher final : public Matcher {
 public:
  enum class Scope { kProduction, kFull };

  explicit PrecomputeMatcher(Scope scope, bool early_exit = true)
      : scope_(scope), early_exit_(early_exit) {}

  using Matcher::Run;
  MatchResult Run(const MatchingFunction& fn, const CandidateSet& pairs,
                  PairContext& ctx, const RunControl& control) override;

  const char* name() const override {
    return scope_ == Scope::kProduction ? "PPR+EE" : "FPR+EE";
  }

  /// Milliseconds spent in the precomputation phase of the last Run()
  /// (included in the result's elapsed_ms).
  double last_precompute_ms() const { return last_precompute_ms_; }

 private:
  Scope scope_;
  bool early_exit_;
  double last_precompute_ms_ = 0.0;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_PRECOMPUTE_MATCHER_H_
