#ifndef EMDBG_CORE_MATCH_RESULT_H_
#define EMDBG_CORE_MATCH_RESULT_H_

#include <cstddef>
#include <string>

#include "src/block/candidate_pairs.h"
#include "src/util/bitmap.h"
#include "src/util/status.h"

namespace emdbg {

/// Work counters for one matching run. `feature_computations` is the
/// quantity the paper's techniques minimize (similarity computation
/// dominates matching time, Sec. 1); `memo_hits` are the δ-cost lookups.
struct MatchStats {
  size_t feature_computations = 0;
  size_t memo_hits = 0;
  size_t predicate_evaluations = 0;
  size_t rule_evaluations = 0;
  double elapsed_ms = 0.0;

  MatchStats& operator+=(const MatchStats& other) {
    feature_computations += other.feature_computations;
    memo_hits += other.memo_hits;
    predicate_evaluations += other.predicate_evaluations;
    rule_evaluations += other.rule_evaluations;
    elapsed_ms += other.elapsed_ms;
    return *this;
  }

  std::string ToString() const;
};

/// Output of a matcher: per-pair decisions (bit i ⇔ candidate pair i
/// matched) plus work counters.
///
/// Partial results (graceful degradation): when a run is stopped early by
/// a `RunControl` (cancellation or deadline), `partial` is true, `status`
/// explains why (kCancelled / kDeadlineExceeded), and only the pairs
/// marked in `evaluated` carry valid match bits — everything else is
/// unevaluated and left 0. Complete runs have `partial == false`,
/// an OK `status`, `pairs_completed == pairs.size()`, and an empty
/// `evaluated` bitmap (all bits are valid).
struct MatchResult {
  Bitmap matches;
  MatchStats stats;

  /// False for a complete run; true when stopped early.
  bool partial = false;
  /// Number of candidate pairs whose match bit is valid.
  size_t pairs_completed = 0;
  /// Populated only when `partial`: bit i ⇔ pair i was evaluated.
  Bitmap evaluated;
  /// OK when complete; kCancelled or kDeadlineExceeded when partial.
  Status status;

  size_t MatchCount() const { return matches.Count(); }

  /// Marks a complete run over `num_pairs` pairs.
  void MarkComplete(size_t num_pairs) {
    partial = false;
    pairs_completed = num_pairs;
    status = Status::Ok();
  }

  /// Marks a run stopped after the prefix [0, completed) was evaluated.
  void MarkPartialPrefix(size_t completed, size_t num_pairs,
                         Status stop_status);
};

/// Precision/recall of predicted matches against ground-truth labels
/// (Sec. 3: "the matching results for the sample is then compared with the
/// correct labels").
struct QualityMetrics {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;

  std::string ToString() const;
};

/// Computes quality metrics; `predicted` and `labels` must be the same
/// size (aligned to one CandidateSet).
QualityMetrics Evaluate(const Bitmap& predicted, const PairLabels& labels);

}  // namespace emdbg

#endif  // EMDBG_CORE_MATCH_RESULT_H_
