#ifndef EMDBG_CORE_MATCH_RESULT_H_
#define EMDBG_CORE_MATCH_RESULT_H_

#include <cstddef>
#include <string>

#include "src/block/candidate_pairs.h"
#include "src/util/bitmap.h"

namespace emdbg {

/// Work counters for one matching run. `feature_computations` is the
/// quantity the paper's techniques minimize (similarity computation
/// dominates matching time, Sec. 1); `memo_hits` are the δ-cost lookups.
struct MatchStats {
  size_t feature_computations = 0;
  size_t memo_hits = 0;
  size_t predicate_evaluations = 0;
  size_t rule_evaluations = 0;
  double elapsed_ms = 0.0;

  MatchStats& operator+=(const MatchStats& other) {
    feature_computations += other.feature_computations;
    memo_hits += other.memo_hits;
    predicate_evaluations += other.predicate_evaluations;
    rule_evaluations += other.rule_evaluations;
    elapsed_ms += other.elapsed_ms;
    return *this;
  }

  std::string ToString() const;
};

/// Output of a matcher: per-pair decisions (bit i ⇔ candidate pair i
/// matched) plus work counters.
struct MatchResult {
  Bitmap matches;
  MatchStats stats;

  size_t MatchCount() const { return matches.Count(); }
};

/// Precision/recall of predicted matches against ground-truth labels
/// (Sec. 3: "the matching results for the sample is then compared with the
/// correct labels").
struct QualityMetrics {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;

  std::string ToString() const;
};

/// Computes quality metrics; `predicted` and `labels` must be the same
/// size (aligned to one CandidateSet).
QualityMetrics Evaluate(const Bitmap& predicted, const PairLabels& labels);

}  // namespace emdbg

#endif  // EMDBG_CORE_MATCH_RESULT_H_
