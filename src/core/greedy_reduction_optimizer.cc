#include "src/core/greedy_reduction_optimizer.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

#include "src/core/ordering.h"
#include "src/core/rule_profile.h"

namespace emdbg {

// reduction(r) = Σ_{r' remaining, r'≠r} Σ_{f shared} contribution(r', r, f)
// with contribution(r', r, f) = reach(r', f) · Δ(f, r) · (cost(f) − δ)
// and Δ(f, r) = (1 − cache(f)) · reach(r, f).
//
// The sum decomposes per feature: with S(f) = Σ_{r' remaining ∋ f}
// reach(r', f),
//
//   reduction(r) = Σ_{f ∈ feature(r)} (1 − cache(f)) · reach(r, f) ·
//                  (cost(f) − δ) · (S(f) − reach(r, f)).
//
// Maintaining S(f) incrementally makes each greedy step O(n · preds)
// instead of O(n² · preds).
std::vector<size_t> GreedyReductionOrder(const MatchingFunction& fn,
                                         const CostModel& model) {
  const size_t n = fn.num_rules();
  std::vector<RuleProfile> profiles;
  profiles.reserve(n);
  for (const Rule& r : fn.rules()) {
    profiles.push_back(RuleProfile::Build(r, model));
  }
  const double lookup = model.lookup_cost_us();

  // Per-feature savings (cost(f) − δ, clamped) and remaining-reach sums.
  std::unordered_map<FeatureId, double> savings;
  std::unordered_map<FeatureId, double> reach_sum;
  for (const RuleProfile& p : profiles) {
    for (const auto& [f, reach] : p.feature_reach) {
      if (savings.find(f) == savings.end()) {
        savings[f] = std::max(model.FeatureCost(f) - lookup, 0.0);
      }
      reach_sum[f] += reach;
    }
  }

  CacheProbabilities cache;
  auto reduction_of = [&](const RuleProfile& p) {
    double total = 0.0;
    for (const auto& [f, reach] : p.feature_reach) {
      const auto it = cache.find(f);
      const double alpha = it == cache.end() ? 0.0 : it->second;
      const double partner_reach = reach_sum[f] - reach;
      if (partner_reach <= 0.0) continue;
      total += (1.0 - alpha) * reach * savings[f] * partner_reach;
    }
    return total;
  };

  std::vector<size_t> order;
  order.reserve(n);
  std::vector<char> emitted(n, 0);
  for (size_t step = 0; step < n; ++step) {
    size_t best = n;
    double best_reduction = -1.0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      if (emitted[i]) continue;
      const double reduction = reduction_of(profiles[i]);
      // Max reduction; ties broken by the Algorithm 5 metric (cheaper
      // rule first). The cost is only computed on ties.
      if (reduction > best_reduction) {
        best_reduction = reduction;
        best_cost = profiles[i].CostWithCache(cache, lookup);
        best = i;
      } else if (reduction == best_reduction) {
        const double cost = profiles[i].CostWithCache(cache, lookup);
        if (cost < best_cost) {
          best_cost = cost;
          best = i;
        }
      }
    }
    emitted[best] = 1;
    order.push_back(best);
    // The emitted rule leaves the "remaining" set and warms the cache.
    for (const auto& [f, reach] : profiles[best].feature_reach) {
      reach_sum[f] -= reach;
    }
    profiles[best].UpdateCache(cache);
  }
  return order;
}

void ApplyGreedyReductionOrder(MatchingFunction& fn,
                               const CostModel& model) {
  OrderAllRulePredicates(fn, model);
  fn.PermuteRules(GreedyReductionOrder(fn, model));
}

}  // namespace emdbg
