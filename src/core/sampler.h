#ifndef EMDBG_CORE_SAMPLER_H_
#define EMDBG_CORE_SAMPLER_H_

#include "src/block/candidate_pairs.h"
#include "src/util/random.h"

namespace emdbg {

/// Uniform random sample of candidate pairs, used by the cost model to
/// estimate feature costs and predicate selectivities (the paper uses a 1%
/// sample, Sec. 7.3/7.5). At least `min_size` pairs are returned when the
/// input allows, so tiny inputs still yield usable estimates.
CandidateSet SamplePairs(const CandidateSet& pairs, double fraction,
                         Rng& rng, size_t min_size = 50);

}  // namespace emdbg

#endif  // EMDBG_CORE_SAMPLER_H_
