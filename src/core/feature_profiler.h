#ifndef EMDBG_CORE_FEATURE_PROFILER_H_
#define EMDBG_CORE_FEATURE_PROFILER_H_

#include <array>
#include <string>

#include "src/block/candidate_pairs.h"
#include "src/core/pair_context.h"

namespace emdbg {

/// Distribution of one feature's values over labeled candidate pairs,
/// split by label — the analyst's view for choosing a threshold: a good
/// predicate feature separates the match histogram from the non-match
/// histogram.
struct FeatureProfile {
  static constexpr size_t kBuckets = 10;  // [0,0.1), [0.1,0.2), ... [0.9,1]

  FeatureId feature = kInvalidFeature;
  std::array<size_t, kBuckets> match_hist{};
  std::array<size_t, kBuckets> nonmatch_hist{};
  size_t matches = 0;
  size_t nonmatches = 0;
  double match_mean = 0.0;
  double nonmatch_mean = 0.0;
  /// Fraction of (match, non-match) value pairs where the match's value
  /// is higher (ties count half) — the AUC of the feature as a 1-D
  /// classifier; 0.5 = useless, 1.0 = perfectly separating.
  double auc = 0.5;

  /// ASCII rendering: two mirrored histograms plus summary stats.
  std::string ToString(const FeatureCatalog& catalog) const;
};

/// Computes the profile of `feature` over the labeled pairs (sampled down
/// to at most `max_pairs` for speed; 0 = no cap). `labels` must align
/// with `pairs`.
Result<FeatureProfile> ProfileFeature(FeatureId feature,
                                      const CandidateSet& pairs,
                                      const PairLabels& labels,
                                      PairContext& ctx,
                                      size_t max_pairs = 5000);

}  // namespace emdbg

#endif  // EMDBG_CORE_FEATURE_PROFILER_H_
