#include "src/core/precompute_matcher.h"

#include <vector>

#include "src/util/stopwatch.h"

namespace emdbg {

MatchResult PrecomputeMatcher::Run(const MatchingFunction& fn,
                                   const CandidateSet& pairs,
                                   PairContext& ctx,
                                   const RunControl& control) {
  Stopwatch timer;
  StopCheck stop(control);
  MatchResult result;
  result.matches = Bitmap(pairs.size());
  result.MarkComplete(pairs.size());

  // Phase 1: fill the memo (Algorithm 2, lines 4-8).
  std::vector<FeatureId> features;
  if (scope_ == Scope::kProduction) {
    features = fn.UsedFeatures();
  } else {
    features.reserve(ctx.catalog().size());
    for (FeatureId f = 0; f < ctx.catalog().size(); ++f) {
      features.push_back(f);
    }
  }
  DenseMemo memo(pairs.size(), ctx.catalog().size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (stop.ShouldStop()) {
      // Precomputation never sets match bits, so nothing is valid yet.
      result.MarkPartialPrefix(0, pairs.size(), stop.Reason());
      last_precompute_ms_ = timer.ElapsedMillis();
      result.stats.elapsed_ms = timer.ElapsedMillis();
      return result;
    }
    const PairId pair = pairs.pair(i);
    for (const FeatureId f : features) {
      memo.Store(i, f, ctx.ComputeFeature(f, pair));
      ++result.stats.feature_computations;
    }
  }
  last_precompute_ms_ = timer.ElapsedMillis();

  // Phase 2: match via lookups (Algorithm 1 or 3 over the memo).
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (stop.ShouldStop()) {
      result.MarkPartialPrefix(i, pairs.size(), stop.Reason());
      break;
    }
    bool any_rule_true = false;
    for (const Rule& rule : fn.rules()) {
      if (rule.empty()) continue;
      ++result.stats.rule_evaluations;
      bool rule_true = true;
      for (const Predicate& p : rule.predicates()) {
        ++result.stats.predicate_evaluations;
        double value = 0.0;
        const bool found = memo.Lookup(i, p.feature, &value);
        ++result.stats.memo_hits;
        // In production scope every used feature was precomputed; a miss
        // would be a bug, so treat it as such defensively.
        if (!found || !p.Test(value)) {
          rule_true = false;
          if (early_exit_) break;
        }
      }
      if (rule_true) {
        any_rule_true = true;
        if (early_exit_) break;
      }
    }
    if (any_rule_true) result.matches.Set(i);
  }
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace emdbg
