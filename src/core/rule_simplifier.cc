#include "src/core/rule_simplifier.h"

#include "src/util/string_util.h"

namespace emdbg {

namespace {

/// True if satisfying `p` guarantees satisfying `q` (same feature only).
bool Implies(const Predicate& p, const Predicate& q) {
  if (p.feature != q.feature) return false;
  if (IsLowerBound(p.op) != IsLowerBound(q.op)) return false;
  if (IsLowerBound(p.op)) {
    // value >= / > p.t  ⇒  value >= / > q.t
    if (p.threshold > q.threshold) return true;
    if (p.threshold < q.threshold) return false;
    // Equal thresholds: strict implies non-strict; X implies X.
    return !(p.op == CompareOp::kGe && q.op == CompareOp::kGt);
  }
  // value < / <= p.t  ⇒  value < / <= q.t
  if (p.threshold < q.threshold) return true;
  if (p.threshold > q.threshold) return false;
  return !(p.op == CompareOp::kLe && q.op == CompareOp::kLt);
}

/// True if `lower` and `upper` on the same feature exclude each other.
bool Contradicts(const Predicate& lower, const Predicate& upper) {
  if (lower.feature != upper.feature) return false;
  if (!IsLowerBound(lower.op) || IsLowerBound(upper.op)) return false;
  if (lower.threshold > upper.threshold) return true;
  if (lower.threshold < upper.threshold) return false;
  // Equal: >= t AND <= t is satisfiable (value == t); any strict side
  // makes it empty.
  return lower.op == CompareOp::kGt || upper.op == CompareOp::kLt;
}

}  // namespace

const char* FindingKindName(FindingKind kind) {
  switch (kind) {
    case FindingKind::kRedundantPredicate:
      return "redundant_predicate";
    case FindingKind::kUnsatisfiableRule:
      return "unsatisfiable_rule";
    case FindingKind::kSubsumedRule:
      return "subsumed_rule";
    case FindingKind::kIneffectivePredicate:
      return "ineffective_predicate";
  }
  return "unknown";
}

std::vector<SimplifierFinding> AnalyzeRules(const MatchingFunction& fn,
                                            const FeatureCatalog& catalog) {
  std::vector<SimplifierFinding> findings;

  for (const Rule& rule : fn.rules()) {
    // Within-rule pairwise checks. Each predicate j is reported redundant
    // at most once: when some other predicate i strictly implies it, or
    // when it duplicates an earlier predicate.
    bool unsat_reported = false;
    for (size_t j = 0; j < rule.size(); ++j) {
      const Predicate& pj = rule.predicate(j);
      for (size_t i = 0; i < rule.size(); ++i) {
        if (i == j) continue;
        const Predicate& pi = rule.predicate(i);
        if (pi.feature != pj.feature) continue;
        const bool strict = Implies(pi, pj) && !Implies(pj, pi);
        const bool duplicate = i < j && pi.SameTest(pj);
        if (strict || duplicate) {
          SimplifierFinding f;
          f.kind = FindingKind::kRedundantPredicate;
          f.rule_id = rule.id();
          f.predicate_id = pj.id;
          f.description = StrFormat(
              "rule %s: '%s' is implied by '%s'", rule.name().c_str(),
              PredicateToString(pj, catalog).c_str(),
              PredicateToString(pi, catalog).c_str());
          findings.push_back(std::move(f));
          break;
        }
      }
      for (size_t i = 0; i < rule.size() && !unsat_reported; ++i) {
        if (i == j) continue;
        const Predicate& pi = rule.predicate(i);
        if (Contradicts(pi, pj)) {
          SimplifierFinding f;
          f.kind = FindingKind::kUnsatisfiableRule;
          f.rule_id = rule.id();
          f.description = StrFormat(
              "rule %s can never fire: '%s' contradicts '%s'",
              rule.name().c_str(), PredicateToString(pi, catalog).c_str(),
              PredicateToString(pj, catalog).c_str());
          findings.push_back(std::move(f));
          unsat_reported = true;
        }
      }
    }
  }

  // Cross-rule subsumption: rule B is useless if every predicate of some
  // other rule A is implied by a predicate of B (B ⇒ A).
  for (size_t bi = 0; bi < fn.num_rules(); ++bi) {
    const Rule& b = fn.rule(bi);
    if (b.empty()) continue;
    for (size_t ai = 0; ai < fn.num_rules(); ++ai) {
      if (ai == bi) continue;
      const Rule& a = fn.rule(ai);
      if (a.empty()) continue;
      bool all_implied = true;
      for (const Predicate& pa : a.predicates()) {
        bool implied = false;
        for (const Predicate& pb : b.predicates()) {
          if (Implies(pb, pa)) {
            implied = true;
            break;
          }
        }
        if (!implied) {
          all_implied = false;
          break;
        }
      }
      if (!all_implied) continue;
      // Mutual subsumption (logically equivalent rules): report only the
      // later one, else both would flag each other.
      if (ai > bi) {
        bool mutual = true;
        for (const Predicate& pb : b.predicates()) {
          bool implied = false;
          for (const Predicate& pa : a.predicates()) {
            if (Implies(pa, pb)) {
              implied = true;
              break;
            }
          }
          if (!implied) {
            mutual = false;
            break;
          }
        }
        if (mutual) continue;
      }
      SimplifierFinding f;
      f.kind = FindingKind::kSubsumedRule;
      f.rule_id = b.id();
      f.by_rule_id = a.id();
      f.description =
          StrFormat("rule %s is subsumed by rule %s (anything it matches, "
                    "%s matches too)",
                    b.name().c_str(), a.name().c_str(), a.name().c_str());
      findings.push_back(std::move(f));
      break;  // one subsumption report per rule suffices
    }
  }
  return findings;
}

std::vector<SimplifierFinding> AnalyzeRulesWithModel(
    const MatchingFunction& fn, const FeatureCatalog& catalog,
    const CostModel& model, double selectivity_threshold) {
  std::vector<SimplifierFinding> findings = AnalyzeRules(fn, catalog);
  for (const Rule& rule : fn.rules()) {
    for (const Predicate& p : rule.predicates()) {
      const double sel = model.PredicateSelectivity(p);
      if (sel >= selectivity_threshold) {
        SimplifierFinding f;
        f.kind = FindingKind::kIneffectivePredicate;
        f.rule_id = rule.id();
        f.predicate_id = p.id;
        f.description = StrFormat(
            "rule %s: '%s' passes %.1f%% of sampled pairs — it filters "
            "almost nothing",
            rule.name().c_str(), PredicateToString(p, catalog).c_str(),
            sel * 100.0);
        findings.push_back(std::move(f));
      }
    }
  }
  return findings;
}

}  // namespace emdbg
