#include "src/core/feature.h"

#include "src/util/string_util.h"

namespace emdbg {

FeatureId FeatureCatalog::Intern(const Feature& f) {
  const FeatureId existing = Find(f);
  if (existing != kInvalidFeature) return existing;
  features_.push_back(f);
  return static_cast<FeatureId>(features_.size() - 1);
}

Result<FeatureId> FeatureCatalog::InternByName(SimFunction fn,
                                               std::string_view attr_a,
                                               std::string_view attr_b) {
  Result<AttrIndex> a = schema_a_.Find(attr_a);
  if (!a.ok()) return a.status();
  Result<AttrIndex> b = schema_b_.Find(attr_b);
  if (!b.ok()) return b.status();
  return Intern(Feature{fn, *a, *b});
}

FeatureId FeatureCatalog::Find(const Feature& f) const {
  for (FeatureId id = 0; id < features_.size(); ++id) {
    if (features_[id] == f) return id;
  }
  return kInvalidFeature;
}

std::string FeatureCatalog::Name(FeatureId id) const {
  const Feature& f = features_[id];
  return StrFormat("%s(%s, %s)", GetSimFunctionInfo(f.fn).name,
                   schema_a_.name(f.attr_a).c_str(),
                   schema_b_.name(f.attr_b).c_str());
}

std::vector<FeatureId> FeatureCatalog::InternAllSameAttribute() {
  std::vector<FeatureId> added;
  for (AttrIndex a = 0; a < schema_a_.size(); ++a) {
    const std::string& name = schema_a_.name(a);
    if (!schema_b_.Contains(name)) continue;
    const AttrIndex b = *schema_b_.Find(name);
    for (SimFunction fn : AllSimFunctions()) {
      added.push_back(Intern(Feature{fn, a, b}));
    }
  }
  return added;
}

}  // namespace emdbg
