#ifndef EMDBG_CORE_STATE_IO_H_
#define EMDBG_CORE_STATE_IO_H_

#include <string>
#include <unordered_map>

#include "src/core/match_state.h"

namespace emdbg {

/// Binary persistence for materialized matching state — the memo of
/// similarity values plus the per-rule/per-predicate bitmaps. With the
/// rule set (SaveRulesFile) and the candidate set (SaveCandidatesCsv)
/// this lets an analyst suspend a debugging session and resume it later
/// without recomputing anything, extending the paper's Sec. 6
/// materialization across process lifetimes.
///
/// Current format, version 2 (crash-safe):
///   magic "EMDBGST2"
///   | header: num_pairs u64, num_features u64, crc32c u32
///   | memo floats (pairs x features, NaN = absent), crc32c u32
///   | matches bitmap words, crc32c u32
///   | rule-bitmap count u64, then per bitmap: id u32 + words; crc32c u32
///   | predicate-bitmap count u64, then per bitmap: id u32 + words;
///     crc32c u32
///
/// Each CRC-32C covers the bytes of its section, so truncation and
/// bit-level corruption are both detected at load time and reported as
/// ParseError instead of silently resuming from bad state. Files are
/// written atomically (temp + fsync + rename), so a crash mid-save leaves
/// the previous state intact.
///
/// Integers and floats are stored in the producing machine's native byte
/// order — all platforms this project targets are little-endian, and
/// state files are session-local scratch, not an exchange format. A
/// big-endian reader would fail the magic-adjacent CRC checks rather than
/// silently misread values.
///
/// Version-1 files ("EMDBGST1": same layout without checksums) are still
/// readable; saves always produce version 2.

Status SaveMatchState(const MatchState& state, const std::string& path);

/// As SaveMatchState, but rewrites the stable rule/predicate ids through
/// the given maps before writing; bitmaps whose id is absent from its map
/// are dropped (they belong to removed rules/predicates). Used by session
/// checkpointing: the checkpoint's rules file is re-parsed on recovery,
/// which assigns fresh dense ids in file order, so the state must be
/// saved under those ids for the two files to line up.
Status SaveMatchStateRemapped(
    const MatchState& state,
    const std::unordered_map<RuleId, RuleId>& rule_ids,
    const std::unordered_map<PredicateId, PredicateId>& predicate_ids,
    const std::string& path);

/// Loads a state written by SaveMatchState. Header dimensions are
/// validated against the actual file size (with overflow-safe
/// arithmetic) *before* any allocation, so a corrupt or hostile header
/// cannot trigger a huge allocation. The loaded state's stable
/// rule/predicate ids must correspond to the matching function the caller
/// restores alongside it (LoadRulesFile assigns ids in file order, so
/// save/load of rules + state is consistent when done together).
Result<MatchState> LoadMatchState(const std::string& path);

}  // namespace emdbg

#endif  // EMDBG_CORE_STATE_IO_H_
