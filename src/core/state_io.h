#ifndef EMDBG_CORE_STATE_IO_H_
#define EMDBG_CORE_STATE_IO_H_

#include <string>

#include "src/core/match_state.h"

namespace emdbg {

/// Binary persistence for materialized matching state — the memo of
/// similarity values plus the per-rule/per-predicate bitmaps. With the
/// rule set (SaveRulesFile) and the candidate set (SaveCandidatesCsv)
/// this lets an analyst suspend a debugging session and resume it later
/// without recomputing anything, extending the paper's Sec. 6
/// materialization across process lifetimes.
///
/// Format (little-endian, version-tagged):
///   magic "EMDBGST1" | num_pairs u64 | num_features u64
///   | memo floats (pairs x features, NaN = absent)
///   | matches bitmap words
///   | rule-bitmap count u64, then per bitmap: id u32 + words
///   | predicate-bitmap count u64, then per bitmap: id u32 + words
///
/// The format is tied to the producing machine's endianness (documented
/// limitation; these are session-local scratch files, not an exchange
/// format).

Status SaveMatchState(const MatchState& state, const std::string& path);

/// Loads a state written by SaveMatchState. The loaded state's stable
/// rule/predicate ids must correspond to the matching function the caller
/// restores alongside it (LoadRulesFile assigns ids in file order, so
/// save/load of rules + state is consistent when done together).
Result<MatchState> LoadMatchState(const std::string& path);

}  // namespace emdbg

#endif  // EMDBG_CORE_STATE_IO_H_
