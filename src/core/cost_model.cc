#include "src/core/cost_model.h"

#include <algorithm>
#include <unordered_set>

#include "src/core/memo.h"
#include "src/text/similarity_registry.h"
#include "src/util/stopwatch.h"

namespace emdbg {

CostModel CostModel::Estimate(const std::vector<FeatureId>& features,
                              PairContext& ctx, const CandidateSet& sample) {
  CostModel model(sample);
  model.MeasureLookupCost();
  for (const FeatureId f : features) model.EnsureFeature(f, ctx);
  return model;
}

CostModel CostModel::EstimateForFunction(const MatchingFunction& fn,
                                         PairContext& ctx,
                                         const CandidateSet& sample) {
  return Estimate(fn.UsedFeatures(), ctx, sample);
}

void CostModel::EnsureFeature(FeatureId feature, PairContext& ctx) {
  if (values_.count(feature) > 0) return;
  std::vector<float>& vals = values_[feature];
  vals.reserve(sample_.size());
  Stopwatch timer;
  for (size_t s = 0; s < sample_.size(); ++s) {
    vals.push_back(
        static_cast<float>(ctx.ComputeFeature(feature, sample_.pair(s))));
  }
  const double total_us = timer.ElapsedMicros();
  cost_us_[feature] =
      sample_.size() == 0 ? 0.0
                          : total_us / static_cast<double>(sample_.size());
}

void CostModel::MeasureLookupCost() {
  // Time dense-memo lookups over a small matrix; this is δ in the model.
  constexpr size_t kPairs = 256;
  constexpr size_t kFeatures = 8;
  constexpr size_t kRounds = 40;
  DenseMemo memo(kPairs, kFeatures);
  for (size_t p = 0; p < kPairs; ++p) {
    for (size_t f = 0; f < kFeatures; ++f) {
      memo.Store(p, f, 0.5);
    }
  }
  double sink = 0.0;
  Stopwatch timer;
  for (size_t round = 0; round < kRounds; ++round) {
    for (size_t p = 0; p < kPairs; ++p) {
      for (size_t f = 0; f < kFeatures; ++f) {
        double v = 0.0;
        memo.Lookup(p, static_cast<FeatureId>(f), &v);
        sink += v;
      }
    }
  }
  const double us = timer.ElapsedMicros();
  if (sink < 0.0) return;  // keep `sink` alive
  lookup_cost_us_ =
      std::max(1e-4, us / static_cast<double>(kRounds * kPairs * kFeatures));
}

double CostModel::FeatureCost(FeatureId feature) const {
  const auto it = cost_us_.find(feature);
  if (it != cost_us_.end()) return std::max(it->second, lookup_cost_us_);
  // Unmeasured: static registry hint. We cannot reach the catalog from
  // here, so the hint is unavailable; use a generic mid-range fallback.
  return 10.0 * fallback_unit_us_;
}

bool CostModel::FallbackPass(size_t sample_index, const Predicate& p) {
  uint64_t h = (static_cast<uint64_t>(sample_index) << 32) ^
               (static_cast<uint64_t>(p.feature) * 0x9e3779b97f4a7c15ULL);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return (h & 1) == 0;
}

bool CostModel::PredicatePasses(const Predicate& p,
                                size_t sample_index) const {
  const auto it = values_.find(p.feature);
  if (it == values_.end()) return FallbackPass(sample_index, p);
  return p.Test(static_cast<double>(it->second[sample_index]));
}

double CostModel::PredicateSelectivity(const Predicate& p) const {
  if (sample_.empty()) return 0.5;
  size_t pass = 0;
  for (size_t s = 0; s < sample_.size(); ++s) {
    if (PredicatePasses(p, s)) ++pass;
  }
  return static_cast<double>(pass) / static_cast<double>(sample_.size());
}

double CostModel::JointSelectivity(
    const std::vector<Predicate>& preds) const {
  if (sample_.empty()) return preds.empty() ? 1.0 : 0.5;
  size_t pass = 0;
  for (size_t s = 0; s < sample_.size(); ++s) {
    bool all = true;
    for (const Predicate& p : preds) {
      if (!PredicatePasses(p, s)) {
        all = false;
        break;
      }
    }
    if (all) ++pass;
  }
  return static_cast<double>(pass) / static_cast<double>(sample_.size());
}

double CostModel::RuleSelectivity(const Rule& r) const {
  return JointSelectivity(r.predicates());
}

double CostModel::PrefixSelectivity(const Rule& r, size_t prefix_len) const {
  prefix_len = std::min(prefix_len, r.size());
  std::vector<Predicate> prefix(r.predicates().begin(),
                                r.predicates().begin() +
                                    static_cast<ptrdiff_t>(prefix_len));
  return JointSelectivity(prefix);
}

std::vector<double> CostModel::PrefixSelectivities(const Rule& r) const {
  std::vector<double> out(r.size() + 1, 1.0);
  if (sample_.empty()) {
    for (size_t k = 1; k <= r.size(); ++k) out[k] = 0.5;
    return out;
  }
  std::vector<char> alive(sample_.size(), 1);
  size_t alive_count = sample_.size();
  for (size_t k = 0; k < r.size(); ++k) {
    const Predicate& p = r.predicate(k);
    for (size_t s = 0; s < sample_.size(); ++s) {
      if (alive[s] && !PredicatePasses(p, s)) {
        alive[s] = 0;
        --alive_count;
      }
    }
    out[k + 1] = static_cast<double>(alive_count) /
                 static_cast<double>(sample_.size());
  }
  return out;
}

double CostModel::ReachProbability(const Rule& r, FeatureId f) const {
  std::vector<Predicate> before;
  for (const Predicate& p : r.predicates()) {
    if (p.feature == f) break;
    before.push_back(p);
  }
  return JointSelectivity(before);
}

double CostModel::RuleCostNoMemo(const Rule& r) const {
  double cost = 0.0;
  std::unordered_set<FeatureId> seen;
  for (size_t k = 0; k < r.size(); ++k) {
    const Predicate& p = r.predicate(k);
    const double reach = PrefixSelectivity(r, k);
    // Within one rule, a second predicate on the same feature can reuse
    // the just-computed value even without cross-rule memoing (Lemma 2's
    // c, δ pattern).
    const double acquire =
        seen.count(p.feature) > 0 ? lookup_cost_us_ : FeatureCost(p.feature);
    seen.insert(p.feature);
    cost += reach * acquire;
  }
  return cost;
}

double CostModel::RuleCostWithCache(const Rule& r,
                                    const CacheProbabilities& cache) const {
  double cost = 0.0;
  std::unordered_set<FeatureId> seen;
  for (size_t k = 0; k < r.size(); ++k) {
    const Predicate& p = r.predicate(k);
    const double reach = PrefixSelectivity(r, k);
    double acquire;
    if (seen.count(p.feature) > 0) {
      acquire = lookup_cost_us_;
    } else {
      const auto it = cache.find(p.feature);
      const double alpha = it == cache.end() ? 0.0 : it->second;
      acquire = (1.0 - alpha) * FeatureCost(p.feature) +
                alpha * lookup_cost_us_;
    }
    seen.insert(p.feature);
    cost += reach * acquire;
  }
  return cost;
}

void CostModel::UpdateCacheAfterRule(const Rule& r,
                                     CacheProbabilities& cache) const {
  for (const FeatureId f : r.Features()) {
    double& alpha = cache[f];
    alpha = alpha + (1.0 - alpha) * ReachProbability(r, f);
  }
}

std::vector<char> CostModel::RuleTruthOnSample(const Rule& r) const {
  std::vector<char> truth(sample_.size(), 1);
  for (size_t s = 0; s < sample_.size(); ++s) {
    for (const Predicate& p : r.predicates()) {
      if (!PredicatePasses(p, s)) {
        truth[s] = 0;
        break;
      }
    }
  }
  return truth;
}

double CostModel::FunctionCostNoMemo(const MatchingFunction& fn) const {
  if (sample_.empty()) return 0.0;
  // reach[s] = 1 while no earlier rule fired for sample pair s.
  std::vector<char> reach(sample_.size(), 1);
  double cost = 0.0;
  for (const Rule& r : fn.rules()) {
    const double reach_prob =
        static_cast<double>(std::count(reach.begin(), reach.end(), 1)) /
        static_cast<double>(sample_.size());
    cost += reach_prob * RuleCostNoMemo(r);
    const std::vector<char> truth = RuleTruthOnSample(r);
    for (size_t s = 0; s < sample_.size(); ++s) {
      if (truth[s]) reach[s] = 0;
    }
  }
  return cost;
}

double CostModel::FunctionCostWithMemo(const MatchingFunction& fn) const {
  if (sample_.empty()) return 0.0;
  std::vector<char> reach(sample_.size(), 1);
  CacheProbabilities cache;
  double cost = 0.0;
  for (const Rule& r : fn.rules()) {
    const double reach_prob =
        static_cast<double>(std::count(reach.begin(), reach.end(), 1)) /
        static_cast<double>(sample_.size());
    cost += reach_prob * RuleCostWithCache(r, cache);
    UpdateCacheAfterRule(r, cache);
    const std::vector<char> truth = RuleTruthOnSample(r);
    for (size_t s = 0; s < sample_.size(); ++s) {
      if (truth[s]) reach[s] = 0;
    }
  }
  return cost;
}

double CostModel::SimulatedCostWithMemo(const MatchingFunction& fn) const {
  if (sample_.empty()) return 0.0;
  double total = 0.0;
  std::unordered_set<FeatureId> computed;
  for (size_t s = 0; s < sample_.size(); ++s) {
    computed.clear();
    for (const Rule& r : fn.rules()) {
      bool rule_true = true;
      for (const Predicate& p : r.predicates()) {
        if (computed.count(p.feature) > 0) {
          total += lookup_cost_us_;
        } else {
          total += FeatureCost(p.feature);
          computed.insert(p.feature);
        }
        if (!PredicatePasses(p, s)) {
          rule_true = false;
          break;
        }
      }
      if (rule_true && !r.empty()) break;
    }
  }
  return total / static_cast<double>(sample_.size());
}

double CostModel::EstimateRuntimeMs(const MatchingFunction& fn,
                                    size_t num_pairs, bool with_memo) const {
  const double per_pair_us =
      with_memo ? FunctionCostWithMemo(fn) : FunctionCostNoMemo(fn);
  return per_pair_us * static_cast<double>(num_pairs) / 1000.0;
}

}  // namespace emdbg
