#include "src/core/block_matcher.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/util/bitmap.h"
#include "src/util/stopwatch.h"

namespace emdbg {

namespace {

/// Lanes per word above which the threshold compare switches from a
/// sparse bit-walk to a branchless dense sweep of all 64 lanes. The
/// dense sweep costs ~64 compares regardless of occupancy; the walk
/// costs a few ns per set bit — they cross around a quarter-full word.
constexpr int kDenseLanes = 16;

template <typename Cmp>
void PassMaskImpl(const float* col, const uint64_t* active, size_t nb,
                  Cmp cmp, uint64_t* pass) {
  const size_t words = bitspan::Words(nb);
  for (size_t wi = 0; wi < words; ++wi) {
    uint64_t a = active[wi];
    if (a == 0) {
      pass[wi] = 0;
      continue;
    }
    uint64_t bits = 0;
    if (std::popcount(a) >= kDenseLanes) {
      const size_t lanes = std::min<size_t>(64, nb - wi * 64);
      const float* c = col + wi * 64;
      if (lanes == 64) {
        // Two-phase sweep: the byte-compare loop has no loop-carried
        // dependence (unlike bits |= cmp << j, whose serial OR + variable
        // shift defeats vectorization), so the compiler can batch the
        // widening compares; the bytes (each 0 or 1) are then packed
        // eight at a time — the multiply gathers byte j's low bit into
        // product bit 56 + j, carry-free for 0/1 bytes.
        uint8_t lane_pass[64];
        for (size_t j = 0; j < 64; ++j) lane_pass[j] = cmp(c[j]) ? 1 : 0;
        for (size_t k = 0; k < 8; ++k) {
          uint64_t w;
          std::memcpy(&w, lane_pass + k * 8, sizeof(w));
          bits |= ((w * 0x0102040810204080ULL) >> 56) << (k * 8);
        }
      } else {
        for (size_t j = 0; j < lanes; ++j) {
          bits |= static_cast<uint64_t>(cmp(c[j])) << j;
        }
      }
      bits &= a;
    } else {
      while (a != 0) {
        const size_t j = static_cast<size_t>(std::countr_zero(a));
        a &= a - 1;
        if (cmp(col[wi * 64 + j])) bits |= uint64_t{1} << j;
      }
    }
    pass[wi] = bits;
  }
}

/// pass = active ∩ { lanes whose score passes (op, threshold) }. The
/// comparison widens each float lane to double, exactly like
/// Predicate::Test on a memo Lookup, so threshold-boundary decisions
/// cannot depend on the evaluation strategy. Inactive lanes may hold
/// NaN (absent); every comparison is false on NaN and the result is
/// masked by `active` anyway.
void PassMask(const float* col, const uint64_t* active, size_t nb,
              CompareOp op, double threshold, uint64_t* pass) {
  switch (op) {
    case CompareOp::kGe:
      PassMaskImpl(col, active, nb,
                   [threshold](float v) {
                     return static_cast<double>(v) >= threshold;
                   },
                   pass);
      return;
    case CompareOp::kGt:
      PassMaskImpl(col, active, nb,
                   [threshold](float v) {
                     return static_cast<double>(v) > threshold;
                   },
                   pass);
      return;
    case CompareOp::kLt:
      PassMaskImpl(col, active, nb,
                   [threshold](float v) {
                     return static_cast<double>(v) < threshold;
                   },
                   pass);
      return;
    case CompareOp::kLe:
      PassMaskImpl(col, active, nb,
                   [threshold](float v) {
                     return static_cast<double>(v) <= threshold;
                   },
                   pass);
      return;
  }
}

}  // namespace

BlockEvaluator::BlockEvaluator(const MatchingFunction& fn,
                               const CandidateSet& pairs, PairContext& ctx,
                               Memo* memo, MatchState* state,
                               size_t block_size)
    : pairs_(pairs),
      ctx_(ctx),
      memo_(memo),
      dense_(dynamic_cast<DenseMemo*>(memo)),
      num_pairs_(pairs.size()),
      block_size_(std::max<size_t>(64, (block_size + 63) / 64 * 64)),
      words_(block_size_ / 64) {
  std::vector<int> slot_of(ctx.catalog().size(), -1);
  for (const Rule& rule : fn.rules()) {
    if (rule.empty()) continue;  // an empty conjunction matches nothing
    RuleSlot rs;
    rs.rule_true = state != nullptr ? &state->RuleTrue(rule.id()) : nullptr;
    for (const Predicate& p : rule.predicates()) {
      int& slot = slot_of[p.feature];
      if (slot < 0) {
        slot = static_cast<int>(slot_features_.size());
        slot_features_.push_back(p.feature);
      }
      rs.preds.push_back(
          PredSlot{static_cast<uint32_t>(slot), p.feature, p.op, p.threshold,
                   state != nullptr ? &state->PredFalse(p.id) : nullptr});
    }
    rules_.push_back(std::move(rs));
  }
}

size_t BlockEvaluator::ScratchBytes() const {
  const size_t slots = slot_features_.size();
  return slots * block_size_ * sizeof(float) +
         (2 * slots * words_ + 4 * words_ + slots) * sizeof(uint64_t) +
         2 * slots;
}

void BlockEvaluator::InitScratch(Scratch& s) const {
  const size_t slots = slot_features_.size();
  s.cols.assign(slots * block_size_, 0.0f);
  s.bits.assign(2 * slots * words_ + 4 * words_, 0);
  s.touched.assign(slots, 0);
  s.used.assign(slots, 0);
  s.masks.assign(slots, 0);
  s.last_used = static_cast<size_t>(-1);
}

void BlockEvaluator::TransposeBlock(size_t base, size_t nb,
                                    Scratch& s) const {
  const size_t slots = slot_features_.size();
  const size_t nw = bitspan::Words(nb);
  float* cols = s.cols.data();
  uint64_t* filled_base = s.bits.data();
  uint64_t* dirty_base = filled_base + slots * words_;
  uint64_t* masks = s.masks.data();
  for (size_t wi = 0; wi < nw; ++wi) {
    const size_t lanes = std::min<size_t>(64, nb - wi * 64);
    std::fill(masks, masks + slots, 0);
    for (size_t j = 0; j < lanes; ++j) {
      const size_t i = wi * 64 + j;
      // One contiguous row read per pair; the column writes for 64
      // consecutive lanes share one cache line per slot, so the working
      // set of this tile is `slots` lines plus the row.
      const float* row = dense_->RowView(base + i);
      for (size_t sl = 0; sl < slots; ++sl) {
        const float v = row[slot_features_[sl]];
        cols[sl * block_size_ + i] = v;
        masks[sl] |= static_cast<uint64_t>(!std::isnan(v)) << j;
      }
    }
    for (size_t sl = 0; sl < slots; ++sl) {
      filled_base[sl * words_ + wi] = masks[sl];
    }
  }
  for (size_t sl = 0; sl < slots; ++sl) {
    bitspan::Fill(dirty_base + sl * words_, nb, false);
    s.touched[sl] = 1;
  }
}

void BlockEvaluator::GatherSlot(uint32_t slot, FeatureId feature,
                                size_t base, size_t nb, Scratch& s) const {
  float* col = s.cols.data() + slot * block_size_;
  uint64_t* filled = s.bits.data() + slot * words_;
  if (dense_ != nullptr) {
    dense_->GatherColumn(base, nb, feature, col, filled);
  } else if (memo_ != nullptr) {
    bitspan::Fill(filled, nb, false);
    for (size_t i = 0; i < nb; ++i) {
      double v = 0.0;
      if (memo_->Lookup(base + i, feature, &v)) {
        col[i] = static_cast<float>(v);
        filled[i >> 6] |= uint64_t{1} << (i & 63);
      } else {
        col[i] = std::numeric_limits<float>::quiet_NaN();
      }
    }
  } else {
    // Memo-less mode: every lane starts absent.
    std::fill(col, col + nb, std::numeric_limits<float>::quiet_NaN());
    bitspan::Fill(filled, nb, false);
  }
  if (memo_ != nullptr) {
    bitspan::Fill(
        s.bits.data() + (slot_features_.size() + slot) * words_, nb, false);
  }
  s.touched[slot] = 1;
}

void BlockEvaluator::EvalBlock(size_t b, Bitmap& matches, MatchStats& stats,
                               Scratch& s) const {
  const size_t base = b * block_size_;
  const size_t nb = std::min(block_size_, num_pairs_ - base);
  const size_t nw = bitspan::Words(nb);
  const size_t slots = slot_features_.size();
  uint64_t* filled_base = s.bits.data();
  uint64_t* dirty_base = filled_base + slots * words_;
  uint64_t* undecided = dirty_base + slots * words_;
  uint64_t* active = undecided + words_;
  uint64_t* pass = active + words_;
  uint64_t* tmp = pass + words_;

  std::fill(s.touched.begin(), s.touched.end(), 0);
  std::fill(s.used.begin(), s.used.end(), 0);
  size_t used = 0;
  bitspan::Fill(undecided, nb, true);

  // Dense memo: a single streaming transpose of the block's rows reads
  // each memo cache line once, where lazy GatherSlot pays one strided
  // walk (one line per lane) per touched feature. Transposing every slot
  // is wasted work when early exit leaves most slots unread, so the
  // previous block's distinct-slots-read count decides. The first strided
  // walk makes the block's memo submatrix L2-resident, so later gathers
  // cost far less than a cold miss per lane (~16 bytes effective, not
  // 64): transpose only when most slots will be read — gather traffic
  // (~16 bytes per lane per slot) above the transpose stream (the row
  // once plus 4 bytes per lane per slot).
  if (dense_ != nullptr && s.last_used != static_cast<size_t>(-1) &&
      s.last_used * 4 >= slots + dense_->num_features()) {
    TransposeBlock(base, nb, s);
  }

  for (const RuleSlot& rule : rules_) {
    const size_t live = bitspan::Count(undecided, nb);
    if (live == 0) break;  // block-granularity early exit: all decided
    stats.rule_evaluations += live;
    std::copy(undecided, undecided + nw, active);

    for (const PredSlot& p : rule.preds) {
      const size_t entering = bitspan::Count(active, nb);
      if (entering == 0) break;  // the whole block failed earlier preds
      stats.predicate_evaluations += entering;

      if (s.used[p.slot] == 0) {
        s.used[p.slot] = 1;
        ++used;
      }
      if (s.touched[p.slot] == 0) GatherSlot(p.slot, p.feature, base, nb, s);
      uint64_t* filled = filled_base + p.slot * words_;
      float* col = s.cols.data() + p.slot * block_size_;

      stats.memo_hits += bitspan::CountAnd(active, filled, nb);
      // need = active & ~filled: exactly the lanes the serial matcher
      // would compute (then batch-computed with hoisted resolution).
      bool any_need = false;
      for (size_t wi = 0; wi < nw; ++wi) {
        tmp[wi] = active[wi] & ~filled[wi];
        any_need = any_need || tmp[wi] != 0;
      }
      if (any_need) {
        ctx_.ComputeFeatureBlock(p.feature, pairs_.pairs().data() + base,
                                 nb, tmp, col);
        stats.feature_computations += bitspan::Count(tmp, nb);
        bitspan::Or(filled, tmp, nb);
        if (memo_ != nullptr) {
          bitspan::Or(dirty_base + p.slot * words_, tmp, nb);
        }
      }

      PassMask(col, active, nb, p.op, p.threshold, pass);
      if (p.pred_false != nullptr) {
        // Lanes failing here are exactly the pairs whose serial run sets
        // this predicate's false bit (their first failing predicate —
        // they leave `active` now and never reach a later one).
        for (size_t wi = 0; wi < nw; ++wi) {
          tmp[wi] = active[wi] & ~pass[wi];
        }
        p.pred_false->OrSpan(base, tmp, nb);
      }
      bitspan::And(active, pass, nb);
    }

    if (bitspan::Any(active, nb)) {
      matches.OrSpan(base, active, nb);
      if (rule.rule_true != nullptr) rule.rule_true->OrSpan(base, active, nb);
      bitspan::AndNot(undecided, active, nb);
    }
  }
  s.last_used = used;

  // Bulk-scatter every column this block computed back into the memo —
  // one cache-blocked FillSpan per touched feature instead of a virtual
  // Store per (pair, feature).
  if (memo_ != nullptr) {
    for (uint32_t slot = 0; slot < slots; ++slot) {
      if (s.touched[slot] == 0) continue;
      const uint64_t* dirty = dirty_base + slot * words_;
      if (!bitspan::Any(dirty, nb)) continue;
      const float* col = s.cols.data() + slot * block_size_;
      if (dense_ != nullptr) {
        dense_->FillSpan(base, nb, slot_features_[slot], col, dirty);
      } else {
        for (size_t wi = 0; wi < nw; ++wi) {
          uint64_t m = wi + 1 == nw ? dirty[wi] & bitspan::TailMask(nb)
                                    : dirty[wi];
          while (m != 0) {
            const size_t i =
                wi * 64 + static_cast<size_t>(std::countr_zero(m));
            m &= m - 1;
            memo_->Store(base + i, slot_features_[slot],
                         static_cast<double>(col[i]));
          }
        }
      }
    }
  }
}

MatchResult BlockMatcher::Run(const MatchingFunction& fn,
                              const CandidateSet& pairs, PairContext& ctx,
                              const RunControl& control) {
  return RunImpl(fn, pairs, ctx, nullptr, nullptr, control);
}

MatchResult BlockMatcher::RunWithMemo(const MatchingFunction& fn,
                                      const CandidateSet& pairs,
                                      PairContext& ctx, Memo& memo,
                                      const RunControl& control) {
  return RunImpl(fn, pairs, ctx, nullptr, &memo, control);
}

MatchResult BlockMatcher::RunWithState(const MatchingFunction& fn,
                                       const CandidateSet& pairs,
                                       PairContext& ctx, MatchState& state,
                                       const RunControl& control) {
  const bool reuse =
      state.initialized() && state.num_pairs() == pairs.size();
  Status cap = state.EnsureCapacity(pairs.size(), ctx.catalog().size());
  if (!cap.ok()) {
    MatchResult denied;
    denied.matches = Bitmap(pairs.size());
    denied.evaluated = Bitmap(pairs.size());
    denied.partial = true;
    denied.pairs_completed = 0;
    denied.status = cap;
    return denied;
  }
  if (reuse) state.matches().Fill(false);
  // Materialize one bitmap per rule and per predicate before evaluation
  // (same serial phase as the other matchers; the evaluator then only
  // ORs word spans into them).
  for (const Rule& r : fn.rules()) {
    state.RuleTrue(r.id()).Fill(false);
    for (const Predicate& p : r.predicates()) {
      state.PredFalse(p.id).Fill(false);
    }
  }
  MatchResult result =
      RunImpl(fn, pairs, ctx, &state, &state.memo(), control);
  state.matches() = result.matches;
  return result;
}

size_t BlockMatcher::AutoBlockSize(const MatchingFunction& fn,
                                   const CostModel* model) {
  // Fit the block's score columns (one float span per used feature) in
  // half of a ~256 KB L2, leaving the other half for the memo submatrix
  // the block streams (rows of all catalog features, read by the
  // transpose or by the first lazy gather) — columns and memo rows
  // compete for the same cache during warm runs.
  constexpr size_t kColumnBudgetBytes = 128 * 1024;
  const size_t nf = std::max<size_t>(1, fn.UsedFeatures().size());
  size_t b = kColumnBudgetBytes / (nf * sizeof(float));
  if (model != nullptr) {
    double total_us = 0.0;
    size_t measured = 0;
    for (const FeatureId f : fn.UsedFeatures()) {
      total_us += model->FeatureCost(f);
      ++measured;
    }
    const double avg_us = measured > 0 ? total_us / measured : 0.0;
    if (avg_us > 10.0) {
      b = std::min<size_t>(b, 512);  // compute-bound: favor cancellation
    } else if (avg_us < 0.5) {
      b = std::max<size_t>(b, 1024);  // orchestration-bound: amortize
    }
  }
  b = std::clamp<size_t>(b, 256, 4096);
  return b / 64 * 64;
}

size_t BlockMatcher::ResolveBlockSize(const Options& options,
                                      const MatchingFunction& fn) {
  if (options.block_size == 0) {
    return AutoBlockSize(fn, options.cost_model);
  }
  return std::max<size_t>(64, (options.block_size + 63) / 64 * 64);
}

MatchResult BlockMatcher::RunImpl(const MatchingFunction& fn,
                                  const CandidateSet& pairs,
                                  PairContext& ctx, MatchState* state,
                                  Memo* memo, const RunControl& control) {
  Stopwatch timer;
  StopCheck stop(control);
  MatchResult result;
  result.matches = Bitmap(pairs.size());
  result.MarkComplete(pairs.size());

  BlockEvaluator eval(fn, pairs, ctx, memo, state,
                      ResolveBlockSize(options_, fn));
  Result<MemoryReservation> scratch_bytes = MemoryReservation::Make(
      options_.budget, eval.ScratchBytes(), "block.scratch");
  if (!scratch_bytes.ok()) {
    result.evaluated = Bitmap(pairs.size());
    result.partial = true;
    result.pairs_completed = 0;
    result.status = scratch_bytes.status();
    return result;
  }
  BlockEvaluator::Scratch scratch;
  eval.InitScratch(scratch);

  for (size_t b = 0; b < eval.num_blocks(); ++b) {
    // Cancellation at block granularity: a stopped run's evaluated
    // prefix ends on a block boundary.
    if (stop.ShouldStop()) {
      result.MarkPartialPrefix(b * eval.block_size(), pairs.size(),
                               stop.Reason());
      break;
    }
    eval.EvalBlock(b, result.matches, result.stats, scratch);
  }
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace emdbg
