#include "src/core/ordering.h"

#include <algorithm>
#include <numeric>

#include "src/core/greedy_cost_optimizer.h"
#include "src/core/greedy_reduction_optimizer.h"
#include "src/util/string_util.h"

namespace emdbg {

const char* OrderingStrategyName(OrderingStrategy s) {
  switch (s) {
    case OrderingStrategy::kAsWritten:
      return "as_written";
    case OrderingStrategy::kRandom:
      return "random";
    case OrderingStrategy::kIndependent:
      return "independent";
    case OrderingStrategy::kGreedyCost:
      return "greedy_cost";
    case OrderingStrategy::kGreedyReduction:
      return "greedy_reduction";
  }
  return "unknown";
}

Result<OrderingStrategy> OrderingStrategyFromName(std::string_view name) {
  for (const OrderingStrategy s :
       {OrderingStrategy::kAsWritten, OrderingStrategy::kRandom,
        OrderingStrategy::kIndependent, OrderingStrategy::kGreedyCost,
        OrderingStrategy::kGreedyReduction}) {
    if (EqualsIgnoreCase(name, OrderingStrategyName(s))) return s;
  }
  return Status::NotFound(StrFormat("unknown ordering strategy '%.*s'",
                                    static_cast<int>(name.size()),
                                    name.data()));
}

void OrderRulePredicates(Rule& rule, const CostModel& model) {
  // Build feature groups in first-appearance order.
  struct Group {
    FeatureId feature;
    std::vector<size_t> positions;  // indices into rule.predicates()
    double selectivity = 1.0;
    double cost = 0.0;
  };
  std::vector<Group> groups;
  for (const FeatureId f : rule.Features()) {
    Group g;
    g.feature = f;
    g.positions = rule.PredicatesOnFeature(f);
    // Lemma 2: inside a group, ascending selectivity — the first
    // evaluation computes the feature, the rest only look it up.
    std::sort(g.positions.begin(), g.positions.end(),
              [&](size_t x, size_t y) {
                return model.PredicateSelectivity(rule.predicate(x)) <
                       model.PredicateSelectivity(rule.predicate(y));
              });
    // Group selectivity is the joint selectivity of its predicates.
    std::vector<Predicate> preds;
    for (size_t pos : g.positions) preds.push_back(rule.predicate(pos));
    g.selectivity = model.JointSelectivity(preds);
    // Group cost per Eq. 3 applied inside the group: compute once, then δ
    // lookups gated by the running selectivity of earlier predicates.
    double cost = model.FeatureCost(f);
    double running_sel = 1.0;
    for (size_t k = 1; k < g.positions.size(); ++k) {
      running_sel *=
          model.PredicateSelectivity(rule.predicate(g.positions[k - 1]));
      cost += running_sel * model.lookup_cost_us();
    }
    g.cost = std::max(cost, 1e-9);
    groups.push_back(std::move(g));
  }
  // Lemma 3: ascending (sel - 1) / cost. (Negative ranks: most selective
  // per unit cost first.)
  std::stable_sort(groups.begin(), groups.end(),
                   [](const Group& x, const Group& y) {
                     return (x.selectivity - 1.0) / x.cost <
                            (y.selectivity - 1.0) / y.cost;
                   });
  std::vector<size_t> order;
  order.reserve(rule.size());
  for (const Group& g : groups) {
    for (size_t pos : g.positions) order.push_back(pos);
  }
  rule.Permute(order);
}

void OrderAllRulePredicates(MatchingFunction& fn, const CostModel& model) {
  for (size_t i = 0; i < fn.num_rules(); ++i) {
    OrderRulePredicates(fn.mutable_rule(i), model);
  }
}

void OrderRulePredicatesIndependent(Rule& rule, const CostModel& model) {
  std::vector<size_t> order(rule.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    const Predicate& px = rule.predicate(x);
    const Predicate& py = rule.predicate(y);
    const double cx = std::max(model.FeatureCost(px.feature), 1e-9);
    const double cy = std::max(model.FeatureCost(py.feature), 1e-9);
    return (model.PredicateSelectivity(px) - 1.0) / cx <
           (model.PredicateSelectivity(py) - 1.0) / cy;
  });
  rule.Permute(order);
}

void OrderRulesIndependent(MatchingFunction& fn, const CostModel& model) {
  for (size_t i = 0; i < fn.num_rules(); ++i) {
    OrderRulePredicatesIndependent(fn.mutable_rule(i), model);
  }
  std::vector<size_t> order(fn.num_rules());
  std::iota(order.begin(), order.end(), size_t{0});
  // Theorem 1: ascending -sel(r)/cost(r) — rules that match many pairs
  // cheaply run first.
  std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    const Rule& rx = fn.rule(x);
    const Rule& ry = fn.rule(y);
    const double cx = std::max(model.RuleCostNoMemo(rx), 1e-9);
    const double cy = std::max(model.RuleCostNoMemo(ry), 1e-9);
    return -model.RuleSelectivity(rx) / cx < -model.RuleSelectivity(ry) / cy;
  });
  fn.PermuteRules(order);
}

void RandomizeOrder(MatchingFunction& fn, Rng& rng) {
  for (size_t i = 0; i < fn.num_rules(); ++i) {
    Rule& rule = fn.mutable_rule(i);
    std::vector<size_t> order(rule.size());
    std::iota(order.begin(), order.end(), size_t{0});
    rng.Shuffle(order);
    rule.Permute(order);
  }
  std::vector<size_t> order(fn.num_rules());
  std::iota(order.begin(), order.end(), size_t{0});
  rng.Shuffle(order);
  fn.PermuteRules(order);
}

void ApplyOrdering(MatchingFunction& fn, OrderingStrategy strategy,
                   const CostModel& model, Rng* rng) {
  switch (strategy) {
    case OrderingStrategy::kAsWritten:
      return;
    case OrderingStrategy::kRandom:
      if (rng != nullptr) RandomizeOrder(fn, *rng);
      return;
    case OrderingStrategy::kIndependent:
      OrderRulesIndependent(fn, model);
      return;
    case OrderingStrategy::kGreedyCost:
      ApplyGreedyCostOrder(fn, model);
      return;
    case OrderingStrategy::kGreedyReduction:
      ApplyGreedyReductionOrder(fn, model);
      return;
  }
}

}  // namespace emdbg
