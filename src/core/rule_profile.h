#ifndef EMDBG_CORE_RULE_PROFILE_H_
#define EMDBG_CORE_RULE_PROFILE_H_

#include <unordered_map>
#include <vector>

#include "src/core/cost_model.h"
#include "src/core/rule.h"

namespace emdbg {

/// Precomputed per-rule quantities the greedy optimizers (Algorithms 5/6)
/// query many times: prefix selectivities, per-predicate feature costs,
/// and per-feature reach probabilities. Building a profile costs one pass
/// over the sample; afterwards cost/reduction evaluations are O(#preds)
/// with no sample scans.
struct RuleProfile {
  /// prefix_sel[k] = sel(p_0 ∧ ... ∧ p_{k-1}) in the rule's current
  /// predicate order (prefix_sel[0] = 1).
  std::vector<double> prefix_sel;
  /// Feature of each predicate.
  std::vector<FeatureId> feature;
  /// Whether predicate k is the first on its feature within the rule.
  std::vector<char> first_on_feature;
  /// Measured cost of each predicate's feature (µs).
  std::vector<double> feature_cost;
  /// Distinct features with their reach probability (sel of everything
  /// ordered before the feature's first predicate — sel(prev(f, r))).
  std::vector<std::pair<FeatureId, double>> feature_reach;

  static RuleProfile Build(const Rule& r, const CostModel& model) {
    RuleProfile p;
    const size_t m = r.size();
    p.prefix_sel.reserve(m);
    p.feature.reserve(m);
    p.first_on_feature.reserve(m);
    p.feature_cost.reserve(m);
    std::unordered_map<FeatureId, char> seen;
    const std::vector<double> prefixes = model.PrefixSelectivities(r);
    for (size_t k = 0; k < m; ++k) {
      const Predicate& pred = r.predicate(k);
      const double reach = prefixes[k];
      p.prefix_sel.push_back(reach);
      p.feature.push_back(pred.feature);
      p.feature_cost.push_back(model.FeatureCost(pred.feature));
      const bool first = seen.insert({pred.feature, 1}).second;
      p.first_on_feature.push_back(first ? 1 : 0);
      if (first) p.feature_reach.emplace_back(pred.feature, reach);
    }
    return p;
  }

  /// Memo-aware expected cost of the rule under `cache` — identical to
  /// CostModel::RuleCostWithCache, without sample scans.
  double CostWithCache(const CacheProbabilities& cache,
                       double lookup_cost_us) const {
    double cost = 0.0;
    for (size_t k = 0; k < prefix_sel.size(); ++k) {
      double acquire;
      if (!first_on_feature[k]) {
        acquire = lookup_cost_us;
      } else {
        const auto it = cache.find(feature[k]);
        const double alpha = it == cache.end() ? 0.0 : it->second;
        acquire =
            (1.0 - alpha) * feature_cost[k] + alpha * lookup_cost_us;
      }
      cost += prefix_sel[k] * acquire;
    }
    return cost;
  }

  /// Advances `cache` as if this rule executed (the α recursion).
  void UpdateCache(CacheProbabilities& cache) const {
    for (const auto& [f, reach] : feature_reach) {
      double& alpha = cache[f];
      alpha = alpha + (1.0 - alpha) * reach;
    }
  }
};

}  // namespace emdbg

#endif  // EMDBG_CORE_RULE_PROFILE_H_
