#ifndef EMDBG_CORE_INCREMENTAL_H_
#define EMDBG_CORE_INCREMENTAL_H_

#include <functional>

#include "src/block/candidate_pairs.h"
#include "src/core/match_result.h"
#include "src/core/match_state.h"
#include "src/core/matching_function.h"
#include "src/core/pair_context.h"
#include "src/core/predicate_order.h"
#include "src/util/cancellation.h"
#include "src/util/thread_pool.h"

namespace emdbg {

/// Incremental matching engine (Sec. 6): holds the current matching
/// function and the materialized state of the last run (memo, per-rule
/// true bitmaps, per-predicate false bitmaps), and applies rule edits by
/// re-evaluating only the affected pairs:
///
///   * AddPredicate / tightening a threshold  — Algorithm 7
///   * RemovePredicate / relaxing a threshold — Algorithm 8
///   * RemoveRule                             — Algorithm 9
///   * AddRule                                — Algorithm 10
///
/// Invariants maintained across edits (verified by property tests against
/// from-scratch runs):
///   I1. matches() equals what a full run of the current function would
///       produce.
///   I2. A set bit in RuleTrue(r) means rule r is true for that pair
///       under the current function, and each matched pair has exactly
///       one responsible rule bit set.
///   I3. A set bit in PredFalse(p) means predicate p is *currently* false
///       for that pair (bits are cleared or re-checked whenever an edit
///       could make them stale), so "some predicate bit set" is a sound
///       O(1) shortcut for "rule false".
///
/// Empty rules are treated as false everywhere (matchers skip them); the
/// empty→non-empty and non-empty→empty transitions are handled as special
/// cases of add/remove predicate.
class IncrementalMatcher {
 public:
  struct Options {
    /// Use the Sec. 5.4.3 check-cache-first predicate order during
    /// evaluations.
    bool check_cache_first = true;
    /// Borrowed persistent work-stealing pool (must outlive the
    /// matcher). When set, full runs AND the affected-pair re-matching
    /// of every edit fan out across its workers — the paper's headline
    /// interactive operation was fully serial before. Each pair's
    /// re-evaluation touches only its own memo row and bitmap bit, and
    /// chunks are 64-aligned (see ThreadPool), so the result — matches,
    /// decision bitmaps, even the MatchStats counters — is identical to
    /// the serial path for every thread count. Null = serial.
    ThreadPool* pool = nullptr;
    /// Edits touching fewer pairs than this run serially even with a
    /// pool (fan-out overhead would dominate sub-millisecond edits).
    size_t min_parallel_pairs = 1024;
    /// Memory accountant for the materialized state's memo matrix and
    /// the parallel matcher's per-worker scratch (null = unbudgeted).
    /// A denied reservation surfaces as ResourceExhausted from the full
    /// run or edit, with the prior state untouched. Must outlive the
    /// matcher.
    MemoryBudget* budget = nullptr;
    /// Pairs per columnar block. 1 (the default) = classic per-pair
    /// evaluation everywhere. Any other value (0 = auto-size) switches
    /// full runs to the BlockEvaluator (see src/core/block_matcher.h)
    /// and edits to *gathered-block* re-evaluation: the affected pair
    /// indices are gathered into a dense lane list and each feature is
    /// evaluated across all lanes at once (ComputeFeatureBlock), with
    /// rule/predicate combination by mask algebra. Edits touching fewer
    /// than one bitmap word of lanes stay per-pair (columnar setup does
    /// not pay below 64 lanes). Block mode uses the as-written predicate
    /// order — check_cache_first is ignored — so its bitmaps and stats
    /// equal the per-pair path with check_cache_first=false.
    size_t block_size = 1;
  };

  /// `ctx` and `pairs` must outlive the matcher.
  IncrementalMatcher(PairContext& ctx, const CandidateSet& pairs)
      : IncrementalMatcher(ctx, pairs, Options{}) {}
  IncrementalMatcher(PairContext& ctx, const CandidateSet& pairs,
                     Options options);

  /// Full run of `fn` (copied in), building all materialized state. The
  /// memo persists across FullRun calls (Sec. 6 reuse), decision bitmaps
  /// are rebuilt.
  MatchStats FullRun(const MatchingFunction& fn);

  /// Controlled full run: checks `control` once per pair. If the run is
  /// stopped early the result is partial (see match_result.h) and
  /// has_run() becomes false — the memo keeps everything computed so far
  /// (a later run resumes cheaply), but the decision bitmaps are
  /// incomplete, so incremental edits stay rejected until a complete
  /// FullRun succeeds.
  MatchResult FullRun(const MatchingFunction& fn,
                      const RunControl& control);

  /// Adopts previously materialized state (e.g. from LoadMatchState) for
  /// `fn` without re-running anything; subsequent edits are incremental.
  /// The state's pair count must match the candidate set, and its stable
  /// ids must belong to `fn` (they do when rules and state were saved
  /// together). InvalidArgument on a shape mismatch.
  Status Resume(const MatchingFunction& fn, MatchState state);

  bool has_run() const { return has_run_; }
  const MatchingFunction& function() const { return fn_; }
  const Bitmap& matches() const { return state_.matches(); }
  const MatchState& state() const { return state_; }
  MatchState& mutable_state() { return state_; }

  // ---- Incremental edits (each returns the work it performed). ----

  /// Algorithm 10. The rule is appended at the end of the evaluation
  /// order; only currently-unmatched pairs are evaluated against it.
  Result<MatchStats> AddRule(const Rule& rule);

  /// Algorithm 9. Pairs matched by the removed rule are re-checked
  /// against the remaining rules (with the predicate-false bitmap
  /// shortcut).
  Result<MatchStats> RemoveRule(RuleId rid);

  /// Algorithm 7. Only pairs previously matched by the rule are
  /// evaluated against the new predicate.
  Result<MatchStats> AddPredicate(RuleId rid, Predicate p);

  /// Algorithm 8 (with an always-true replacement). Only unmatched pairs
  /// that the removed predicate rejected are re-evaluated.
  Result<MatchStats> RemovePredicate(RuleId rid, PredicateId pid);

  /// Tighten or relax depending on the direction of change relative to
  /// the predicate's operator (Algorithm 7 or 8). Equal threshold is a
  /// no-op.
  Result<MatchStats> SetThreshold(RuleId rid, PredicateId pid,
                                  double threshold);

  /// Stable id assigned by the most recent successful AddRule /
  /// AddPredicate.
  RuleId last_added_rule_id() const { return last_added_rule_; }
  PredicateId last_added_predicate_id() const {
    return last_added_predicate_;
  }

 private:
  /// Memoized feature acquisition for candidate pair index `i`.
  double AcquireFeature(FeatureId f, size_t i, MatchStats& stats);

  /// Evaluates rule `r` for pair `i` with memoing; records the first
  /// false predicate in PredFalse. Does not touch RuleTrue/matches.
  /// `scratch` is the caller's (per-worker) predicate-order buffer.
  bool EvalRule(const Rule& r, size_t i, MatchStats& stats,
                PredicateOrderScratch& scratch);

  /// True if some predicate of `r` has its false-bit set for pair `i`
  /// (sound "rule is false" shortcut under I3).
  bool RuleKnownFalse(const Rule& r, size_t i) const;

  /// Re-evaluates pair `i` against rules at positions [from, end) in the
  /// current order; on the first true rule marks the pair matched and
  /// sets the responsible-rule bit. Uses the known-false shortcut.
  void RematchPair(size_t i, size_t from, MatchStats& stats,
                   PredicateOrderScratch& scratch);

  /// Grows the memo if the catalog gained features since initialization.
  /// ResourceExhausted (state untouched, edit not applied) when the
  /// attached memory budget denies the growth.
  Status SyncMemoWidth();

  /// Runs body(i, stats, scratch) over every pair index in [0, n),
  /// fanned out over the pool when one is configured and the range is
  /// worth it, serial otherwise; returns the summed stats. Parallel
  /// prerequisites (prewarmed context, pre-materialized decision
  /// bitmaps) are established here. Bodies must only touch pair-i state
  /// (memo row i, bit i) — see Options::pool.
  MatchStats ForEachPair(
      const std::function<void(size_t i, MatchStats& stats,
                               PredicateOrderScratch& scratch)>& body);

  /// Pre-creates RuleTrue/PredFalse bitmaps for every rule/predicate of
  /// the current function (MatchState's maps must not rehash under
  /// concurrent first access from workers).
  void EnsureDecisionBitmaps();

  /// Shared tail of AddPredicate / tighten: re-check pairs in RuleTrue(r)
  /// against predicate `p` (already updated in fn_).
  MatchStats RecheckMatchedPairs(RuleId rid, const Predicate& p);

  // ---- Gathered-block edit evaluation (Options::block_size != 1).
  // Bit-identical to the per-pair routines above with
  // check_cache_first=false: same (pair, rule, predicate) evaluation
  // set, same memo outcomes, merely reordered across lanes. ----

  /// Memoized columnar acquisition of feature `f` for every lane of
  /// `idx` whose bit is set in `lanes`: probes the memo per lane, then
  /// batch-computes and stores the misses. col[i] receives each such
  /// lane's value.
  void AcquireFeatureGathered(FeatureId f, const std::vector<uint32_t>& idx,
                              const std::vector<PairId>& gathered,
                              const uint64_t* lanes, float* col,
                              MatchStats& stats);

  /// Columnar EvalRule over gathered lanes, including the first-false
  /// PredFalse recording and the clear-on-pass I3 maintenance. Lanes
  /// where the rule is true are marked matched (+ RuleTrue) and removed
  /// from `idx`; false lanes remain. Does not count rule_evaluations —
  /// callers do, exactly where the per-pair routines would.
  void EvalRuleGathered(const Rule& r, std::vector<uint32_t>& idx,
                        MatchStats& stats);

  /// Columnar RematchPair over gathered lanes: runs the rules in order
  /// (skipping position `skip_pos`), with the known-false shortcut
  /// applied per lane before each rule.
  void RematchGathered(std::vector<uint32_t>& idx, size_t skip_pos,
                       MatchStats& stats);

  /// Gathered-block body of RecheckMatchedPairs (block mode, >= 64
  /// affected lanes): one columnar pass over the edited predicate, then
  /// RematchGathered for the lanes it now rejects.
  MatchStats RecheckMatchedGathered(RuleId rid, const Predicate& p);

  /// Shared tail of RemovePredicate / relax: re-evaluate unmatched pairs
  /// in `candidates` (bit indices) against rule `rid`.
  MatchStats RecheckUnmatchedPairs(RuleId rid, const Bitmap& candidates);

  PairContext& ctx_;
  const CandidateSet& pairs_;
  Options options_;
  MatchingFunction fn_;
  MatchState state_;
  bool has_run_ = false;
  RuleId last_added_rule_ = kInvalidRule;
  PredicateId last_added_predicate_ = kInvalidPredicate;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_INCREMENTAL_H_
