#ifndef EMDBG_CORE_PREDICATE_H_
#define EMDBG_CORE_PREDICATE_H_

#include <cstdint>
#include <string>

#include "src/core/feature.h"

namespace emdbg {

/// Comparison operator of a predicate. The paper's canonical form uses
/// "A >= a" (lower bound) and "A < a" (upper bound); we additionally accept
/// > and <= from the DSL. kGe/kGt are *lower-bound* predicates, kLt/kLe are
/// *upper-bound* predicates — Lemma 2 grouping relies on each feature
/// having at most one of each kind per rule.
enum class CompareOp : uint8_t {
  kGe,  ///< feature >= threshold
  kGt,  ///< feature >  threshold
  kLt,  ///< feature <  threshold
  kLe,  ///< feature <= threshold
};

const char* CompareOpSymbol(CompareOp op);

/// True for >= and > (predicate passes when the feature is large).
bool IsLowerBound(CompareOp op);

/// Stable identifier of a predicate within a MatchingFunction. Ids survive
/// reordering and removal of sibling predicates — the incremental engine
/// keys its per-predicate bitmaps on them.
using PredicateId = uint32_t;

inline constexpr PredicateId kInvalidPredicate = 0xffffffffu;

/// A threshold test over one feature: feature(pair) <op> threshold.
struct Predicate {
  FeatureId feature = kInvalidFeature;
  CompareOp op = CompareOp::kGe;
  double threshold = 0.0;
  /// Assigned by MatchingFunction when the predicate is added; 0 until
  /// then. Not part of value equality.
  PredicateId id = kInvalidPredicate;

  /// Applies the comparison to a computed feature value.
  bool Test(double value) const {
    switch (op) {
      case CompareOp::kGe:
        return value >= threshold;
      case CompareOp::kGt:
        return value > threshold;
      case CompareOp::kLt:
        return value < threshold;
      case CompareOp::kLe:
        return value <= threshold;
    }
    return false;
  }

  /// True if `other` tests the same feature with the same op and threshold.
  bool SameTest(const Predicate& other) const {
    return feature == other.feature && op == other.op &&
           threshold == other.threshold;
  }
};

/// Human-readable predicate, e.g. "jaccard(title, title) >= 0.70".
std::string PredicateToString(const Predicate& p,
                              const FeatureCatalog& catalog);

}  // namespace emdbg

#endif  // EMDBG_CORE_PREDICATE_H_
