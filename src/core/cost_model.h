#ifndef EMDBG_CORE_COST_MODEL_H_
#define EMDBG_CORE_COST_MODEL_H_

#include <unordered_map>
#include <vector>

#include "src/core/matching_function.h"
#include "src/core/pair_context.h"

namespace emdbg {

/// Map from feature to its probability of being present in the memo — the
/// α(f, ·) values of Sec. 4.4.4 / cache(f, ·) of Sec. 5.4.1. Absent
/// features have probability 0.
using CacheProbabilities = std::unordered_map<FeatureId, double>;

/// Sampling-based cost model (Sec. 4.4): measures per-feature computation
/// cost and records feature values on a sample of candidate pairs, from
/// which predicate/rule selectivities and expected evaluation costs are
/// derived. The paper uses a 1% sample (Sec. 7.3).
///
/// All costs are microseconds per pair; selectivities are in [0, 1].
class CostModel {
 public:
  CostModel() = default;

  /// Builds a model by evaluating `features` over `sample` via `ctx`,
  /// timing each computation. The sample is retained so the model can be
  /// extended later (EnsureFeature) when the analyst's edits introduce new
  /// features.
  static CostModel Estimate(const std::vector<FeatureId>& features,
                            PairContext& ctx, const CandidateSet& sample);

  /// Convenience: estimates for exactly the features `fn` uses.
  static CostModel EstimateForFunction(const MatchingFunction& fn,
                                       PairContext& ctx,
                                       const CandidateSet& sample);

  /// Measures `feature` on the stored sample if not already present.
  void EnsureFeature(FeatureId feature, PairContext& ctx);

  bool HasFeature(FeatureId feature) const {
    return values_.count(feature) > 0;
  }

  size_t sample_size() const { return sample_.size(); }

  /// Average measured computation cost of a feature (µs). Falls back to
  /// the registry's static hint scaled by `fallback_unit_us` for
  /// unmeasured features.
  double FeatureCost(FeatureId feature) const;

  /// Memo lookup cost δ (µs), measured at Estimate() time.
  double lookup_cost_us() const { return lookup_cost_us_; }
  void set_lookup_cost_us(double v) { lookup_cost_us_ = v; }

  // ---- Selectivities (estimated exactly over the sample). ----

  /// sel(p): fraction of sample pairs for which `p` is true.
  double PredicateSelectivity(const Predicate& p) const;

  /// sel(⋀ preds): joint selectivity over the sample.
  double JointSelectivity(const std::vector<Predicate>& preds) const;

  /// sel(r) = sel of the conjunction of all its predicates.
  double RuleSelectivity(const Rule& r) const;

  /// Joint selectivity of the first `prefix_len` predicates of `r` in its
  /// current order — the weights of Eq. 1/3.
  double PrefixSelectivity(const Rule& r, size_t prefix_len) const;

  /// All prefix selectivities of `r` in one sample pass:
  /// out[k] = PrefixSelectivity(r, k) for k = 0..r.size().
  std::vector<double> PrefixSelectivities(const Rule& r) const;

  /// sel(prev(f, r)) of Sec. 5.4.1: joint selectivity of the predicates
  /// positioned before the first predicate on `f` in `r`'s current order —
  /// the probability that `f` is reached when `r` is evaluated.
  double ReachProbability(const Rule& r, FeatureId f) const;

  // ---- Expected costs (per pair, µs). ----

  /// Eq. 1/3: early-exit cost of `r` in its current predicate order, every
  /// feature computed fresh (no memo). Repeated predicates on the same
  /// feature within the rule still pay δ only (Lemma 2's c, δ pattern).
  double RuleCostNoMemo(const Rule& r) const;

  /// Memo-aware expected cost of `r` given the current cache
  /// probabilities (Sec. 4.4.4, Eq. 2): first predicate on feature f pays
  /// (1-α)·cost(f) + α·δ, later predicates on f pay δ.
  double RuleCostWithCache(const Rule& r,
                           const CacheProbabilities& cache) const;

  /// α update after executing `r` (Sec. 4.4.4):
  /// α(f, r) = α + (1-α)·ReachProbability(r, f) for every f in r.
  void UpdateCacheAfterRule(const Rule& r, CacheProbabilities& cache) const;

  /// Eq. 4: expected per-pair cost of the whole function with early exit,
  /// no memo. Rule-reach probabilities are computed exactly on the sample.
  double FunctionCostNoMemo(const MatchingFunction& fn) const;

  /// Sec. 4.4.4 model: expected per-pair cost with early exit + dynamic
  /// memoing, using the α recursion (this is what Fig. 5A plots as the
  /// model estimate).
  double FunctionCostWithMemo(const MatchingFunction& fn) const;

  /// Exact replay of Algorithm 4 on the sample (per-pair memo, early
  /// exit); a tighter estimate than the analytic α model, used for
  /// validation.
  double SimulatedCostWithMemo(const MatchingFunction& fn) const;

  /// Predicted wall time in ms for `num_pairs` pairs.
  double EstimateRuntimeMs(const MatchingFunction& fn, size_t num_pairs,
                           bool with_memo) const;

  /// Per-sample-pair truth of `r` (all predicates pass). Exposed for the
  /// optimizers' exact reach computation.
  std::vector<char> RuleTruthOnSample(const Rule& r) const;

 private:
  explicit CostModel(CandidateSet sample) : sample_(std::move(sample)) {}

  /// Measures δ by timing dense-memo lookups.
  void MeasureLookupCost();

  /// Pseudo-random but deterministic fallback for predicates on
  /// unmeasured features: "true" on about half the sample, keyed on
  /// (sample index, feature) so joint queries stay consistent.
  static bool FallbackPass(size_t sample_index, const Predicate& p);

  bool PredicatePasses(const Predicate& p, size_t sample_index) const;

  CandidateSet sample_;
  std::unordered_map<FeatureId, std::vector<float>> values_;
  std::unordered_map<FeatureId, double> cost_us_;
  double lookup_cost_us_ = 0.02;
  /// µs corresponding to one registry cost-hint unit, for fallbacks.
  double fallback_unit_us_ = 0.2;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_COST_MODEL_H_
