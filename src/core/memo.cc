#include "src/core/memo.h"

#include <algorithm>
#include <limits>
#include <mutex>

namespace emdbg {

DenseMemo::DenseMemo(size_t num_pairs, size_t num_features)
    : num_pairs_(num_pairs),
      num_features_(num_features),
      data_(num_pairs * num_features,
            std::numeric_limits<float>::quiet_NaN()) {}

void DenseMemo::Clear() {
  std::fill(data_.begin(), data_.end(),
            std::numeric_limits<float>::quiet_NaN());
  filled_ = 0;
}

void DenseMemo::GrowFeatures(size_t num_features) {
  if (num_features <= num_features_) return;
  std::vector<float> grown(num_pairs_ * num_features,
                           std::numeric_limits<float>::quiet_NaN());
  for (size_t p = 0; p < num_pairs_; ++p) {
    for (size_t f = 0; f < num_features_; ++f) {
      grown[p * num_features + f] = data_[p * num_features_ + f];
    }
  }
  data_ = std::move(grown);
  num_features_ = num_features;
}

Status DenseMemo::LoadRawValues(const std::vector<float>& values) {
  if (values.size() != num_pairs_ * num_features_) {
    return Status::InvalidArgument("value count mismatch for memo shape");
  }
  data_ = values;
  size_t filled = 0;
  for (const float v : data_) {
    if (!std::isnan(v)) ++filled;
  }
  filled_.store(filled, std::memory_order_relaxed);
  return Status::Ok();
}

struct ShardedMemo::Shard {
  mutable std::mutex mu;
  std::unordered_map<uint64_t, float> map;
};

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

ShardedMemo::~ShardedMemo() = default;

ShardedMemo::ShardedMemo(size_t num_shards) {
  // Power-of-two shard count makes the stripe function a mask.
  shards_.resize(RoundUpPow2(std::max<size_t>(1, num_shards)));
  for (auto& shard : shards_) shard = std::make_unique<Shard>();
}

bool ShardedMemo::Lookup(size_t pair_index, FeatureId feature,
                         double* value) const {
  const Shard& shard = ShardFor(pair_index);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(Key(pair_index, feature));
  if (it == shard.map.end()) return false;
  *value = static_cast<double>(it->second);
  return true;
}

void ShardedMemo::Store(size_t pair_index, FeatureId feature,
                        double value) {
  Shard& shard = ShardFor(pair_index);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.map[Key(pair_index, feature)] = static_cast<float>(value);
}

bool ShardedMemo::Contains(size_t pair_index, FeatureId feature) const {
  const Shard& shard = ShardFor(pair_index);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.map.count(Key(pair_index, feature)) > 0;
}

size_t ShardedMemo::FilledCount() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

size_t ShardedMemo::MemoryBytes() const {
  size_t total = shards_.size() * sizeof(Shard);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size() * 48 +
             shard->map.bucket_count() * sizeof(void*);
  }
  return total;
}

void ShardedMemo::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
  }
}

size_t HashMemo::MemoryBytes() const {
  // Approximate: node-based unordered_map — key + value + node/bucket
  // overhead (pointer-heavy), roughly 48 bytes per entry plus the bucket
  // array. This is the "more memory per entry, fewer entries" side of the
  // Sec. 7.4 trade-off.
  return map_.size() * 48 + map_.bucket_count() * sizeof(void*);
}

}  // namespace emdbg
