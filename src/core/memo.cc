#include "src/core/memo.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <mutex>

#include "src/util/bitmap.h"

namespace emdbg {

DenseMemo::DenseMemo(size_t num_pairs, size_t num_features)
    : num_pairs_(num_pairs),
      num_features_(num_features),
      data_(num_pairs * num_features,
            std::numeric_limits<float>::quiet_NaN()) {}

void DenseMemo::Clear() {
  std::fill(data_.begin(), data_.end(),
            std::numeric_limits<float>::quiet_NaN());
  filled_ = 0;
}

void DenseMemo::GrowFeatures(size_t num_features) {
  if (num_features <= num_features_) return;
  std::vector<float> grown(num_pairs_ * num_features,
                           std::numeric_limits<float>::quiet_NaN());
  for (size_t p = 0; p < num_pairs_; ++p) {
    for (size_t f = 0; f < num_features_; ++f) {
      grown[p * num_features + f] = data_[p * num_features_ + f];
    }
  }
  data_ = std::move(grown);
  num_features_ = num_features;
}

void DenseMemo::GatherColumn(size_t row, size_t n, FeatureId feature,
                             float* out, uint64_t* present) const {
  bitspan::Fill(present, n, false);
  const float* cell = &data_[row * num_features_ + feature];
  for (size_t i = 0; i < n; ++i, cell += num_features_) {
    const float v = *cell;
    out[i] = v;
    if (!std::isnan(v)) present[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

void DenseMemo::FillSpan(size_t row, size_t n, FeatureId feature,
                         const float* vals, const uint64_t* mask) {
  float* cell = &data_[row * num_features_ + feature];
  size_t newly_filled = 0;
  for (size_t wi = 0; wi < bitspan::Words(n); ++wi) {
    uint64_t m = wi + 1 == bitspan::Words(n)
                     ? mask[wi] & bitspan::TailMask(n)
                     : mask[wi];
    while (m != 0) {
      const size_t i = wi * 64 + static_cast<size_t>(std::countr_zero(m));
      m &= m - 1;
      float& slot = cell[i * num_features_];
      if (std::isnan(slot)) ++newly_filled;
      slot = vals[i];
    }
  }
  if (newly_filled > 0) {
    filled_.fetch_add(newly_filled, std::memory_order_relaxed);
  }
}

Status DenseMemo::LoadRawValues(const std::vector<float>& values) {
  if (values.size() != num_pairs_ * num_features_) {
    return Status::InvalidArgument("value count mismatch for memo shape");
  }
  data_ = values;
  size_t filled = 0;
  for (const float v : data_) {
    if (!std::isnan(v)) ++filled;
  }
  filled_.store(filled, std::memory_order_relaxed);
  return Status::Ok();
}

struct ShardedMemo::Shard {
  mutable std::mutex mu;
  std::unordered_map<uint64_t, float> map;
  /// Bytes reserved from the budget for this shard (guarded by mu).
  size_t billed = 0;
  /// Recency stamp for coldest-first eviction (relaxed; approximate
  /// ordering is fine for an eviction heuristic). Mutable: Lookup is
  /// const but still counts as access.
  mutable std::atomic<uint64_t> last_access{0};
};

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Billing chunk: reservations amortize over many Stores instead of one
/// atomic round-trip per entry.
constexpr size_t kMemoBillChunk = 64 * 1024;

}  // namespace

ShardedMemo::~ShardedMemo() {
  if (budget_ == nullptr) return;
  for (auto& shard : shards_) {
    if (shard->billed > 0) budget_->Release(shard->billed);
  }
}

ShardedMemo::ShardedMemo(size_t num_shards) {
  // Power-of-two shard count makes the stripe function a mask.
  shards_.resize(RoundUpPow2(std::max<size_t>(1, num_shards)));
  for (auto& shard : shards_) shard = std::make_unique<Shard>();
}

size_t ShardedMemo::ShardBytes(const Shard& shard) {
  return shard.map.size() * 48 + shard.map.bucket_count() * sizeof(void*);
}

void ShardedMemo::SetBudget(MemoryBudget* budget) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (budget_ != nullptr && shard->billed > 0) {
      budget_->Release(shard->billed);
    }
    shard->billed = 0;
  }
  budget_ = budget;
  if (budget_ == nullptr) return;
  // Bill what is already resident; denial here evicts via the normal
  // pressure path on the next Store, so best-effort is fine.
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    const size_t bytes = ShardBytes(*shard);
    if (bytes > 0 && budget_->Reserve(bytes, "memo.shard").ok()) {
      shard->billed = bytes;
    }
  }
}

size_t ShardedMemo::EvictColdestShards(size_t want) {
  // Snapshot (shard, recency) and walk coldest-first with try_lock: a
  // shard mid-Store (or the very shard whose Store triggered this call)
  // is skipped instead of deadlocked on.
  std::vector<std::pair<uint64_t, Shard*>> order;
  order.reserve(shards_.size());
  for (auto& shard : shards_) {
    order.emplace_back(shard->last_access.load(std::memory_order_relaxed),
                       shard.get());
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t freed = 0;
  for (const auto& [tick, shard] : order) {
    if (freed >= want) break;
    std::unique_lock<std::mutex> lock(shard->mu, std::try_to_lock);
    if (!lock.owns_lock() || shard->map.empty()) continue;
    shard->map.clear();
    std::unordered_map<uint64_t, float>().swap(shard->map);
    if (budget_ != nullptr && shard->billed > 0) {
      budget_->Release(shard->billed);
      freed += shard->billed;
      shard->billed = 0;
    }
  }
  if (freed > 0) evictions_.fetch_add(1, std::memory_order_relaxed);
  return freed;
}

bool ShardedMemo::Lookup(size_t pair_index, FeatureId feature,
                         double* value) const {
  const Shard& shard = ShardFor(pair_index);
  shard.last_access.store(access_clock_.fetch_add(1, std::memory_order_relaxed),
                          std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(Key(pair_index, feature));
  if (it == shard.map.end()) return false;
  *value = static_cast<double>(it->second);
  return true;
}

void ShardedMemo::Store(size_t pair_index, FeatureId feature,
                        double value) {
  Shard& shard = ShardFor(pair_index);
  shard.last_access.store(
      access_clock_.fetch_add(1, std::memory_order_relaxed),
      std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.map[Key(pair_index, feature)] = static_cast<float>(value);
  if (budget_ == nullptr) return;
  const size_t bytes = ShardBytes(shard);
  if (bytes <= shard.billed) return;
  const size_t want = std::max(bytes - shard.billed, kMemoBillChunk);
  if (budget_->Reserve(want, "memo.shard").ok()) {
    shard.billed += want;
    return;
  }
  // Pressure: make room by evicting colder shards (this one's mutex is
  // held, so EvictColdestShards skips it), then retry once.
  EvictColdestShards(want);
  if (budget_->Reserve(want, "memo.shard").ok()) {
    shard.billed += want;
    return;
  }
  // Still denied: this shard itself is the overflow. Drop it — the memo
  // is a cache, the values recompute on demand.
  shard.map.clear();
  std::unordered_map<uint64_t, float>().swap(shard.map);
  if (shard.billed > 0) {
    budget_->Release(shard.billed);
    shard.billed = 0;
  }
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

bool ShardedMemo::Contains(size_t pair_index, FeatureId feature) const {
  const Shard& shard = ShardFor(pair_index);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.map.count(Key(pair_index, feature)) > 0;
}

size_t ShardedMemo::FilledCount() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

size_t ShardedMemo::MemoryBytes() const {
  size_t total = shards_.size() * sizeof(Shard);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size() * 48 +
             shard->map.bucket_count() * sizeof(void*);
  }
  return total;
}

void ShardedMemo::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
    if (budget_ != nullptr && shard->billed > 0) {
      budget_->Release(shard->billed);
    }
    shard->billed = 0;
  }
}

size_t HashMemo::MemoryBytes() const {
  // Approximate: node-based unordered_map — key + value + node/bucket
  // overhead (pointer-heavy), roughly 48 bytes per entry plus the bucket
  // array. This is the "more memory per entry, fewer entries" side of the
  // Sec. 7.4 trade-off.
  return map_.size() * 48 + map_.bucket_count() * sizeof(void*);
}

void HashMemo::ReleaseBilling() {
  if (budget_ != nullptr && billed_bytes_ > 0) {
    budget_->Release(billed_bytes_);
  }
  billed_bytes_ = 0;
}

void HashMemo::SetBudget(MemoryBudget* budget) {
  ReleaseBilling();
  budget_ = budget;
  if (budget_ == nullptr) return;
  const size_t bytes = MemoryBytes();
  if (bytes > 0 && budget_->Reserve(bytes, "memo.hash").ok()) {
    billed_bytes_ = bytes;
  }
}

void HashMemo::Store(size_t pair_index, FeatureId feature, double value) {
  map_[Key(pair_index, feature)] = static_cast<float>(value);
  if (budget_ == nullptr) return;
  const size_t bytes = MemoryBytes();
  if (bytes <= billed_bytes_) return;
  const size_t want = std::max(bytes - billed_bytes_, kMemoBillChunk);
  if (budget_->Reserve(want, "memo.hash").ok()) {
    billed_bytes_ += want;
    return;
  }
  // Denied: drop the cache (recompute-on-miss keeps correctness) rather
  // than grow past the budget.
  map_.clear();
  std::unordered_map<uint64_t, float>().swap(map_);
  ReleaseBilling();
}

}  // namespace emdbg
