#include "src/core/memo.h"

#include <limits>

namespace emdbg {

DenseMemo::DenseMemo(size_t num_pairs, size_t num_features)
    : num_pairs_(num_pairs),
      num_features_(num_features),
      data_(num_pairs * num_features,
            std::numeric_limits<float>::quiet_NaN()) {}

void DenseMemo::Clear() {
  std::fill(data_.begin(), data_.end(),
            std::numeric_limits<float>::quiet_NaN());
  filled_ = 0;
}

void DenseMemo::GrowFeatures(size_t num_features) {
  if (num_features <= num_features_) return;
  std::vector<float> grown(num_pairs_ * num_features,
                           std::numeric_limits<float>::quiet_NaN());
  for (size_t p = 0; p < num_pairs_; ++p) {
    for (size_t f = 0; f < num_features_; ++f) {
      grown[p * num_features + f] = data_[p * num_features_ + f];
    }
  }
  data_ = std::move(grown);
  num_features_ = num_features;
}

Status DenseMemo::LoadRawValues(const std::vector<float>& values) {
  if (values.size() != num_pairs_ * num_features_) {
    return Status::InvalidArgument("value count mismatch for memo shape");
  }
  data_ = values;
  size_t filled = 0;
  for (const float v : data_) {
    if (!std::isnan(v)) ++filled;
  }
  filled_.store(filled, std::memory_order_relaxed);
  return Status::Ok();
}

size_t HashMemo::MemoryBytes() const {
  // Approximate: node-based unordered_map — key + value + node/bucket
  // overhead (pointer-heavy), roughly 48 bytes per entry plus the bucket
  // array. This is the "more memory per entry, fewer entries" side of the
  // Sec. 7.4 trade-off.
  return map_.size() * 48 + map_.bucket_count() * sizeof(void*);
}

}  // namespace emdbg
