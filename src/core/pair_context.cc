#include "src/core/pair_context.h"

#include <algorithm>

#include "src/text/similarity_registry.h"

namespace emdbg {

PairContext::PairContext(const Table& a, const Table& b,
                         const FeatureCatalog& catalog, Options options)
    : a_(a), b_(b), catalog_(catalog), options_(options) {
  if (options_.cache_tokens) {
    cache_a_.words.resize(a_.num_attributes() * a_.num_rows());
    cache_a_.qgrams.resize(a_.num_attributes() * a_.num_rows());
    cache_b_.words.resize(b_.num_attributes() * b_.num_rows());
    cache_b_.qgrams.resize(b_.num_attributes() * b_.num_rows());
  }
}

const TokenList* PairContext::CachedTokens(bool table_b, AttrIndex attr,
                                           uint32_t row, bool qgrams) {
  if (!options_.cache_tokens) return nullptr;
  const Table& table = table_b ? b_ : a_;
  TokenCache& cache = table_b ? cache_b_ : cache_a_;
  auto& slots = qgrams ? cache.qgrams : cache.words;
  const size_t slot = attr * table.num_rows() + row;
  if (slots[slot] == nullptr) {
    const std::string& text = table.Value(row, attr);
    slots[slot] = std::make_unique<TokenList>(
        qgrams ? QGramTokenize(text, 3) : AlnumTokenize(text));
  }
  return slots[slot].get();
}

void PairContext::Prewarm(const std::vector<FeatureId>& features,
                          ThreadPool* pool) {
  // Serial phase: TF-IDF corpus models mutate a shared map.
  for (const FeatureId f : features) {
    const Feature& feature = catalog_.feature(f);
    if (GetSimFunctionInfo(feature.fn).needs_tfidf) {
      (void)ModelFor(feature.attr_a, feature.attr_b);
    }
  }
  if (!options_.cache_tokens) return;

  // Deduplicated (table, attribute, token kind) tokenization tasks —
  // several features usually share attributes.
  struct Task {
    bool table_b;
    AttrIndex attr;
    bool qgrams;
    bool operator==(const Task&) const = default;
  };
  std::vector<Task> tasks;
  for (const FeatureId f : features) {
    const Feature& feature = catalog_.feature(f);
    const SimFunctionInfo& info = GetSimFunctionInfo(feature.fn);
    if (info.tokens == TokenNeed::kNone) continue;
    const bool qgrams = info.tokens == TokenNeed::kQGram3;
    for (const Task t : {Task{false, feature.attr_a, qgrams},
                         Task{true, feature.attr_b, qgrams}}) {
      if (std::find(tasks.begin(), tasks.end(), t) == tasks.end()) {
        tasks.push_back(t);
      }
    }
  }

  for (const Task& t : tasks) {
    const uint32_t rows =
        t.table_b ? b_.num_rows() : a_.num_rows();
    if (pool != nullptr && pool->num_workers() > 1) {
      // Each row fills a distinct cache slot: safe without locking.
      pool->ParallelFor(rows, [&](size_t, size_t row) {
        (void)CachedTokens(t.table_b, t.attr, static_cast<uint32_t>(row),
                           t.qgrams);
      });
    } else {
      for (uint32_t row = 0; row < rows; ++row) {
        (void)CachedTokens(t.table_b, t.attr, row, t.qgrams);
      }
    }
  }
}

double PairContext::ComputeFeature(FeatureId f, PairId pair) {
  compute_count_.fetch_add(1, std::memory_order_relaxed);
  const Feature& feature = catalog_.feature(f);
  const SimFunctionInfo& info = GetSimFunctionInfo(feature.fn);

  SimArg arg_a;
  arg_a.text = a_.Value(pair.a, feature.attr_a);
  SimArg arg_b;
  arg_b.text = b_.Value(pair.b, feature.attr_b);

  if (info.tokens == TokenNeed::kWords) {
    arg_a.words = CachedTokens(false, feature.attr_a, pair.a, false);
    arg_b.words = CachedTokens(true, feature.attr_b, pair.b, false);
  } else if (info.tokens == TokenNeed::kQGram3) {
    arg_a.qgrams = CachedTokens(false, feature.attr_a, pair.a, true);
    arg_b.qgrams = CachedTokens(true, feature.attr_b, pair.b, true);
  }

  const TfIdfModel* model = nullptr;
  if (info.needs_tfidf) {
    model = &ModelFor(feature.attr_a, feature.attr_b);
  }
  // Quantize to float: the memo stores float, and matching decisions must
  // not depend on whether a value came from computation or from the memo
  // (otherwise rule/predicate *order* could change results at threshold
  // boundaries).
  return static_cast<float>(
      ComputeSimilarity(feature.fn, arg_a, arg_b, model));
}

const TfIdfModel& PairContext::ModelFor(AttrIndex attr_a, AttrIndex attr_b) {
  const auto key = std::make_pair(attr_a, attr_b);
  auto it = models_.find(key);
  if (it == models_.end()) {
    auto model = std::make_unique<TfIdfModel>();
    for (uint32_t row = 0; row < a_.num_rows(); ++row) {
      model->AddDocument(AlnumTokenize(a_.Value(row, attr_a)));
    }
    for (uint32_t row = 0; row < b_.num_rows(); ++row) {
      model->AddDocument(AlnumTokenize(b_.Value(row, attr_b)));
    }
    it = models_.emplace(key, std::move(model)).first;
  }
  return *it->second;
}

namespace {

size_t TokenListBytes(const TokenList& tokens) {
  size_t bytes = sizeof(TokenList) + tokens.capacity() * sizeof(std::string);
  for (const std::string& t : tokens) bytes += t.capacity();
  return bytes;
}

size_t CacheBytes(const std::vector<std::unique_ptr<TokenList>>& slots) {
  size_t bytes = slots.capacity() * sizeof(std::unique_ptr<TokenList>);
  for (const auto& slot : slots) {
    if (slot != nullptr) bytes += TokenListBytes(*slot);
  }
  return bytes;
}

}  // namespace

size_t PairContext::TokenCacheBytes() const {
  return CacheBytes(cache_a_.words) + CacheBytes(cache_a_.qgrams) +
         CacheBytes(cache_b_.words) + CacheBytes(cache_b_.qgrams);
}

void PairContext::ClearTokenCaches() {
  for (auto& slot : cache_a_.words) slot.reset();
  for (auto& slot : cache_a_.qgrams) slot.reset();
  for (auto& slot : cache_b_.words) slot.reset();
  for (auto& slot : cache_b_.qgrams) slot.reset();
}

}  // namespace emdbg
