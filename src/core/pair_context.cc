#include "src/core/pair_context.h"

#include <algorithm>
#include <bit>
#include <string>

#include "src/text/similarity_registry.h"
#include "src/util/bitmap.h"

namespace emdbg {

namespace {

/// Runs `fn(row)` for every row, fanning out over the pool when one is
/// available. Callers guarantee distinct rows touch distinct slots.
template <typename Fn>
void ForEachRow(ThreadPool* pool, uint32_t rows, Fn&& fn) {
  if (pool != nullptr && pool->num_workers() > 1) {
    pool->ParallelFor(rows, [&](size_t, size_t row) {
      fn(static_cast<uint32_t>(row));
    });
  } else {
    for (uint32_t row = 0; row < rows; ++row) fn(row);
  }
}

/// Cache-billing chunk (see PairContext::BillBytes): one budget
/// round-trip per ~256 KB of cache growth, not per token list.
constexpr size_t kCacheBillChunk = 256 * 1024;

size_t OneTokenIdsBytes(const TokenIds& ids) {
  return sizeof(TokenIds) +
         (ids.doc.capacity() + ids.sorted.capacity()) * sizeof(TokenId);
}

}  // namespace

PairContext::PairContext(const Table& a, const Table& b,
                         const FeatureCatalog& catalog, Options options)
    : a_(a), b_(b), catalog_(catalog), options_(options),
      budget_(options.budget) {
  if (options_.cache_tokens) {
    cache_a_.words.resize(a_.num_attributes() * a_.num_rows());
    cache_a_.qgrams.resize(a_.num_attributes() * a_.num_rows());
    cache_b_.words.resize(b_.num_attributes() * b_.num_rows());
    cache_b_.qgrams.resize(b_.num_attributes() * b_.num_rows());
    if (options_.intern_tokens) {
      interner_ = std::make_unique<TokenInterner>();
      idc_a_.words.resize(cache_a_.words.size());
      idc_a_.qgrams.resize(cache_a_.qgrams.size());
      idc_a_.word_tf.resize(cache_a_.words.size());
      idc_a_.words_built.assign(a_.num_attributes(), false);
      idc_a_.qgrams_built.assign(a_.num_attributes(), false);
      idc_a_.tf_built.assign(a_.num_attributes(), false);
      idc_b_.words.resize(cache_b_.words.size());
      idc_b_.qgrams.resize(cache_b_.qgrams.size());
      idc_b_.word_tf.resize(cache_b_.words.size());
      idc_b_.words_built.assign(b_.num_attributes(), false);
      idc_b_.qgrams_built.assign(b_.num_attributes(), false);
      idc_b_.tf_built.assign(b_.num_attributes(), false);
    }
  }
}

PairContext::~PairContext() {
  if (budget_ != nullptr) {
    budget_->Release(billed_bytes_.load(std::memory_order_relaxed));
  }
}

bool PairContext::BillBytes(size_t added) {
  if (budget_ == nullptr) return true;
  const size_t total =
      approx_bytes_.fetch_add(added, std::memory_order_relaxed) + added;
  size_t billed = billed_bytes_.load(std::memory_order_relaxed);
  while (total > billed) {
    // Claim the chunk optimistically so concurrent billers don't all
    // reserve for the same growth; roll back on denial.
    const size_t want = std::max(total - billed, kCacheBillChunk);
    if (!billed_bytes_.compare_exchange_weak(billed, billed + want,
                                             std::memory_order_relaxed)) {
      continue;
    }
    if (!budget_->Reserve(want, "ctx.cache").ok()) {
      billed_bytes_.fetch_sub(want, std::memory_order_relaxed);
      budget_denials_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    billed = billed_bytes_.load(std::memory_order_relaxed);
  }
  return true;
}

size_t PairContext::TakeInternerGrowth() {
  if (interner_ == nullptr) return 0;
  const size_t now = interner_->ArenaBytes() + interner_->DictionaryBytes();
  const size_t grown = now > interner_bytes_seen_
                           ? now - interner_bytes_seen_
                           : 0;
  interner_bytes_seen_ = now;
  return grown;
}

void PairContext::ResyncBillingSerial() {
  if (budget_ == nullptr) return;
  size_t actual = TokenCacheBytes() + IdCacheBytes();
  if (interner_ != nullptr) {
    actual += interner_->ArenaBytes() + interner_->DictionaryBytes();
  }
  approx_bytes_.store(actual, std::memory_order_relaxed);
  const size_t billed = billed_bytes_.load(std::memory_order_relaxed);
  if (billed > actual) {
    budget_->Release(billed - actual);
    billed_bytes_.store(actual, std::memory_order_relaxed);
  } else if (billed < actual) {
    // Under-billed (an earlier denial left a deficit). Best-effort: the
    // budget may have room now; if not, the deficit shrinks at the next
    // clear. TryReserve, not Reserve — Resync runs from reclaim
    // callbacks (DropIdCaches), where a reclaiming Reserve would
    // self-deadlock on the registry mutex.
    if (budget_->TryReserve(actual - billed, "ctx.cache").ok()) {
      billed_bytes_.store(actual, std::memory_order_relaxed);
    }
  }
}

const TokenList* PairContext::CachedTokens(bool table_b, AttrIndex attr,
                                           uint32_t row, bool qgrams) {
  if (!options_.cache_tokens ||
      token_degraded_.load(std::memory_order_relaxed)) {
    return nullptr;
  }
  const Table& table = table_b ? b_ : a_;
  TokenCache& cache = table_b ? cache_b_ : cache_a_;
  auto& slots = qgrams ? cache.qgrams : cache.words;
  const size_t slot = attr * table.num_rows() + row;
  if (slots[slot] == nullptr) {
    const std::string& text = table.Value(row, attr);
    slots[slot] = std::make_unique<TokenList>(
        qgrams ? QGramTokenize(text, 3) : AlnumTokenize(text));
    size_t bytes =
        sizeof(TokenList) + slots[slot]->capacity() * sizeof(std::string);
    for (const std::string& t : *slots[slot]) bytes += t.capacity();
    if (!BillBytes(bytes)) {
      // Stop caching new slots; this one stays valid for the current
      // call. Safe mid-parallel-fill: the flag is atomic and every
      // similarity function accepts null token lists (it re-tokenizes).
      token_degraded_.store(true, std::memory_order_relaxed);
    }
  }
  return slots[slot].get();
}

bool PairContext::BuildIdColumn(bool table_b, AttrIndex attr, bool qgrams,
                                ThreadPool* pool) {
  IdCache& idc = table_b ? idc_b_ : idc_a_;
  auto& built = qgrams ? idc.qgrams_built : idc.words_built;
  if (built[attr]) return true;
  if (id_degraded_.load(std::memory_order_relaxed)) return false;
  const Table& table = table_b ? b_ : a_;
  auto& slots = qgrams ? idc.qgrams : idc.words;
  const uint32_t rows = table.num_rows();
  // Abandons a half-built column so billing and slots stay consistent.
  auto abandon = [&]() {
    for (uint32_t row = 0; row < rows; ++row) {
      slots[attr * rows + row].reset();
    }
    id_degraded_.store(true, std::memory_order_relaxed);
    ResyncBillingSerial();
    return false;
  };
  // Serial phase: interning mutates the shared dictionary. Tokenization is
  // usually already done (Prewarm fills token slots in parallel first).
  for (uint32_t row = 0; row < rows; ++row) {
    const TokenList* tokens = CachedTokens(table_b, attr, row, qgrams);
    // Token caching degraded mid-column: the id path needs the raw token
    // lists, so this column cannot finish.
    if (tokens == nullptr) return abandon();
    auto ids = std::make_unique<TokenIds>();
    ids->doc = InternDocIds(*tokens, *interner_);
    slots[attr * rows + row] = std::move(ids);
  }
  ranks_ = interner_->LexRanks();
  // Parallel phase: per-row sorting touches distinct slots, reads nothing
  // shared.
  ForEachRow(pool, rows, [&](uint32_t row) {
    TokenIds& ids = *slots[attr * rows + row];
    ids.sorted = SortedUniqueIds(ids.doc);
  });
  // Bill the column (id arrays + whatever the dictionary grew by). On
  // denial, drop the column and degrade: the string kernels take over
  // with identical values.
  size_t bytes = TakeInternerGrowth();
  if (ranks_ != nullptr) bytes += ranks_->capacity() * sizeof(uint32_t);
  for (uint32_t row = 0; row < rows; ++row) {
    bytes += OneTokenIdsBytes(*slots[attr * rows + row]);
  }
  if (!BillBytes(bytes)) return abandon();
  built[attr] = true;
  return true;
}

bool PairContext::BuildTfColumn(bool table_b, AttrIndex attr,
                                ThreadPool* pool) {
  IdCache& idc = table_b ? idc_b_ : idc_a_;
  if (idc.tf_built[attr]) return true;
  if (!BuildIdColumn(table_b, attr, /*qgrams=*/false, pool)) return false;
  const Table& table = table_b ? b_ : a_;
  const uint32_t rows = table.num_rows();
  const auto ranks = ranks_;
  ForEachRow(pool, rows, [&](uint32_t row) {
    const size_t slot = attr * rows + row;
    idc.word_tf[slot] = std::make_unique<IdTfVector>(
        MakeIdTfVector(idc.words[slot]->doc, *ranks));
  });
  size_t bytes = 0;
  for (uint32_t row = 0; row < rows; ++row) {
    const auto& tf = *idc.word_tf[attr * rows + row];
    bytes += sizeof(IdTfVector) +
             tf.entries.capacity() * sizeof(tf.entries[0]);
  }
  if (!BillBytes(bytes)) {
    for (uint32_t row = 0; row < rows; ++row) {
      idc.word_tf[attr * rows + row].reset();
    }
    id_degraded_.store(true, std::memory_order_relaxed);
    ResyncBillingSerial();
    return false;
  }
  idc.tf_built[attr] = true;
  return true;
}

PairContext::ModelIdCache& PairContext::EnsureModelIds(AttrIndex attr_a,
                                                       AttrIndex attr_b,
                                                       ThreadPool* pool) {
  ModelIdCache& mc = model_ids_[std::make_pair(attr_a, attr_b)];
  if (mc.built) return mc;
  const TfIdfModel& model = ModelFor(attr_a, attr_b);
  if (!BuildTfColumn(false, attr_a, pool) ||
      !BuildTfColumn(true, attr_b, pool)) {
    return mc;  // built stays false; caller falls back to string path
  }
  // idf-by-id over the whole current vocabulary: Idf(text) is a pure
  // function of the model, so values match the string path exactly.
  const uint32_t vocab = interner_->size();
  mc.idf_by_id.reserve(vocab);
  for (uint32_t id = static_cast<uint32_t>(mc.idf_by_id.size()); id < vocab;
       ++id) {
    mc.idf_by_id.push_back(model.Idf(std::string(interner_->Text(id))));
  }
  mc.rows_a.resize(a_.num_rows());
  mc.rows_b.resize(b_.num_rows());
  ForEachRow(pool, a_.num_rows(), [&](uint32_t row) {
    mc.rows_a[row] = std::make_unique<IdWeightVector>(MakeIdWeightVector(
        *idc_a_.word_tf[attr_a * a_.num_rows() + row], mc.idf_by_id));
  });
  ForEachRow(pool, b_.num_rows(), [&](uint32_t row) {
    mc.rows_b[row] = std::make_unique<IdWeightVector>(MakeIdWeightVector(
        *idc_b_.word_tf[attr_b * b_.num_rows() + row], mc.idf_by_id));
  });
  size_t bytes = mc.idf_by_id.capacity() * sizeof(double);
  for (const auto* rows : {&mc.rows_a, &mc.rows_b}) {
    for (const auto& row : *rows) {
      bytes += sizeof(IdWeightVector) +
               row->entries.capacity() * sizeof(row->entries[0]);
    }
  }
  if (!BillBytes(bytes)) {
    mc.idf_by_id.clear();
    mc.idf_by_id.shrink_to_fit();
    mc.rows_a.clear();
    mc.rows_b.clear();
    id_degraded_.store(true, std::memory_order_relaxed);
    ResyncBillingSerial();
    return mc;
  }
  mc.built = true;
  return mc;
}

const TokenIds* PairContext::CachedIds(bool table_b, AttrIndex attr,
                                       uint32_t row, bool qgrams) {
  IdCache& idc = table_b ? idc_b_ : idc_a_;
  const auto& built = qgrams ? idc.qgrams_built : idc.words_built;
  if (!built[attr] && !BuildIdColumn(table_b, attr, qgrams, nullptr)) {
    return nullptr;
  }
  const Table& table = table_b ? b_ : a_;
  const auto& slots = qgrams ? idc.qgrams : idc.words;
  return slots[attr * table.num_rows() + row].get();
}

void PairContext::Prewarm(const std::vector<FeatureId>& features,
                          ThreadPool* pool) {
  // Serial phase: TF-IDF corpus models mutate a shared map.
  for (const FeatureId f : features) {
    const Feature& feature = catalog_.feature(f);
    if (GetSimFunctionInfo(feature.fn).needs_tfidf) {
      (void)ModelFor(feature.attr_a, feature.attr_b);
    }
  }
  if (!options_.cache_tokens) return;

  // Deduplicated (table, attribute, token kind) tokenization tasks —
  // several features usually share attributes.
  struct Task {
    bool table_b;
    AttrIndex attr;
    bool qgrams;
    bool operator==(const Task&) const = default;
  };
  std::vector<Task> tasks;
  for (const FeatureId f : features) {
    const Feature& feature = catalog_.feature(f);
    const SimFunctionInfo& info = GetSimFunctionInfo(feature.fn);
    if (info.tokens == TokenNeed::kNone) continue;
    const bool qgrams = info.tokens == TokenNeed::kQGram3;
    for (const Task t : {Task{false, feature.attr_a, qgrams},
                         Task{true, feature.attr_b, qgrams}}) {
      if (std::find(tasks.begin(), tasks.end(), t) == tasks.end()) {
        tasks.push_back(t);
      }
    }
  }

  for (const Task& t : tasks) {
    const uint32_t rows =
        t.table_b ? b_.num_rows() : a_.num_rows();
    if (pool != nullptr && pool->num_workers() > 1) {
      // Each row fills a distinct cache slot: safe without locking.
      pool->ParallelFor(rows, [&](size_t, size_t row) {
        (void)CachedTokens(t.table_b, t.attr, static_cast<uint32_t>(row),
                           t.qgrams);
      });
    } else {
      for (uint32_t row = 0; row < rows; ++row) {
        (void)CachedTokens(t.table_b, t.attr, row, t.qgrams);
      }
    }
  }

  // Id phase: build every interned-id structure the features' fast paths
  // will read, so concurrent ComputeFeature calls stay read-only.
  if (interner_ == nullptr) return;
  for (const FeatureId f : features) {
    const Feature& feature = catalog_.feature(f);
    const SimFunctionInfo& info = GetSimFunctionInfo(feature.fn);
    if (!info.id_path) continue;
    const bool qgrams = info.tokens == TokenNeed::kQGram3;
    BuildIdColumn(false, feature.attr_a, qgrams, pool);
    BuildIdColumn(true, feature.attr_b, qgrams, pool);
    if (feature.fn == SimFunction::kCosine) {
      BuildTfColumn(false, feature.attr_a, pool);
      BuildTfColumn(true, feature.attr_b, pool);
    }
    if (info.needs_tfidf) {
      (void)EnsureModelIds(feature.attr_a, feature.attr_b, pool);
    }
  }
}

bool PairContext::TryComputeFeatureIds(const Feature& feature,
                                       const SimFunctionInfo& info,
                                       PairId pair, double* value) {
  switch (feature.fn) {
    case SimFunction::kJaccard:
    case SimFunction::kDice:
    case SimFunction::kOverlap:
    case SimFunction::kTrigram: {
      const bool qgrams = info.tokens == TokenNeed::kQGram3;
      const TokenIds* ia = CachedIds(false, feature.attr_a, pair.a, qgrams);
      const TokenIds* ib = CachedIds(true, feature.attr_b, pair.b, qgrams);
      if (ia == nullptr || ib == nullptr) return false;
      switch (feature.fn) {
        case SimFunction::kDice:
          *value = IdDice(ia->sorted, ib->sorted);
          return true;
        case SimFunction::kOverlap:
          *value = IdOverlap(ia->sorted, ib->sorted);
          return true;
        default:  // Jaccard and Trigram (= Jaccard over 3-grams)
          *value = IdJaccard(ia->sorted, ib->sorted);
          return true;
      }
    }
    case SimFunction::kCosine: {
      if (!BuildTfColumn(false, feature.attr_a, nullptr) ||
          !BuildTfColumn(true, feature.attr_b, nullptr)) {
        return false;
      }
      const IdTfVector& ta =
          *idc_a_.word_tf[feature.attr_a * a_.num_rows() + pair.a];
      const IdTfVector& tb =
          *idc_b_.word_tf[feature.attr_b * b_.num_rows() + pair.b];
      *value = IdCosineTf(ta, tb, *ranks_);
      return true;
    }
    case SimFunction::kMongeElkan: {
      const TokenIds* ia = CachedIds(false, feature.attr_a, pair.a, false);
      const TokenIds* ib = CachedIds(true, feature.attr_b, pair.b, false);
      const TokenList* ta = CachedTokens(false, feature.attr_a, pair.a, false);
      const TokenList* tb = CachedTokens(true, feature.attr_b, pair.b, false);
      if (ia == nullptr || ib == nullptr || ta == nullptr || tb == nullptr) {
        return false;
      }
      *value = IdMongeElkan(*ta, *tb, *ia, *ib);
      return true;
    }
    case SimFunction::kTfIdf: {
      const ModelIdCache& mc =
          EnsureModelIds(feature.attr_a, feature.attr_b, nullptr);
      if (!mc.built) return false;
      *value = IdTfIdfCosine(*mc.rows_a[pair.a], *mc.rows_b[pair.b], *ranks_);
      return true;
    }
    case SimFunction::kSoftTfIdf: {
      const ModelIdCache& mc =
          EnsureModelIds(feature.attr_a, feature.attr_b, nullptr);
      if (!mc.built) return false;
      *value = IdSoftTfIdf(*mc.rows_a[pair.a], *mc.rows_b[pair.b], *ranks_,
                           *interner_);
      return true;
    }
    default:
      return false;  // unreachable: gated on info.id_path
  }
}

double PairContext::ComputeFeatureValue(const Feature& feature,
                                        const SimFunctionInfo& info,
                                        PairId pair) {
  // Quantize to float: the memo stores float, and matching decisions must
  // not depend on whether a value came from computation or from the memo
  // (otherwise rule/predicate *order* could change results at threshold
  // boundaries).
  if (info.id_path && interner_ != nullptr) {
    double value = 0.0;
    if (TryComputeFeatureIds(feature, info, pair, &value)) {
      return static_cast<float>(value);
    }
    // Budget pressure dropped or blocked an id structure — fall through
    // to the string kernels, which compute the identical value.
  }

  SimArg arg_a;
  arg_a.text = a_.Value(pair.a, feature.attr_a);
  SimArg arg_b;
  arg_b.text = b_.Value(pair.b, feature.attr_b);

  if (info.tokens == TokenNeed::kWords) {
    arg_a.words = CachedTokens(false, feature.attr_a, pair.a, false);
    arg_b.words = CachedTokens(true, feature.attr_b, pair.b, false);
  } else if (info.tokens == TokenNeed::kQGram3) {
    arg_a.qgrams = CachedTokens(false, feature.attr_a, pair.a, true);
    arg_b.qgrams = CachedTokens(true, feature.attr_b, pair.b, true);
  }

  const TfIdfModel* model = nullptr;
  if (info.needs_tfidf) {
    model = &ModelFor(feature.attr_a, feature.attr_b);
  }
  return static_cast<float>(
      ComputeSimilarity(feature.fn, arg_a, arg_b, model));
}

double PairContext::ComputeFeature(FeatureId f, PairId pair) {
  compute_count_.fetch_add(1, std::memory_order_relaxed);
  const Feature& feature = catalog_.feature(f);
  return ComputeFeatureValue(feature, GetSimFunctionInfo(feature.fn), pair);
}

void PairContext::ComputeFeatureBlock(FeatureId f, const PairId* pairs,
                                      size_t n, const uint64_t* mask,
                                      float* out) {
  const size_t lanes = bitspan::Count(mask, n);
  if (lanes == 0) return;
  compute_count_.fetch_add(lanes, std::memory_order_relaxed);
  const Feature& feature = catalog_.feature(f);
  const SimFunctionInfo& info = GetSimFunctionInfo(feature.fn);

  // Runs `cell(i)` for every set bit of the mask, tail-masked.
  const auto for_each_lane = [&](auto&& cell) {
    const size_t words = bitspan::Words(n);
    for (size_t wi = 0; wi < words; ++wi) {
      uint64_t m = wi + 1 == words ? mask[wi] & bitspan::TailMask(n)
                                   : mask[wi];
      while (m != 0) {
        const size_t i = wi * 64 + static_cast<size_t>(std::countr_zero(m));
        m &= m - 1;
        cell(i);
      }
    }
  };

  // Hoisted id-kernel loops: the feature's structures are resolved once,
  // then the kernel runs tight over the lanes. Each branch secures
  // exactly the structures TryComputeFeatureIds needs per pair; when a
  // build fails under budget pressure, the generic per-pair path below
  // computes the identical value through the string kernels.
  if (info.id_path && interner_ != nullptr) {
    const bool qgrams = info.tokens == TokenNeed::kQGram3;
    switch (feature.fn) {
      case SimFunction::kJaccard:
      case SimFunction::kDice:
      case SimFunction::kOverlap:
      case SimFunction::kTrigram: {
        if (!BuildIdColumn(false, feature.attr_a, qgrams, nullptr) ||
            !BuildIdColumn(true, feature.attr_b, qgrams, nullptr)) {
          break;
        }
        const auto& slots_a = qgrams ? idc_a_.qgrams : idc_a_.words;
        const auto& slots_b = qgrams ? idc_b_.qgrams : idc_b_.words;
        const size_t base_a = feature.attr_a * a_.num_rows();
        const size_t base_b = feature.attr_b * b_.num_rows();
        if (feature.fn == SimFunction::kDice) {
          for_each_lane([&](size_t i) {
            out[i] = static_cast<float>(
                IdDice(slots_a[base_a + pairs[i].a]->sorted,
                       slots_b[base_b + pairs[i].b]->sorted));
          });
        } else if (feature.fn == SimFunction::kOverlap) {
          for_each_lane([&](size_t i) {
            out[i] = static_cast<float>(
                IdOverlap(slots_a[base_a + pairs[i].a]->sorted,
                          slots_b[base_b + pairs[i].b]->sorted));
          });
        } else {  // Jaccard and Trigram (= Jaccard over 3-grams)
          for_each_lane([&](size_t i) {
            out[i] = static_cast<float>(
                IdJaccard(slots_a[base_a + pairs[i].a]->sorted,
                          slots_b[base_b + pairs[i].b]->sorted));
          });
        }
        return;
      }
      case SimFunction::kCosine: {
        if (!BuildTfColumn(false, feature.attr_a, nullptr) ||
            !BuildTfColumn(true, feature.attr_b, nullptr)) {
          break;
        }
        const size_t base_a = feature.attr_a * a_.num_rows();
        const size_t base_b = feature.attr_b * b_.num_rows();
        const auto ranks = ranks_;
        for_each_lane([&](size_t i) {
          out[i] = static_cast<float>(
              IdCosineTf(*idc_a_.word_tf[base_a + pairs[i].a],
                         *idc_b_.word_tf[base_b + pairs[i].b], *ranks));
        });
        return;
      }
      case SimFunction::kTfIdf:
      case SimFunction::kSoftTfIdf: {
        const ModelIdCache& mc =
            EnsureModelIds(feature.attr_a, feature.attr_b, nullptr);
        if (!mc.built) break;
        const auto ranks = ranks_;
        if (feature.fn == SimFunction::kTfIdf) {
          for_each_lane([&](size_t i) {
            out[i] = static_cast<float>(IdTfIdfCosine(
                *mc.rows_a[pairs[i].a], *mc.rows_b[pairs[i].b], *ranks));
          });
        } else {
          for_each_lane([&](size_t i) {
            out[i] = static_cast<float>(
                IdSoftTfIdf(*mc.rows_a[pairs[i].a], *mc.rows_b[pairs[i].b],
                            *ranks, *interner_));
          });
        }
        return;
      }
      default:
        break;  // kMongeElkan and friends: per-pair resolution below
    }
  }

  // Generic path: per-pair resolution (string kernels, or id structures
  // the fast loops could not secure). Same values, just slower.
  for_each_lane([&](size_t i) {
    out[i] = static_cast<float>(ComputeFeatureValue(feature, info, pairs[i]));
  });
}

const TfIdfModel& PairContext::ModelFor(AttrIndex attr_a, AttrIndex attr_b) {
  const auto key = std::make_pair(attr_a, attr_b);
  auto it = models_.find(key);
  if (it == models_.end()) {
    auto model = std::make_unique<TfIdfModel>();
    for (uint32_t row = 0; row < a_.num_rows(); ++row) {
      model->AddDocument(AlnumTokenize(a_.Value(row, attr_a)));
    }
    for (uint32_t row = 0; row < b_.num_rows(); ++row) {
      model->AddDocument(AlnumTokenize(b_.Value(row, attr_b)));
    }
    it = models_.emplace(key, std::move(model)).first;
  }
  return *it->second;
}

namespace {

size_t TokenListBytes(const TokenList& tokens) {
  size_t bytes = sizeof(TokenList) + tokens.capacity() * sizeof(std::string);
  for (const std::string& t : tokens) bytes += t.capacity();
  return bytes;
}

size_t CacheBytes(const std::vector<std::unique_ptr<TokenList>>& slots) {
  size_t bytes = slots.capacity() * sizeof(std::unique_ptr<TokenList>);
  for (const auto& slot : slots) {
    if (slot != nullptr) bytes += TokenListBytes(*slot);
  }
  return bytes;
}

size_t IdSlotBytes(const std::vector<std::unique_ptr<TokenIds>>& slots) {
  size_t bytes = slots.capacity() * sizeof(std::unique_ptr<TokenIds>);
  for (const auto& slot : slots) {
    if (slot != nullptr) {
      bytes += sizeof(TokenIds) +
               (slot->doc.capacity() + slot->sorted.capacity()) *
                   sizeof(TokenId);
    }
  }
  return bytes;
}

size_t TfSlotBytes(const std::vector<std::unique_ptr<IdTfVector>>& slots) {
  size_t bytes = slots.capacity() * sizeof(std::unique_ptr<IdTfVector>);
  for (const auto& slot : slots) {
    if (slot != nullptr) {
      bytes += sizeof(IdTfVector) +
               slot->entries.capacity() * sizeof(slot->entries[0]);
    }
  }
  return bytes;
}

size_t WeightRowBytes(
    const std::vector<std::unique_ptr<IdWeightVector>>& rows) {
  size_t bytes = rows.capacity() * sizeof(std::unique_ptr<IdWeightVector>);
  for (const auto& row : rows) {
    if (row != nullptr) {
      bytes += sizeof(IdWeightVector) +
               row->entries.capacity() * sizeof(row->entries[0]);
    }
  }
  return bytes;
}

}  // namespace

size_t PairContext::TokenCacheBytes() const {
  return CacheBytes(cache_a_.words) + CacheBytes(cache_a_.qgrams) +
         CacheBytes(cache_b_.words) + CacheBytes(cache_b_.qgrams);
}

size_t PairContext::IdCacheBytes() const {
  size_t bytes = 0;
  for (const IdCache* idc : {&idc_a_, &idc_b_}) {
    bytes += IdSlotBytes(idc->words) + IdSlotBytes(idc->qgrams) +
             TfSlotBytes(idc->word_tf);
  }
  for (const auto& [key, mc] : model_ids_) {
    bytes += mc.idf_by_id.capacity() * sizeof(double);
    bytes += WeightRowBytes(mc.rows_a) + WeightRowBytes(mc.rows_b);
  }
  if (ranks_ != nullptr) bytes += ranks_->capacity() * sizeof(uint32_t);
  return bytes;
}

void PairContext::ClearTokenCaches() {
  for (auto& slot : cache_a_.words) slot.reset();
  for (auto& slot : cache_a_.qgrams) slot.reset();
  for (auto& slot : cache_b_.words) slot.reset();
  for (auto& slot : cache_b_.qgrams) slot.reset();
  for (IdCache* idc : {&idc_a_, &idc_b_}) {
    for (auto& slot : idc->words) slot.reset();
    for (auto& slot : idc->qgrams) slot.reset();
    for (auto& slot : idc->word_tf) slot.reset();
    std::fill(idc->words_built.begin(), idc->words_built.end(), false);
    std::fill(idc->qgrams_built.begin(), idc->qgrams_built.end(), false);
    std::fill(idc->tf_built.begin(), idc->tf_built.end(), false);
  }
  model_ids_.clear();
  token_degraded_.store(false, std::memory_order_relaxed);
  id_degraded_.store(false, std::memory_order_relaxed);
  ResyncBillingSerial();
}

size_t PairContext::DropIdCaches() {
  const size_t before = IdCacheBytes();
  for (IdCache* idc : {&idc_a_, &idc_b_}) {
    for (auto& slot : idc->words) slot.reset();
    for (auto& slot : idc->qgrams) slot.reset();
    for (auto& slot : idc->word_tf) slot.reset();
    std::fill(idc->words_built.begin(), idc->words_built.end(), false);
    std::fill(idc->qgrams_built.begin(), idc->qgrams_built.end(), false);
    std::fill(idc->tf_built.begin(), idc->tf_built.end(), false);
  }
  model_ids_.clear();
  const size_t freed = before - IdCacheBytes();  // ranks_ survives
  ResyncBillingSerial();
  return freed;
}

}  // namespace emdbg
