#include "src/core/incremental.h"

#include <bit>
#include <vector>

#include "src/core/block_matcher.h"
#include "src/core/memo_matcher.h"
#include "src/core/parallel_matcher.h"
#include "src/util/bitmap.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

namespace emdbg {

namespace {

/// Gathered edits below one bitmap word of lanes run per-pair: the
/// columnar setup (lane gather, mask buffers) does not pay there.
constexpr size_t kMinGatheredLanes = 64;

/// Calls fn(i) for every set lane of a gathered mask over [0, n).
template <typename Fn>
void ForEachLane(const uint64_t* mask, size_t n, Fn&& fn) {
  const size_t words = bitspan::Words(n);
  for (size_t w = 0; w < words; ++w) {
    uint64_t m =
        w + 1 == words ? mask[w] & bitspan::TailMask(n) : mask[w];
    while (m != 0) {
      fn(w * 64 + static_cast<size_t>(std::countr_zero(m)));
      m &= m - 1;
    }
  }
}

}  // namespace

IncrementalMatcher::IncrementalMatcher(PairContext& ctx,
                                       const CandidateSet& pairs,
                                       Options options)
    : ctx_(ctx), pairs_(pairs), options_(options) {
  // The state is still empty, so this can only fail on an injected
  // mem.reserve fault; an unbudgeted state is the correct fallback then.
  (void)state_.AttachBudget(options_.budget);
}

MatchStats IncrementalMatcher::FullRun(const MatchingFunction& fn) {
  return FullRun(fn, RunControl()).stats;
}

MatchResult IncrementalMatcher::FullRun(const MatchingFunction& fn,
                                        const RunControl& control) {
  fn_ = fn;
  MatchResult result;
  if (options_.pool != nullptr && options_.pool->num_workers() > 1) {
    ParallelMemoMatcher matcher(ParallelMemoMatcher::Options{
        .check_cache_first = options_.check_cache_first,
        .pool = options_.pool,
        .budget = options_.budget,
        .block_size = options_.block_size});
    result = matcher.RunWithState(fn_, pairs_, ctx_, state_, control);
  } else if (options_.block_size != 1) {
    BlockMatcher matcher(BlockMatcher::Options{
        .block_size = options_.block_size, .budget = options_.budget});
    result = matcher.RunWithState(fn_, pairs_, ctx_, state_, control);
  } else {
    MemoMatcher matcher(MemoMatcher::Options{
        .check_cache_first = options_.check_cache_first});
    result = matcher.RunWithState(fn_, pairs_, ctx_, state_, control);
  }
  has_run_ = !result.partial;
  return result;
}

Status IncrementalMatcher::Resume(const MatchingFunction& fn,
                                  MatchState state) {
  if (!state.initialized() || state.num_pairs() != pairs_.size()) {
    return Status::InvalidArgument(
        StrFormat("state has %zu pairs, candidate set has %zu",
                  state.num_pairs(), pairs_.size()));
  }
  // Bill the adopted state's memo against the session budget before
  // committing — a quota too small for the loaded state must fail the
  // resume, not silently run unbudgeted.
  EMDBG_RETURN_IF_ERROR(state.AttachBudget(options_.budget));
  fn_ = fn;
  state_ = std::move(state);
  has_run_ = true;
  return Status::Ok();
}

Status IncrementalMatcher::SyncMemoWidth() {
  return state_.EnsureCapacity(state_.num_pairs(), ctx_.catalog().size());
}

void IncrementalMatcher::EnsureDecisionBitmaps() {
  for (const Rule& r : fn_.rules()) {
    (void)state_.RuleTrue(r.id());
    for (const Predicate& p : r.predicates()) {
      (void)state_.PredFalse(p.id);
    }
  }
}

MatchStats IncrementalMatcher::ForEachPair(
    const std::function<void(size_t i, MatchStats& stats,
                             PredicateOrderScratch& scratch)>& body) {
  ThreadPool* pool = options_.pool;
  if (pool == nullptr || pool->num_workers() <= 1 ||
      pairs_.size() < options_.min_parallel_pairs) {
    MatchStats stats;
    PredicateOrderScratch scratch;
    for (size_t i = 0; i < pairs_.size(); ++i) body(i, stats, scratch);
    return stats;
  }
  // Parallel prerequisites: shared context read-only, decision bitmaps
  // pre-materialized (no map rehash under concurrent access). Bodies
  // touch only pair-i state and chunks are 64-aligned, so no two
  // workers ever share a bitmap word (ThreadPool's alignment contract).
  ctx_.Prewarm(fn_.UsedFeatures(), pool);
  EnsureDecisionBitmaps();
  struct alignas(64) WorkerState {
    MatchStats stats;
    PredicateOrderScratch scratch;
  };
  std::vector<WorkerState> ws(pool->num_workers());
  pool->ParallelFor(pairs_.size(), [&](size_t w, size_t i) {
    body(i, ws[w].stats, ws[w].scratch);
  });
  MatchStats total;
  for (const WorkerState& w : ws) total += w.stats;
  return total;
}

double IncrementalMatcher::AcquireFeature(FeatureId f, size_t i,
                                          MatchStats& stats) {
  double value = 0.0;
  if (state_.memo().Lookup(i, f, &value)) {
    ++stats.memo_hits;
    return value;
  }
  value = ctx_.ComputeFeature(f, pairs_.pair(i));
  state_.memo().Store(i, f, value);
  ++stats.feature_computations;
  return value;
}

bool IncrementalMatcher::EvalRule(const Rule& r, size_t i,
                                  MatchStats& stats,
                                  PredicateOrderScratch& scratch) {
  // Check-cache-first partition (Sec. 5.4.3), as in MemoMatcher.
  const uint32_t* order =
      scratch.Build(r, state_.memo(), i, options_.check_cache_first);
  for (size_t k = 0; k < r.size(); ++k) {
    const Predicate& p = r.predicate(order[k]);
    ++stats.predicate_evaluations;
    const double value = AcquireFeature(p.feature, i, stats);
    if (!p.Test(value)) {
      state_.PredFalse(p.id).Set(i);
      return false;
    }
    // Keep I3 tight: a bit set for a predicate that now passes is stale.
    state_.PredFalse(p.id).Clear(i);
  }
  return true;
}

bool IncrementalMatcher::RuleKnownFalse(const Rule& r, size_t i) const {
  for (const Predicate& p : r.predicates()) {
    const Bitmap* bm = state_.FindPredFalse(p.id);
    if (bm != nullptr && bm->Get(i)) return true;
  }
  return false;
}

void IncrementalMatcher::RematchPair(size_t i, size_t from,
                                     MatchStats& stats,
                                     PredicateOrderScratch& scratch) {
  for (size_t pos = from; pos < fn_.num_rules(); ++pos) {
    const Rule& rule = fn_.rule(pos);
    if (rule.empty()) continue;
    if (RuleKnownFalse(rule, i)) continue;
    ++stats.rule_evaluations;
    if (EvalRule(rule, i, stats, scratch)) {
      state_.matches().Set(i);
      state_.RuleTrue(rule.id()).Set(i);
      return;
    }
  }
}

void IncrementalMatcher::AcquireFeatureGathered(
    FeatureId f, const std::vector<uint32_t>& idx,
    const std::vector<PairId>& gathered, const uint64_t* lanes, float* col,
    MatchStats& stats) {
  const size_t n = idx.size();
  const size_t words = bitspan::Words(n);
  std::vector<uint64_t> need(words, 0);
  ForEachLane(lanes, n, [&](size_t i) {
    double v = 0.0;
    if (state_.memo().Lookup(idx[i], f, &v)) {
      col[i] = static_cast<float>(v);
      ++stats.memo_hits;
    } else {
      need[i >> 6] |= uint64_t{1} << (i & 63);
    }
  });
  if (!bitspan::Any(need.data(), n)) return;
  ctx_.ComputeFeatureBlock(f, gathered.data(), n, need.data(), col);
  ForEachLane(need.data(), n, [&](size_t i) {
    state_.memo().Store(idx[i], f, static_cast<double>(col[i]));
    ++stats.feature_computations;
  });
}

void IncrementalMatcher::EvalRuleGathered(const Rule& r,
                                          std::vector<uint32_t>& idx,
                                          MatchStats& stats) {
  const size_t n = idx.size();
  if (n == 0) return;
  const size_t words = bitspan::Words(n);
  std::vector<PairId> gathered(n);
  for (size_t i = 0; i < n; ++i) gathered[i] = pairs_.pair(idx[i]);
  std::vector<float> col(n);
  std::vector<uint64_t> active(words);
  bitspan::Fill(active.data(), n, true);

  for (const Predicate& p : r.predicates()) {
    const size_t entering = bitspan::Count(active.data(), n);
    if (entering == 0) break;
    stats.predicate_evaluations += entering;
    AcquireFeatureGathered(p.feature, idx, gathered, active.data(),
                           col.data(), stats);
    Bitmap& pf = state_.PredFalse(p.id);
    // ForEachLane snapshots each word before walking it, so clearing a
    // failing lane from `active` mid-walk is safe.
    ForEachLane(active.data(), n, [&](size_t i) {
      if (p.Test(static_cast<double>(col[i]))) {
        pf.Clear(idx[i]);  // keep I3 tight, as EvalRule does
      } else {
        pf.Set(idx[i]);
        active[i >> 6] &= ~(uint64_t{1} << (i & 63));
      }
    });
  }

  // Surviving lanes passed every predicate: record them, keep the rest.
  std::vector<uint32_t> still_false;
  still_false.reserve(n);
  Bitmap& rule_true = state_.RuleTrue(r.id());
  for (size_t i = 0; i < n; ++i) {
    if ((active[i >> 6] >> (i & 63)) & 1) {
      state_.matches().Set(idx[i]);
      rule_true.Set(idx[i]);
    } else {
      still_false.push_back(idx[i]);
    }
  }
  idx = std::move(still_false);
}

void IncrementalMatcher::RematchGathered(std::vector<uint32_t>& idx,
                                         size_t skip_pos,
                                         MatchStats& stats) {
  std::vector<uint32_t> deferred;
  for (size_t pos = 0; pos < fn_.num_rules() && !idx.empty(); ++pos) {
    if (pos == skip_pos) continue;
    const Rule& rule = fn_.rule(pos);
    if (rule.empty()) continue;
    // Known-false shortcut (I3), partitioned per lane: short-circuited
    // lanes skip this rule but continue to the next one.
    std::vector<uint32_t> eligible;
    eligible.reserve(idx.size());
    deferred.clear();
    for (const uint32_t i : idx) {
      if (RuleKnownFalse(rule, i)) {
        deferred.push_back(i);
      } else {
        eligible.push_back(i);
      }
    }
    stats.rule_evaluations += eligible.size();
    EvalRuleGathered(rule, eligible, stats);
    idx = std::move(eligible);  // lanes where the rule came out false
    idx.insert(idx.end(), deferred.begin(), deferred.end());
  }
}

MatchStats IncrementalMatcher::RecheckMatchedGathered(RuleId rid,
                                                      const Predicate& p) {
  MatchStats stats;
  const Bitmap& affected = state_.RuleTrue(rid);
  const size_t rule_pos = fn_.FindRule(rid);
  std::vector<uint32_t> idx;
  for (size_t i = 0; i < pairs_.size(); ++i) {
    if (affected.Get(i)) idx.push_back(static_cast<uint32_t>(i));
  }
  const size_t n = idx.size();
  if (n == 0) return stats;
  stats.predicate_evaluations += n;
  std::vector<PairId> gathered(n);
  for (size_t i = 0; i < n; ++i) gathered[i] = pairs_.pair(idx[i]);
  std::vector<float> col(n);
  std::vector<uint64_t> all(bitspan::Words(n));
  bitspan::Fill(all.data(), n, true);
  AcquireFeatureGathered(p.feature, idx, gathered, all.data(), col.data(),
                         stats);

  std::vector<uint32_t> failing;
  Bitmap& pf = state_.PredFalse(p.id);
  for (size_t i = 0; i < n; ++i) {
    if (p.Test(static_cast<double>(col[i]))) {
      pf.Clear(idx[i]);  // still matched by this rule
    } else {
      pf.Set(idx[i]);
      state_.RuleTrue(rid).Clear(idx[i]);
      state_.matches().Clear(idx[i]);
      failing.push_back(idx[i]);
    }
  }
  RematchGathered(failing, rule_pos, stats);
  return stats;
}

Result<MatchStats> IncrementalMatcher::AddRule(const Rule& rule) {
  if (!has_run_) {
    return Status::FailedPrecondition("FullRun required before edits");
  }
  Stopwatch timer;
  EMDBG_RETURN_IF_ERROR(SyncMemoWidth());
  MatchStats stats;
  const RuleId rid = fn_.AddRule(rule);
  last_added_rule_ = rid;
  const Rule& r = *fn_.RuleById(rid);
  if (!r.empty()) {
    // Algorithm 10: only unmatched pairs can be affected.
    bool gathered_done = false;
    if (options_.block_size != 1) {
      std::vector<uint32_t> idx;
      for (size_t i = 0; i < pairs_.size(); ++i) {
        if (!state_.matches().Get(i)) idx.push_back(static_cast<uint32_t>(i));
      }
      if (idx.size() >= kMinGatheredLanes) {
        stats.rule_evaluations += idx.size();
        EvalRuleGathered(r, idx, stats);
        gathered_done = true;
      }
    }
    if (!gathered_done) {
      stats = ForEachPair([&](size_t i, MatchStats& s,
                              PredicateOrderScratch& scratch) {
        if (state_.matches().Get(i)) return;
        ++s.rule_evaluations;
        if (EvalRule(r, i, s, scratch)) {
          state_.matches().Set(i);
          state_.RuleTrue(rid).Set(i);
        }
      });
    }
  }
  stats.elapsed_ms = timer.ElapsedMillis();
  return stats;
}

Result<MatchStats> IncrementalMatcher::RemoveRule(RuleId rid) {
  if (!has_run_) {
    return Status::FailedPrecondition("FullRun required before edits");
  }
  Stopwatch timer;
  EMDBG_RETURN_IF_ERROR(SyncMemoWidth());
  const Rule* rule = fn_.RuleById(rid);
  if (rule == nullptr) {
    return Status::NotFound(StrFormat("rule %u not found", rid));
  }
  // Snapshot the pairs this rule was responsible for, then drop its state.
  Bitmap affected;
  if (const Bitmap* bm = state_.FindRuleTrue(rid); bm != nullptr) {
    affected = *bm;
  }
  for (const Predicate& p : rule->predicates()) {
    state_.ErasePredicate(p.id);
  }
  state_.EraseRule(rid);
  EMDBG_RETURN_IF_ERROR(fn_.RemoveRule(rid));
  // Algorithm 9: re-check the affected pairs against the remaining rules.
  MatchStats stats;
  if (!affected.empty()) {
    bool gathered_done = false;
    if (options_.block_size != 1) {
      std::vector<uint32_t> idx;
      for (size_t i = 0; i < pairs_.size(); ++i) {
        if (affected.Get(i)) idx.push_back(static_cast<uint32_t>(i));
      }
      if (idx.size() >= kMinGatheredLanes) {
        for (const uint32_t i : idx) state_.matches().Clear(i);
        RematchGathered(idx, fn_.num_rules(), stats);
        gathered_done = true;
      }
    }
    if (!gathered_done) {
      stats = ForEachPair([&](size_t i, MatchStats& s,
                              PredicateOrderScratch& scratch) {
        if (!affected.Get(i)) return;
        state_.matches().Clear(i);
        RematchPair(i, 0, s, scratch);
      });
    }
  }
  stats.elapsed_ms = timer.ElapsedMillis();
  return stats;
}

MatchStats IncrementalMatcher::RecheckMatchedPairs(RuleId rid,
                                                   const Predicate& p) {
  if (options_.block_size != 1 &&
      state_.RuleTrue(rid).Count() >= kMinGatheredLanes) {
    return RecheckMatchedGathered(rid, p);
  }
  // Snapshot: the loop clears RuleTrue(rid) bits as it goes.
  const Bitmap affected = state_.RuleTrue(rid);
  const size_t rule_pos = fn_.FindRule(rid);
  return ForEachPair([&, this](size_t i, MatchStats& s,
                               PredicateOrderScratch& scratch) {
    if (!affected.Get(i)) return;
    ++s.predicate_evaluations;
    const double value = AcquireFeature(p.feature, i, s);
    if (p.Test(value)) {
      state_.PredFalse(p.id).Clear(i);
      return;  // still matched by this rule
    }
    state_.PredFalse(p.id).Set(i);
    state_.RuleTrue(rid).Clear(i);
    state_.matches().Clear(i);
    // Algorithm 7 re-checks the rules after r; we additionally skip r
    // itself and use the known-false shortcut for the earlier rules,
    // which keeps this correct even after earlier relax edits cleared
    // some of their bitmap bits.
    for (size_t pos = 0; pos < fn_.num_rules(); ++pos) {
      if (pos == rule_pos) continue;
      const Rule& other = fn_.rule(pos);
      if (other.empty()) continue;
      if (RuleKnownFalse(other, i)) continue;
      ++s.rule_evaluations;
      if (EvalRule(other, i, s, scratch)) {
        state_.matches().Set(i);
        state_.RuleTrue(other.id()).Set(i);
        break;
      }
    }
  });
}

MatchStats IncrementalMatcher::RecheckUnmatchedPairs(
    RuleId rid, const Bitmap& candidates) {
  const Rule& rule = *fn_.RuleById(rid);
  if (options_.block_size != 1) {
    std::vector<uint32_t> idx;
    for (size_t i = 0; i < pairs_.size(); ++i) {
      if (candidates.Get(i) && !state_.matches().Get(i)) {
        idx.push_back(static_cast<uint32_t>(i));
      }
    }
    if (idx.size() >= kMinGatheredLanes) {
      MatchStats stats;
      stats.rule_evaluations += idx.size();
      EvalRuleGathered(rule, idx, stats);
      return stats;
    }
  }
  return ForEachPair([&, this](size_t i, MatchStats& s,
                               PredicateOrderScratch& scratch) {
    if (!candidates.Get(i)) return;
    if (state_.matches().Get(i)) return;
    ++s.rule_evaluations;
    if (EvalRule(rule, i, s, scratch)) {
      state_.matches().Set(i);
      state_.RuleTrue(rid).Set(i);
    }
  });
}

Result<MatchStats> IncrementalMatcher::AddPredicate(RuleId rid,
                                                    Predicate p) {
  if (!has_run_) {
    return Status::FailedPrecondition("FullRun required before edits");
  }
  Stopwatch timer;
  EMDBG_RETURN_IF_ERROR(SyncMemoWidth());
  const Rule* rule = fn_.RuleById(rid);
  if (rule == nullptr) {
    return Status::NotFound(StrFormat("rule %u not found", rid));
  }
  const bool was_empty = rule->empty();
  Result<PredicateId> pid = fn_.AddPredicate(rid, p);
  if (!pid.ok()) return pid.status();
  last_added_predicate_ = *pid;
  MatchStats stats;
  if (was_empty) {
    // Empty rules are false everywhere, so this transition can only add
    // matches: evaluate like a newly added rule (Algorithm 10).
    const Rule& r = *fn_.RuleById(rid);
    bool gathered_done = false;
    if (options_.block_size != 1) {
      std::vector<uint32_t> idx;
      for (size_t i = 0; i < pairs_.size(); ++i) {
        if (!state_.matches().Get(i)) idx.push_back(static_cast<uint32_t>(i));
      }
      if (idx.size() >= kMinGatheredLanes) {
        stats.rule_evaluations += idx.size();
        EvalRuleGathered(r, idx, stats);
        gathered_done = true;
      }
    }
    if (!gathered_done) {
      stats = ForEachPair([&](size_t i, MatchStats& s,
                              PredicateOrderScratch& scratch) {
        if (state_.matches().Get(i)) return;
        ++s.rule_evaluations;
        if (EvalRule(r, i, s, scratch)) {
          state_.matches().Set(i);
          state_.RuleTrue(rid).Set(i);
        }
      });
    }
  } else {
    // Algorithm 7: adding a predicate can only shrink the rule's matches.
    Predicate added = p;
    added.id = *pid;
    stats = RecheckMatchedPairs(rid, added);
  }
  stats.elapsed_ms = timer.ElapsedMillis();
  return stats;
}

Result<MatchStats> IncrementalMatcher::RemovePredicate(RuleId rid,
                                                       PredicateId pid) {
  if (!has_run_) {
    return Status::FailedPrecondition("FullRun required before edits");
  }
  Stopwatch timer;
  EMDBG_RETURN_IF_ERROR(SyncMemoWidth());
  const Rule* rule = fn_.RuleById(rid);
  if (rule == nullptr) {
    return Status::NotFound(StrFormat("rule %u not found", rid));
  }
  // Snapshot the pairs this predicate rejected before dropping its state.
  Bitmap rejected(pairs_.size());
  if (const Bitmap* bm = state_.FindPredFalse(pid); bm != nullptr) {
    rejected = *bm;
  }
  EMDBG_RETURN_IF_ERROR(fn_.RemovePredicate(rid, pid));
  state_.ErasePredicate(pid);

  MatchStats stats;
  const Rule* updated = fn_.RuleById(rid);
  if (updated->empty()) {
    // The rule degenerated to empty = false everywhere: un-match the
    // pairs it was responsible for and re-match them elsewhere.
    const Bitmap affected = state_.RuleTrue(rid);
    state_.RuleTrue(rid).Fill(false);
    bool gathered_done = false;
    if (options_.block_size != 1) {
      std::vector<uint32_t> idx;
      for (size_t i = 0; i < pairs_.size(); ++i) {
        if (affected.Get(i)) idx.push_back(static_cast<uint32_t>(i));
      }
      if (idx.size() >= kMinGatheredLanes) {
        for (const uint32_t i : idx) state_.matches().Clear(i);
        RematchGathered(idx, fn_.num_rules(), stats);
        gathered_done = true;
      }
    }
    if (!gathered_done) {
      stats = ForEachPair([&](size_t i, MatchStats& s,
                              PredicateOrderScratch& scratch) {
        if (!affected.Get(i)) return;
        state_.matches().Clear(i);
        RematchPair(i, 0, s, scratch);
      });
    }
  } else {
    // Algorithm 8: only unmatched pairs that the predicate rejected can
    // become matches.
    stats = RecheckUnmatchedPairs(rid, rejected);
  }
  stats.elapsed_ms = timer.ElapsedMillis();
  return stats;
}

Result<MatchStats> IncrementalMatcher::SetThreshold(RuleId rid,
                                                    PredicateId pid,
                                                    double threshold) {
  if (!has_run_) {
    return Status::FailedPrecondition("FullRun required before edits");
  }
  Stopwatch timer;
  EMDBG_RETURN_IF_ERROR(SyncMemoWidth());
  Rule* rule = fn_.MutableRuleById(rid);
  if (rule == nullptr) {
    return Status::NotFound(StrFormat("rule %u not found", rid));
  }
  const size_t pos = rule->FindPredicate(pid);
  if (pos == rule->size()) {
    return Status::NotFound(
        StrFormat("predicate %u not found in rule %u", pid, rid));
  }
  const Predicate old = rule->predicate(pos);
  if (old.threshold == threshold) return MatchStats{};

  // A larger threshold tightens lower-bound predicates (>=, >) and
  // relaxes upper-bound ones (<, <=).
  const bool tighten = IsLowerBound(old.op) ? threshold > old.threshold
                                            : threshold < old.threshold;
  rule->mutable_predicate(pos).threshold = threshold;
  const Predicate updated = rule->predicate(pos);

  MatchStats stats;
  if (tighten) {
    // Algorithm 7 flavour: previously-false pairs stay false; only the
    // rule's matched pairs need re-checking against the new threshold.
    stats = RecheckMatchedPairs(rid, updated);
  } else {
    // Algorithm 8: pairs the predicate rejected may now pass. All of the
    // predicate's recorded false-bits are stale under the relaxed
    // threshold, so clear every one (clear = unknown is always sound for
    // I3); the unmatched rejected pairs are then re-evaluated, which
    // re-records fresh outcomes for whatever the evaluation touches.
    Bitmap rejected(pairs_.size());
    if (const Bitmap* bm = state_.FindPredFalse(pid); bm != nullptr) {
      rejected = *bm;
    }
    state_.PredFalse(pid).Fill(false);
    stats = RecheckUnmatchedPairs(rid, rejected);
  }
  stats.elapsed_ms = timer.ElapsedMillis();
  return stats;
}

}  // namespace emdbg
