#include "src/core/predicate.h"

#include "src/util/string_util.h"

namespace emdbg {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
  }
  return "?";
}

bool IsLowerBound(CompareOp op) {
  return op == CompareOp::kGe || op == CompareOp::kGt;
}

std::string PredicateToString(const Predicate& p,
                              const FeatureCatalog& catalog) {
  return StrFormat("%s %s %.4g", catalog.Name(p.feature).c_str(),
                   CompareOpSymbol(p.op), p.threshold);
}

}  // namespace emdbg
