#include "src/core/parallel_matcher.h"

#include <algorithm>
#include <vector>

#include "src/core/block_matcher.h"
#include "src/core/memo.h"
#include "src/core/predicate_order.h"
#include "src/util/stopwatch.h"

namespace emdbg {

ParallelMemoMatcher::ParallelMemoMatcher(Options options)
    : options_(options) {}

ThreadPool& ParallelMemoMatcher::pool() {
  if (options_.pool != nullptr) return *options_.pool;
  if (owned_pool_ == nullptr) {
    owned_pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  return *owned_pool_;
}

MatchResult ParallelMemoMatcher::Run(const MatchingFunction& fn,
                                     const CandidateSet& pairs,
                                     PairContext& ctx,
                                     const RunControl& control) {
  DenseMemo memo(pairs.size(), ctx.catalog().size());
  return RunImpl(fn, pairs, ctx, nullptr, memo, control);
}

MatchResult ParallelMemoMatcher::RunWithMemo(const MatchingFunction& fn,
                                             const CandidateSet& pairs,
                                             PairContext& ctx, Memo& memo,
                                             const RunControl& control) {
  if (!memo.SafeForConcurrentRows() && pool().num_workers() > 1) {
    MatchResult result;
    result.matches = Bitmap(pairs.size());
    result.evaluated = Bitmap(pairs.size());
    result.partial = true;
    result.pairs_completed = 0;
    result.status = Status::InvalidArgument(
        "memo is not safe for concurrent Store (HashMemo rehash moves "
        "every bucket); use DenseMemo, wrap it in a ShardedMemo, or run "
        "single-threaded");
    return result;
  }
  return RunImpl(fn, pairs, ctx, nullptr, memo, control);
}

MatchResult ParallelMemoMatcher::RunWithState(const MatchingFunction& fn,
                                              const CandidateSet& pairs,
                                              PairContext& ctx,
                                              MatchState& state,
                                              const RunControl& control) {
  const bool reuse =
      state.initialized() && state.num_pairs() == pairs.size();
  Status cap = state.EnsureCapacity(pairs.size(), ctx.catalog().size());
  if (!cap.ok()) {
    MatchResult denied;
    denied.matches = Bitmap(pairs.size());
    denied.evaluated = Bitmap(pairs.size());
    denied.partial = true;
    denied.pairs_completed = 0;
    denied.status = cap;
    return denied;
  }
  if (reuse) state.matches().Fill(false);
  // Serial phase: materialize every decision bitmap before workers start
  // (MatchState's map must not rehash under concurrent first access).
  for (const Rule& r : fn.rules()) {
    state.RuleTrue(r.id()).Fill(false);
    for (const Predicate& p : r.predicates()) {
      state.PredFalse(p.id).Fill(false);
    }
  }
  MatchResult result =
      RunImpl(fn, pairs, ctx, &state, state.memo(), control);
  state.matches() = result.matches;
  return result;
}

MatchResult ParallelMemoMatcher::RunImpl(const MatchingFunction& fn,
                                         const CandidateSet& pairs,
                                         PairContext& ctx,
                                         MatchState* state, Memo& memo,
                                         const RunControl& control) {
  Stopwatch timer;
  ThreadPool& pool = this->pool();
  const size_t workers = pool.num_workers();

  // Serial phase: make all shared context state read-only for workers.
  ctx.Prewarm(fn.UsedFeatures(), &pool);

  if (options_.block_size != 1) {
    return RunBlocks(fn, pairs, ctx, state, memo, control, pool, timer);
  }

  MatchResult result;
  result.matches = Bitmap(pairs.size());
  result.MarkComplete(pairs.size());

  struct alignas(64) WorkerState {
    MatchStats stats;
    PredicateOrderScratch scratch;
  };
  // Per-worker scratch is small but scales with the worker count —
  // reserve it (sizeof plus a conservative allowance for the
  // predicate-order buffers each scratch grows) so a fleet of matchers
  // under one budget degrades cleanly instead of creeping past it.
  constexpr size_t kScratchAllowance = 4096;
  Result<MemoryReservation> scratch_bytes = MemoryReservation::Make(
      options_.budget, workers * (sizeof(WorkerState) + kScratchAllowance),
      "match.scratch");
  if (!scratch_bytes.ok()) {
    result.evaluated = Bitmap(pairs.size());
    result.partial = true;
    result.pairs_completed = 0;
    result.status = scratch_bytes.status();
    return result;
  }
  std::vector<WorkerState> worker_state(workers);

  // Per-pair body. Every access is indexed by the pair `i` being
  // evaluated: memo row i, bit i of the match/decision bitmaps. Chunks
  // are 64-aligned, so workers never share a bitmap word and no
  // synchronization is needed (see ThreadPool's alignment contract).
  auto body = [&](size_t w, size_t i) {
    WorkerState& ws = worker_state[w];
    const PairId pair = pairs.pair(i);
    for (const Rule& rule : fn.rules()) {
      if (rule.empty()) continue;
      ++ws.stats.rule_evaluations;
      const uint32_t* order =
          ws.scratch.Build(rule, memo, i, options_.check_cache_first);
      bool rule_true = true;
      for (size_t k = 0; k < rule.size(); ++k) {
        const Predicate& p = rule.predicate(order[k]);
        ++ws.stats.predicate_evaluations;
        double value = 0.0;
        if (memo.Lookup(i, p.feature, &value)) {
          ++ws.stats.memo_hits;
        } else {
          value = ctx.ComputeFeature(p.feature, pair);
          memo.Store(i, p.feature, value);
          ++ws.stats.feature_computations;
        }
        if (!p.Test(value)) {
          rule_true = false;
          if (state != nullptr) state->PredFalse(p.id).Set(i);
          break;  // early exit: rule is false
        }
      }
      if (rule_true) {
        result.matches.Set(i);
        if (state != nullptr) state->RuleTrue(rule.id()).Set(i);
        break;  // early exit: pair is a match
      }
    }
  };

  const ThreadPool::ForResult run = pool.ParallelFor(
      pairs.size(), control, body,
      ThreadPool::ForOptions{.grain = options_.grain,
                             .steal = options_.dynamic_schedule});

  for (const WorkerState& ws : worker_state) result.stats += ws.stats;
  if (options_.per_worker_stats != nullptr) {
    options_.per_worker_stats->clear();
    for (const WorkerState& ws : worker_state) {
      options_.per_worker_stats->push_back(ws.stats);
    }
  }
  if (run.stopped) {
    // Exact partial contract: valid bits are precisely the pairs whose
    // evaluation ran to completion.
    result.partial = true;
    result.status = run.status;
    result.evaluated = Bitmap(pairs.size());
    result.pairs_completed = run.items_completed;
    for (const auto& [begin, end] : run.completed) {
      for (size_t i = begin; i < end; ++i) result.evaluated.Set(i);
    }
  }
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

MatchResult ParallelMemoMatcher::RunBlocks(const MatchingFunction& fn,
                                           const CandidateSet& pairs,
                                           PairContext& ctx,
                                           MatchState* state, Memo& memo,
                                           const RunControl& control,
                                           ThreadPool& pool,
                                           const Stopwatch& timer) {
  const size_t workers = pool.num_workers();
  MatchResult result;
  result.matches = Bitmap(pairs.size());
  result.MarkComplete(pairs.size());

  BlockMatcher::Options bopts;
  bopts.block_size = options_.block_size;
  bopts.cost_model = options_.cost_model;
  BlockEvaluator eval(fn, pairs, ctx, &memo, state,
                      BlockMatcher::ResolveBlockSize(bopts, fn));
  const size_t block = eval.block_size();

  struct alignas(64) BlockWorker {
    MatchStats stats;
    BlockEvaluator::Scratch scratch;
  };
  // Block scratch dominates per-worker memory here (feature columns +
  // masks per worker), so reserve the real figure, not an allowance.
  Result<MemoryReservation> scratch_bytes = MemoryReservation::Make(
      options_.budget,
      workers * (sizeof(BlockWorker) + eval.ScratchBytes()),
      "match.scratch");
  if (!scratch_bytes.ok()) {
    result.evaluated = Bitmap(pairs.size());
    result.partial = true;
    result.pairs_completed = 0;
    result.status = scratch_bytes.status();
    return result;
  }
  std::vector<BlockWorker> worker_state(workers);
  for (BlockWorker& ws : worker_state) eval.InitScratch(ws.scratch);

  // One item = one block. Blocks already own disjoint 64-aligned pair
  // ranges (disjoint bitmap words, disjoint memo rows), so the pool's
  // chunk alignment drops to 1 — small block counts still spread across
  // all workers. A caller grain in pairs converts to whole blocks.
  auto body = [&](size_t w, size_t b) {
    BlockWorker& ws = worker_state[w];
    eval.EvalBlock(b, result.matches, ws.stats, ws.scratch);
  };
  const ThreadPool::ForResult run = pool.ParallelFor(
      eval.num_blocks(), control, body,
      ThreadPool::ForOptions{
          .grain = options_.grain == 0
                       ? 0
                       : std::max<size_t>(1, options_.grain / block),
          .steal = options_.dynamic_schedule,
          .align = 1});

  for (const BlockWorker& ws : worker_state) result.stats += ws.stats;
  if (options_.per_worker_stats != nullptr) {
    options_.per_worker_stats->clear();
    for (const BlockWorker& ws : worker_state) {
      options_.per_worker_stats->push_back(ws.stats);
    }
  }
  if (run.stopped) {
    // Completed *block* ranges map to pair ranges by scaling: block b
    // covers pairs [b*B, min((b+1)*B, n)).
    result.partial = true;
    result.status = run.status;
    result.evaluated = Bitmap(pairs.size());
    result.pairs_completed = 0;
    for (const auto& [begin, end] : run.completed) {
      const size_t pair_begin = begin * block;
      const size_t pair_end = std::min(end * block, pairs.size());
      result.pairs_completed += pair_end - pair_begin;
      for (size_t i = pair_begin; i < pair_end; ++i) {
        result.evaluated.Set(i);
      }
    }
  }
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace emdbg
