#include "src/core/parallel_matcher.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "src/core/memo.h"
#include "src/util/stopwatch.h"

namespace emdbg {

MatchResult ParallelMemoMatcher::Run(const MatchingFunction& fn,
                                     const CandidateSet& pairs,
                                     PairContext& ctx,
                                     const RunControl& control) {
  Stopwatch timer;
  // Serial phase: make all shared state read-only for the workers.
  ctx.Prewarm(fn.UsedFeatures());

  const size_t num_threads = std::max<size_t>(
      1, options_.num_threads != 0 ? options_.num_threads
                                   : std::thread::hardware_concurrency());
  DenseMemo memo(pairs.size(), ctx.catalog().size());
  std::vector<uint8_t> decisions(pairs.size(), 0);
  std::vector<MatchStats> thread_stats(num_threads);
  // Per-worker drain point: first index of its chunk NOT evaluated.
  std::vector<size_t> worker_stopped_at(num_threads, 0);
  std::atomic<bool> any_stopped{false};

  auto worker = [&](size_t tid, size_t begin, size_t end) {
    MatchStats& stats = thread_stats[tid];
    StopCheck stop(control);
    worker_stopped_at[tid] = end;
    std::vector<size_t> order;
    for (size_t i = begin; i < end; ++i) {
      if (stop.ShouldStop()) {
        // Clean drain: record progress and fall through to thread exit.
        worker_stopped_at[tid] = i;
        any_stopped.store(true, std::memory_order_relaxed);
        return;
      }
      const PairId pair = pairs.pair(i);
      for (const Rule& rule : fn.rules()) {
        if (rule.empty()) continue;
        ++stats.rule_evaluations;
        const size_t m = rule.size();
        order.clear();
        if (options_.check_cache_first) {
          for (size_t k = 0; k < m; ++k) {
            if (memo.Contains(i, rule.predicate(k).feature)) {
              order.push_back(k);
            }
          }
          for (size_t k = 0; k < m; ++k) {
            if (!memo.Contains(i, rule.predicate(k).feature)) {
              order.push_back(k);
            }
          }
        } else {
          for (size_t k = 0; k < m; ++k) order.push_back(k);
        }
        bool rule_true = true;
        for (const size_t k : order) {
          const Predicate& p = rule.predicate(k);
          ++stats.predicate_evaluations;
          double value = 0.0;
          if (memo.Lookup(i, p.feature, &value)) {
            ++stats.memo_hits;
          } else {
            value = ctx.ComputeFeature(p.feature, pair);
            memo.Store(i, p.feature, value);
            ++stats.feature_computations;
          }
          if (!p.Test(value)) {
            rule_true = false;
            break;
          }
        }
        if (rule_true) {
          decisions[i] = 1;
          break;
        }
      }
    }
  };

  std::vector<size_t> chunk_begin(num_threads, 0);
  if (num_threads == 1) {
    worker(0, 0, pairs.size());
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    const size_t chunk = (pairs.size() + num_threads - 1) / num_threads;
    for (size_t t = 0; t < num_threads; ++t) {
      const size_t begin = std::min(t * chunk, pairs.size());
      const size_t end = std::min(begin + chunk, pairs.size());
      chunk_begin[t] = begin;
      threads.emplace_back(worker, t, begin, end);
    }
    // All workers join unconditionally — a stopped run drains threads
    // instead of abandoning them.
    for (std::thread& t : threads) t.join();
  }

  MatchResult result;
  result.matches = Bitmap(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (decisions[i]) result.matches.Set(i);
  }
  for (const MatchStats& s : thread_stats) result.stats += s;
  result.MarkComplete(pairs.size());
  if (any_stopped.load(std::memory_order_relaxed)) {
    // Valid bits are the union of the per-worker completed ranges.
    result.partial = true;
    result.status = control.StopStatus();
    result.evaluated = Bitmap(pairs.size());
    result.pairs_completed = 0;
    for (size_t t = 0; t < num_threads; ++t) {
      for (size_t i = chunk_begin[t]; i < worker_stopped_at[t]; ++i) {
        result.evaluated.Set(i);
        ++result.pairs_completed;
      }
    }
  }
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace emdbg
