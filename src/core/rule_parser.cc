#include "src/core/rule_parser.h"

#include <cctype>
#include <cmath>
#include <string>
#include <vector>

#include "src/util/csv.h"
#include "src/util/string_util.h"

namespace emdbg {

namespace {

// Defensive limits over untrusted rule text (see rule_parser.h).
constexpr size_t kMaxRuleTextBytes = 64u << 10;
constexpr size_t kMaxFunctionTextBytes = 8u << 20;
constexpr size_t kMaxPredicatesPerRule = 256;
constexpr size_t kMaxRulesPerFunction = 4096;
constexpr size_t kMaxIdentifierBytes = 256;

/// Token kinds for the tiny DSL lexer.
enum class TokKind { kIdent, kNumber, kOp, kLParen, kRParen, kComma,
                     kColon, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  double number = 0.0;
};

/// Lexer with one token of lookahead.
class TokenStream {
 public:
  explicit TokenStream(std::string_view input) : input_(input) {}

  /// Consumes and returns the next token.
  Result<Token> Next() {
    if (has_lookahead_) {
      has_lookahead_ = false;
      return lookahead_;
    }
    return Lex();
  }

  /// Returns the next token without consuming it.
  Result<Token> Peek() {
    if (!has_lookahead_) {
      Result<Token> t = Lex();
      if (!t.ok()) return t;
      lookahead_ = *t;
      has_lookahead_ = true;
    }
    return lookahead_;
  }

  /// Consumes a token and checks its kind.
  Result<Token> Expect(TokKind kind, const char* what) {
    Result<Token> t = Next();
    if (!t.ok()) return t;
    if (t->kind != kind) {
      return Status::ParseError(
          StrFormat("expected %s, got '%s'", what, t->text.c_str()));
    }
    return t;
  }

 private:
  Result<Token> Lex() {
    SkipSpaceAndComments();
    if (pos_ >= input_.size()) return Token{TokKind::kEnd, "", 0.0};
    const char c = input_[pos_];
    if (c == '(') { ++pos_; return Token{TokKind::kLParen, "(", 0.0}; }
    if (c == ')') { ++pos_; return Token{TokKind::kRParen, ")", 0.0}; }
    if (c == ',') { ++pos_; return Token{TokKind::kComma, ",", 0.0}; }
    if (c == ':') { ++pos_; return Token{TokKind::kColon, ":", 0.0}; }
    if (c == '>' || c == '<') {
      std::string op(1, c);
      ++pos_;
      if (pos_ < input_.size() && input_[pos_] == '=') {
        op.push_back('=');
        ++pos_;
      }
      return Token{TokKind::kOp, op, 0.0};
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
        c == '-' || c == '+') {
      const size_t start = pos_;
      ++pos_;
      while (pos_ < input_.size() && IsNumberChar(pos_)) ++pos_;
      const std::string_view num = input_.substr(start, pos_ - start);
      double value = 0.0;
      if (!ParseDouble(num, &value)) {
        return Status::ParseError(
            StrFormat("bad number '%.*s'", static_cast<int>(num.size()),
                      num.data()));
      }
      Token t;
      t.kind = TokKind::kNumber;
      t.text = std::string(num);
      t.number = value;
      return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        ++pos_;
      }
      if (pos_ - start > kMaxIdentifierBytes) {
        return Status::ParseError(
            StrFormat("identifier exceeds %zu bytes", kMaxIdentifierBytes));
      }
      Token t;
      t.kind = TokKind::kIdent;
      t.text = std::string(input_.substr(start, pos_ - start));
      return t;
    }
    return Status::ParseError(StrFormat("unexpected character '%c'", c));
  }

  bool IsNumberChar(size_t pos) const {
    const char c = input_[pos];
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
        c == 'e' || c == 'E') {
      return true;
    }
    // Sign is part of the number only right after an exponent marker.
    return (c == '-' || c == '+') &&
           (input_[pos - 1] == 'e' || input_[pos - 1] == 'E');
  }

  void SkipSpaceAndComments() {
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (c == '#') {
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  Token lookahead_;
  bool has_lookahead_ = false;
};

Result<CompareOp> OpFromText(const std::string& text) {
  if (text == ">=") return CompareOp::kGe;
  if (text == ">") return CompareOp::kGt;
  if (text == "<") return CompareOp::kLt;
  if (text == "<=") return CompareOp::kLe;
  return Status::ParseError(StrFormat("bad operator '%s'", text.c_str()));
}

/// Parses "(" attrA "," attrB ")" op number — everything after the
/// similarity-function identifier, which both call sites have already
/// consumed (ParseRule needs one identifier of lookahead to decide
/// between a rule name and a predicate).
Result<Predicate> ParsePredicateBody(TokenStream& ts,
                                     FeatureCatalog& catalog,
                                     SimFunction fn) {
  EMDBG_RETURN_IF_ERROR(ts.Expect(TokKind::kLParen, "'('").status());
  Result<Token> attr_a = ts.Expect(TokKind::kIdent, "attribute name");
  if (!attr_a.ok()) return attr_a.status();
  EMDBG_RETURN_IF_ERROR(ts.Expect(TokKind::kComma, "','").status());
  Result<Token> attr_b = ts.Expect(TokKind::kIdent, "attribute name");
  if (!attr_b.ok()) return attr_b.status();
  EMDBG_RETURN_IF_ERROR(ts.Expect(TokKind::kRParen, "')'").status());
  Result<Token> op_tok = ts.Expect(TokKind::kOp, "comparison operator");
  if (!op_tok.ok()) return op_tok.status();
  Result<Token> num = ts.Expect(TokKind::kNumber, "threshold");
  if (!num.ok()) return num.status();
  if (!std::isfinite(num->number)) {
    return Status::ParseError(
        StrFormat("threshold '%s' is not finite", num->text.c_str()));
  }

  Result<CompareOp> op = OpFromText(op_tok->text);
  if (!op.ok()) return op.status();
  Result<FeatureId> feature =
      catalog.InternByName(fn, attr_a->text, attr_b->text);
  if (!feature.ok()) return feature.status();

  Predicate p;
  p.feature = *feature;
  p.op = *op;
  p.threshold = num->number;
  return p;
}

/// predicate := simfn "(" attrA "," attrB ")" op number
Result<Predicate> ParsePredicate(TokenStream& ts, FeatureCatalog& catalog) {
  Result<Token> fn_tok = ts.Expect(TokKind::kIdent, "similarity function");
  if (!fn_tok.ok()) return fn_tok.status();
  Result<SimFunction> fn = SimFunctionFromName(fn_tok->text);
  if (!fn.ok()) return fn.status();
  return ParsePredicateBody(ts, catalog, *fn);
}

/// True if `name` is an identifier the lexer would produce — safe to
/// emit as a "name:" prefix in serialized DSL.
bool IsDslIdentifier(std::string_view name) {
  if (name.empty() || name.size() > kMaxIdentifierBytes) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) &&
      name[0] != '_') {
    return false;
  }
  for (const char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<Rule> ParseRule(std::string_view text, FeatureCatalog& catalog) {
  if (text.size() > kMaxRuleTextBytes) {
    return Status::ParseError(StrFormat(
        "rule text is %zu bytes, limit is %zu", text.size(),
        kMaxRuleTextBytes));
  }
  TokenStream ts(text);
  Rule rule;

  // Optional "name :" prefix — an identifier directly followed by ':'.
  {
    Result<Token> first = ts.Peek();
    if (!first.ok()) return first.status();
    if (first->kind == TokKind::kEnd) {
      return Status::ParseError("empty rule");
    }
    if (first->kind == TokKind::kIdent) {
      const Token name_tok = *first;
      (void)ts.Next();
      Result<Token> after = ts.Peek();
      if (!after.ok()) return after.status();
      if (after->kind == TokKind::kColon) {
        (void)ts.Next();
        rule.set_name(name_tok.text);
      } else {
        // Not a name — parse the predicate body with the already-consumed
        // identifier as the similarity-function name.
        Result<SimFunction> fn = SimFunctionFromName(name_tok.text);
        if (!fn.ok()) return fn.status();
        Result<Predicate> p = ParsePredicateBody(ts, catalog, *fn);
        if (!p.ok()) return p.status();
        rule.AddPredicate(*p);
      }
    } else {
      return Status::ParseError("rule must start with a name or predicate");
    }
  }

  // First predicate after a name, then "AND predicate" clauses.
  while (true) {
    Result<Token> next = ts.Peek();
    if (!next.ok()) return next.status();
    if (next->kind == TokKind::kEnd) break;
    if (next->kind == TokKind::kIdent &&
        EqualsIgnoreCase(next->text, "and")) {
      if (rule.empty()) {
        return Status::ParseError("rule cannot start with AND");
      }
      (void)ts.Next();
    } else if (!rule.empty()) {
      return Status::ParseError(
          StrFormat("expected AND or end of rule, got '%s'",
                    next->text.c_str()));
    }
    if (rule.size() >= kMaxPredicatesPerRule) {
      return Status::ParseError(StrFormat(
          "rule has more than %zu predicates", kMaxPredicatesPerRule));
    }
    Result<Predicate> p = ParsePredicate(ts, catalog);
    if (!p.ok()) return p.status();
    rule.AddPredicate(*p);
  }
  if (rule.empty()) return Status::ParseError("rule has no predicates");
  return rule;
}

Result<MatchingFunction> ParseMatchingFunction(std::string_view text,
                                               FeatureCatalog& catalog) {
  if (text.size() > kMaxFunctionTextBytes) {
    return Status::ParseError(StrFormat(
        "rule-set text is %zu bytes, limit is %zu", text.size(),
        kMaxFunctionTextBytes));
  }
  // Split into rule chunks on newlines / ';' / standalone OR keywords.
  MatchingFunction fn;
  std::string current;
  auto flush = [&]() -> Status {
    const std::string_view trimmed = TrimAscii(current);
    if (!trimmed.empty()) {
      if (fn.num_rules() >= kMaxRulesPerFunction) {
        return Status::ParseError(StrFormat(
            "rule set has more than %zu rules", kMaxRulesPerFunction));
      }
      Result<Rule> rule = ParseRule(trimmed, catalog);
      if (!rule.ok()) return rule.status();
      fn.AddRule(*rule);
    }
    current.clear();
    return Status::Ok();
  };

  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '\n' || c == ';') {
      EMDBG_RETURN_IF_ERROR(flush());
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    // Standalone OR (word boundaries on both sides) separates rules.
    if ((c == 'o' || c == 'O') && i + 1 < text.size() &&
        (text[i + 1] == 'r' || text[i + 1] == 'R')) {
      const bool left_ok =
          i == 0 || std::isspace(static_cast<unsigned char>(text[i - 1]));
      const bool right_ok =
          i + 2 >= text.size() ||
          std::isspace(static_cast<unsigned char>(text[i + 2]));
      if (left_ok && right_ok) {
        EMDBG_RETURN_IF_ERROR(flush());
        i += 2;
        continue;
      }
    }
    current.push_back(c);
    ++i;
  }
  EMDBG_RETURN_IF_ERROR(flush());
  if (fn.empty()) return Status::ParseError("no rules in input");
  return fn;
}

Status SaveRulesFile(const MatchingFunction& fn,
                     const FeatureCatalog& catalog,
                     const std::string& path) {
  std::string text = "# emdbg rule set (";
  text += StrFormat("%zu rules)\n", fn.num_rules());
  text += fn.ToString(catalog);
  text += "\n";
  return WriteStringToFile(path, text);
}

Result<MatchingFunction> LoadRulesFile(const std::string& path,
                                       FeatureCatalog& catalog) {
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return ParseMatchingFunction(*text, catalog);
}

std::string PredicateToDsl(const Predicate& p,
                           const FeatureCatalog& catalog) {
  // %.17g prints enough digits that ParseDouble reconstructs the
  // identical double (round-trip exactness, unlike the %.4g display
  // form).
  return StrFormat("%s %s %.17g", catalog.Name(p.feature).c_str(),
                   CompareOpSymbol(p.op), p.threshold);
}

std::string RuleToDsl(const Rule& rule, const FeatureCatalog& catalog) {
  std::string out;
  if (IsDslIdentifier(rule.name()) &&
      !EqualsIgnoreCase(rule.name(), "and")) {
    out += rule.name();
    out += ": ";
  }
  for (size_t i = 0; i < rule.size(); ++i) {
    if (i != 0) out += " AND ";
    out += PredicateToDsl(rule.predicate(i), catalog);
  }
  return out;
}

std::string FunctionToDsl(const MatchingFunction& fn,
                          const FeatureCatalog& catalog) {
  std::string out;
  for (const Rule& rule : fn.rules()) {
    out += RuleToDsl(rule, catalog);
    out += "\n";
  }
  return out;
}

}  // namespace emdbg
