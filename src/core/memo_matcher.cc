#include "src/core/memo_matcher.h"

#include <vector>

#include "src/core/predicate_order.h"
#include "src/util/stopwatch.h"

namespace emdbg {

MatchResult MemoMatcher::Run(const MatchingFunction& fn,
                             const CandidateSet& pairs, PairContext& ctx,
                             const RunControl& control) {
  DenseMemo memo(pairs.size(), ctx.catalog().size());
  return RunImpl(fn, pairs, ctx, nullptr, memo, control);
}

MatchResult MemoMatcher::RunWithMemo(const MatchingFunction& fn,
                                     const CandidateSet& pairs,
                                     PairContext& ctx, Memo& memo,
                                     const RunControl& control) {
  return RunImpl(fn, pairs, ctx, nullptr, memo, control);
}

MatchResult MemoMatcher::RunWithState(const MatchingFunction& fn,
                                      const CandidateSet& pairs,
                                      PairContext& ctx, MatchState& state,
                                      const RunControl& control) {
  const bool reuse =
      state.initialized() && state.num_pairs() == pairs.size();
  // Budget-aware allocation: a session over quota gets a clean
  // ResourceExhausted result (zero pairs evaluated, state untouched)
  // instead of bad_alloc.
  Status cap = state.EnsureCapacity(pairs.size(), ctx.catalog().size());
  if (!cap.ok()) {
    MatchResult denied;
    denied.matches = Bitmap(pairs.size());
    denied.evaluated = Bitmap(pairs.size());
    denied.partial = true;
    denied.pairs_completed = 0;
    denied.status = cap;
    return denied;
  }
  // Keep the memo on reuse (cross-iteration); rebuild decision bitmaps.
  if (reuse) state.matches().Fill(false);
  // Materialize one bitmap per rule and per predicate (Sec. 6.1) — even
  // for rules that never fire, so memory accounting matches the paper's
  // setting. Re-initializing in place keeps prior allocations.
  for (const Rule& r : fn.rules()) {
    state.RuleTrue(r.id()).Fill(false);
    for (const Predicate& p : r.predicates()) {
      state.PredFalse(p.id).Fill(false);
    }
  }
  MatchResult result = RunImpl(fn, pairs, ctx, &state, state.memo(),
                               control);
  state.matches() = result.matches;
  return result;
}

MatchResult MemoMatcher::RunImpl(const MatchingFunction& fn,
                                 const CandidateSet& pairs, PairContext& ctx,
                                 MatchState* state, Memo& memo,
                                 const RunControl& control) {
  Stopwatch timer;
  StopCheck stop(control);
  MatchResult result;
  result.matches = Bitmap(pairs.size());
  result.MarkComplete(pairs.size());

  // Scratch order buffer reused across pairs (check-cache-first).
  PredicateOrderScratch scratch;

  for (size_t i = 0; i < pairs.size(); ++i) {
    if (stop.ShouldStop()) {
      result.MarkPartialPrefix(i, pairs.size(), stop.Reason());
      break;
    }
    const PairId pair = pairs.pair(i);
    for (const Rule& rule : fn.rules()) {
      if (rule.empty()) continue;
      ++result.stats.rule_evaluations;

      const uint32_t* order =
          scratch.Build(rule, memo, i, options_.check_cache_first);

      bool rule_true = true;
      for (size_t k = 0; k < rule.size(); ++k) {
        const Predicate& p = rule.predicate(order[k]);
        ++result.stats.predicate_evaluations;
        double value = 0.0;
        if (memo.Lookup(i, p.feature, &value)) {
          ++result.stats.memo_hits;
        } else {
          value = ctx.ComputeFeature(p.feature, pair);
          memo.Store(i, p.feature, value);
          ++result.stats.feature_computations;
        }
        if (!p.Test(value)) {
          rule_true = false;
          if (state != nullptr) state->PredFalse(p.id).Set(i);
          break;  // early exit: rule is false
        }
      }
      if (rule_true) {
        result.matches.Set(i);
        if (state != nullptr) state->RuleTrue(rule.id()).Set(i);
        break;  // early exit: pair is a match
      }
    }
  }
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace emdbg
