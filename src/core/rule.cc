#include "src/core/rule.h"

#include <algorithm>
#include <cassert>

#include "src/util/string_util.h"

namespace emdbg {

bool Rule::RemovePredicateById(PredicateId pid) {
  const size_t pos = FindPredicate(pid);
  if (pos == predicates_.size()) return false;
  predicates_.erase(predicates_.begin() + static_cast<ptrdiff_t>(pos));
  return true;
}

size_t Rule::FindPredicate(PredicateId pid) const {
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (predicates_[i].id == pid) return i;
  }
  return predicates_.size();
}

std::vector<FeatureId> Rule::Features() const {
  std::vector<FeatureId> out;
  for (const Predicate& p : predicates_) {
    if (std::find(out.begin(), out.end(), p.feature) == out.end()) {
      out.push_back(p.feature);
    }
  }
  return out;
}

std::vector<size_t> Rule::PredicatesOnFeature(FeatureId feature) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (predicates_[i].feature == feature) out.push_back(i);
  }
  return out;
}

void Rule::Permute(const std::vector<size_t>& order) {
  assert(order.size() == predicates_.size());
  std::vector<Predicate> reordered;
  reordered.reserve(predicates_.size());
  for (size_t idx : order) reordered.push_back(predicates_[idx]);
  predicates_ = std::move(reordered);
}

bool Rule::IsCanonical() const {
  for (const FeatureId f : Features()) {
    int lower = 0;
    int upper = 0;
    for (size_t pos : PredicatesOnFeature(f)) {
      if (IsLowerBound(predicates_[pos].op)) {
        ++lower;
      } else {
        ++upper;
      }
    }
    if (lower > 1 || upper > 1) return false;
  }
  return true;
}

std::string Rule::ToString(const FeatureCatalog& catalog) const {
  std::vector<std::string> parts;
  parts.reserve(predicates_.size());
  for (const Predicate& p : predicates_) {
    parts.push_back(PredicateToString(p, catalog));
  }
  std::string body = Join(parts, " AND ");
  if (name_.empty()) return body;
  return name_ + ": " + body;
}

}  // namespace emdbg
