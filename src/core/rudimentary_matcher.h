#ifndef EMDBG_CORE_RUDIMENTARY_MATCHER_H_
#define EMDBG_CORE_RUDIMENTARY_MATCHER_H_

#include "src/core/matcher.h"

namespace emdbg {

/// Algorithm 1: evaluates every predicate of every rule for every pair,
/// recomputing the similarity value on each predicate evaluation (each
/// predicate is a black box; no memoing, no early exit).
class RudimentaryMatcher final : public Matcher {
 public:
  using Matcher::Run;
  MatchResult Run(const MatchingFunction& fn, const CandidateSet& pairs,
                  PairContext& ctx, const RunControl& control) override;
  const char* name() const override { return "R"; }
};

}  // namespace emdbg

#endif  // EMDBG_CORE_RUDIMENTARY_MATCHER_H_
