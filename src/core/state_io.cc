#include "src/core/state_io.h"

#include <cstring>

#include "src/util/csv.h"
#include "src/util/string_util.h"

namespace emdbg {

namespace {

constexpr char kMagic[8] = {'E', 'M', 'D', 'B', 'G', 'S', 'T', '1'};

void AppendU64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendBitmap(std::string& out, const Bitmap& bm) {
  for (const uint64_t w : bm.words()) AppendU64(out, w);
}

/// Sequential reader over the loaded buffer.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }

  bool ReadFloats(std::vector<float>& out, size_t count) {
    if (remaining() < count * sizeof(float)) return false;
    out.resize(count);
    std::memcpy(out.data(), data_.data() + pos_, count * sizeof(float));
    pos_ += count * sizeof(float);
    return true;
  }

  bool ReadBitmap(Bitmap* bm, size_t bits) {
    const size_t words = (bits + 63) / 64;
    if (remaining() < words * sizeof(uint64_t)) return false;
    std::vector<uint64_t> buf(words);
    std::memcpy(buf.data(), data_.data() + pos_,
                words * sizeof(uint64_t));
    pos_ += words * sizeof(uint64_t);
    *bm = Bitmap::FromWords(bits, std::move(buf));
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool ReadRaw(void* out, size_t bytes) {
    if (remaining() < bytes) return false;
    std::memcpy(out, data_.data() + pos_, bytes);
    pos_ += bytes;
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

Status SaveMatchState(const MatchState& state, const std::string& path) {
  if (!state.initialized()) {
    return Status::FailedPrecondition("state is not initialized");
  }
  std::string out;
  const DenseMemo& memo = state.memo();
  out.reserve(16 + memo.raw_values().size() * sizeof(float));
  out.append(kMagic, sizeof(kMagic));
  AppendU64(out, memo.num_pairs());
  AppendU64(out, memo.num_features());
  out.append(reinterpret_cast<const char*>(memo.raw_values().data()),
             memo.raw_values().size() * sizeof(float));
  AppendBitmap(out, state.matches());

  const std::vector<RuleId> rule_ids = state.RuleIdsWithState();
  AppendU64(out, rule_ids.size());
  for (const RuleId rid : rule_ids) {
    AppendU32(out, rid);
    AppendBitmap(out, *state.FindRuleTrue(rid));
  }
  const std::vector<PredicateId> pred_ids = state.PredicateIdsWithState();
  AppendU64(out, pred_ids.size());
  for (const PredicateId pid : pred_ids) {
    AppendU32(out, pid);
    AppendBitmap(out, *state.FindPredFalse(pid));
  }
  return WriteStringToFile(path, out);
}

Result<MatchState> LoadMatchState(const std::string& path) {
  Result<std::string> data = ReadFileToString(path);
  if (!data.ok()) return data.status();

  char magic[8];
  if (data->size() < sizeof(magic) ||
      std::memcmp(data->data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not an emdbg state file");
  }
  Reader body(std::string_view(*data).substr(sizeof(kMagic)));

  uint64_t num_pairs = 0;
  uint64_t num_features = 0;
  if (!body.ReadU64(&num_pairs) || !body.ReadU64(&num_features)) {
    return Status::ParseError("truncated state header");
  }
  MatchState state;
  state.Initialize(num_pairs, num_features);

  std::vector<float> values;
  if (!body.ReadFloats(values, num_pairs * num_features)) {
    return Status::ParseError("truncated memo payload");
  }
  EMDBG_RETURN_IF_ERROR(state.memo().LoadRawValues(values));

  Bitmap matches;
  if (!body.ReadBitmap(&matches, num_pairs)) {
    return Status::ParseError("truncated match bitmap");
  }
  state.matches() = std::move(matches);

  uint64_t rule_count = 0;
  if (!body.ReadU64(&rule_count)) {
    return Status::ParseError("truncated rule-bitmap count");
  }
  for (uint64_t i = 0; i < rule_count; ++i) {
    uint32_t rid = 0;
    Bitmap bm;
    if (!body.ReadU32(&rid) || !body.ReadBitmap(&bm, num_pairs)) {
      return Status::ParseError("truncated rule bitmap");
    }
    state.RuleTrue(rid) = std::move(bm);
  }
  uint64_t pred_count = 0;
  if (!body.ReadU64(&pred_count)) {
    return Status::ParseError("truncated predicate-bitmap count");
  }
  for (uint64_t i = 0; i < pred_count; ++i) {
    uint32_t pid = 0;
    Bitmap bm;
    if (!body.ReadU32(&pid) || !body.ReadBitmap(&bm, num_pairs)) {
      return Status::ParseError("truncated predicate bitmap");
    }
    state.PredFalse(pid) = std::move(bm);
  }
  return state;
}

}  // namespace emdbg
