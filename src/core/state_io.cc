#include "src/core/state_io.h"

#include <cstdint>
#include <cstring>
#include <limits>

#include "src/util/crc32c.h"
#include "src/util/csv.h"
#include "src/util/string_util.h"

namespace emdbg {

namespace {

constexpr char kMagicV1[8] = {'E', 'M', 'D', 'B', 'G', 'S', 'T', '1'};
constexpr char kMagicV2[8] = {'E', 'M', 'D', 'B', 'G', 'S', 'T', '2'};

void AppendU64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendBitmap(std::string& out, const Bitmap& bm) {
  for (const uint64_t w : bm.words()) AppendU64(out, w);
}

/// Appends the CRC-32C of out[section_start..] — call at the end of each
/// section while saving.
void AppendSectionCrc(std::string& out, size_t section_start) {
  AppendU32(out, Crc32c(out.data() + section_start,
                        out.size() - section_start));
}

/// a * b, or nullopt-style failure via the bool, guarding size overflow.
bool CheckedMul(uint64_t a, uint64_t b, uint64_t* result) {
  if (b != 0 && a > std::numeric_limits<uint64_t>::max() / b) return false;
  *result = a * b;
  return true;
}

/// Sequential reader over the loaded buffer. Tracks a running CRC-32C of
/// every byte consumed since the last StartSection(), so each section's
/// stored checksum can be verified right after reading it.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }

  bool ReadFloats(std::vector<float>& out, size_t count) {
    uint64_t bytes = 0;
    if (!CheckedMul(count, sizeof(float), &bytes) || remaining() < bytes) {
      return false;
    }
    out.resize(count);
    std::memcpy(out.data(), data_.data() + pos_, bytes);
    Consume(bytes);
    return true;
  }

  bool ReadBitmap(Bitmap* bm, size_t bits) {
    const size_t words = (bits + 63) / 64;
    if (remaining() < words * sizeof(uint64_t)) return false;
    std::vector<uint64_t> buf(words);
    std::memcpy(buf.data(), data_.data() + pos_,
                words * sizeof(uint64_t));
    Consume(words * sizeof(uint64_t));
    *bm = Bitmap::FromWords(bits, std::move(buf));
    return true;
  }

  void StartSection() { section_crc_ = 0; }

  /// Reads the stored u32 checksum (excluded from the running CRC) and
  /// compares it against the section bytes read since StartSection().
  Status VerifySectionCrc(const char* section_name) {
    const uint32_t computed = section_crc_;
    uint32_t stored = 0;
    if (remaining() < sizeof(stored)) {
      return Status::ParseError(
          StrFormat("truncated state file: missing %s checksum",
                    section_name));
    }
    std::memcpy(&stored, data_.data() + pos_, sizeof(stored));
    pos_ += sizeof(stored);
    if (stored != computed) {
      return Status::ParseError(StrFormat(
          "state file corrupt: %s checksum mismatch "
          "(stored %08x, computed %08x)",
          section_name, stored, computed));
    }
    return Status::Ok();
  }

  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool ReadRaw(void* out, size_t bytes) {
    if (remaining() < bytes) return false;
    std::memcpy(out, data_.data() + pos_, bytes);
    Consume(bytes);
    return true;
  }

  void Consume(size_t bytes) {
    section_crc_ = Crc32cExtend(section_crc_, data_.data() + pos_, bytes);
    pos_ += bytes;
  }

  std::string_view data_;
  size_t pos_ = 0;
  uint32_t section_crc_ = 0;
};

/// Validates the header dimensions against the number of bytes actually
/// present, *before* any allocation sized from them. `overhead` is the
/// fixed per-file byte cost beyond the memo floats (bitmap words,
/// counts). All arithmetic is overflow-checked.
Status ValidateDimensions(uint64_t num_pairs, uint64_t num_features,
                          size_t bytes_remaining) {
  uint64_t memo_count = 0;
  uint64_t memo_bytes = 0;
  if (!CheckedMul(num_pairs, num_features, &memo_count) ||
      !CheckedMul(memo_count, sizeof(float), &memo_bytes)) {
    return Status::ParseError(StrFormat(
        "state header dimensions overflow (num_pairs=%llu "
        "num_features=%llu)",
        static_cast<unsigned long long>(num_pairs),
        static_cast<unsigned long long>(num_features)));
  }
  // The memo floats plus at least the matches bitmap must fit in the
  // bytes that are actually on disk; a corrupt header claiming billions
  // of pairs fails here without allocating anything.
  const uint64_t match_words = (num_pairs + 63) / 64;
  uint64_t total = 0;
  if (!CheckedMul(match_words, sizeof(uint64_t), &total) ||
      total > std::numeric_limits<uint64_t>::max() - memo_bytes) {
    return Status::ParseError("state header dimensions overflow");
  }
  total += memo_bytes;
  if (total > bytes_remaining) {
    return Status::ParseError(StrFormat(
        "state header claims %llu bytes of payload but only %zu bytes "
        "remain in the file (num_pairs=%llu num_features=%llu)",
        static_cast<unsigned long long>(total), bytes_remaining,
        static_cast<unsigned long long>(num_pairs),
        static_cast<unsigned long long>(num_features)));
  }
  return Status::Ok();
}

/// Shared body loader for both versions; `checked` selects whether
/// per-section CRCs are present (v2) or not (v1).
Result<MatchState> LoadBody(Reader& body, bool checked) {
  body.StartSection();
  uint64_t num_pairs = 0;
  uint64_t num_features = 0;
  if (!body.ReadU64(&num_pairs) || !body.ReadU64(&num_features)) {
    return Status::ParseError("truncated state header");
  }
  if (checked) {
    EMDBG_RETURN_IF_ERROR(body.VerifySectionCrc("header"));
  }
  EMDBG_RETURN_IF_ERROR(
      ValidateDimensions(num_pairs, num_features, body.remaining()));

  MatchState state;
  state.Initialize(num_pairs, num_features);

  body.StartSection();
  std::vector<float> values;
  if (!body.ReadFloats(values, num_pairs * num_features)) {
    return Status::ParseError("truncated memo payload");
  }
  if (checked) {
    EMDBG_RETURN_IF_ERROR(body.VerifySectionCrc("memo"));
  }
  EMDBG_RETURN_IF_ERROR(state.memo().LoadRawValues(values));

  body.StartSection();
  Bitmap matches;
  if (!body.ReadBitmap(&matches, num_pairs)) {
    return Status::ParseError("truncated match bitmap");
  }
  if (checked) {
    EMDBG_RETURN_IF_ERROR(body.VerifySectionCrc("matches"));
  }
  state.matches() = std::move(matches);

  body.StartSection();
  uint64_t rule_count = 0;
  if (!body.ReadU64(&rule_count)) {
    return Status::ParseError("truncated rule-bitmap count");
  }
  // Every per-rule entry costs at least an id + one bitmap word; a
  // corrupt count larger than the file can hold is rejected up front.
  const uint64_t min_entry_bytes =
      sizeof(uint32_t) + ((num_pairs + 63) / 64) * sizeof(uint64_t);
  uint64_t rule_bytes = 0;
  if (!CheckedMul(rule_count, min_entry_bytes, &rule_bytes) ||
      rule_bytes > body.remaining()) {
    return Status::ParseError(
        StrFormat("state file corrupt: rule-bitmap count %llu exceeds "
                  "remaining file size",
                  static_cast<unsigned long long>(rule_count)));
  }
  for (uint64_t i = 0; i < rule_count; ++i) {
    uint32_t rid = 0;
    Bitmap bm;
    if (!body.ReadU32(&rid) || !body.ReadBitmap(&bm, num_pairs)) {
      return Status::ParseError("truncated rule bitmap");
    }
    state.RuleTrue(rid) = std::move(bm);
  }
  if (checked) {
    EMDBG_RETURN_IF_ERROR(body.VerifySectionCrc("rule bitmaps"));
  }

  body.StartSection();
  uint64_t pred_count = 0;
  if (!body.ReadU64(&pred_count)) {
    return Status::ParseError("truncated predicate-bitmap count");
  }
  uint64_t pred_bytes = 0;
  if (!CheckedMul(pred_count, min_entry_bytes, &pred_bytes) ||
      pred_bytes > body.remaining()) {
    return Status::ParseError(
        StrFormat("state file corrupt: predicate-bitmap count %llu "
                  "exceeds remaining file size",
                  static_cast<unsigned long long>(pred_count)));
  }
  for (uint64_t i = 0; i < pred_count; ++i) {
    uint32_t pid = 0;
    Bitmap bm;
    if (!body.ReadU32(&pid) || !body.ReadBitmap(&bm, num_pairs)) {
      return Status::ParseError("truncated predicate bitmap");
    }
    state.PredFalse(pid) = std::move(bm);
  }
  if (checked) {
    EMDBG_RETURN_IF_ERROR(body.VerifySectionCrc("predicate bitmaps"));
  }
  return state;
}

}  // namespace

namespace {

/// Shared writer: optional id maps rewrite bitmap keys (nullptr = keep).
Status SaveMatchStateImpl(
    const MatchState& state,
    const std::unordered_map<RuleId, RuleId>* rule_ids,
    const std::unordered_map<PredicateId, PredicateId>* predicate_ids,
    const std::string& path) {
  if (!state.initialized()) {
    return Status::FailedPrecondition("state is not initialized");
  }
  std::string out;
  const DenseMemo& memo = state.memo();
  out.reserve(64 + memo.raw_values().size() * sizeof(float));
  out.append(kMagicV2, sizeof(kMagicV2));

  size_t section = out.size();
  AppendU64(out, memo.num_pairs());
  AppendU64(out, memo.num_features());
  AppendSectionCrc(out, section);

  section = out.size();
  out.append(reinterpret_cast<const char*>(memo.raw_values().data()),
             memo.raw_values().size() * sizeof(float));
  AppendSectionCrc(out, section);

  section = out.size();
  AppendBitmap(out, state.matches());
  AppendSectionCrc(out, section);

  section = out.size();
  std::vector<std::pair<RuleId, RuleId>> rules;  // (written id, source id)
  for (const RuleId rid : state.RuleIdsWithState()) {
    if (rule_ids == nullptr) {
      rules.emplace_back(rid, rid);
    } else if (auto it = rule_ids->find(rid); it != rule_ids->end()) {
      rules.emplace_back(it->second, rid);
    }
  }
  AppendU64(out, rules.size());
  for (const auto& [written, source] : rules) {
    AppendU32(out, written);
    AppendBitmap(out, *state.FindRuleTrue(source));
  }
  AppendSectionCrc(out, section);

  section = out.size();
  std::vector<std::pair<PredicateId, PredicateId>> preds;
  for (const PredicateId pid : state.PredicateIdsWithState()) {
    if (predicate_ids == nullptr) {
      preds.emplace_back(pid, pid);
    } else if (auto it = predicate_ids->find(pid);
               it != predicate_ids->end()) {
      preds.emplace_back(it->second, pid);
    }
  }
  AppendU64(out, preds.size());
  for (const auto& [written, source] : preds) {
    AppendU32(out, written);
    AppendBitmap(out, *state.FindPredFalse(source));
  }
  AppendSectionCrc(out, section);

  return WriteFileAtomic(path, out);
}

}  // namespace

Status SaveMatchState(const MatchState& state, const std::string& path) {
  return SaveMatchStateImpl(state, nullptr, nullptr, path);
}

Status SaveMatchStateRemapped(
    const MatchState& state,
    const std::unordered_map<RuleId, RuleId>& rule_ids,
    const std::unordered_map<PredicateId, PredicateId>& predicate_ids,
    const std::string& path) {
  return SaveMatchStateImpl(state, &rule_ids, &predicate_ids, path);
}

Result<MatchState> LoadMatchState(const std::string& path) {
  Result<std::string> data = ReadFileToString(path);
  if (!data.ok()) return data.status();

  if (data->size() < sizeof(kMagicV2)) {
    return Status::ParseError("not an emdbg state file");
  }
  const bool v2 = std::memcmp(data->data(), kMagicV2,
                              sizeof(kMagicV2)) == 0;
  const bool v1 = std::memcmp(data->data(), kMagicV1,
                              sizeof(kMagicV1)) == 0;
  if (!v2 && !v1) {
    return Status::ParseError("not an emdbg state file");
  }
  Reader body(std::string_view(*data).substr(sizeof(kMagicV2)));
  return LoadBody(body, /*checked=*/v2);
}

}  // namespace emdbg
