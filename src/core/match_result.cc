#include "src/core/match_result.h"

#include "src/util/string_util.h"

namespace emdbg {

std::string MatchStats::ToString() const {
  return StrFormat(
      "computations=%zu memo_hits=%zu predicate_evals=%zu rule_evals=%zu "
      "elapsed=%.2fms",
      feature_computations, memo_hits, predicate_evaluations,
      rule_evaluations, elapsed_ms);
}

void MatchResult::MarkPartialPrefix(size_t completed, size_t num_pairs,
                                    Status stop_status) {
  partial = true;
  pairs_completed = completed;
  status = std::move(stop_status);
  evaluated = Bitmap(num_pairs);
  for (size_t i = 0; i < completed; ++i) evaluated.Set(i);
}

std::string QualityMetrics::ToString() const {
  return StrFormat("P=%.3f R=%.3f F1=%.3f (tp=%zu fp=%zu fn=%zu)", precision,
                   recall, f1, true_positives, false_positives,
                   false_negatives);
}

QualityMetrics Evaluate(const Bitmap& predicted, const PairLabels& labels) {
  QualityMetrics m;
  for (size_t i = 0; i < predicted.size(); ++i) {
    const bool p = predicted.Get(i);
    const bool t = labels.Get(i);
    if (p && t) {
      ++m.true_positives;
    } else if (p && !t) {
      ++m.false_positives;
    } else if (!p && t) {
      ++m.false_negatives;
    }
  }
  const double tp = static_cast<double>(m.true_positives);
  if (m.true_positives + m.false_positives > 0) {
    m.precision =
        tp / static_cast<double>(m.true_positives + m.false_positives);
  }
  if (m.true_positives + m.false_negatives > 0) {
    m.recall =
        tp / static_cast<double>(m.true_positives + m.false_negatives);
  }
  if (m.precision + m.recall > 0.0) {
    m.f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  return m;
}

}  // namespace emdbg
