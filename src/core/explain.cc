#include "src/core/explain.h"

#include <algorithm>
#include <cmath>

#include "src/util/string_util.h"

namespace emdbg {

std::string MatchExplanation::ToString(const FeatureCatalog& catalog) const {
  std::string out = StrFormat("pair (a%u, b%u): %s\n", pair.a, pair.b,
                              matched ? "MATCH" : "no match");
  for (const RuleTrace& rt : rules) {
    out += StrFormat("  rule %s [%s]%s\n", rt.rule_name.c_str(),
                     rt.fired ? "fired" : "false",
                     rt.rule_id == responsible_rule ? "  <- responsible"
                                                    : "");
    for (const PredicateTrace& pt : rt.predicates) {
      out += StrFormat("    %-46s value=%.4f  %s\n",
                       PredicateToString(pt.predicate, catalog).c_str(),
                       pt.value, pt.passed ? "pass" : "FAIL");
    }
  }
  return out;
}

MatchExplanation ExplainPair(const MatchingFunction& fn, PairId pair,
                             PairContext& ctx) {
  MatchExplanation ex;
  ex.pair = pair;
  for (const Rule& rule : fn.rules()) {
    RuleTrace rt;
    rt.rule_id = rule.id();
    rt.rule_name = rule.name();
    rt.fired = !rule.empty();
    for (const Predicate& p : rule.predicates()) {
      PredicateTrace pt;
      pt.predicate = p;
      pt.value = ctx.ComputeFeature(p.feature, pair);
      pt.passed = p.Test(pt.value);
      rt.predicates.push_back(pt);
      if (!pt.passed) {
        rt.fired = false;
        break;  // early exit within the rule, like production evaluation
      }
    }
    if (rt.fired && ex.responsible_rule == kInvalidRule) {
      ex.matched = true;
      ex.responsible_rule = rule.id();
    }
    ex.rules.push_back(std::move(rt));
  }
  return ex;
}

std::vector<NearMiss> FindNearMisses(const MatchingFunction& fn,
                                     PairId pair, PairContext& ctx,
                                     size_t top_k) {
  std::vector<NearMiss> misses;
  for (const Rule& rule : fn.rules()) {
    if (rule.empty()) continue;
    NearMiss miss;
    miss.rule_id = rule.id();
    miss.rule_name = rule.name();
    double closest_gap = 0.0;
    for (const Predicate& p : rule.predicates()) {
      const double value = ctx.ComputeFeature(p.feature, pair);
      if (p.Test(value)) continue;
      const double gap = std::fabs(p.threshold - value);
      if (miss.failing_predicates == 0 || gap < closest_gap) {
        closest_gap = gap;
        miss.closest_predicate = p;
        miss.closest_value = value;
      }
      ++miss.failing_predicates;
      miss.total_gap += gap;
    }
    if (miss.failing_predicates > 0) misses.push_back(std::move(miss));
  }
  std::stable_sort(misses.begin(), misses.end(),
                   [](const NearMiss& x, const NearMiss& y) {
                     if (x.failing_predicates != y.failing_predicates) {
                       return x.failing_predicates < y.failing_predicates;
                     }
                     return x.total_gap < y.total_gap;
                   });
  if (misses.size() > top_k) misses.resize(top_k);
  return misses;
}

std::string NearMissesToString(const std::vector<NearMiss>& misses,
                               const FeatureCatalog& catalog) {
  if (misses.empty()) return "no near misses (some rule fired)\n";
  std::string out;
  for (const NearMiss& m : misses) {
    out += StrFormat(
        "rule %s: %zu failing predicate(s), total gap %.4f; closest: %s "
        "(value %.4f)\n",
        m.rule_name.c_str(), m.failing_predicates, m.total_gap,
        PredicateToString(m.closest_predicate, catalog).c_str(),
        m.closest_value);
  }
  return out;
}

}  // namespace emdbg
