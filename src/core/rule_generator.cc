#include "src/core/rule_generator.h"

#include <algorithm>
#include <cmath>

#include "src/util/string_util.h"

namespace emdbg {

RuleGenerator::RuleGenerator(PairContext& ctx, const CandidateSet& sample,
                             RuleGeneratorConfig config)
    : config_(config) {
  const FeatureCatalog& catalog = ctx.catalog();
  sorted_values_.resize(catalog.size());
  for (FeatureId f = 0; f < catalog.size(); ++f) {
    std::vector<double>& vals = sorted_values_[f];
    vals.reserve(sample.size());
    for (size_t s = 0; s < sample.size(); ++s) {
      vals.push_back(ctx.ComputeFeature(f, sample.pair(s)));
    }
    std::sort(vals.begin(), vals.end());
  }
  // Feature pool: a random subset if requested, shuffled with the config
  // seed so the pool is stable across Generate() calls.
  Rng pool_rng(config_.seed ^ 0xfeedULL);
  std::vector<FeatureId> all;
  for (FeatureId f = 0; f < catalog.size(); ++f) all.push_back(f);
  pool_rng.Shuffle(all);
  const size_t pool_size =
      config_.feature_pool == 0
          ? all.size()
          : std::min(config_.feature_pool, all.size());
  pool_.assign(all.begin(), all.begin() + static_cast<ptrdiff_t>(pool_size));
}

double RuleGenerator::FeatureQuantile(FeatureId f, double q) const {
  const std::vector<double>& vals = sorted_values_[f];
  if (vals.empty()) return 0.5;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(vals.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= vals.size()) return vals.back();
  return vals[lo] * (1.0 - frac) + vals[lo + 1] * frac;
}

Rule RuleGenerator::GenerateRule(Rng& rng) const {
  Rule rule;
  const size_t span = config_.max_predicates - config_.min_predicates + 1;
  const size_t num_preds =
      config_.min_predicates + static_cast<size_t>(rng.Uniform(span));

  // Pick distinct features, Zipf-skewed over the (seed-shuffled) pool so
  // a few features recur in most rules — the sharing that dynamic
  // memoing exploits.
  std::vector<FeatureId> chosen;
  size_t guard = 0;
  while (chosen.size() < std::min(num_preds, pool_.size()) &&
         guard++ < 1000) {
    const FeatureId f =
        pool_[rng.Zipf(pool_.size(), config_.feature_skew)];
    if (std::find(chosen.begin(), chosen.end(), f) == chosen.end()) {
      chosen.push_back(f);
    }
  }

  for (const FeatureId f : chosen) {
    Predicate p;
    p.feature = f;
    const bool upper = rng.Bernoulli(config_.upper_bound_fraction);
    const bool override_q =
        config_.quantile_lo >= 0.0 && config_.quantile_hi >= 0.0;
    if (upper) {
      // Upper bound: threshold in the upper-middle of the distribution so
      // the predicate passes most pairs but prunes some.
      p.op = CompareOp::kLt;
      p.threshold = FeatureQuantile(
          f, override_q
                 ? rng.UniformDouble(config_.quantile_lo, config_.quantile_hi)
                 : rng.UniformDouble(0.55, 0.98));
    } else {
      // Lower bound: selective — passes the high-similarity tail.
      p.op = CompareOp::kGe;
      p.threshold = FeatureQuantile(
          f, override_q
                 ? rng.UniformDouble(config_.quantile_lo, config_.quantile_hi)
                 : rng.UniformDouble(0.55, 0.95));
    }
    rule.AddPredicate(p);
  }
  return rule;
}

MatchingFunction RuleGenerator::Generate() const {
  Rng rng(config_.seed);
  MatchingFunction fn;
  for (size_t i = 0; i < config_.num_rules; ++i) {
    Rule r = GenerateRule(rng);
    r.set_name(StrFormat("g%zu", i));
    fn.AddRule(std::move(r));
  }
  return fn;
}

std::vector<Rule> RuleGenerator::GenerateRules(size_t count,
                                               Rng& rng) const {
  std::vector<Rule> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(GenerateRule(rng));
  return out;
}

}  // namespace emdbg
