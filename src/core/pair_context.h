#ifndef EMDBG_CORE_PAIR_CONTEXT_H_
#define EMDBG_CORE_PAIR_CONTEXT_H_

#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "src/block/candidate_pairs.h"
#include "src/core/feature.h"
#include "src/data/table.h"
#include "src/text/id_kernels.h"
#include "src/text/tfidf.h"
#include "src/text/token_interner.h"
#include "src/util/memory_budget.h"
#include "src/util/thread_pool.h"

namespace emdbg {

/// Evaluation environment shared by all matchers for one (A, B) task:
/// resolves a FeatureId against a candidate pair and computes the
/// similarity value.
///
/// The context owns two kinds of cross-pair state that are *not* the
/// paper's memo:
///   * per-record token caches (a record's title is tokenized once, not
///     once per pair it appears in) — disable via Options::cache_tokens to
///     get the paper's "every predicate is a black box computed from
///     scratch" rudimentary setting;
///   * TF-IDF corpus models per attribute pair (document-frequency tables
///     are corpus-level state of the similarity function itself and are
///     always cached).
///
/// On top of the raw token lists the context keeps an interned integer-id
/// representation (Options::intern_tokens, on by default): a TokenInterner
/// maps every distinct token to a dense uint32 id, and each (record, attr)
/// slot caches sorted-unique id arrays, lex-ordered term-frequency vectors
/// and id-indexed TF-IDF weight vectors. The set-family kernels (Jaccard,
/// Dice, overlap, trigram, cosine, TF-IDF, soft TF-IDF, Monge-Elkan) then
/// run over integer spans instead of heap-allocated strings — same doubles
/// bit-for-bit (see src/text/id_kernels.h), several times faster. Id
/// structures are built a whole column at a time on first touch or during
/// Prewarm.
class PairContext {
 public:
  struct Options {
    /// Cache word/q-gram token lists per (table, row, attribute).
    bool cache_tokens = true;
    /// Intern tokens to dense uint32 ids and evaluate the set-family
    /// kernels on integer arrays (requires cache_tokens; bit-identical
    /// results). Disable to force the string kernels.
    bool intern_tokens = true;
    /// Memory accountant for the token caches, interned-id columns, and
    /// interner arenas (null = unbudgeted). Cache growth is billed as it
    /// happens; a denied reservation *degrades* instead of failing:
    /// id-cache columns are dropped first (the string kernels from the
    /// vectorization work compute identical values, just slower), then
    /// token caching stops (similarity functions re-tokenize per call).
    /// Results are bit-identical on every rung of that ladder. The
    /// budget must outlive the context.
    MemoryBudget* budget = nullptr;
  };

  /// The tables and catalog must outlive the context.
  PairContext(const Table& a, const Table& b, const FeatureCatalog& catalog)
      : PairContext(a, b, catalog, Options{}) {}
  PairContext(const Table& a, const Table& b, const FeatureCatalog& catalog,
              Options options);
  ~PairContext();

  PairContext(const PairContext&) = delete;
  PairContext& operator=(const PairContext&) = delete;

  const Table& table_a() const { return a_; }
  const Table& table_b() const { return b_; }
  const FeatureCatalog& catalog() const { return catalog_; }

  /// Computes the similarity value of feature `f` on candidate pair
  /// `pair`. This is the expensive operation the whole paper is about
  /// minimizing; callers memoize the result.
  double ComputeFeature(FeatureId f, PairId pair);

  /// Columnar batch evaluation (the block matcher's compute stage, see
  /// src/core/block_matcher.h): computes feature `f` for every pair whose
  /// bit is set in `mask` (ceil(n/64) words over pairs[0..n)), writing the
  /// float-quantized value to out[i]. Unmasked lanes of `out` are left
  /// untouched. Values are bit-identical to per-pair ComputeFeature — the
  /// same kernels run over the same cached structures — but the
  /// per-feature resolution (catalog lookup, kernel selection, id-column
  /// availability checks, TF-IDF model fetch) is hoisted out of the pair
  /// loop, which is where the per-pair orchestration time went.
  /// compute_count() advances by popcount(mask). Thread-safety matches
  /// ComputeFeature: read-only on shared state once the features involved
  /// are prewarmed.
  void ComputeFeatureBlock(FeatureId f, const PairId* pairs, size_t n,
                           const uint64_t* mask, float* out);

  /// TF-IDF model over the union corpus of column `attr_a` of A and
  /// column `attr_b` of B (built lazily, then cached).
  const TfIdfModel& ModelFor(AttrIndex attr_a, AttrIndex attr_b);

  /// Total feature computations performed through this context (across all
  /// matchers sharing it). Cleared with ResetComputeCount().
  size_t compute_count() const {
    return compute_count_.load(std::memory_order_relaxed);
  }
  void ResetComputeCount() {
    compute_count_.store(0, std::memory_order_relaxed);
  }

  /// Fills the token caches, interned-id columns and TF-IDF models every
  /// feature in `features` will touch. After prewarming, ComputeFeature
  /// for those features is read-only on shared state and therefore safe to
  /// call from multiple threads concurrently (used by
  /// ParallelMemoMatcher). No-op slots when token caching is disabled.
  ///
  /// With a pool, the per-record tokenization and the per-record id-array
  /// sorting fan out across workers (distinct cache slots, no
  /// synchronization needed); TF-IDF model construction and token
  /// interning stay serial (corpus-level shared state). Re-warming an
  /// already-warm context is cheap either way — only null slots tokenize.
  void Prewarm(const std::vector<FeatureId>& features,
               ThreadPool* pool = nullptr);

  /// Approximate heap bytes held by the token caches.
  size_t TokenCacheBytes() const;

  /// Approximate heap bytes held by the interned-id caches (id arrays, tf
  /// vectors, TF-IDF weight vectors; excludes the interner itself).
  size_t IdCacheBytes() const;

  /// The token dictionary, or nullptr when interning is disabled (exposed
  /// for memory accounting: ArenaBytes/DictionaryBytes).
  const TokenInterner* interner() const { return interner_.get(); }

  /// Drops token and id caches (models and the token dictionary are
  /// kept), releases their billed bytes, and resets any budget-pressure
  /// degradation — later builds re-attempt reservation, so a context can
  /// recover once pressure passes. Serial-only (like the builds).
  void ClearTokenCaches();

  /// Drops only the interned-id structures (id arrays, tf vectors, model
  /// weight vectors) and releases their billing; token caches stay and
  /// the string kernels keep the same results. The cross-session
  /// reclaimer hook for idle sessions. Serial-only. Returns the bytes
  /// released.
  size_t DropIdCaches();

  /// True once budget pressure disabled the respective cache layer (see
  /// Options::budget). Reset by ClearTokenCaches.
  bool id_path_degraded() const {
    return id_degraded_.load(std::memory_order_relaxed);
  }
  bool token_cache_degraded() const {
    return token_degraded_.load(std::memory_order_relaxed);
  }

  /// Reservations the budget denied to this context (degradation events).
  uint64_t budget_denials() const {
    return budget_denials_.load(std::memory_order_relaxed);
  }

 private:
  // Cached tokens for one table; slot index = attr * num_rows + row.
  struct TokenCache {
    std::vector<std::unique_ptr<TokenList>> words;
    std::vector<std::unique_ptr<TokenList>> qgrams;
  };

  // Interned-id mirror of TokenCache, built a whole (attr, kind) column at
  // a time so the interner mutates in one predictable (serial) place.
  struct IdCache {
    std::vector<std::unique_ptr<TokenIds>> words;
    std::vector<std::unique_ptr<TokenIds>> qgrams;
    std::vector<std::unique_ptr<IdTfVector>> word_tf;
    std::vector<bool> words_built;   // per attr
    std::vector<bool> qgrams_built;  // per attr
    std::vector<bool> tf_built;      // per attr
  };

  // Per TF-IDF model (attr_a, attr_b): idf-by-id table plus one
  // L2-normalized weight vector per row of each side.
  struct ModelIdCache {
    std::vector<double> idf_by_id;
    std::vector<std::unique_ptr<IdWeightVector>> rows_a;
    std::vector<std::unique_ptr<IdWeightVector>> rows_b;
    bool built = false;
  };

  const TokenList* CachedTokens(bool table_b, AttrIndex attr, uint32_t row,
                                bool qgrams);

  /// One pair's value with the feature already resolved (no
  /// compute_count bump): the id fast path when available, else the
  /// string kernels. The shared tail of ComputeFeature and
  /// ComputeFeatureBlock's generic lane loop.
  double ComputeFeatureValue(const Feature& feature,
                             const SimFunctionInfo& info, PairId pair);

  /// Id-path evaluation for functions with SimFunctionInfo::id_path.
  /// False when a needed id structure is unavailable (budget pressure
  /// dropped or blocked it) — the caller falls through to the string
  /// kernels, which compute the identical value.
  bool TryComputeFeatureIds(const Feature& feature,
                            const SimFunctionInfo& info, PairId pair,
                            double* value);

  /// Built id arrays for one slot, or nullptr when the column is
  /// unavailable under budget pressure.
  const TokenIds* CachedIds(bool table_b, AttrIndex attr, uint32_t row,
                            bool qgrams);

  /// Builds doc + sorted-unique id arrays for every row of one column.
  /// Interning is serial; the per-row sorting fans out over `pool`.
  /// False when the column is unavailable (billing denied → column
  /// dropped, id path degraded).
  bool BuildIdColumn(bool table_b, AttrIndex attr, bool qgrams,
                     ThreadPool* pool);
  /// Builds lex-ordered term-frequency vectors for one words column.
  bool BuildTfColumn(bool table_b, AttrIndex attr, ThreadPool* pool);
  /// Builds the idf table and per-row weight vectors for one model.
  /// Callers must check `.built` (false under budget pressure).
  ModelIdCache& EnsureModelIds(AttrIndex attr_a, AttrIndex attr_b,
                               ThreadPool* pool);

  /// Bills `added` approximate cache bytes against the budget in chunks.
  /// False on denial (counted in budget_denials_); callers degrade.
  bool BillBytes(size_t added);
  /// Recomputes actual cache bytes and trues billing up or down. Serial
  /// contexts only (walks every cache slot).
  void ResyncBillingSerial();
  /// Interner arena+dictionary growth since the last call (serial
  /// contexts only — the interner only grows in serial build phases).
  size_t TakeInternerGrowth();

  const Table& a_;
  const Table& b_;
  const FeatureCatalog& catalog_;
  Options options_;
  TokenCache cache_a_;
  TokenCache cache_b_;
  std::map<std::pair<AttrIndex, AttrIndex>, std::unique_ptr<TfIdfModel>>
      models_;
  std::unique_ptr<TokenInterner> interner_;
  IdCache idc_a_;
  IdCache idc_b_;
  std::map<std::pair<AttrIndex, AttrIndex>, ModelIdCache> model_ids_;
  /// Lexicographic-rank snapshot, refreshed whenever a build interns new
  /// tokens (serial phases only; concurrent readers see a settled value).
  std::shared_ptr<const std::vector<uint32_t>> ranks_;
  std::atomic<size_t> compute_count_{0};

  // ---- Memory-budget accounting (see Options::budget). approx/billed
  // are atomics because token-cache fills run in parallel during
  // Prewarm; the degradation flags are flipped at most once per pressure
  // episode and read relaxed. ----
  MemoryBudget* budget_ = nullptr;
  std::atomic<size_t> approx_bytes_{0};
  std::atomic<size_t> billed_bytes_{0};
  std::atomic<bool> token_degraded_{false};
  std::atomic<bool> id_degraded_{false};
  std::atomic<uint64_t> budget_denials_{0};
  /// Interner bytes already folded into approx_bytes_ (serial phases).
  size_t interner_bytes_seen_ = 0;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_PAIR_CONTEXT_H_
