#ifndef EMDBG_CORE_PAIR_CONTEXT_H_
#define EMDBG_CORE_PAIR_CONTEXT_H_

#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "src/block/candidate_pairs.h"
#include "src/core/feature.h"
#include "src/data/table.h"
#include "src/text/tfidf.h"
#include "src/util/thread_pool.h"

namespace emdbg {

/// Evaluation environment shared by all matchers for one (A, B) task:
/// resolves a FeatureId against a candidate pair and computes the
/// similarity value.
///
/// The context owns two kinds of cross-pair state that are *not* the
/// paper's memo:
///   * per-record token caches (a record's title is tokenized once, not
///     once per pair it appears in) — disable via Options::cache_tokens to
///     get the paper's "every predicate is a black box computed from
///     scratch" rudimentary setting;
///   * TF-IDF corpus models per attribute pair (document-frequency tables
///     are corpus-level state of the similarity function itself and are
///     always cached).
class PairContext {
 public:
  struct Options {
    /// Cache word/q-gram token lists per (table, row, attribute).
    bool cache_tokens = true;
  };

  /// The tables and catalog must outlive the context.
  PairContext(const Table& a, const Table& b, const FeatureCatalog& catalog)
      : PairContext(a, b, catalog, Options{}) {}
  PairContext(const Table& a, const Table& b, const FeatureCatalog& catalog,
              Options options);

  PairContext(const PairContext&) = delete;
  PairContext& operator=(const PairContext&) = delete;

  const Table& table_a() const { return a_; }
  const Table& table_b() const { return b_; }
  const FeatureCatalog& catalog() const { return catalog_; }

  /// Computes the similarity value of feature `f` on candidate pair
  /// `pair`. This is the expensive operation the whole paper is about
  /// minimizing; callers memoize the result.
  double ComputeFeature(FeatureId f, PairId pair);

  /// TF-IDF model over the union corpus of column `attr_a` of A and
  /// column `attr_b` of B (built lazily, then cached).
  const TfIdfModel& ModelFor(AttrIndex attr_a, AttrIndex attr_b);

  /// Total feature computations performed through this context (across all
  /// matchers sharing it). Cleared with ResetComputeCount().
  size_t compute_count() const {
    return compute_count_.load(std::memory_order_relaxed);
  }
  void ResetComputeCount() {
    compute_count_.store(0, std::memory_order_relaxed);
  }

  /// Fills the token caches and TF-IDF models every feature in `features`
  /// will touch. After prewarming, ComputeFeature for those features is
  /// read-only on shared state and therefore safe to call from multiple
  /// threads concurrently (used by ParallelMemoMatcher). No-op slots when
  /// token caching is disabled.
  ///
  /// With a pool, the per-record tokenization fans out across workers
  /// (distinct cache slots, no synchronization needed); TF-IDF model
  /// construction stays serial (corpus-level shared state). Re-warming an
  /// already-warm context is cheap either way — only null slots tokenize.
  void Prewarm(const std::vector<FeatureId>& features,
               ThreadPool* pool = nullptr);

  /// Approximate heap bytes held by the token caches.
  size_t TokenCacheBytes() const;

  /// Drops token caches (models are kept).
  void ClearTokenCaches();

 private:
  // Cached tokens for one table; slot index = attr * num_rows + row.
  struct TokenCache {
    std::vector<std::unique_ptr<TokenList>> words;
    std::vector<std::unique_ptr<TokenList>> qgrams;
  };

  const TokenList* CachedTokens(bool table_b, AttrIndex attr, uint32_t row,
                                bool qgrams);

  const Table& a_;
  const Table& b_;
  const FeatureCatalog& catalog_;
  Options options_;
  TokenCache cache_a_;
  TokenCache cache_b_;
  std::map<std::pair<AttrIndex, AttrIndex>, std::unique_ptr<TfIdfModel>>
      models_;
  std::atomic<size_t> compute_count_{0};
};

}  // namespace emdbg

#endif  // EMDBG_CORE_PAIR_CONTEXT_H_
