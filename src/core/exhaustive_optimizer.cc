#include "src/core/exhaustive_optimizer.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/core/rule_profile.h"
#include "src/util/string_util.h"

namespace emdbg {

namespace {

/// Precomputed evaluation state shared across permutations.
struct Evaluator {
  std::vector<RuleProfile> profiles;
  std::vector<std::vector<char>> truth;  // per rule, per sample pair
  size_t sample_size = 0;
  double lookup = 0.0;

  static Evaluator Build(const MatchingFunction& fn,
                         const CostModel& model) {
    Evaluator ev;
    ev.lookup = model.lookup_cost_us();
    ev.sample_size = model.sample_size();
    for (const Rule& r : fn.rules()) {
      ev.profiles.push_back(RuleProfile::Build(r, model));
      ev.truth.push_back(model.RuleTruthOnSample(r));
    }
    return ev;
  }

  double Cost(const std::vector<size_t>& order) const {
    std::vector<char> reach(sample_size, 1);
    size_t reach_count = sample_size;
    CacheProbabilities cache;
    double cost = 0.0;
    for (const size_t idx : order) {
      const double reach_prob =
          sample_size == 0
              ? 1.0
              : static_cast<double>(reach_count) /
                    static_cast<double>(sample_size);
      cost += reach_prob * profiles[idx].CostWithCache(cache, lookup);
      profiles[idx].UpdateCache(cache);
      const std::vector<char>& t = truth[idx];
      for (size_t s = 0; s < sample_size; ++s) {
        if (reach[s] && t[s]) {
          reach[s] = 0;
          --reach_count;
        }
      }
    }
    return cost;
  }
};

}  // namespace

double OrderCostWithMemo(const MatchingFunction& fn, const CostModel& model,
                         const std::vector<size_t>& order) {
  return Evaluator::Build(fn, model).Cost(order);
}

Result<std::vector<size_t>> ExhaustiveOptimalOrder(
    const MatchingFunction& fn, const CostModel& model, size_t max_rules) {
  const size_t n = fn.num_rules();
  if (n > max_rules) {
    return Status::InvalidArgument(
        StrFormat("%zu rules exceed the exhaustive-search limit of %zu",
                  n, max_rules));
  }
  const Evaluator ev = Evaluator::Build(fn, model);
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  std::vector<size_t> best = perm;
  double best_cost = std::numeric_limits<double>::infinity();
  do {
    const double cost = ev.Cost(perm);
    if (cost < best_cost) {
      best_cost = cost;
      best = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

}  // namespace emdbg
