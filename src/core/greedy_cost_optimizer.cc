#include "src/core/greedy_cost_optimizer.h"

#include <limits>
#include <vector>

#include "src/core/ordering.h"
#include "src/core/rule_profile.h"

namespace emdbg {

std::vector<size_t> GreedyCostOrder(const MatchingFunction& fn,
                                    const CostModel& model) {
  const size_t n = fn.num_rules();
  std::vector<RuleProfile> profiles;
  profiles.reserve(n);
  for (const Rule& r : fn.rules()) {
    profiles.push_back(RuleProfile::Build(r, model));
  }

  std::vector<size_t> order;
  order.reserve(n);
  std::vector<char> emitted(n, 0);
  CacheProbabilities cache;
  const double lookup = model.lookup_cost_us();

  for (size_t step = 0; step < n; ++step) {
    size_t best = n;
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      if (emitted[i]) continue;
      const double cost = profiles[i].CostWithCache(cache, lookup);
      if (cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    emitted[best] = 1;
    order.push_back(best);
    profiles[best].UpdateCache(cache);
  }
  return order;
}

void ApplyGreedyCostOrder(MatchingFunction& fn, const CostModel& model) {
  OrderAllRulePredicates(fn, model);
  fn.PermuteRules(GreedyCostOrder(fn, model));
}

}  // namespace emdbg
