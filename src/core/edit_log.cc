#include "src/core/edit_log.h"

#include "src/util/string_util.h"

namespace emdbg {

RuleId EditLog::ResolveRule(RuleId rid) const {
  // Chase the remap chain (bounded by the number of undone removals).
  auto it = rule_remap_.find(rid);
  while (it != rule_remap_.end()) {
    rid = it->second;
    it = rule_remap_.find(rid);
  }
  return rid;
}

PredicateId EditLog::ResolvePredicate(PredicateId pid) const {
  auto it = predicate_remap_.find(pid);
  while (it != predicate_remap_.end()) {
    pid = it->second;
    it = predicate_remap_.find(pid);
  }
  return pid;
}

Result<MatchStats> EditLog::AddRule(IncrementalMatcher& inc,
                                    const Rule& rule) {
  Result<MatchStats> stats = inc.AddRule(rule);
  if (!stats.ok()) return stats;
  Entry e;
  e.kind = Kind::kAddRule;
  e.rule_id = inc.last_added_rule_id();
  entries_.push_back(std::move(e));
  return stats;
}

Result<MatchStats> EditLog::RemoveRule(IncrementalMatcher& inc,
                                       RuleId rid) {
  rid = ResolveRule(rid);
  const Rule* rule = inc.function().RuleById(rid);
  if (rule == nullptr) {
    return Status::NotFound(StrFormat("rule %u not found", rid));
  }
  Entry e;
  e.kind = Kind::kRemoveRule;
  e.rule_id = rid;
  e.rule_snapshot = *rule;
  Result<MatchStats> stats = inc.RemoveRule(rid);
  if (!stats.ok()) return stats;
  entries_.push_back(std::move(e));
  return stats;
}

Result<MatchStats> EditLog::AddPredicate(IncrementalMatcher& inc,
                                         RuleId rid, Predicate p) {
  rid = ResolveRule(rid);
  Result<MatchStats> stats = inc.AddPredicate(rid, p);
  if (!stats.ok()) return stats;
  Entry e;
  e.kind = Kind::kAddPredicate;
  e.rule_id = rid;
  e.predicate_id = inc.last_added_predicate_id();
  entries_.push_back(std::move(e));
  return stats;
}

Result<MatchStats> EditLog::RemovePredicate(IncrementalMatcher& inc,
                                            RuleId rid, PredicateId pid) {
  rid = ResolveRule(rid);
  pid = ResolvePredicate(pid);
  const Rule* rule = inc.function().RuleById(rid);
  if (rule == nullptr) {
    return Status::NotFound(StrFormat("rule %u not found", rid));
  }
  const size_t pos = rule->FindPredicate(pid);
  if (pos == rule->size()) {
    return Status::NotFound(
        StrFormat("predicate %u not found in rule %u", pid, rid));
  }
  Entry e;
  e.kind = Kind::kRemovePredicate;
  e.rule_id = rid;
  e.predicate_id = pid;
  e.predicate_snapshot = rule->predicate(pos);
  Result<MatchStats> stats = inc.RemovePredicate(rid, pid);
  if (!stats.ok()) return stats;
  entries_.push_back(std::move(e));
  return stats;
}

Result<MatchStats> EditLog::SetThreshold(IncrementalMatcher& inc,
                                         RuleId rid, PredicateId pid,
                                         double threshold) {
  rid = ResolveRule(rid);
  pid = ResolvePredicate(pid);
  const Rule* rule = inc.function().RuleById(rid);
  if (rule == nullptr) {
    return Status::NotFound(StrFormat("rule %u not found", rid));
  }
  const size_t pos = rule->FindPredicate(pid);
  if (pos == rule->size()) {
    return Status::NotFound(
        StrFormat("predicate %u not found in rule %u", pid, rid));
  }
  Entry e;
  e.kind = Kind::kSetThreshold;
  e.rule_id = rid;
  e.predicate_id = pid;
  e.old_threshold = rule->predicate(pos).threshold;
  e.new_threshold = threshold;
  Result<MatchStats> stats = inc.SetThreshold(rid, pid, threshold);
  if (!stats.ok()) return stats;
  entries_.push_back(std::move(e));
  return stats;
}

Result<MatchStats> EditLog::Undo(IncrementalMatcher& inc) {
  if (entries_.empty()) {
    return Status::FailedPrecondition("edit history is empty");
  }
  const Entry e = entries_.back();
  entries_.pop_back();
  switch (e.kind) {
    case Kind::kAddRule:
      return inc.RemoveRule(ResolveRule(e.rule_id));
    case Kind::kRemoveRule: {
      // Re-adding assigns fresh ids; remap the old rule id and the old
      // predicate ids (positionally — AddRule preserves predicate order).
      Result<MatchStats> stats = inc.AddRule(e.rule_snapshot);
      if (!stats.ok()) return stats;
      const RuleId new_rid = inc.last_added_rule_id();
      rule_remap_[e.rule_id] = new_rid;
      const Rule* restored = inc.function().RuleById(new_rid);
      for (size_t k = 0; k < e.rule_snapshot.size(); ++k) {
        predicate_remap_[e.rule_snapshot.predicate(k).id] =
            restored->predicate(k).id;
      }
      return stats;
    }
    case Kind::kAddPredicate:
      return inc.RemovePredicate(ResolveRule(e.rule_id),
                                 ResolvePredicate(e.predicate_id));
    case Kind::kRemovePredicate: {
      Result<MatchStats> stats =
          inc.AddPredicate(ResolveRule(e.rule_id), e.predicate_snapshot);
      if (!stats.ok()) return stats;
      predicate_remap_[e.predicate_id] = inc.last_added_predicate_id();
      return stats;
    }
    case Kind::kSetThreshold:
      return inc.SetThreshold(ResolveRule(e.rule_id),
                              ResolvePredicate(e.predicate_id),
                              e.old_threshold);
  }
  return Status::Internal("unreachable");
}

std::string EditLog::Describe(const FeatureCatalog& catalog) const {
  std::string out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out += StrFormat("%3zu. ", i + 1);
    switch (e.kind) {
      case Kind::kAddRule:
        out += StrFormat("add rule #%u", e.rule_id);
        break;
      case Kind::kRemoveRule:
        out += StrFormat("remove rule %s", e.rule_snapshot.name().c_str());
        break;
      case Kind::kAddPredicate:
        out += StrFormat("add predicate #%u to rule #%u", e.predicate_id,
                         e.rule_id);
        break;
      case Kind::kRemovePredicate:
        out += StrFormat(
            "remove predicate %s from rule #%u",
            PredicateToString(e.predicate_snapshot, catalog).c_str(),
            e.rule_id);
        break;
      case Kind::kSetThreshold:
        out += StrFormat("set threshold of predicate #%u: %.4g -> %.4g",
                         e.predicate_id, e.old_threshold, e.new_threshold);
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace emdbg
