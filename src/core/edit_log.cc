#include "src/core/edit_log.h"

#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "src/core/rule_parser.h"
#include "src/util/crc32c.h"
#include "src/util/csv.h"
#include "src/util/fault_injection.h"
#include "src/util/string_util.h"

namespace emdbg {

namespace {

constexpr std::string_view kJournalTag = "EMDBGJ1 ";

/// Position of rule `rid` in the function's current order; num_rules()
/// if absent.
size_t RulePosition(const MatchingFunction& fn, RuleId rid) {
  const std::vector<Rule>& rules = fn.rules();
  for (size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].id() == rid) return i;
  }
  return rules.size();
}

/// Journal payload re-creating `rule` at the end of the function. Empty
/// rules cannot be expressed in the DSL and get their own verb.
std::string AddRulePayload(const Rule& rule, const FeatureCatalog& catalog) {
  if (rule.empty()) {
    std::string payload = "add_rule_empty";
    if (!rule.name().empty()) {
      payload += " ";
      payload += rule.name();
    }
    return payload;
  }
  return "add_rule " + RuleToDsl(rule, catalog);
}

}  // namespace

Result<std::unique_ptr<EditJournal>> EditJournal::Create(
    const std::string& path, uint64_t epoch) {
  // Atomic header write: the journal either does not exist yet or has a
  // complete, valid header — a crash here never leaves a torn header.
  EMDBG_RETURN_IF_ERROR(WriteFileAtomic(
      path, StrFormat("EMDBGJ1 %llu\n",
                      static_cast<unsigned long long>(epoch))));
  return OpenForAppend(path);
}

Result<std::unique_ptr<EditJournal>> EditJournal::OpenForAppend(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IoError(
        StrFormat("cannot open journal %s for append", path.c_str()));
  }
  return std::unique_ptr<EditJournal>(new EditJournal(f));
}

EditJournal::~EditJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

Status EditJournal::Append(std::string_view payload) {
  if (payload.find('\n') != std::string_view::npos) {
    return Status::InvalidArgument(
        "journal payload must be a single line");
  }
  std::string line = StrFormat("%08x ", Crc32c(payload));
  line.append(payload);
  line.push_back('\n');
  // Injected before anything reaches the file: the record is guaranteed
  // absent on disk, the clean "write failed, nothing committed" case.
  if (FaultFire("journal.write")) {
    return Status::IoError("journal append failed (injected)");
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    return Status::IoError("journal append failed");
  }
  // The edit must be on disk before we report it committed. An injected
  // failure here models the nasty half: the record is in the file but the
  // edit was never acknowledged — recovery may legitimately replay it.
  if (FaultFire("journal.fsync") || ::fsync(::fileno(file_)) != 0) {
    return Status::IoError(
        StrFormat("journal fsync failed: %s", std::strerror(errno)));
  }
  return Status::Ok();
}

Result<EditJournal::Contents> EditJournal::Read(const std::string& path) {
  Result<std::string> data = ReadFileToString(path);
  if (!data.ok()) return data.status();

  Contents contents;
  // Split into lines; a file not ending in '\n' has a torn final line
  // unless its checksum happens to verify (the newline was the only
  // missing byte).
  std::vector<std::string_view> lines;
  std::string_view rest(*data);
  while (!rest.empty()) {
    const size_t nl = rest.find('\n');
    if (nl == std::string_view::npos) {
      lines.push_back(rest);
      break;
    }
    lines.push_back(rest.substr(0, nl));
    rest.remove_prefix(nl + 1);
  }
  if (lines.empty() || lines[0].size() <= kJournalTag.size() ||
      lines[0].substr(0, kJournalTag.size()) != kJournalTag) {
    return Status::ParseError(
        StrFormat("%s is not an emdbg journal", path.c_str()));
  }
  int64_t epoch = 0;
  if (!ParseInt64(lines[0].substr(kJournalTag.size()), &epoch) ||
      epoch < 0) {
    return Status::ParseError(
        StrFormat("journal %s has a bad epoch", path.c_str()));
  }
  contents.epoch = static_cast<uint64_t>(epoch);

  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    bool valid = line.size() >= 10 && line[8] == ' ';
    uint32_t stored = 0;
    if (valid) {
      for (size_t k = 0; k < 8; ++k) {
        if (!std::isxdigit(static_cast<unsigned char>(line[k]))) {
          valid = false;
          break;
        }
      }
      if (valid) {
        stored = static_cast<uint32_t>(
            std::strtoul(std::string(line.substr(0, 8)).c_str(), nullptr,
                         16));
      }
    }
    const std::string_view payload = valid ? line.substr(9) : line;
    if (!valid || Crc32c(payload) != stored) {
      if (i + 1 == lines.size()) {
        // Crash mid-append tore the final record; everything before it
        // committed.
        contents.torn_tail = true;
        break;
      }
      return Status::ParseError(StrFormat(
          "journal %s corrupt at line %zu (checksum mismatch)",
          path.c_str(), i + 1));
    }
    contents.records.emplace_back(payload);
  }
  return contents;
}

RuleId EditLog::ResolveRule(RuleId rid) const {
  // Chase the remap chain (bounded by the number of undone removals).
  auto it = rule_remap_.find(rid);
  while (it != rule_remap_.end()) {
    rid = it->second;
    it = rule_remap_.find(rid);
  }
  return rid;
}

PredicateId EditLog::ResolvePredicate(PredicateId pid) const {
  auto it = predicate_remap_.find(pid);
  while (it != predicate_remap_.end()) {
    pid = it->second;
    it = predicate_remap_.find(pid);
  }
  return pid;
}

Status EditLog::Journal(std::string_view payload) {
  if (!journal_sink_) return Status::Ok();
  return journal_sink_(payload);
}

Result<MatchStats> EditLog::AddRule(IncrementalMatcher& inc,
                                    const Rule& rule) {
  Result<MatchStats> stats = inc.AddRule(rule);
  if (!stats.ok()) return stats;
  Entry e;
  e.kind = Kind::kAddRule;
  e.rule_id = inc.last_added_rule_id();
  entries_.push_back(std::move(e));
  if (journal_sink_) {
    EMDBG_RETURN_IF_ERROR(Journal(AddRulePayload(rule, *journal_catalog_)));
  }
  return stats;
}

Result<MatchStats> EditLog::RemoveRule(IncrementalMatcher& inc,
                                       RuleId rid) {
  rid = ResolveRule(rid);
  const Rule* rule = inc.function().RuleById(rid);
  if (rule == nullptr) {
    return Status::NotFound(StrFormat("rule %u not found", rid));
  }
  const size_t pos = RulePosition(inc.function(), rid);
  Entry e;
  e.kind = Kind::kRemoveRule;
  e.rule_id = rid;
  e.rule_snapshot = *rule;
  Result<MatchStats> stats = inc.RemoveRule(rid);
  if (!stats.ok()) return stats;
  entries_.push_back(std::move(e));
  EMDBG_RETURN_IF_ERROR(Journal(StrFormat("remove_rule %zu", pos)));
  return stats;
}

Result<MatchStats> EditLog::AddPredicate(IncrementalMatcher& inc,
                                         RuleId rid, Predicate p) {
  rid = ResolveRule(rid);
  Result<MatchStats> stats = inc.AddPredicate(rid, p);
  if (!stats.ok()) return stats;
  Entry e;
  e.kind = Kind::kAddPredicate;
  e.rule_id = rid;
  e.predicate_id = inc.last_added_predicate_id();
  entries_.push_back(std::move(e));
  if (journal_sink_) {
    EMDBG_RETURN_IF_ERROR(Journal(StrFormat(
        "add_pred %zu %s", RulePosition(inc.function(), rid),
        PredicateToDsl(p, *journal_catalog_).c_str())));
  }
  return stats;
}

Result<MatchStats> EditLog::RemovePredicate(IncrementalMatcher& inc,
                                            RuleId rid, PredicateId pid) {
  rid = ResolveRule(rid);
  pid = ResolvePredicate(pid);
  const Rule* rule = inc.function().RuleById(rid);
  if (rule == nullptr) {
    return Status::NotFound(StrFormat("rule %u not found", rid));
  }
  const size_t pos = rule->FindPredicate(pid);
  if (pos == rule->size()) {
    return Status::NotFound(
        StrFormat("predicate %u not found in rule %u", pid, rid));
  }
  const size_t rule_pos = RulePosition(inc.function(), rid);
  Entry e;
  e.kind = Kind::kRemovePredicate;
  e.rule_id = rid;
  e.predicate_id = pid;
  e.predicate_snapshot = rule->predicate(pos);
  Result<MatchStats> stats = inc.RemovePredicate(rid, pid);
  if (!stats.ok()) return stats;
  entries_.push_back(std::move(e));
  EMDBG_RETURN_IF_ERROR(
      Journal(StrFormat("remove_pred %zu %zu", rule_pos, pos)));
  return stats;
}

Result<MatchStats> EditLog::SetThreshold(IncrementalMatcher& inc,
                                         RuleId rid, PredicateId pid,
                                         double threshold) {
  rid = ResolveRule(rid);
  pid = ResolvePredicate(pid);
  const Rule* rule = inc.function().RuleById(rid);
  if (rule == nullptr) {
    return Status::NotFound(StrFormat("rule %u not found", rid));
  }
  const size_t pos = rule->FindPredicate(pid);
  if (pos == rule->size()) {
    return Status::NotFound(
        StrFormat("predicate %u not found in rule %u", pid, rid));
  }
  const size_t rule_pos = RulePosition(inc.function(), rid);
  Entry e;
  e.kind = Kind::kSetThreshold;
  e.rule_id = rid;
  e.predicate_id = pid;
  e.old_threshold = rule->predicate(pos).threshold;
  e.new_threshold = threshold;
  Result<MatchStats> stats = inc.SetThreshold(rid, pid, threshold);
  if (!stats.ok()) return stats;
  entries_.push_back(std::move(e));
  EMDBG_RETURN_IF_ERROR(Journal(
      StrFormat("set_threshold %zu %zu %.17g", rule_pos, pos, threshold)));
  return stats;
}

Result<MatchStats> EditLog::Undo(IncrementalMatcher& inc) {
  if (entries_.empty()) {
    return Status::FailedPrecondition("edit history is empty");
  }
  const Entry e = entries_.back();
  entries_.pop_back();
  // Each undo is journaled as the concrete inverse edit it performs, so
  // journal replay is a pure forward pass and never needs undo history
  // from before the journal's checkpoint.
  switch (e.kind) {
    case Kind::kAddRule: {
      const RuleId rid = ResolveRule(e.rule_id);
      const size_t pos = RulePosition(inc.function(), rid);
      Result<MatchStats> stats = inc.RemoveRule(rid);
      if (!stats.ok()) return stats;
      EMDBG_RETURN_IF_ERROR(Journal(StrFormat("remove_rule %zu", pos)));
      return stats;
    }
    case Kind::kRemoveRule: {
      // Re-adding assigns fresh ids; remap the old rule id and the old
      // predicate ids (positionally — AddRule preserves predicate order).
      Result<MatchStats> stats = inc.AddRule(e.rule_snapshot);
      if (!stats.ok()) return stats;
      const RuleId new_rid = inc.last_added_rule_id();
      rule_remap_[e.rule_id] = new_rid;
      const Rule* restored = inc.function().RuleById(new_rid);
      for (size_t k = 0; k < e.rule_snapshot.size(); ++k) {
        predicate_remap_[e.rule_snapshot.predicate(k).id] =
            restored->predicate(k).id;
      }
      if (journal_sink_) {
        EMDBG_RETURN_IF_ERROR(
            Journal(AddRulePayload(e.rule_snapshot, *journal_catalog_)));
      }
      return stats;
    }
    case Kind::kAddPredicate: {
      const RuleId rid = ResolveRule(e.rule_id);
      const PredicateId pid = ResolvePredicate(e.predicate_id);
      const Rule* rule = inc.function().RuleById(rid);
      const size_t rule_pos = RulePosition(inc.function(), rid);
      const size_t pred_pos =
          rule == nullptr ? 0 : rule->FindPredicate(pid);
      Result<MatchStats> stats = inc.RemovePredicate(rid, pid);
      if (!stats.ok()) return stats;
      EMDBG_RETURN_IF_ERROR(Journal(
          StrFormat("remove_pred %zu %zu", rule_pos, pred_pos)));
      return stats;
    }
    case Kind::kRemovePredicate: {
      const RuleId rid = ResolveRule(e.rule_id);
      Result<MatchStats> stats =
          inc.AddPredicate(rid, e.predicate_snapshot);
      if (!stats.ok()) return stats;
      predicate_remap_[e.predicate_id] = inc.last_added_predicate_id();
      if (journal_sink_) {
        EMDBG_RETURN_IF_ERROR(Journal(StrFormat(
            "add_pred %zu %s", RulePosition(inc.function(), rid),
            PredicateToDsl(e.predicate_snapshot, *journal_catalog_)
                .c_str())));
      }
      return stats;
    }
    case Kind::kSetThreshold: {
      const RuleId rid = ResolveRule(e.rule_id);
      const PredicateId pid = ResolvePredicate(e.predicate_id);
      const Rule* rule = inc.function().RuleById(rid);
      const size_t rule_pos = RulePosition(inc.function(), rid);
      const size_t pred_pos =
          rule == nullptr ? 0 : rule->FindPredicate(pid);
      Result<MatchStats> stats =
          inc.SetThreshold(rid, pid, e.old_threshold);
      if (!stats.ok()) return stats;
      EMDBG_RETURN_IF_ERROR(Journal(StrFormat(
          "set_threshold %zu %zu %.17g", rule_pos, pred_pos,
          e.old_threshold)));
      return stats;
    }
  }
  return Status::Internal("unreachable");
}

std::string EditLog::Describe(const FeatureCatalog& catalog) const {
  std::string out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out += StrFormat("%3zu. ", i + 1);
    switch (e.kind) {
      case Kind::kAddRule:
        out += StrFormat("add rule #%u", e.rule_id);
        break;
      case Kind::kRemoveRule:
        out += StrFormat("remove rule %s", e.rule_snapshot.name().c_str());
        break;
      case Kind::kAddPredicate:
        out += StrFormat("add predicate #%u to rule #%u", e.predicate_id,
                         e.rule_id);
        break;
      case Kind::kRemovePredicate:
        out += StrFormat(
            "remove predicate %s from rule #%u",
            PredicateToString(e.predicate_snapshot, catalog).c_str(),
            e.rule_id);
        break;
      case Kind::kSetThreshold:
        out += StrFormat("set threshold of predicate #%u: %.4g -> %.4g",
                         e.predicate_id, e.old_threshold, e.new_threshold);
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace emdbg
