#ifndef EMDBG_CORE_FEATURE_H_
#define EMDBG_CORE_FEATURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/record.h"
#include "src/text/similarity_registry.h"
#include "src/util/status.h"

namespace emdbg {

/// Identifier of a feature within a FeatureCatalog (dense, 0-based; used to
/// address memo columns).
using FeatureId = uint32_t;

inline constexpr FeatureId kInvalidFeature = 0xffffffffu;

/// A feature is a similarity function applied to an attribute of table A
/// and an attribute of table B — e.g. Jaccard(a.title, b.title) or
/// TF-IDF(a.modelno, b.title) (cross-attribute features appear in the
/// paper's Table 3).
struct Feature {
  SimFunction fn = SimFunction::kExactMatch;
  AttrIndex attr_a = 0;
  AttrIndex attr_b = 0;

  friend bool operator==(const Feature& x, const Feature& y) {
    return x.fn == y.fn && x.attr_a == y.attr_a && x.attr_b == y.attr_b;
  }
};

/// Interning registry of features for one matching task. The catalog is
/// bound to the two tables' schemas; features are registered once and then
/// referred to by dense FeatureId everywhere (rules, memo, cost model).
///
/// The paper distinguishes "total features" (everything the analyst might
/// use; Table 2's last column) from "used features" (those appearing in the
/// current rule set). The catalog is the former; a MatchingFunction's
/// feature set is the latter.
class FeatureCatalog {
 public:
  FeatureCatalog() = default;
  FeatureCatalog(Schema schema_a, Schema schema_b)
      : schema_a_(std::move(schema_a)), schema_b_(std::move(schema_b)) {}

  const Schema& schema_a() const { return schema_a_; }
  const Schema& schema_b() const { return schema_b_; }

  size_t size() const { return features_.size(); }
  const Feature& feature(FeatureId id) const { return features_[id]; }

  /// Interns a feature; returns the existing id if already present.
  FeatureId Intern(const Feature& f);

  /// Interns by names; resolves attributes against both schemas.
  Result<FeatureId> InternByName(SimFunction fn, std::string_view attr_a,
                                 std::string_view attr_b);

  /// Finds an already-interned feature; kInvalidFeature if absent.
  FeatureId Find(const Feature& f) const;

  /// Human-readable form, e.g. "jaccard(title, title)".
  std::string Name(FeatureId id) const;

  /// Registers every similarity function over every same-name attribute
  /// pair (skipping TF-IDF-family on purely numeric-kind attrs is the
  /// caller's business; this is the "total features" superset the analyst
  /// would pick from). Returns the ids added.
  std::vector<FeatureId> InternAllSameAttribute();

 private:
  Schema schema_a_;
  Schema schema_b_;
  std::vector<Feature> features_;
};

}  // namespace emdbg

#endif  // EMDBG_CORE_FEATURE_H_
