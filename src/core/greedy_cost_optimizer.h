#ifndef EMDBG_CORE_GREEDY_COST_OPTIMIZER_H_
#define EMDBG_CORE_GREEDY_COST_OPTIMIZER_H_

#include <vector>

#include "src/core/cost_model.h"
#include "src/core/matching_function.h"

namespace emdbg {

/// Algorithm 5: greedy rule ordering by expected memo-aware cost.
///
/// Predicates inside each rule are first ordered by Lemma 3. Then rules
/// are emitted one at a time: the rule with the minimum expected cost
/// under the current cache probabilities goes next, after which the cache
/// probabilities are advanced as if that rule had executed (Sec. 4.4.4
/// recursion) and the remaining rules are re-scored.
///
/// Returns the permutation (indices into fn.rules()) without modifying fn.
std::vector<size_t> GreedyCostOrder(const MatchingFunction& fn,
                                    const CostModel& model);

/// Orders predicates (Lemma 3) and applies GreedyCostOrder in place.
void ApplyGreedyCostOrder(MatchingFunction& fn, const CostModel& model);

}  // namespace emdbg

#endif  // EMDBG_CORE_GREEDY_COST_OPTIMIZER_H_
