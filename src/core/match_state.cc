#include "src/core/match_state.h"

#include <algorithm>
#include <utility>

#include "src/util/string_util.h"

namespace emdbg {

MatchState::~MatchState() { ReleaseBilling(); }

MatchState::MatchState(MatchState&& other) noexcept
    : num_pairs_(std::exchange(other.num_pairs_, 0)),
      memo_(std::move(other.memo_)),
      matches_(std::move(other.matches_)),
      rule_true_(std::move(other.rule_true_)),
      pred_false_(std::move(other.pred_false_)),
      budget_(std::exchange(other.budget_, nullptr)),
      billed_bytes_(std::exchange(other.billed_bytes_, 0)) {}

MatchState& MatchState::operator=(MatchState&& other) noexcept {
  if (this != &other) {
    ReleaseBilling();
    num_pairs_ = std::exchange(other.num_pairs_, 0);
    memo_ = std::move(other.memo_);
    matches_ = std::move(other.matches_);
    rule_true_ = std::move(other.rule_true_);
    pred_false_ = std::move(other.pred_false_);
    budget_ = std::exchange(other.budget_, nullptr);
    billed_bytes_ = std::exchange(other.billed_bytes_, 0);
  }
  return *this;
}

void MatchState::ReleaseBilling() {
  if (budget_ != nullptr && billed_bytes_ > 0) {
    budget_->Release(billed_bytes_);
  }
  billed_bytes_ = 0;
}

void MatchState::AllocateState(size_t num_pairs, size_t num_features) {
  num_pairs_ = num_pairs;
  memo_ = std::make_unique<DenseMemo>(num_pairs, num_features);
  matches_ = Bitmap(num_pairs);
  rule_true_.clear();
  pred_false_.clear();
}

void MatchState::Initialize(size_t num_pairs, size_t num_features) {
  ReleaseBilling();
  AllocateState(num_pairs, num_features);
}

Status MatchState::EnsureCapacity(size_t num_pairs, size_t num_features) {
  if (!initialized() || num_pairs_ != num_pairs) {
    // Reshape: the old matrix is replaced wholesale. Release its billing
    // first, then reserve the new shape — the brief window where old and
    // new matrices coexist inside AllocateState is a transient spike the
    // accountant deliberately ignores.
    const size_t target = num_pairs * num_features * sizeof(float);
    ReleaseBilling();
    if (budget_ != nullptr) {
      EMDBG_RETURN_IF_ERROR(budget_->Reserve(target, "state.memo"));
      billed_bytes_ = target;
    }
    AllocateState(num_pairs, num_features);
    return Status::Ok();
  }
  if (num_features <= memo_->num_features()) return Status::Ok();
  const size_t target = num_pairs_ * num_features * sizeof(float);
  if (budget_ != nullptr && target > billed_bytes_) {
    EMDBG_RETURN_IF_ERROR(
        budget_->Reserve(target - billed_bytes_, "state.memo"));
    billed_bytes_ = target;
  }
  memo_->GrowFeatures(num_features);
  return Status::Ok();
}

Status MatchState::AttachBudget(MemoryBudget* budget) {
  if (budget == budget_) return Status::Ok();
  ReleaseBilling();
  budget_ = nullptr;
  if (budget == nullptr) return Status::Ok();
  const size_t bytes = memo_ == nullptr ? 0 : memo_->MemoryBytes();
  EMDBG_RETURN_IF_ERROR(budget->Reserve(bytes, "state.attach"));
  budget_ = budget;
  billed_bytes_ = bytes;
  return Status::Ok();
}

Bitmap& MatchState::RuleTrue(RuleId rid) {
  auto it = rule_true_.find(rid);
  if (it == rule_true_.end()) {
    it = rule_true_.emplace(rid, Bitmap(num_pairs_)).first;
  }
  return it->second;
}

const Bitmap* MatchState::FindRuleTrue(RuleId rid) const {
  const auto it = rule_true_.find(rid);
  return it == rule_true_.end() ? nullptr : &it->second;
}

Bitmap& MatchState::PredFalse(PredicateId pid) {
  auto it = pred_false_.find(pid);
  if (it == pred_false_.end()) {
    it = pred_false_.emplace(pid, Bitmap(num_pairs_)).first;
  }
  return it->second;
}

const Bitmap* MatchState::FindPredFalse(PredicateId pid) const {
  const auto it = pred_false_.find(pid);
  return it == pred_false_.end() ? nullptr : &it->second;
}

std::vector<RuleId> MatchState::RuleIdsWithState() const {
  std::vector<RuleId> out;
  out.reserve(rule_true_.size());
  for (const auto& [rid, _] : rule_true_) out.push_back(rid);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PredicateId> MatchState::PredicateIdsWithState() const {
  std::vector<PredicateId> out;
  out.reserve(pred_false_.size());
  for (const auto& [pid, _] : pred_false_) out.push_back(pid);
  std::sort(out.begin(), out.end());
  return out;
}

size_t MatchState::MemoryBytes() const {
  size_t bytes = memo_ == nullptr ? 0 : memo_->MemoryBytes();
  bytes += matches_.MemoryBytes();
  for (const auto& [_, bm] : rule_true_) bytes += bm.MemoryBytes();
  for (const auto& [_, bm] : pred_false_) bytes += bm.MemoryBytes();
  return bytes;
}

std::string MatchState::MemoryReport() const {
  const size_t memo_bytes = memo_ == nullptr ? 0 : memo_->MemoryBytes();
  size_t rule_bytes = 0;
  for (const auto& [_, bm] : rule_true_) rule_bytes += bm.MemoryBytes();
  size_t pred_bytes = 0;
  for (const auto& [_, bm] : pred_false_) pred_bytes += bm.MemoryBytes();
  return StrFormat(
      "memo: %.2f MB (%zu/%zu filled) | rule bitmaps: %zu x -> %.2f MB | "
      "predicate bitmaps: %zu x -> %.2f MB | total %.2f MB",
      static_cast<double>(memo_bytes) / 1048576.0,
      memo_ == nullptr ? 0 : memo_->FilledCount(),
      memo_ == nullptr ? 0 : memo_->num_pairs() * memo_->num_features(),
      rule_true_.size(), static_cast<double>(rule_bytes) / 1048576.0,
      pred_false_.size(), static_cast<double>(pred_bytes) / 1048576.0,
      static_cast<double>(MemoryBytes()) / 1048576.0);
}

}  // namespace emdbg
