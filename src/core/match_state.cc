#include "src/core/match_state.h"

#include <algorithm>

#include "src/util/string_util.h"

namespace emdbg {

void MatchState::Initialize(size_t num_pairs, size_t num_features) {
  num_pairs_ = num_pairs;
  memo_ = std::make_unique<DenseMemo>(num_pairs, num_features);
  matches_ = Bitmap(num_pairs);
  rule_true_.clear();
  pred_false_.clear();
}

Bitmap& MatchState::RuleTrue(RuleId rid) {
  auto it = rule_true_.find(rid);
  if (it == rule_true_.end()) {
    it = rule_true_.emplace(rid, Bitmap(num_pairs_)).first;
  }
  return it->second;
}

const Bitmap* MatchState::FindRuleTrue(RuleId rid) const {
  const auto it = rule_true_.find(rid);
  return it == rule_true_.end() ? nullptr : &it->second;
}

Bitmap& MatchState::PredFalse(PredicateId pid) {
  auto it = pred_false_.find(pid);
  if (it == pred_false_.end()) {
    it = pred_false_.emplace(pid, Bitmap(num_pairs_)).first;
  }
  return it->second;
}

const Bitmap* MatchState::FindPredFalse(PredicateId pid) const {
  const auto it = pred_false_.find(pid);
  return it == pred_false_.end() ? nullptr : &it->second;
}

std::vector<RuleId> MatchState::RuleIdsWithState() const {
  std::vector<RuleId> out;
  out.reserve(rule_true_.size());
  for (const auto& [rid, _] : rule_true_) out.push_back(rid);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PredicateId> MatchState::PredicateIdsWithState() const {
  std::vector<PredicateId> out;
  out.reserve(pred_false_.size());
  for (const auto& [pid, _] : pred_false_) out.push_back(pid);
  std::sort(out.begin(), out.end());
  return out;
}

size_t MatchState::MemoryBytes() const {
  size_t bytes = memo_ == nullptr ? 0 : memo_->MemoryBytes();
  bytes += matches_.MemoryBytes();
  for (const auto& [_, bm] : rule_true_) bytes += bm.MemoryBytes();
  for (const auto& [_, bm] : pred_false_) bytes += bm.MemoryBytes();
  return bytes;
}

std::string MatchState::MemoryReport() const {
  const size_t memo_bytes = memo_ == nullptr ? 0 : memo_->MemoryBytes();
  size_t rule_bytes = 0;
  for (const auto& [_, bm] : rule_true_) rule_bytes += bm.MemoryBytes();
  size_t pred_bytes = 0;
  for (const auto& [_, bm] : pred_false_) pred_bytes += bm.MemoryBytes();
  return StrFormat(
      "memo: %.2f MB (%zu/%zu filled) | rule bitmaps: %zu x -> %.2f MB | "
      "predicate bitmaps: %zu x -> %.2f MB | total %.2f MB",
      static_cast<double>(memo_bytes) / 1048576.0,
      memo_ == nullptr ? 0 : memo_->FilledCount(),
      memo_ == nullptr ? 0 : memo_->num_pairs() * memo_->num_features(),
      rule_true_.size(), static_cast<double>(rule_bytes) / 1048576.0,
      pred_false_.size(), static_cast<double>(pred_bytes) / 1048576.0,
      static_cast<double>(MemoryBytes()) / 1048576.0);
}

}  // namespace emdbg
