#include "src/core/shard_driver.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "src/core/block_matcher.h"
#include "src/core/parallel_matcher.h"
#include "src/core/state_io.h"
#include "src/util/fault_injection.h"
#include "src/util/stopwatch.h"

namespace emdbg {

namespace {

constexpr size_t kDefaultShardPairs = size_t{1} << 18;
constexpr size_t kMaxShardPairs = size_t{1} << 22;

size_t RoundUp64(size_t n) { return (n + 63) & ~size_t{63}; }

}  // namespace

/// One in-flight spill: the shard's state (owning its budget billing)
/// plus the IO thread writing it. Joined before the next spill starts,
/// at run end, and on destruction — the driver never leaks a thread.
struct ShardedMatchDriver::SpillJob {
  MatchState state;
  std::thread thread;
  Status status;
  uint64_t bytes = 0;

  ~SpillJob() {
    if (thread.joinable()) thread.join();
  }
};

ShardedMatchDriver::ShardedMatchDriver(Options options)
    : options_(std::move(options)) {}

ShardedMatchDriver::~ShardedMatchDriver() = default;

size_t ShardedMatchDriver::AutoShardPairs(const MemoryBudget* budget,
                                          size_t num_features) {
  if (budget == nullptr || budget->unlimited()) return kDefaultShardPairs;
  // Per pair: the memo row (4 bytes × features) plus a few bitmap bits.
  const size_t per_pair = std::max<size_t>(num_features, 1) * 4 + 8;
  // The evaluating shard, the spilling shard, and the spill serialization
  // copy can coexist; caches and scratch take the rest.
  const size_t usable = budget->limit() / 4;
  size_t pairs = usable / per_pair;
  // Round DOWN to the word size: rounding up would overshoot the
  // budget-derived estimate. The 64-pair floor keeps merges word-aligned.
  pairs = std::min(std::max((pairs / 64) * 64, size_t{64}), kMaxShardPairs);
  return pairs;
}

std::string ShardedMatchDriver::ShardStatePath(size_t shard) const {
  return options_.spill_dir + "/shard-" + std::to_string(shard) + ".state";
}

Status ShardedMatchDriver::DrainSpill() {
  if (inflight_ == nullptr) return Status::Ok();
  if (inflight_->thread.joinable()) inflight_->thread.join();
  Status s = inflight_->status;
  spilled_bytes_ += inflight_->bytes;
  inflight_.reset();
  return s;
}

Status ShardedMatchDriver::SpillState(MatchState state, size_t shard) {
  const std::string path = ShardStatePath(shard);
  // One injection point covers both the sync and async paths: a denied
  // spill must fail the run cleanly, never corrupt merged results.
  if (FaultFire("spill.write")) {
    return Status::IoError("shard driver: injected spill failure for '" +
                           path + "'");
  }
  if (!options_.double_buffer) {
    EMDBG_RETURN_IF_ERROR(SaveMatchState(state, path));
    spilled_bytes_ += state.MemoryBytes();
    return Status::Ok();
  }
  EMDBG_RETURN_IF_ERROR(DrainSpill());
  auto job = std::make_unique<SpillJob>();
  job->state = std::move(state);
  SpillJob* raw = job.get();
  raw->thread = std::thread([raw, path] {
    raw->status = SaveMatchState(raw->state, path);
    raw->bytes = raw->state.MemoryBytes();
    // Free the memo (and its budget billing) as soon as the bytes are on
    // disk — don't hold a dead shard across the next one's evaluation.
    raw->state = MatchState();
  });
  inflight_ = std::move(job);
  return Status::Ok();
}

Status ShardedMatchDriver::ProcessShard(const MatchingFunction& fn,
                                        std::vector<PairId> shard_pair_vec,
                                        size_t global_offset,
                                        PairContext& ctx,
                                        const RunControl& control,
                                        MatchResult* out,
                                        MatchStats* stats) {
  const size_t n = shard_pair_vec.size();
  const size_t shard_index = shards_.size();
  CandidateSet shard_set(std::move(shard_pair_vec));

  MatchState state;
  Status attach = state.AttachBudget(options_.budget);
  if (!attach.ok()) return attach;
  Status cap = state.EnsureCapacity(n, ctx.catalog().size());
  if (!cap.ok() && options_.double_buffer && inflight_ != nullptr) {
    // The spilling shard may still hold its billing; finish the IO and
    // retry once before declaring the budget exhausted.
    EMDBG_RETURN_IF_ERROR(DrainSpill());
    cap = state.EnsureCapacity(n, ctx.catalog().size());
  }
  if (!cap.ok()) return cap;

  MatchResult inner;
  if (options_.pool != nullptr && options_.pool->num_workers() > 1) {
    ParallelMemoMatcher matcher(ParallelMemoMatcher::Options{
        .pool = options_.pool,
        .budget = options_.budget,
        .block_size = options_.block_size == 1 ? 0 : options_.block_size,
        .cost_model = options_.cost_model});
    inner = matcher.RunWithState(fn, shard_set, ctx, state, control);
  } else {
    BlockMatcher matcher(BlockMatcher::Options{
        .block_size = options_.block_size,
        .cost_model = options_.cost_model,
        .budget = options_.budget});
    inner = matcher.RunWithState(fn, shard_set, ctx, state, control);
  }

  // Merge what was evaluated — even a partial shard's completed bits are
  // valid (the inner engines only set bits they fully decided).
  matches_.OrSpan(global_offset, inner.matches.words().data(), n);
  *stats += inner.stats;
  if (inner.partial) {
    out->evaluated.OrSpan(global_offset,
                          inner.evaluated.words().data(), n);
    out->partial = true;
    out->pairs_completed += inner.pairs_completed;
    out->status = inner.status;
    return Status::Ok();  // caller stops; reason travels in *out
  }
  out->pairs_completed += n;
  // Complete runs carry an empty `evaluated`; synthesize the full-shard
  // span for the (possibly partial) global result.
  Bitmap ones(n, true);
  out->evaluated.OrSpan(global_offset, ones.words().data(), n);

  ShardInfo info;
  info.begin = global_offset;
  info.end = global_offset + n;
  if (options_.keep_state) {
    info.state_path = ShardStatePath(shard_index);
    EMDBG_RETURN_IF_ERROR(SpillState(std::move(state), shard_index));
  }
  shards_.push_back(std::move(info));
  return Status::Ok();
}

MatchResult ShardedMatchDriver::Run(const MatchingFunction& fn,
                                    const CandidateSet& pairs,
                                    PairContext& ctx,
                                    const RunControl& control) {
  return RunShardsFromSet(fn, pairs, ctx, control);
}

MatchResult ShardedMatchDriver::RunShardsFromSet(const MatchingFunction& fn,
                                                 const CandidateSet& pairs,
                                                 PairContext& ctx,
                                                 const RunControl& control) {
  Stopwatch watch;
  shards_.clear();
  last_run_complete_ = false;
  shard_pairs_ = options_.shard_pairs != 0
                     ? RoundUp64(options_.shard_pairs)
                     : AutoShardPairs(options_.budget, ctx.catalog().size());
  const size_t n = pairs.size();
  matches_ = Bitmap(n);
  MatchResult out;
  out.evaluated = Bitmap(n);
  MatchStats stats;

  Status s = Status::Ok();
  for (size_t base = 0; base < n && s.ok(); base += shard_pairs_) {
    const size_t end = std::min(n, base + shard_pairs_);
    std::vector<PairId> shard(pairs.pairs().begin() + base,
                              pairs.pairs().begin() + end);
    s = ProcessShard(fn, std::move(shard), base, ctx, control, &out, &stats);
    if (out.partial) break;
  }
  Status drained = DrainSpill();
  if (s.ok()) s = drained;

  out.matches = matches_;
  out.stats = stats;
  out.stats.elapsed_ms = watch.ElapsedMillis();
  if (!s.ok()) {
    out.partial = true;
    out.status = s;
  } else if (!out.partial) {
    out.MarkComplete(n);
    out.evaluated = Bitmap();
    last_run_complete_ = true;
  }
  return out;
}

MatchResult ShardedMatchDriver::RunStream(const MatchingFunction& fn,
                                          ExternalPairSorter& stream,
                                          PairContext& ctx,
                                          const RunControl& control) {
  Stopwatch watch;
  shards_.clear();
  last_run_complete_ = false;
  shard_pairs_ = options_.shard_pairs != 0
                     ? RoundUp64(options_.shard_pairs)
                     : AutoShardPairs(options_.budget, ctx.catalog().size());
  matches_ = Bitmap(0);
  MatchResult out;
  MatchStats stats;

  Status s = Status::Ok();
  size_t base = 0;
  while (s.ok()) {
    std::vector<PairId> shard;
    shard.reserve(std::min(shard_pairs_, size_t{1} << 16));
    Result<size_t> pulled = stream.NextBatch(shard_pairs_, &shard);
    if (!pulled.ok()) {
      s = pulled.status();
      break;
    }
    if (*pulled == 0) break;
    matches_.Resize(base + shard.size());
    out.evaluated.Resize(base + shard.size());
    s = ProcessShard(fn, std::move(shard), base, ctx, control, &out,
                     &stats);
    base = matches_.size();
    if (out.partial) break;
  }
  Status drained = DrainSpill();
  if (s.ok()) s = drained;

  out.matches = matches_;
  out.stats = stats;
  out.stats.elapsed_ms = watch.ElapsedMillis();
  if (!s.ok()) {
    out.partial = true;
    out.status = s;
  } else if (!out.partial) {
    out.MarkComplete(matches_.size());
    out.evaluated = Bitmap();
    last_run_complete_ = true;
  }
  return out;
}

MatchResult ShardedMatchDriver::Rematch(const MatchingFunction& fn,
                                        const CandidateSet& pairs,
                                        PairContext& ctx,
                                        const Bitmap& dirty_pairs,
                                        const RunControl& control) {
  Stopwatch watch;
  MatchResult out;
  auto fail = [&](Status s) {
    out.partial = true;
    out.status = std::move(s);
    return out;
  };
  if (!last_run_complete_ || !options_.keep_state) {
    return fail(Status::FailedPrecondition(
        "shard driver: Rematch needs a prior complete run with keep_state"));
  }
  if (pairs.size() != matches_.size()) {
    return fail(Status::InvalidArgument(
        "shard driver: Rematch pair sequence does not match the last run (" +
        std::to_string(pairs.size()) + " vs " +
        std::to_string(matches_.size()) + " pairs)"));
  }
  MatchStats stats;
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardInfo& info = shards_[i];
    // Skip shards with no dirty pair: their spilled state and their
    // merged bits are still exact.
    size_t next_dirty = dirty_pairs.FindNext(info.begin);
    if (next_dirty >= info.end) continue;
    if (control.cancelled() || control.deadline_expired()) {
      return fail(control.StopStatus());
    }

    Result<MatchState> loaded = LoadMatchState(info.state_path);
    if (!loaded.ok()) return fail(loaded.status());
    MatchState state = std::move(*loaded);
    Status attach = state.AttachBudget(options_.budget);
    if (!attach.ok()) return fail(attach);

    const size_t n = info.end - info.begin;
    std::vector<PairId> shard(pairs.pairs().begin() + info.begin,
                              pairs.pairs().begin() + info.end);
    CandidateSet shard_set(std::move(shard));

    MatchResult inner;
    if (options_.pool != nullptr && options_.pool->num_workers() > 1) {
      ParallelMemoMatcher matcher(ParallelMemoMatcher::Options{
          .pool = options_.pool,
          .budget = options_.budget,
          .block_size = options_.block_size == 1 ? 0 : options_.block_size,
          .cost_model = options_.cost_model});
      inner = matcher.RunWithState(fn, shard_set, ctx, state, control);
    } else {
      BlockMatcher matcher(BlockMatcher::Options{
          .block_size = options_.block_size,
          .cost_model = options_.cost_model,
          .budget = options_.budget});
      inner = matcher.RunWithState(fn, shard_set, ctx, state, control);
    }
    if (inner.partial) return fail(inner.status);
    stats += inner.stats;

    // Patch the shard's span: overwrite, not OR — the edit may have
    // turned matches off.
    Bitmap ones(n, true);
    matches_.AndNotSpan(info.begin, ones.words().data(), n);
    matches_.OrSpan(info.begin, inner.matches.words().data(), n);

    Status spilled = SpillState(std::move(state), i);
    if (!spilled.ok()) return fail(spilled);
  }
  Status drained = DrainSpill();
  if (!drained.ok()) return fail(drained);
  out.matches = matches_;
  out.stats = stats;
  out.stats.elapsed_ms = watch.ElapsedMillis();
  out.MarkComplete(matches_.size());
  return out;
}

Result<MatchState> ShardedMatchDriver::LoadShardState(size_t i) const {
  if (i >= shards_.size() || shards_[i].state_path.empty()) {
    return Status::FailedPrecondition(
        "shard driver: no spilled state for shard " + std::to_string(i));
  }
  return LoadMatchState(shards_[i].state_path);
}

}  // namespace emdbg
