#include "src/block/external_sort.h"

#include <algorithm>
#include <utility>

namespace emdbg {

namespace {

constexpr size_t kMinPairBuffer = 8192;           // pairs
constexpr size_t kMinEntryBuffer = 64u << 10;     // bytes
constexpr const char kSortConsumer[] = "sort.buffer";

/// Spill frame size scaled to the run buffer: every run reader bills one
/// frame during the k-way merge, so frames must be a small fraction of
/// the buffer the budget already granted or the merge itself would not
/// fit. Floor 4 KiB (the writer's own minimum), cap 256 KiB.
size_t FrameBytesFor(size_t buffer_bytes) {
  return std::min(std::max(buffer_bytes / 8, size_t{4096}),
                  size_t{256} << 10);
}

std::string RunPath(const ExternalSortOptions& options, size_t n) {
  return options.spill_dir + "/" + options.file_prefix + "-" +
         std::to_string(n) + ".spill";
}

void RemoveRuns(const std::vector<std::string>& paths) {
  for (const std::string& p : paths) std::remove(p.c_str());
}

/// Reserves the largest power-of-two fraction of `want_bytes` the budget
/// accepts, not going below `floor_bytes` (graceful degradation: smaller
/// runs merge to the same output). Returns the reservation and sets
/// `*got_bytes`.
Result<MemoryReservation> ReserveWithBackoff(MemoryBudget* budget,
                                             size_t want_bytes,
                                             size_t floor_bytes,
                                             size_t* got_bytes) {
  size_t want = std::max(want_bytes, floor_bytes);
  for (;;) {
    // Probe for spill-writer frame headroom before committing: a run
    // buffer that fills the whole budget would be denied at spill time
    // when the writer asks for its frame on top.
    Status denial = Status::Ok();
    {
      Result<MemoryReservation> frame = MemoryReservation::Make(
          budget, FrameBytesFor(want), kSortConsumer);
      if (frame.ok()) {
        Result<MemoryReservation> r =
            MemoryReservation::Make(budget, want, kSortConsumer);
        if (r.ok()) {
          *got_bytes = want;
          return r;  // frame probe releases here, freeing the headroom
        }
        denial = r.status();
      } else {
        denial = frame.status();
      }
    }
    if (want <= floor_bytes) return denial;
    want = std::max(want / 2, floor_bytes);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ExternalPairSorter

ExternalPairSorter::ExternalPairSorter(ExternalSortOptions options)
    : options_(std::move(options)) {}

ExternalPairSorter::~ExternalPairSorter() {
  runs_.clear();  // close readers before unlinking
  RemoveRuns(run_paths_);
}

Status ExternalPairSorter::EnsureBuffer() {
  if (buffer_capacity_ > 0) return Status::Ok();
  size_t got = 0;
  Result<MemoryReservation> billing = ReserveWithBackoff(
      options_.budget, std::max(options_.buffer_bytes, size_t{1}),
      kMinPairBuffer * sizeof(PairId), &got);
  if (!billing.ok()) return billing.status();
  billing_ = std::move(*billing);
  buffer_capacity_ = std::max<size_t>(got / sizeof(PairId), 64);
  buffer_.reserve(buffer_capacity_);
  return Status::Ok();
}

Status ExternalPairSorter::SpillRun() {
  std::sort(buffer_.begin(), buffer_.end());
  buffer_.erase(std::unique(buffer_.begin(), buffer_.end()), buffer_.end());
  const std::string path = RunPath(options_, run_paths_.size());
  SpillWriter::Options wopts;
  wopts.budget = options_.budget;
  wopts.frame_bytes = FrameBytesFor(buffer_capacity_ * sizeof(PairId));
  Result<SpillWriter> writer = SpillWriter::Create(path, wopts);
  if (!writer.ok()) return writer.status();
  const uint64_t count = buffer_.size();
  EMDBG_RETURN_IF_ERROR(writer->WritePod(count));
  EMDBG_RETURN_IF_ERROR(
      writer->Write(buffer_.data(), buffer_.size() * sizeof(PairId)));
  EMDBG_RETURN_IF_ERROR(writer->Close());
  spilled_bytes_ += writer->payload_bytes();
  run_paths_.push_back(path);
  buffer_.clear();
  return Status::Ok();
}

Status ExternalPairSorter::Add(PairId p) {
  if (finished_) {
    return Status::FailedPrecondition("pair sorter: Add after Finish");
  }
  EMDBG_RETURN_IF_ERROR(EnsureBuffer());
  buffer_.push_back(p);
  ++pairs_added_;
  if (buffer_.size() >= buffer_capacity_) {
    if (options_.spill_dir.empty()) {
      return Status::InvalidArgument(
          "pair sorter: buffer full and no spill_dir configured");
    }
    return SpillRun();
  }
  return Status::Ok();
}

Status ExternalPairSorter::PushRun(uint32_t run) {
  RunCursor& c = runs_[run];
  if (c.remaining == 0) {
    // Exhausted: drop the reader now so its frame buffer stops billing
    // the budget while the remaining runs keep merging.
    c.reader = SpillReader();
    return Status::Ok();
  }
  EMDBG_RETURN_IF_ERROR(c.reader.ReadPod(&c.head));
  --c.remaining;
  heap_.push_back(HeapItem{c.head, run});
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const HeapItem& x, const HeapItem& y) {
                   // std::push_heap builds a max-heap; invert for min.
                   if (x.head != y.head) return y.head < x.head;
                   return y.run < x.run;
                 });
  return Status::Ok();
}

Status ExternalPairSorter::Finish() {
  if (finished_) return Status::Ok();
  if (!run_paths_.empty() && !buffer_.empty()) {
    EMDBG_RETURN_IF_ERROR(SpillRun());
  }
  if (run_paths_.empty()) {
    // Pure in-memory case: the sorted buffer is the single "run".
    std::sort(buffer_.begin(), buffer_.end());
    buffer_.erase(std::unique(buffer_.begin(), buffer_.end()),
                  buffer_.end());
    finished_ = true;
    mem_pos_ = 0;
    // Model the buffer as a virtual run via the heap flag below.
    if (!buffer_.empty()) {
      heap_.push_back(HeapItem{buffer_[0], UINT32_MAX});
    }
    return Status::Ok();
  }
  // Merging: the run buffer is done for good — release it (and its
  // billing) so the per-run reader frames fit in the same budget.
  std::vector<PairId>().swap(buffer_);
  buffer_capacity_ = 0;
  billing_.reset();
  runs_.resize(run_paths_.size());
  for (size_t i = 0; i < run_paths_.size(); ++i) {
    SpillReader::Options ropts;
    ropts.budget = options_.budget;
    Result<SpillReader> reader = SpillReader::Open(run_paths_[i], ropts);
    if (!reader.ok()) return reader.status();
    runs_[i].reader = std::move(*reader);
    EMDBG_RETURN_IF_ERROR(runs_[i].reader.ReadPod(&runs_[i].remaining));
    EMDBG_RETURN_IF_ERROR(PushRun(static_cast<uint32_t>(i)));
  }
  finished_ = true;
  return Status::Ok();
}

Status ExternalPairSorter::Next(PairId* out) {
  for (;;) {
    if (!finished_) {
      return Status::FailedPrecondition("pair sorter: Next before Finish");
    }
    if (heap_.empty()) {
      return Status::OutOfRange("pair sorter: end of stream");
    }
    PairId head;
    if (heap_.front().run == UINT32_MAX) {
      // In-memory single-run fast path.
      head = buffer_[mem_pos_++];
      if (mem_pos_ < buffer_.size()) {
        heap_.front().head = buffer_[mem_pos_];
      } else {
        heap_.clear();
      }
    } else {
      std::pop_heap(heap_.begin(), heap_.end(),
                    [](const HeapItem& x, const HeapItem& y) {
                      if (x.head != y.head) return y.head < x.head;
                      return y.run < x.run;
                    });
      const HeapItem item = heap_.back();
      heap_.pop_back();
      head = item.head;
      EMDBG_RETURN_IF_ERROR(PushRun(item.run));
    }
    // Cross-run duplicates: runs are deduped individually, but the same
    // pair can appear in several runs.
    if (have_last_ && head == last_) continue;
    have_last_ = true;
    last_ = head;
    *out = head;
    return Status::Ok();
  }
}

Result<size_t> ExternalPairSorter::NextBatch(size_t max_pairs,
                                             std::vector<PairId>* out) {
  size_t n = 0;
  PairId p;
  while (n < max_pairs) {
    Status s = Next(&p);
    if (!s.ok()) {
      if (s.code() == StatusCode::kOutOfRange) break;
      return s;
    }
    out->push_back(p);
    ++n;
  }
  return n;
}

Result<CandidateSet> ExternalPairSorter::Drain() {
  CandidateSet out;
  PairId p;
  for (;;) {
    Status s = Next(&p);
    if (!s.ok()) {
      if (s.code() == StatusCode::kOutOfRange) break;
      return s;
    }
    out.Add(p);
  }
  return out;
}

// ---------------------------------------------------------------------------
// ExternalEntrySorter

ExternalEntrySorter::ExternalEntrySorter(ExternalSortOptions options)
    : options_(std::move(options)) {}

ExternalEntrySorter::~ExternalEntrySorter() {
  runs_.clear();
  RemoveRuns(run_paths_);
}

Status ExternalEntrySorter::WriteEntry(SpillWriter& w, const BlockEntry& e) {
  const uint32_t len = static_cast<uint32_t>(e.key.size());
  EMDBG_RETURN_IF_ERROR(w.WritePod(len));
  EMDBG_RETURN_IF_ERROR(w.Write(e.key.data(), e.key.size()));
  EMDBG_RETURN_IF_ERROR(w.WritePod(e.seq));
  EMDBG_RETURN_IF_ERROR(w.WritePod(e.row));
  const uint8_t side = e.from_b ? 1 : 0;
  return w.WritePod(side);
}

Status ExternalEntrySorter::ReadEntry(SpillReader& r, BlockEntry* e) {
  uint32_t len = 0;
  EMDBG_RETURN_IF_ERROR(r.ReadPod(&len));
  e->key.resize(len);
  if (len > 0) {
    EMDBG_RETURN_IF_ERROR(r.Read(&e->key[0], len));
  }
  EMDBG_RETURN_IF_ERROR(r.ReadPod(&e->seq));
  EMDBG_RETURN_IF_ERROR(r.ReadPod(&e->row));
  uint8_t side = 0;
  EMDBG_RETURN_IF_ERROR(r.ReadPod(&side));
  e->from_b = side != 0;
  return Status::Ok();
}

Status ExternalEntrySorter::SpillRun() {
  std::sort(buffer_.begin(), buffer_.end());
  const std::string path = RunPath(options_, run_paths_.size());
  SpillWriter::Options wopts;
  wopts.budget = options_.budget;
  wopts.frame_bytes = FrameBytesFor(buffer_bytes_cap_);
  Result<SpillWriter> writer = SpillWriter::Create(path, wopts);
  if (!writer.ok()) return writer.status();
  const uint64_t count = buffer_.size();
  EMDBG_RETURN_IF_ERROR(writer->WritePod(count));
  for (const BlockEntry& e : buffer_) {
    EMDBG_RETURN_IF_ERROR(WriteEntry(*writer, e));
  }
  EMDBG_RETURN_IF_ERROR(writer->Close());
  spilled_bytes_ += writer->payload_bytes();
  run_paths_.push_back(path);
  buffer_.clear();
  buffer_bytes_used_ = 0;
  return Status::Ok();
}

Status ExternalEntrySorter::Add(std::string key, uint32_t row, bool from_b) {
  if (finished_) {
    return Status::FailedPrecondition("entry sorter: Add after Finish");
  }
  if (buffer_bytes_cap_ == 0) {
    size_t got = 0;
    Result<MemoryReservation> billing = ReserveWithBackoff(
        options_.budget, std::max(options_.buffer_bytes, size_t{1}),
        kMinEntryBuffer, &got);
    if (!billing.ok()) return billing.status();
    billing_ = std::move(*billing);
    buffer_bytes_cap_ = got;
  }
  buffer_bytes_used_ += sizeof(BlockEntry) + key.size();
  BlockEntry e;
  e.key = std::move(key);
  e.seq = next_seq_++;
  e.row = row;
  e.from_b = from_b;
  buffer_.push_back(std::move(e));
  if (buffer_bytes_used_ >= buffer_bytes_cap_) {
    if (options_.spill_dir.empty()) {
      return Status::InvalidArgument(
          "entry sorter: buffer full and no spill_dir configured");
    }
    return SpillRun();
  }
  return Status::Ok();
}

Status ExternalEntrySorter::PushRun(uint32_t run) {
  RunCursor& c = runs_[run];
  if (c.remaining == 0) {
    // Exhausted: drop the reader now so its frame buffer stops billing
    // the budget while the remaining runs keep merging.
    c.reader = SpillReader();
    return Status::Ok();
  }
  EMDBG_RETURN_IF_ERROR(ReadEntry(c.reader, &c.head));
  --c.remaining;
  heap_.push_back(HeapItem{&c.head, run});
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const HeapItem& x, const HeapItem& y) {
                   return *y.head < *x.head;
                 });
  return Status::Ok();
}

Status ExternalEntrySorter::Finish() {
  if (finished_) return Status::Ok();
  if (!run_paths_.empty() && !buffer_.empty()) {
    EMDBG_RETURN_IF_ERROR(SpillRun());
  }
  if (run_paths_.empty()) {
    std::sort(buffer_.begin(), buffer_.end());
    finished_ = true;
    mem_pos_ = 0;
    return Status::Ok();
  }
  // Merging: release the run buffer and its billing (see the pair
  // sorter) so the per-run reader frames fit in the same budget.
  std::vector<BlockEntry>().swap(buffer_);
  buffer_bytes_cap_ = 0;
  buffer_bytes_used_ = 0;
  billing_.reset();
  runs_.resize(run_paths_.size());
  for (size_t i = 0; i < run_paths_.size(); ++i) {
    SpillReader::Options ropts;
    ropts.budget = options_.budget;
    Result<SpillReader> reader = SpillReader::Open(run_paths_[i], ropts);
    if (!reader.ok()) return reader.status();
    runs_[i].reader = std::move(*reader);
    EMDBG_RETURN_IF_ERROR(runs_[i].reader.ReadPod(&runs_[i].remaining));
    EMDBG_RETURN_IF_ERROR(PushRun(static_cast<uint32_t>(i)));
  }
  finished_ = true;
  return Status::Ok();
}

Status ExternalEntrySorter::Next(BlockEntry* out) {
  if (!finished_) {
    return Status::FailedPrecondition("entry sorter: Next before Finish");
  }
  if (run_paths_.empty()) {
    if (mem_pos_ >= buffer_.size()) {
      return Status::OutOfRange("entry sorter: end of stream");
    }
    *out = std::move(buffer_[mem_pos_++]);
    return Status::Ok();
  }
  if (heap_.empty()) {
    return Status::OutOfRange("entry sorter: end of stream");
  }
  std::pop_heap(heap_.begin(), heap_.end(),
                [](const HeapItem& x, const HeapItem& y) {
                  return *y.head < *x.head;
                });
  const uint32_t run = heap_.back().run;
  heap_.pop_back();
  *out = std::move(runs_[run].head);
  return PushRun(run);
}

}  // namespace emdbg
