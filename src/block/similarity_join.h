#ifndef EMDBG_BLOCK_SIMILARITY_JOIN_H_
#define EMDBG_BLOCK_SIMILARITY_JOIN_H_

#include <string>

#include "src/block/candidate_pairs.h"
#include "src/data/table.h"
#include "src/util/status.h"

namespace emdbg {

/// Set-similarity join blocking: a pair becomes a candidate iff the
/// Jaccard similarity of the two records' word-token sets on `attribute`
/// is at least `threshold`. Implemented with the standard AllPairs-style
/// prefix filter:
///
///   * tokens are globally ordered by ascending document frequency
///     (rarest first), so prefixes carry maximal pruning power;
///   * a record with |t| tokens only indexes/probes its first
///     |t| - ceil(θ·|t|) + 1 tokens — two sets with Jaccard ≥ θ must
///     share at least one prefix token;
///   * the length filter θ·|a| ≤ |b| ≤ |a|/θ prunes size-incompatible
///     partners before verification.
///
/// Exact: produces precisely the pairs a brute-force Jaccard scan would
/// (verified by property tests), at index-join cost.
class JaccardJoinBlocker {
 public:
  /// `threshold` is clamped to (0, 1].
  JaccardJoinBlocker(std::string attribute, double threshold);

  Result<CandidateSet> Block(const Table& a, const Table& b) const;

  const std::string& attribute() const { return attribute_; }
  double threshold() const { return threshold_; }

 private:
  std::string attribute_;
  double threshold_;
};

}  // namespace emdbg

#endif  // EMDBG_BLOCK_SIMILARITY_JOIN_H_
