#include "src/block/candidate_pairs.h"

#include <algorithm>

namespace emdbg {

void CandidateSet::SortAndDedup() {
  std::sort(pairs_.begin(), pairs_.end());
  pairs_.erase(std::unique(pairs_.begin(), pairs_.end()), pairs_.end());
}

void CandidateSet::Truncate(size_t n) {
  if (pairs_.size() > n) pairs_.resize(n);
}

}  // namespace emdbg
