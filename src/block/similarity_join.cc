#include "src/block/similarity_join.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/text/tokenizer.h"

namespace emdbg {

namespace {

/// Token ids sorted by the global rarity order, per record.
struct RecordTokens {
  uint32_t row = 0;
  std::vector<uint32_t> tokens;  // sorted ascending by global id
};

size_t PrefixLength(size_t size, double threshold) {
  // |t| - ceil(θ|t|) + 1, at least 1 for non-empty sets.
  const size_t needed =
      static_cast<size_t>(std::ceil(threshold * static_cast<double>(size)));
  return size - std::min(size, needed) + 1;
}

double JaccardOfSorted(const std::vector<uint32_t>& x,
                       const std::vector<uint32_t>& y) {
  size_t i = 0;
  size_t j = 0;
  size_t inter = 0;
  while (i < x.size() && j < y.size()) {
    if (x[i] == y[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (x[i] < y[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = x.size() + y.size() - inter;
  return uni == 0 ? 1.0
                  : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

JaccardJoinBlocker::JaccardJoinBlocker(std::string attribute,
                                       double threshold)
    : attribute_(std::move(attribute)),
      threshold_(std::clamp(threshold, 1e-9, 1.0)) {}

Result<CandidateSet> JaccardJoinBlocker::Block(const Table& a,
                                               const Table& b) const {
  Result<AttrIndex> a_attr = a.schema().Find(attribute_);
  if (!a_attr.ok()) return a_attr.status();
  Result<AttrIndex> b_attr = b.schema().Find(attribute_);
  if (!b_attr.ok()) return b_attr.status();

  // Pass 1: intern tokens and count document frequency across both
  // tables (the global rarity order).
  std::unordered_map<std::string, uint32_t> token_ids;
  std::vector<size_t> frequency;
  auto intern_tokens = [&](const std::string& text) {
    std::vector<uint32_t> out;
    for (const std::string& tok : ToSortedUnique(AlnumTokenize(text))) {
      auto [it, inserted] =
          token_ids.emplace(tok, static_cast<uint32_t>(token_ids.size()));
      if (inserted) frequency.push_back(0);
      ++frequency[it->second];
      out.push_back(it->second);
    }
    return out;
  };
  std::vector<RecordTokens> a_records(a.num_rows());
  for (uint32_t row = 0; row < a.num_rows(); ++row) {
    a_records[row] = {row, intern_tokens(a.Value(row, *a_attr))};
  }
  std::vector<RecordTokens> b_records(b.num_rows());
  for (uint32_t row = 0; row < b.num_rows(); ++row) {
    b_records[row] = {row, intern_tokens(b.Value(row, *b_attr))};
  }

  // Remap token ids to the rarity order (ascending frequency; ties by
  // original id for determinism), then sort each record's tokens so the
  // prefix holds its rarest tokens.
  std::vector<uint32_t> order(frequency.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
    return frequency[x] != frequency[y] ? frequency[x] < frequency[y]
                                        : x < y;
  });
  std::vector<uint32_t> rank(order.size());
  for (uint32_t pos = 0; pos < order.size(); ++pos) {
    rank[order[pos]] = pos;
  }
  auto remap = [&](std::vector<RecordTokens>& records) {
    for (RecordTokens& r : records) {
      for (uint32_t& t : r.tokens) t = rank[t];
      std::sort(r.tokens.begin(), r.tokens.end());
    }
  };
  remap(a_records);
  remap(b_records);

  // Pass 2: index B's prefixes.
  std::unordered_map<uint32_t, std::vector<uint32_t>> prefix_index;
  for (const RecordTokens& r : b_records) {
    const size_t prefix = PrefixLength(r.tokens.size(), threshold_);
    for (size_t k = 0; k < prefix && k < r.tokens.size(); ++k) {
      prefix_index[r.tokens[k]].push_back(r.row);
    }
  }

  // Pass 3: probe with A's prefixes, length-filter, verify.
  CandidateSet out;
  std::vector<char> seen(b.num_rows(), 0);
  std::vector<uint32_t> touched;
  for (const RecordTokens& ra : a_records) {
    if (ra.tokens.empty()) continue;
    touched.clear();
    const size_t prefix = PrefixLength(ra.tokens.size(), threshold_);
    const double size_a = static_cast<double>(ra.tokens.size());
    for (size_t k = 0; k < prefix && k < ra.tokens.size(); ++k) {
      const auto it = prefix_index.find(ra.tokens[k]);
      if (it == prefix_index.end()) continue;
      for (const uint32_t b_row : it->second) {
        if (seen[b_row]) continue;
        seen[b_row] = 1;
        touched.push_back(b_row);
        const double size_b =
            static_cast<double>(b_records[b_row].tokens.size());
        if (size_b < threshold_ * size_a ||
            size_b * threshold_ > size_a) {
          continue;  // length filter
        }
        if (JaccardOfSorted(ra.tokens, b_records[b_row].tokens) >=
            threshold_) {
          out.Add(PairId{ra.row, b_row});
        }
      }
    }
    for (const uint32_t b_row : touched) seen[b_row] = 0;
  }
  out.SortAndDedup();
  return out;
}

}  // namespace emdbg
