#include "src/block/blocking_stats.h"

#include <unordered_set>

#include "src/util/string_util.h"

namespace emdbg {

std::string BlockingStats::ToString() const {
  return StrFormat(
      "candidates=%zu of %zu (reduction %.4f) | matches retained %zu/%zu "
      "(completeness %.4f)",
      candidates, cross_product, reduction_ratio, matches_retained,
      true_matches, pair_completeness);
}

BlockingStats EvaluateBlocking(const CandidateSet& candidates,
                               const std::vector<PairId>& true_matches,
                               size_t rows_a, size_t rows_b) {
  BlockingStats stats;
  stats.candidates = candidates.size();
  stats.cross_product = rows_a * rows_b;
  stats.true_matches = true_matches.size();

  std::unordered_set<uint64_t> candidate_keys;
  candidate_keys.reserve(candidates.size() * 2);
  for (const PairId& p : candidates.pairs()) {
    candidate_keys.insert((static_cast<uint64_t>(p.a) << 32) | p.b);
  }
  for (const PairId& m : true_matches) {
    if (candidate_keys.count((static_cast<uint64_t>(m.a) << 32) | m.b)) {
      ++stats.matches_retained;
    }
  }
  stats.pair_completeness =
      true_matches.empty()
          ? 1.0
          : static_cast<double>(stats.matches_retained) /
                static_cast<double>(true_matches.size());
  stats.reduction_ratio =
      stats.cross_product == 0
          ? 0.0
          : 1.0 - static_cast<double>(stats.candidates) /
                      static_cast<double>(stats.cross_product);
  return stats;
}

}  // namespace emdbg
