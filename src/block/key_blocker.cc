#include "src/block/key_blocker.h"

#include <unordered_map>
#include <vector>

#include "src/util/string_util.h"

namespace emdbg {

Result<CandidateSet> KeyBlocker::Block(const Table& a,
                                       const Table& b) const {
  Result<AttrIndex> a_attr = a.schema().Find(attribute_);
  if (!a_attr.ok()) return a_attr.status();
  Result<AttrIndex> b_attr = b.schema().Find(attribute_);
  if (!b_attr.ok()) return b_attr.status();

  std::unordered_map<std::string, std::vector<uint32_t>> b_index;
  for (uint32_t row = 0; row < b.num_rows(); ++row) {
    std::string key =
        ToLowerAscii(TrimAscii(b.Value(row, *b_attr)));
    if (key.empty()) continue;
    b_index[std::move(key)].push_back(row);
  }

  CandidateSet out;
  for (uint32_t row = 0; row < a.num_rows(); ++row) {
    const std::string key =
        ToLowerAscii(TrimAscii(a.Value(row, *a_attr)));
    if (key.empty()) continue;
    const auto it = b_index.find(key);
    if (it == b_index.end()) continue;
    for (uint32_t b_row : it->second) {
      out.Add(PairId{row, b_row});
    }
  }
  out.SortAndDedup();
  return out;
}

}  // namespace emdbg
