#ifndef EMDBG_BLOCK_BLOCKING_STATS_H_
#define EMDBG_BLOCK_BLOCKING_STATS_H_

#include <string>
#include <vector>

#include "src/block/candidate_pairs.h"

namespace emdbg {

/// Standard blocking-quality metrics: a blocker should retain (almost)
/// all true matches (pair completeness / recall) while pruning most of
/// the |A| x |B| cross product (reduction ratio).
struct BlockingStats {
  size_t candidates = 0;
  size_t cross_product = 0;
  size_t true_matches = 0;
  size_t matches_retained = 0;
  /// matches_retained / true_matches (1.0 when there are no matches).
  double pair_completeness = 1.0;
  /// 1 - candidates / cross_product.
  double reduction_ratio = 0.0;

  std::string ToString() const;
};

/// Evaluates `candidates` against the known `true_matches` for tables of
/// `rows_a` x `rows_b` records.
BlockingStats EvaluateBlocking(const CandidateSet& candidates,
                               const std::vector<PairId>& true_matches,
                               size_t rows_a, size_t rows_b);

}  // namespace emdbg

#endif  // EMDBG_BLOCK_BLOCKING_STATS_H_
