#ifndef EMDBG_BLOCK_EXTERNAL_BLOCKER_H_
#define EMDBG_BLOCK_EXTERNAL_BLOCKER_H_

#include <string>

#include "src/block/candidate_pairs.h"
#include "src/block/external_sort.h"
#include "src/data/table.h"
#include "src/util/status.h"

namespace emdbg {

/// Out-of-core attribute-equality blocking: the external twin of
/// KeyBlocker. Entries (blocking key, row, side) stream through an
/// ExternalEntrySorter; the (key, seq)-sorted stream is scanned group by
/// group, emitting each group's A×B cross product into an
/// ExternalPairSorter. Peak memory is the sorter run buffers plus one
/// group's A-side row list — never the full index or pair list.
///
/// Bit-identity with KeyBlocker::Block: both produce the same *set* of
/// pairs (exact key equality after TrimAscii + ToLowerAscii, empty keys
/// skipped), and both ultimately order it by sorted-(a, b) dedup — the
/// in-memory blocker via CandidateSet::SortAndDedup, this one via
/// ExternalPairSorter's merge. Same set, same order ⇒ same sequence.
class ExternalKeyBlocker {
 public:
  struct Options {
    std::string attribute;  ///< must exist in both schemas
    ExternalSortOptions sort;  ///< spill location / buffers / budget
  };

  explicit ExternalKeyBlocker(Options options)
      : options_(std::move(options)) {}

  /// Streams the candidate pairs of (a, b) into `out` and seals it
  /// (Finish() is called; the caller drains). `out` must be fresh.
  Status BlockToSorter(const Table& a, const Table& b,
                       ExternalPairSorter* out) const;

  /// Convenience: BlockToSorter + Drain. Materializes the result, so use
  /// only when the candidate set itself fits in RAM.
  Result<CandidateSet> Block(const Table& a, const Table& b) const;

  const std::string& attribute() const { return options_.attribute; }

 private:
  Options options_;
};

/// Out-of-core sorted-neighborhood blocking: the external twin of
/// SortedNeighborhoodBlocker. Entries sort externally by (key, seq) —
/// which reproduces the in-memory stable_sort by key exactly — then a
/// sliding window of `window` entries (a ring buffer; the only in-RAM
/// state) emits every A-B pair co-occurring in a window into an
/// ExternalPairSorter.
class ExternalSortedNeighborhoodBlocker {
 public:
  struct Options {
    std::string attribute;
    size_t window = 5;      ///< clamped to ≥ 2
    size_t key_prefix = 8;  ///< 0 → 8
    ExternalSortOptions sort;
  };

  explicit ExternalSortedNeighborhoodBlocker(Options options)
      : options_(std::move(options)) {
    if (options_.window < 2) options_.window = 2;
    if (options_.key_prefix == 0) options_.key_prefix = 8;
  }

  Status BlockToSorter(const Table& a, const Table& b,
                       ExternalPairSorter* out) const;
  Result<CandidateSet> Block(const Table& a, const Table& b) const;

  const std::string& attribute() const { return options_.attribute; }
  size_t window() const { return options_.window; }

 private:
  Options options_;
};

}  // namespace emdbg

#endif  // EMDBG_BLOCK_EXTERNAL_BLOCKER_H_
