#ifndef EMDBG_BLOCK_OVERLAP_BLOCKER_H_
#define EMDBG_BLOCK_OVERLAP_BLOCKER_H_

#include <string>

#include "src/block/candidate_pairs.h"
#include "src/data/table.h"
#include "src/util/status.h"

namespace emdbg {

/// Token-overlap blocking: a pair (a, b) becomes a candidate iff the two
/// records share at least `min_overlap` word tokens on `attribute`
/// (lower-cased alphanumeric tokens). Implemented with an inverted index on
/// table B, so cost is proportional to the number of shared-token pair
/// occurrences, not |A| x |B|.
class OverlapBlocker {
 public:
  OverlapBlocker(std::string attribute, size_t min_overlap = 1)
      : attribute_(std::move(attribute)),
        min_overlap_(min_overlap == 0 ? 1 : min_overlap) {}

  Result<CandidateSet> Block(const Table& a, const Table& b) const;

  const std::string& attribute() const { return attribute_; }
  size_t min_overlap() const { return min_overlap_; }

 private:
  std::string attribute_;
  size_t min_overlap_;
};

}  // namespace emdbg

#endif  // EMDBG_BLOCK_OVERLAP_BLOCKER_H_
