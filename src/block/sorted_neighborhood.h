#ifndef EMDBG_BLOCK_SORTED_NEIGHBORHOOD_H_
#define EMDBG_BLOCK_SORTED_NEIGHBORHOOD_H_

#include <string>

#include "src/block/candidate_pairs.h"
#include "src/data/table.h"
#include "src/util/status.h"

namespace emdbg {

/// Sorted-neighborhood blocking (Hernández & Stolfo): records from both
/// tables are merged, sorted by a key derived from `attribute` (lower-cased
/// alphanumeric prefix), and a window of size `window` slides over the
/// sorted sequence; every A-B pair co-occurring in a window becomes a
/// candidate. Robust to small key typos that would break equality
/// blocking, at the cost of a wider candidate set.
class SortedNeighborhoodBlocker {
 public:
  SortedNeighborhoodBlocker(std::string attribute, size_t window = 5,
                            size_t key_prefix = 8)
      : attribute_(std::move(attribute)),
        window_(window < 2 ? 2 : window),
        key_prefix_(key_prefix == 0 ? 8 : key_prefix) {}

  Result<CandidateSet> Block(const Table& a, const Table& b) const;

  const std::string& attribute() const { return attribute_; }
  size_t window() const { return window_; }

 private:
  std::string attribute_;
  size_t window_;
  size_t key_prefix_;
};

}  // namespace emdbg

#endif  // EMDBG_BLOCK_SORTED_NEIGHBORHOOD_H_
