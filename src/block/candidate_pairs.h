#ifndef EMDBG_BLOCK_CANDIDATE_PAIRS_H_
#define EMDBG_BLOCK_CANDIDATE_PAIRS_H_

#include <cstdint>
#include <vector>

#include "src/util/bitmap.h"

namespace emdbg {

/// A candidate record pair: row indices into tables A and B.
struct PairId {
  uint32_t a = 0;
  uint32_t b = 0;

  friend bool operator==(const PairId& x, const PairId& y) {
    return x.a == y.a && x.b == y.b;
  }
  friend bool operator<(const PairId& x, const PairId& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  }
};

/// The output of blocking: the ordered list of candidate pairs the matcher
/// evaluates. Pair order is significant — the memo and all incremental
/// bitmaps are indexed by position in this list.
class CandidateSet {
 public:
  CandidateSet() = default;
  explicit CandidateSet(std::vector<PairId> pairs)
      : pairs_(std::move(pairs)) {}

  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }
  const PairId& pair(size_t i) const { return pairs_[i]; }
  const std::vector<PairId>& pairs() const { return pairs_; }

  void Add(PairId p) { pairs_.push_back(p); }
  void Reserve(size_t n) { pairs_.reserve(n); }

  /// Sorts by (a, b) and removes duplicates.
  void SortAndDedup();

  /// Keeps only the first `n` pairs (no-op if already smaller).
  void Truncate(size_t n);

 private:
  std::vector<PairId> pairs_;
};

/// Ground-truth (or predicted) match labels aligned with a CandidateSet:
/// bit i set ⇔ pair i is a match.
using PairLabels = Bitmap;

}  // namespace emdbg

#endif  // EMDBG_BLOCK_CANDIDATE_PAIRS_H_
