#ifndef EMDBG_BLOCK_KEY_BLOCKER_H_
#define EMDBG_BLOCK_KEY_BLOCKER_H_

#include <string>

#include "src/block/candidate_pairs.h"
#include "src/data/table.h"
#include "src/util/status.h"

namespace emdbg {

/// Attribute-equality blocking (Sec. 3 of the paper's "category" example):
/// a pair (a, b) becomes a candidate iff the two records agree exactly on
/// the blocking attribute. Comparison is case-insensitive after trimming.
class KeyBlocker {
 public:
  /// `attribute` must exist in both tables' schemas (checked in Block).
  explicit KeyBlocker(std::string attribute)
      : attribute_(std::move(attribute)) {}

  /// Produces the candidate set, sorted by (a, b).
  /// Records with an empty blocking value are skipped (standard EM
  /// practice: missing keys would otherwise cross-join).
  Result<CandidateSet> Block(const Table& a, const Table& b) const;

  const std::string& attribute() const { return attribute_; }

 private:
  std::string attribute_;
};

}  // namespace emdbg

#endif  // EMDBG_BLOCK_KEY_BLOCKER_H_
