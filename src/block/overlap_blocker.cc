#include "src/block/overlap_blocker.h"

#include <unordered_map>
#include <vector>

#include "src/text/tokenizer.h"

namespace emdbg {

Result<CandidateSet> OverlapBlocker::Block(const Table& a,
                                           const Table& b) const {
  Result<AttrIndex> a_attr = a.schema().Find(attribute_);
  if (!a_attr.ok()) return a_attr.status();
  Result<AttrIndex> b_attr = b.schema().Find(attribute_);
  if (!b_attr.ok()) return b_attr.status();

  // Inverted index: token -> B rows containing it (unique per row).
  std::unordered_map<std::string, std::vector<uint32_t>> index;
  for (uint32_t row = 0; row < b.num_rows(); ++row) {
    for (const std::string& tok :
         ToSortedUnique(AlnumTokenize(b.Value(row, *b_attr)))) {
      index[tok].push_back(row);
    }
  }

  CandidateSet out;
  std::unordered_map<uint32_t, size_t> overlap;  // B row -> shared tokens
  for (uint32_t row = 0; row < a.num_rows(); ++row) {
    overlap.clear();
    for (const std::string& tok :
         ToSortedUnique(AlnumTokenize(a.Value(row, *a_attr)))) {
      const auto it = index.find(tok);
      if (it == index.end()) continue;
      for (uint32_t b_row : it->second) ++overlap[b_row];
    }
    for (const auto& [b_row, count] : overlap) {
      if (count >= min_overlap_) out.Add(PairId{row, b_row});
    }
  }
  out.SortAndDedup();
  return out;
}

}  // namespace emdbg
