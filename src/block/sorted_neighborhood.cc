#include "src/block/sorted_neighborhood.h"

#include <algorithm>
#include <cctype>
#include <vector>

namespace emdbg {

namespace {

/// Sorting key: first `prefix` alphanumeric characters, lower-cased.
std::string MakeKey(const std::string& value, size_t prefix) {
  std::string key;
  key.reserve(prefix);
  for (char c : value) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      key.push_back(static_cast<char>(std::tolower(uc)));
      if (key.size() >= prefix) break;
    }
  }
  return key;
}

struct Entry {
  std::string key;
  uint32_t row;
  bool from_b;
};

}  // namespace

Result<CandidateSet> SortedNeighborhoodBlocker::Block(const Table& a,
                                                      const Table& b) const {
  Result<AttrIndex> a_attr = a.schema().Find(attribute_);
  if (!a_attr.ok()) return a_attr.status();
  Result<AttrIndex> b_attr = b.schema().Find(attribute_);
  if (!b_attr.ok()) return b_attr.status();

  std::vector<Entry> entries;
  entries.reserve(a.num_rows() + b.num_rows());
  for (uint32_t row = 0; row < a.num_rows(); ++row) {
    std::string key = MakeKey(a.Value(row, *a_attr), key_prefix_);
    if (key.empty()) continue;  // records without a key cannot block
    entries.push_back(Entry{std::move(key), row, false});
  }
  for (uint32_t row = 0; row < b.num_rows(); ++row) {
    std::string key = MakeKey(b.Value(row, *b_attr), key_prefix_);
    if (key.empty()) continue;
    entries.push_back(Entry{std::move(key), row, true});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& x, const Entry& y) {
                     return x.key < y.key;
                   });

  CandidateSet out;
  // Slide the window: pair each entry with the A/B-opposite entries among
  // the previous window-1 entries.
  for (size_t i = 0; i < entries.size(); ++i) {
    const size_t start = i >= window_ - 1 ? i - (window_ - 1) : 0;
    for (size_t j = start; j < i; ++j) {
      if (entries[i].from_b == entries[j].from_b) continue;
      const Entry& ea = entries[i].from_b ? entries[j] : entries[i];
      const Entry& eb = entries[i].from_b ? entries[i] : entries[j];
      out.Add(PairId{ea.row, eb.row});
    }
  }
  out.SortAndDedup();
  return out;
}

}  // namespace emdbg
