#ifndef EMDBG_BLOCK_EXTERNAL_SORT_H_
#define EMDBG_BLOCK_EXTERNAL_SORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/block/candidate_pairs.h"
#include "src/util/memory_budget.h"
#include "src/util/spill_file.h"
#include "src/util/status.h"

namespace emdbg {

/// Shared knobs for the external (run-generation + multiway-merge) sorters
/// behind out-of-core blocking. The in-memory run buffer is the only
/// O(data) allocation; everything else is per-run cursors.
struct ExternalSortOptions {
  /// Directory for run files (must exist). Runs are named
  /// `<prefix>-<n>.spill` and deleted when the sorter is destroyed.
  std::string spill_dir;
  std::string file_prefix = "run";
  /// In-memory run buffer. When a budget denies the reservation the
  /// buffer halves until it fits (graceful degradation: smaller runs,
  /// more merge fan-in, identical output), down to a floor of 64 KiB.
  size_t buffer_bytes = 8u << 20;
  /// Bills the run buffer ("sort.buffer") and spill frames; may be null.
  MemoryBudget* budget = nullptr;
};

/// External sorter + deduplicator for candidate pairs: the out-of-core
/// equivalent of `CandidateSet::SortAndDedup()`. Add() pairs in any
/// order; when the buffer fills, a sorted run spills through SpillWriter;
/// Finish() seals the last run; then Next()/AtEnd() stream the globally
/// (a, b)-sorted, deduplicated sequence via a k-way merge — bit-identical
/// to the in-memory path, because sort-then-dedup of the same multiset
/// yields the same sequence no matter how it was partitioned into runs.
///
/// Small inputs (everything fits in the buffer) never touch disk: the
/// merge degenerates to iterating the sorted buffer.
class ExternalPairSorter {
 public:
  explicit ExternalPairSorter(ExternalSortOptions options);
  ~ExternalPairSorter();

  ExternalPairSorter(ExternalPairSorter&&) = default;
  ExternalPairSorter& operator=(ExternalPairSorter&&) = default;
  ExternalPairSorter(const ExternalPairSorter&) = delete;
  ExternalPairSorter& operator=(const ExternalPairSorter&) = delete;

  Status Add(PairId p);

  /// Seals input and prepares the merge. Add() is illegal afterwards.
  Status Finish();

  /// True once every pair has been emitted (Finish() required first).
  bool AtEnd() const {
    if (!finished_) return false;
    if (run_paths_.empty()) return mem_pos_ >= buffer_.size();
    return heap_.empty();
  }

  /// Emits the next pair of the sorted deduped sequence. OutOfRange at
  /// the end.
  Status Next(PairId* out);

  /// Drains up to `max_pairs` pairs into `out` (appended). Returns the
  /// number emitted (0 at end).
  Result<size_t> NextBatch(size_t max_pairs, std::vector<PairId>* out);

  /// Convenience for tests and small sets: drains everything into a
  /// CandidateSet.
  Result<CandidateSet> Drain();

  uint64_t pairs_added() const { return pairs_added_; }
  size_t num_runs() const { return runs_.size(); }
  uint64_t spilled_bytes() const { return spilled_bytes_; }

 private:
  struct RunCursor {
    SpillReader reader;
    uint64_t remaining = 0;
    PairId head;
  };
  /// Heap entry: run index ordered by its head pair (ties by run index
  /// for determinism).
  struct HeapItem {
    PairId head;
    uint32_t run;
  };

  Status SpillRun();
  Status EnsureBuffer();
  Status PushRun(uint32_t run);

  ExternalSortOptions options_;
  std::vector<PairId> buffer_;
  size_t buffer_capacity_ = 0;  ///< pairs; resolved lazily from budget
  size_t mem_pos_ = 0;          ///< cursor for the no-spill fast path
  MemoryReservation billing_;

  std::vector<std::string> run_paths_;
  std::vector<RunCursor> runs_;
  std::vector<HeapItem> heap_;  ///< min-heap on head
  uint64_t pairs_added_ = 0;
  uint64_t spilled_bytes_ = 0;
  bool finished_ = false;
  bool have_last_ = false;
  PairId last_{};
};

/// One record of the blocking entry stream: a row tagged with its
/// blocking key, originating side, and generation sequence number. The
/// sort order (key, seq) reproduces a std::stable_sort by key of entries
/// generated in seq order — which is exactly what the in-memory blockers
/// do — so external blocking sees groups and windows in the same order.
struct BlockEntry {
  std::string key;
  uint64_t seq = 0;
  uint32_t row = 0;
  bool from_b = false;

  friend bool operator<(const BlockEntry& x, const BlockEntry& y) {
    if (x.key != y.key) return x.key < y.key;
    return x.seq < y.seq;
  }
};

/// External sorter for BlockEntry records, ordered by (key, seq). Same
/// run/merge machinery as ExternalPairSorter, minus deduplication
/// (entries are unique by seq).
class ExternalEntrySorter {
 public:
  explicit ExternalEntrySorter(ExternalSortOptions options);
  ~ExternalEntrySorter();

  ExternalEntrySorter(ExternalEntrySorter&&) = default;
  ExternalEntrySorter& operator=(ExternalEntrySorter&&) = default;
  ExternalEntrySorter(const ExternalEntrySorter&) = delete;
  ExternalEntrySorter& operator=(const ExternalEntrySorter&) = delete;

  /// Adds an entry; `seq` is assigned internally (generation order).
  Status Add(std::string key, uint32_t row, bool from_b);

  Status Finish();
  bool AtEnd() const {
    if (!finished_) return false;
    if (run_paths_.empty()) return mem_pos_ >= buffer_.size();
    return heap_.empty();
  }
  Status Next(BlockEntry* out);

  uint64_t entries_added() const { return next_seq_; }
  size_t num_runs() const { return runs_.size(); }
  uint64_t spilled_bytes() const { return spilled_bytes_; }

 private:
  struct RunCursor {
    SpillReader reader;
    uint64_t remaining = 0;
    BlockEntry head;
  };
  struct HeapItem {
    const BlockEntry* head;
    uint32_t run;
  };

  Status SpillRun();
  Status PushRun(uint32_t run);
  static Status WriteEntry(SpillWriter& w, const BlockEntry& e);
  static Status ReadEntry(SpillReader& r, BlockEntry* e);

  ExternalSortOptions options_;
  std::vector<BlockEntry> buffer_;
  size_t buffer_bytes_used_ = 0;
  size_t buffer_bytes_cap_ = 0;
  size_t mem_pos_ = 0;  ///< cursor for the no-spill fast path
  MemoryReservation billing_;

  std::vector<std::string> run_paths_;
  std::vector<RunCursor> runs_;
  std::vector<HeapItem> heap_;
  uint64_t next_seq_ = 0;
  uint64_t spilled_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace emdbg

#endif  // EMDBG_BLOCK_EXTERNAL_SORT_H_
