#include "src/block/external_blocker.h"

#include <algorithm>
#include <cctype>
#include <utility>
#include <vector>

#include "src/util/string_util.h"

namespace emdbg {

namespace {

/// Sorting key for sorted-neighborhood: first `prefix` alphanumeric
/// characters, lower-cased — identical to the in-memory blocker's.
std::string SnKey(const std::string& value, size_t prefix) {
  std::string key;
  key.reserve(prefix);
  for (char c : value) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      key.push_back(static_cast<char>(std::tolower(uc)));
      if (key.size() >= prefix) break;
    }
  }
  return key;
}

/// Feeds both tables' rows into the entry sorter: A rows first, then B
/// rows, matching the generation order the in-memory blockers stable-sort.
/// `make_key` maps an attribute value to the blocking key ("" = skip).
template <typename KeyFn>
Status AddEntries(const Table& a, AttrIndex a_attr, const Table& b,
                  AttrIndex b_attr, KeyFn make_key,
                  ExternalEntrySorter* sorter) {
  for (uint32_t row = 0; row < a.num_rows(); ++row) {
    std::string key = make_key(a.Value(row, a_attr));
    if (key.empty()) continue;
    EMDBG_RETURN_IF_ERROR(sorter->Add(std::move(key), row, false));
  }
  for (uint32_t row = 0; row < b.num_rows(); ++row) {
    std::string key = make_key(b.Value(row, b_attr));
    if (key.empty()) continue;
    EMDBG_RETURN_IF_ERROR(sorter->Add(std::move(key), row, true));
  }
  return sorter->Finish();
}

}  // namespace

Status ExternalKeyBlocker::BlockToSorter(const Table& a, const Table& b,
                                         ExternalPairSorter* out) const {
  Result<AttrIndex> a_attr = a.schema().Find(options_.attribute);
  if (!a_attr.ok()) return a_attr.status();
  Result<AttrIndex> b_attr = b.schema().Find(options_.attribute);
  if (!b_attr.ok()) return b_attr.status();

  ExternalSortOptions entry_opts = options_.sort;
  entry_opts.file_prefix = options_.sort.file_prefix + "-keyent";
  ExternalEntrySorter entries(entry_opts);
  EMDBG_RETURN_IF_ERROR(AddEntries(
      a, *a_attr, b, *b_attr,
      [](const std::string& v) { return ToLowerAscii(TrimAscii(v)); },
      &entries));

  // Scan groups of equal key. Within a group, seq order puts all A rows
  // (added first, in row order) before all B rows, so buffering the
  // A side and streaming the B side emits the full cross product while
  // holding only one group's A rows in memory.
  std::string group_key;
  std::vector<uint32_t> group_a;
  bool in_group = false;
  BlockEntry e;
  while (!entries.AtEnd()) {
    EMDBG_RETURN_IF_ERROR(entries.Next(&e));
    if (!in_group || e.key != group_key) {
      group_key = std::move(e.key);
      group_a.clear();
      in_group = true;
    }
    if (!e.from_b) {
      group_a.push_back(e.row);
    } else {
      for (uint32_t a_row : group_a) {
        EMDBG_RETURN_IF_ERROR(out->Add(PairId{a_row, e.row}));
      }
    }
  }
  return out->Finish();
}

Result<CandidateSet> ExternalKeyBlocker::Block(const Table& a,
                                               const Table& b) const {
  ExternalSortOptions pair_opts = options_.sort;
  pair_opts.file_prefix = options_.sort.file_prefix + "-keypair";
  ExternalPairSorter pairs(pair_opts);
  EMDBG_RETURN_IF_ERROR(BlockToSorter(a, b, &pairs));
  return pairs.Drain();
}

Status ExternalSortedNeighborhoodBlocker::BlockToSorter(
    const Table& a, const Table& b, ExternalPairSorter* out) const {
  Result<AttrIndex> a_attr = a.schema().Find(options_.attribute);
  if (!a_attr.ok()) return a_attr.status();
  Result<AttrIndex> b_attr = b.schema().Find(options_.attribute);
  if (!b_attr.ok()) return b_attr.status();

  ExternalSortOptions entry_opts = options_.sort;
  entry_opts.file_prefix = options_.sort.file_prefix + "-snent";
  ExternalEntrySorter entries(entry_opts);
  const size_t prefix = options_.key_prefix;
  EMDBG_RETURN_IF_ERROR(AddEntries(
      a, *a_attr, b, *b_attr,
      [prefix](const std::string& v) { return SnKey(v, prefix); },
      &entries));

  // Slide the window over the (key, seq)-sorted stream — the same
  // sequence the in-memory blocker's stable_sort yields — keeping only
  // the previous window-1 entries in a ring buffer.
  struct Slot {
    uint32_t row;
    bool from_b;
  };
  const size_t span = options_.window - 1;
  std::vector<Slot> ring(span);
  size_t seen = 0;
  BlockEntry e;
  while (!entries.AtEnd()) {
    EMDBG_RETURN_IF_ERROR(entries.Next(&e));
    const Slot cur{e.row, e.from_b};
    const size_t lookback = std::min(seen, span);
    for (size_t k = 0; k < lookback; ++k) {
      const Slot& prev = ring[(seen - 1 - k) % span];
      if (prev.from_b == cur.from_b) continue;
      const uint32_t a_row = cur.from_b ? prev.row : cur.row;
      const uint32_t b_row = cur.from_b ? cur.row : prev.row;
      EMDBG_RETURN_IF_ERROR(out->Add(PairId{a_row, b_row}));
    }
    ring[seen % span] = cur;
    ++seen;
  }
  return out->Finish();
}

Result<CandidateSet> ExternalSortedNeighborhoodBlocker::Block(
    const Table& a, const Table& b) const {
  ExternalSortOptions pair_opts = options_.sort;
  pair_opts.file_prefix = options_.sort.file_prefix + "-snpair";
  ExternalPairSorter pairs(pair_opts);
  EMDBG_RETURN_IF_ERROR(BlockToSorter(a, b, &pairs));
  return pairs.Drain();
}

}  // namespace emdbg
