#include "src/serve/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/serve/wire.h"
#include "src/util/string_util.h"

namespace emdbg {

ServeClient::~ServeClient() { Close(); }

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Result<ServeClient> ServeClient::Connect(const std::string& host,
                                         uint16_t port) {
  return Connect(host, port, /*timeout_ms=*/-1);
}

Result<ServeClient> ServeClient::Connect(const std::string& host,
                                         uint16_t port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(StrFormat("socket: %s", std::strerror(errno)));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("bad IPv4 address '%s'", host.c_str()));
  }
  if (timeout_ms < 0) {
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      Status s = Status::IoError(
          StrFormat("connect %s:%u: %s", host.c_str(), port,
                    std::strerror(errno)));
      ::close(fd);
      return s;
    }
    return ServeClient(fd);
  }

  // Bounded handshake: non-blocking connect, poll for writability, read
  // the final verdict from SO_ERROR, then restore blocking mode so the
  // rest of the client keeps its simple blocking I/O.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    Status s =
        Status::IoError(StrFormat("fcntl: %s", std::strerror(errno)));
    ::close(fd);
    return s;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINPROGRESS) {
    Status s = Status::IoError(StrFormat("connect %s:%u: %s", host.c_str(),
                                         port, std::strerror(errno)));
    ::close(fd);
    return s;
  }
  if (rc != 0) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    int pr;
    do {
      pr = ::poll(&pfd, 1, timeout_ms);
    } while (pr < 0 && errno == EINTR);
    if (pr < 0) {
      Status s = Status::IoError(StrFormat("poll: %s", std::strerror(errno)));
      ::close(fd);
      return s;
    }
    if (pr == 0) {
      ::close(fd);
      return Status::DeadlineExceeded(
          StrFormat("connect %s:%u: timed out after %dms", host.c_str(),
                    port, timeout_ms));
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
      so_error = errno;
    }
    if (so_error != 0) {
      Status s = Status::IoError(StrFormat("connect %s:%u: %s", host.c_str(),
                                           port, std::strerror(so_error)));
      ::close(fd);
      return s;
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) {
    Status s =
        Status::IoError(StrFormat("fcntl: %s", std::strerror(errno)));
    ::close(fd);
    return s;
  }
  return ServeClient(fd);
}

Status ServeClient::Send(std::string_view command) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  return WriteFrameFd(fd_, command);
}

Result<std::string> ServeClient::ReadResponse() {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  std::string payload;
  EMDBG_RETURN_IF_ERROR(ReadFrameFd(fd_, &payload));
  return payload;
}

Result<std::string> ServeClient::Call(std::string_view command) {
  EMDBG_RETURN_IF_ERROR(Send(command));
  Result<std::string> resp = ReadResponse();
  if (!resp.ok()) return resp.status();
  std::string_view body = TrimAscii(*resp);
  if (StartsWith(body, "ok")) {
    return std::string(TrimAscii(body.substr(2)));
  }
  if (StartsWith(body, "err ")) {
    std::string_view rest = TrimAscii(body.substr(4));
    const size_t sp = rest.find(' ');
    const std::string_view name =
        sp == std::string_view::npos ? rest : rest.substr(0, sp);
    const std::string_view msg =
        sp == std::string_view::npos ? std::string_view()
                                     : TrimAscii(rest.substr(sp + 1));
    StatusCode code;
    if (StatusCodeFromName(name, &code)) {
      return Status(code, std::string(msg));
    }
    return Status::Internal("unparseable error response: " + *resp);
  }
  return Status::Internal("malformed response: " + *resp);
}

void ServeClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void ServeClient::CloseAbruptly() {
  if (fd_ < 0) return;
  struct linger lg;
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd_);
  fd_ = -1;
}

}  // namespace emdbg
