#include "src/serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>

#include "src/serve/session_digest.h"
#include "src/util/fault_injection.h"
#include "src/util/string_util.h"

namespace emdbg {

namespace {

std::string Err(const Status& s) {
  return StrFormat("err %s %s", StatusCodeName(s.code()),
                   s.message().c_str());
}

std::string Err(StatusCode code, const std::string& msg) {
  return StrFormat("err %s %s", StatusCodeName(code), msg.c_str());
}

/// Splits the leading space-delimited token off `rest`.
std::string_view TakeToken(std::string_view& rest) {
  rest = TrimAscii(rest);
  const size_t sp = rest.find(' ');
  std::string_view tok = sp == std::string_view::npos ? rest : rest.substr(0, sp);
  rest = sp == std::string_view::npos ? std::string_view()
                                      : TrimAscii(rest.substr(sp + 1));
  return tok;
}

bool TakeIndex(std::string_view& rest, size_t* out) {
  int64_t v = 0;
  if (!ParseInt64(TakeToken(rest), &v) || v < 0) return false;
  *out = static_cast<size_t>(v);
  return true;
}

/// Session tokens become directory names under durability_root, so the
/// grammar is deliberately restrictive.
bool ValidToken(std::string_view token) {
  if (token.empty() || token.size() > 64) return false;
  for (char c : token) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

/// Shared between the poll thread (reads) and workers (response writes).
/// The fd closes when the last reference drops, so a worker finishing a
/// request for an already-dropped connection can never write into a
/// recycled descriptor. Kill() makes all pending and future IO fail
/// without closing.
struct Server::ConnShared {
  explicit ConnShared(int fd_in) : fd(fd_in) {}
  ~ConnShared() {
    if (fd >= 0) ::close(fd);
  }
  void Kill() {
    if (alive.exchange(false, std::memory_order_relaxed)) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  const int fd;
  std::mutex write_mu;
  std::atomic<bool> alive{true};
};

struct Server::Connection {
  uint64_t id = 0;
  std::shared_ptr<ConnShared> shared;
  std::string read_buf;
  std::string session;  // attached session token ("" = none)
};

struct Server::Request {
  std::string line;
  std::shared_ptr<ConnShared> conn;
  Deadline deadline;
  CancellationToken cancel;
  /// Client idempotency key ("idem=K <cmd>"; empty = none).
  std::string idem_key;
};

struct Server::SessionEntry {
  std::string token;
  /// Per-session quota (child of the server budget; null when resource
  /// governance is off). Declared before `session` so the quota outlives
  /// the session that bills against it.
  std::unique_ptr<MemoryBudget> quota;
  std::unique_ptr<DebugSession> session;
  std::deque<Request> queue;
  bool running = false;
  bool in_ready = false;
  /// Wants durability; actual journaling starts after the first complete
  /// run (EnableDurability requires one).
  bool durable = false;
  /// Journal failure: live state dropped, disk authoritative, all work
  /// refused until `resume` rebuilds the session from the durable state.
  bool degraded = false;
  std::string dir;
  uint64_t attached_conn = 0;
  /// In-flight request bookkeeping so a dropped connection can cancel it.
  std::shared_ptr<ConnShared> running_conn;
  CancellationToken running_cancel;
  /// Watchdog bookkeeping (see Options::watchdog_interval_ms).
  std::chrono::steady_clock::time_point running_since;
  bool stuck_flagged = false;
  /// Acked responses by idempotency key, oldest first (bounded by
  /// Options::idempotency_window). Owned by whichever worker holds
  /// `running` — or by mu_ when idle — so it needs no lock of its own.
  /// Lives on the entry, not the DebugSession, so it survives degrade +
  /// resume: a retry of an edit acked before the degrade still replays.
  std::deque<std::pair<std::string, std::string>> idem_window;
};

Server::Server(std::shared_ptr<const Table> a, std::shared_ptr<const Table> b,
               std::shared_ptr<const CandidateSet> pairs, Options options)
    : a_(std::move(a)),
      b_(std::move(b)),
      pairs_(std::move(pairs)),
      options_(std::move(options)) {
  boot_id_ = static_cast<uint64_t>(::getpid()) ^
             static_cast<uint64_t>(
                 std::chrono::system_clock::now().time_since_epoch().count());
  if (options_.mem_budget_bytes > 0 || options_.session_quota_bytes > 0) {
    budget_ = std::make_unique<MemoryBudget>(options_.mem_budget_bytes,
                                             "server");
  }
}

Server::~Server() { Abort(); }

Status Server::Start() {
  std::lock_guard<std::mutex> l(mu_);
  if (state_ != State::kIdle) {
    return Status::FailedPrecondition("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(
        StrFormat("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  auto fail = [this](const char* what) {
    Status s = Status::IoError(StrFormat("%s: %s", what, std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  };
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 128) != 0) return fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    return fail("getsockname");
  }
  bound_port_ = ntohs(addr.sin_port);
  if (::pipe2(wake_fds_, O_NONBLOCK | O_CLOEXEC) != 0) return fail("pipe2");

  state_ = State::kRunning;
  if (budget_ != nullptr) {
    // Cross-tenant graceful degradation: under global pressure, evict
    // idle sessions' id caches first (cheapest to rebuild), then their
    // token caches. A session's *own* overflow is handled inside
    // PairContext/Memo (self-degradation), not here — its caches are in
    // active use by the worker that triggered the reserve.
    id_reclaimer_ = budget_->AddReclaimer(
        MemoryBudget::kReclaimIdCaches, "idle-session-id-caches",
        [this](size_t want) { return ReclaimSessionCaches(want, false); });
    token_reclaimer_ = budget_->AddReclaimer(
        MemoryBudget::kReclaimTokenCaches, "idle-session-token-caches",
        [this](size_t want) { return ReclaimSessionCaches(want, true); });
  }
  const size_t nw = std::max<size_t>(1, options_.num_workers);
  workers_.reserve(nw);
  for (size_t i = 0; i < nw; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  poll_thread_ = std::thread([this] { PollLoop(); });
  if (options_.watchdog_interval_ms > 0) {
    watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  }
  return Status::Ok();
}

std::string Server::ErrShed(const std::string& msg) const {
  return StrFormat("err ResourceExhausted %s retry_after_ms=%g",
                   msg.c_str(), options_.retry_after_ms);
}

size_t Server::ReclaimSessionCaches(size_t want, bool drop_tokens) {
  // Called from inside MemoryBudget::Reserve with the registry mutex
  // held; try_lock only — blocking on mu_ here could deadlock against a
  // thread that holds mu_ and waits on the registry (none exists today,
  // but the invariant is cheap to keep).
  std::unique_lock<std::mutex> l(mu_, std::try_to_lock);
  if (!l.owns_lock()) return 0;
  size_t freed = 0;
  for (auto& kv : sessions_) {
    if (freed >= want) break;
    SessionEntry& entry = *kv.second;
    // A running session's caches are mid-use by its worker (the cache
    // builds are serial-only); only idle sessions are evictable.
    if (entry.running || entry.session == nullptr) continue;
    PairContext& ctx = entry.session->context();
    freed += ctx.DropIdCaches();
    if (drop_tokens) {
      const size_t before = ctx.TokenCacheBytes();
      ctx.ClearTokenCaches();
      freed += before - ctx.TokenCacheBytes();
    }
  }
  return freed;
}

void Server::WatchdogLoop() {
  std::unique_lock<std::mutex> l(mu_);
  const auto interval = std::chrono::duration<double, std::milli>(
      options_.watchdog_interval_ms);
  while (!watchdog_exit_) {
    watchdog_cv_.wait_for(l, interval, [&] { return watchdog_exit_; });
    if (watchdog_exit_) return;
    const auto now = std::chrono::steady_clock::now();
    for (auto& kv : sessions_) {
      SessionEntry& entry = *kv.second;
      if (!entry.running || entry.stuck_flagged) continue;
      const double ms =
          std::chrono::duration<double, std::milli>(now - entry.running_since)
              .count();
      if (ms >= options_.stuck_task_ms) {
        // Surface, don't kill: the request may legitimately be slow, and
        // cancellation is already the client's lever (deadlines). The
        // counter makes a wedged worker visible in `stats`.
        entry.stuck_flagged = true;
        stats_.tasks_stuck++;
      }
    }
  }
}

void Server::WriteResponse(const std::shared_ptr<ConnShared>& conn,
                           std::string_view payload) {
  if (!conn || !conn->alive.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> wl(conn->write_mu);
  if (!conn->alive.load(std::memory_order_relaxed)) return;
  Status s = WriteFrameFd(conn->fd, payload);
  if (!s.ok()) conn->Kill();
}

void Server::ScheduleLocked(const std::string& token, SessionEntry& entry) {
  if (entry.running || entry.in_ready || entry.degraded ||
      entry.queue.empty()) {
    return;
  }
  ready_.push_back(token);
  entry.in_ready = true;
  work_cv_.notify_one();
}

// ---------------------------------------------------------------------------
// Poll thread: accept, read, frame, admit.
// ---------------------------------------------------------------------------

void Server::PollLoop() {
  std::vector<struct pollfd> pfds;
  std::vector<uint64_t> owner;  // 0 = wake pipe, 1 = listener, else conn id
  char buf[65536];
  for (;;) {
    pfds.clear();
    owner.clear();
    bool accepting = false;
    {
      std::lock_guard<std::mutex> l(mu_);
      if (state_ == State::kStopped) return;
      // Keep polling the listener while draining so new connections get an
      // explicit refusal instead of hanging in the backlog.
      accepting = listen_fd_ >= 0;
      pfds.push_back({wake_fds_[0], POLLIN, 0});
      owner.push_back(0);
      if (accepting) {
        pfds.push_back({listen_fd_, POLLIN, 0});
        owner.push_back(1);
      }
      for (const auto& kv : conns_) {
        pfds.push_back({kv.second->shared->fd, POLLIN, 0});
        owner.push_back(kv.first);
      }
    }

    const int rc = ::poll(pfds.data(), pfds.size(), 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      // Transient poll failure: back off rather than spin.
      struct timespec ts = {0, 50 * 1000 * 1000};
      ::nanosleep(&ts, nullptr);
      continue;
    }

    for (size_t i = 0; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      if (owner[i] == 0) {
        // Drain the wake pipe.
        char w[64];
        while (::read(wake_fds_[0], w, sizeof(w)) > 0) {
        }
        continue;
      }
      if (owner[i] == 1) {
        for (;;) {
          const int cfd = ::accept4(listen_fd_, nullptr, nullptr,
                                    SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (cfd < 0) break;
          bool shed = false;
          std::string shed_msg;
          {
            std::lock_guard<std::mutex> l(mu_);
            if (state_ != State::kRunning) {
              shed = true;
              shed_msg = Err(StatusCode::kFailedPrecondition,
                             "server shutting down");
            } else if (FaultFire("serve.accept")) {
              shed = true;
              shed_msg.clear();  // simulated network drop: no response
              stats_.connections_shed++;
            } else if (conns_.size() >= options_.max_connections) {
              shed = true;
              shed_msg = Err(StatusCode::kResourceExhausted,
                             StrFormat("connection limit reached (%zu)",
                                       options_.max_connections));
              stats_.connections_shed++;
            } else {
              auto conn = std::make_unique<Connection>();
              conn->id = next_conn_id_++;
              conn->shared = std::make_shared<ConnShared>(cfd);
              conns_.emplace(conn->id, std::move(conn));
              stats_.connections_accepted++;
            }
          }
          if (shed) {
            if (!shed_msg.empty()) (void)WriteFrameFd(cfd, shed_msg);
            ::close(cfd);
          }
        }
        continue;
      }

      // Connection readable (or hung up).
      Connection* conn = nullptr;
      {
        std::lock_guard<std::mutex> l(mu_);
        auto it = conns_.find(owner[i]);
        if (it != conns_.end()) conn = it->second.get();
      }
      if (conn == nullptr) continue;  // dropped since the poll snapshot
      bool dead = false;
      for (;;) {
        const ssize_t n = ::read(conn->shared->fd, buf, sizeof(buf));
        if (n > 0) {
          if (FaultFire("serve.read")) {
            dead = true;  // simulated mid-stream connection loss
            break;
          }
          conn->read_buf.append(buf, static_cast<size_t>(n));
          if (conn->read_buf.size() > options_.max_frame_bytes + 4) {
            // More buffered than one max frame: frame extraction below
            // either consumes it or flags a protocol error.
          }
          continue;
        }
        if (n == 0) {
          dead = true;
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        dead = true;
        break;
      }
      if (!dead) {
        std::string payload;
        bool proto_error = false;
        while (ExtractFrame(&conn->read_buf, &payload,
                            options_.max_frame_bytes, &proto_error)) {
          HandleFrame(*conn, payload);
        }
        if (proto_error) {
          WriteResponse(conn->shared,
                        Err(StatusCode::kParseError, "oversized frame"));
          dead = true;
        }
      }
      if (dead) DropConnection(owner[i]);
    }
  }
}

void Server::DropConnection(uint64_t conn_id) {
  std::shared_ptr<ConnShared> shared;
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    shared = it->second->shared;
    // Cancel the in-flight request of the session this connection was
    // driving; queued requests stay but are skipped at execution (their
    // conn is dead), which frees their queue slots in order.
    for (auto& kv : sessions_) {
      SessionEntry& entry = *kv.second;
      if (entry.attached_conn == conn_id) entry.attached_conn = 0;
      if (entry.running && entry.running_conn == shared) {
        entry.running_cancel.RequestCancel();
      }
    }
    conns_.erase(it);
  }
  shared->Kill();
}

// ---------------------------------------------------------------------------
// Frame handling (poll thread).
// ---------------------------------------------------------------------------

void Server::HandleFrame(Connection& conn, std::string_view payload) {
  std::string_view line = TrimAscii(payload);
  // Optional idempotency key prefix: "idem=K <command>". The key rides
  // on the queued request; the command itself is parsed (and stored)
  // without it, so replay detection never changes execution semantics.
  std::string idem_key;
  if (StartsWith(line, "idem=")) {
    std::string_view after = line;
    const std::string_view tok = TakeToken(after);
    idem_key = std::string(tok.substr(5));
    if (idem_key.empty() || idem_key.size() > 64) {
      WriteResponse(conn.shared,
                    Err(StatusCode::kParseError,
                        "idempotency key must be 1-64 characters"));
      return;
    }
    line = after;
  }
  std::string_view rest = line;
  const std::string_view verb = TakeToken(rest);

  if (verb == "ping") {
    WriteResponse(conn.shared, "ok pong");
    return;
  }
  if (verb == "stats") {
    std::string resp;
    {
      std::lock_guard<std::mutex> l(mu_);
      Stats gov = stats_;
      FillGovernorStatsLocked(gov);
      resp = StrFormat(
          "ok sessions=%zu conns=%zu opened=%llu resumed=%llu degraded=%llu "
          "executed=%llu shed_requests=%llu shed_conns=%llu expired=%llu "
          "dropped=%llu mem_used=%zu mem_limit=%zu mem_denials=%llu "
          "reclaims=%llu reclaimed=%llu replays=%llu stuck=%llu "
          "memo_bytes=%zu token_bytes=%zu id_bytes=%zu interner_bytes=%zu",
          sessions_.size(), conns_.size(),
          static_cast<unsigned long long>(stats_.sessions_opened),
          static_cast<unsigned long long>(stats_.sessions_resumed),
          static_cast<unsigned long long>(stats_.sessions_degraded),
          static_cast<unsigned long long>(stats_.requests_executed),
          static_cast<unsigned long long>(stats_.requests_shed),
          static_cast<unsigned long long>(stats_.connections_shed),
          static_cast<unsigned long long>(stats_.requests_expired),
          static_cast<unsigned long long>(stats_.requests_dropped),
          gov.mem_used_bytes, gov.mem_limit_bytes,
          static_cast<unsigned long long>(gov.mem_denials),
          static_cast<unsigned long long>(gov.mem_reclaim_runs),
          static_cast<unsigned long long>(gov.mem_reclaimed_bytes),
          static_cast<unsigned long long>(gov.idem_replays),
          static_cast<unsigned long long>(gov.tasks_stuck), gov.memo_bytes,
          gov.token_cache_bytes, gov.id_cache_bytes, gov.interner_bytes);
    }
    WriteResponse(conn.shared, resp);
    return;
  }

  {
    std::lock_guard<std::mutex> l(mu_);
    if (state_ != State::kRunning) {
      // Draining: queued work finishes, nothing new is admitted.
      WriteResponse(conn.shared, Err(StatusCode::kFailedPrecondition,
                                     "server draining; no new requests"));
      return;
    }
  }

  if (verb == "open") {
    HandleOpen(conn, rest);
    return;
  }
  if (verb == "attach") {
    HandleAttach(conn, rest);
    return;
  }
  if (verb == "resume") {
    HandleResume(conn, rest);
    return;
  }

  // Everything else runs against the attached session via the queue.
  if (conn.session.empty()) {
    WriteResponse(conn.shared,
                  Err(StatusCode::kFailedPrecondition,
                      "no session attached (use open/attach/resume)"));
    return;
  }
  std::string resp;
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = sessions_.find(conn.session);
    if (it == sessions_.end()) {
      resp = Err(StatusCode::kNotFound, "session closed");
    } else {
      SessionEntry& entry = *it->second;
      if (entry.degraded && verb == "close") {
        // Closing a degraded session frees its slot without a resume.
        sessions_.erase(it);
        resp = "ok closed";
      } else if (entry.degraded) {
        resp = Err(StatusCode::kFailedPrecondition,
                   "session degraded by a journal failure; resume " +
                       conn.session + " to continue");
      } else if (entry.queue.size() >= options_.max_queue_per_session) {
        stats_.requests_shed++;
        resp = ErrShed(StrFormat("session queue full (%zu queued)",
                                 entry.queue.size()));
      } else {
        Request req;
        req.line = std::string(line);
        req.conn = conn.shared;
        req.idem_key = std::move(idem_key);
        if (verb == "run") {
          // An explicit run deadline starts counting at admission, like
          // the default one, so queue time counts against it.
          std::string_view args = rest;
          double ms = 0;
          if (ParseDouble(TakeToken(args), &ms) && ms > 0) {
            req.deadline = Deadline::AfterMillis(ms);
          }
        }
        if (!req.deadline.has_deadline() && options_.default_deadline_ms > 0) {
          req.deadline = Deadline::AfterMillis(options_.default_deadline_ms);
        }
        entry.queue.push_back(std::move(req));
        queued_requests_++;
        ScheduleLocked(conn.session, entry);
        return;  // response comes from the worker
      }
    }
  }
  WriteResponse(conn.shared, resp);
}

void Server::HandleOpen(Connection& conn, std::string_view rest) {
  bool durable = false;
  std::string token;
  while (!rest.empty()) {
    const std::string_view tok = TakeToken(rest);
    if (tok == "durable") {
      durable = true;
    } else if (StartsWith(tok, "token=")) {
      token = std::string(tok.substr(6));
    } else if (!tok.empty()) {
      WriteResponse(conn.shared,
                    Err(StatusCode::kParseError,
                        "open takes [durable] [token=T]"));
      return;
    }
  }
  if (!token.empty() && !ValidToken(token)) {
    WriteResponse(conn.shared,
                  Err(StatusCode::kParseError,
                      "token must be [A-Za-z0-9_-]{1,64}"));
    return;
  }
  std::string resp;
  {
    std::lock_guard<std::mutex> l(mu_);
    if (durable && options_.durability_root.empty()) {
      resp = Err(StatusCode::kFailedPrecondition,
                 "durability not configured on this server");
    } else if (FaultFire("serve.session")) {
      stats_.requests_shed++;
      resp = ErrShed("session allocation failed (injected)");
    } else if (sessions_.size() >= options_.max_sessions) {
      stats_.requests_shed++;
      resp = ErrShed(StrFormat("session table full (%zu sessions)",
                               sessions_.size()));
    } else if (budget_ != nullptr && !budget_->unlimited() &&
               budget_->remaining() == 0) {
      // Admission control: a fully consumed budget means a new session
      // could not even warm its caches; shed at the door with a hint
      // instead of letting it starve inside.
      stats_.requests_shed++;
      resp = ErrShed(StrFormat("memory budget exhausted (%zu bytes in use)",
                               budget_->used()));
    } else {
      if (token.empty()) {
        token = StrFormat("s%llu-%llx",
                          static_cast<unsigned long long>(next_token_++),
                          static_cast<unsigned long long>(boot_id_ & 0xffff));
      }
      if (sessions_.count(token) != 0) {
        resp = Err(StatusCode::kAlreadyExists,
                   "session token already in use");
      } else {
        DebugSession::Options so;
        so.num_threads = options_.session_threads;
        so.block_size = options_.session_block_size;
        if (options_.session_sharded) {
          // Out-of-core sessions run in batch mode: sharding needs the
          // memo non-resident, which rules out incremental maintenance.
          so.sharded = true;
          so.shard_pairs = options_.session_shard_pairs;
          so.incremental = false;
        }
        auto entry = std::make_unique<SessionEntry>();
        entry->token = token;
        if (budget_ != nullptr) {
          entry->quota = std::make_unique<MemoryBudget>(
              budget_.get(), options_.session_quota_bytes,
              "session/" + token);
          so.budget = entry->quota.get();
        }
        entry->session =
            std::make_unique<DebugSession>(a_, b_, pairs_, so);
        entry->durable = durable;
        if (durable) entry->dir = options_.durability_root + "/" + token;
        entry->attached_conn = conn.id;
        sessions_.emplace(token, std::move(entry));
        stats_.sessions_opened++;
        conn.session = token;
        resp = "ok token=" + token;
      }
    }
  }
  WriteResponse(conn.shared, resp);
}

void Server::HandleAttach(Connection& conn, std::string_view rest) {
  const std::string token(TakeToken(rest));
  std::string resp;
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = sessions_.find(token);
    if (it == sessions_.end()) {
      resp = Err(StatusCode::kNotFound,
                 "no live session with that token (durable sessions: resume)");
    } else {
      SessionEntry& entry = *it->second;
      if (entry.attached_conn != 0 && entry.attached_conn != conn.id &&
          conns_.count(entry.attached_conn) != 0) {
        resp = Err(StatusCode::kFailedPrecondition,
                   "session attached to another live connection");
      } else {
        entry.attached_conn = conn.id;
        conn.session = token;
        resp = entry.degraded ? "ok token=" + token + " degraded=1"
                              : "ok token=" + token;
      }
    }
  }
  WriteResponse(conn.shared, resp);
}

void Server::HandleResume(Connection& conn, std::string_view rest) {
  const std::string token(TakeToken(rest));
  if (!ValidToken(token)) {
    WriteResponse(conn.shared, Err(StatusCode::kParseError,
                                   "resume takes a session token"));
    return;
  }
  std::string resp;
  {
    std::lock_guard<std::mutex> l(mu_);
    if (options_.durability_root.empty()) {
      resp = Err(StatusCode::kFailedPrecondition,
                 "durability not configured on this server");
    } else {
      auto it = sessions_.find(token);
      SessionEntry* entry = nullptr;
      if (it != sessions_.end()) {
        if (!it->second->degraded) {
          resp = Err(StatusCode::kFailedPrecondition,
                     "session is live; use attach");
        } else if (it->second->running) {
          // A worker still owns the old session object; let it finish.
          resp = Err(StatusCode::kFailedPrecondition,
                     "session busy; retry resume shortly");
        } else {
          entry = it->second.get();
        }
      } else if (FaultFire("serve.session")) {
        stats_.requests_shed++;
        resp = ErrShed("session allocation failed (injected)");
      } else if (sessions_.size() >= options_.max_sessions) {
        stats_.requests_shed++;
        resp = ErrShed(StrFormat("session table full (%zu sessions)",
                                 sessions_.size()));
      } else {
        auto fresh = std::make_unique<SessionEntry>();
        fresh->token = token;
        entry = fresh.get();
        sessions_.emplace(token, std::move(fresh));
      }
      if (entry != nullptr) {
        DebugSession::Options so;
        so.num_threads = options_.session_threads;
        so.block_size = options_.session_block_size;
        // Note: no sharding here — resume is durable-only, and durability
        // requires incremental sessions, which sharding rules out.
        if (budget_ != nullptr) {
          // Reuse the degraded entry's quota (its billing drained when
          // the old session object was dropped); fresh entries get a
          // fresh child.
          if (entry->quota == nullptr) {
            entry->quota = std::make_unique<MemoryBudget>(
                budget_.get(), options_.session_quota_bytes,
                "session/" + token);
          }
          so.budget = entry->quota.get();
        }
        entry->session = std::make_unique<DebugSession>(a_, b_, pairs_, so);
        entry->durable = true;
        entry->degraded = false;  // re-flagged by the worker on failure
        entry->dir = options_.durability_root + "/" + token;
        entry->attached_conn = conn.id;
        conn.session = token;
        Request req;
        req.line = "resume " + token;
        req.conn = conn.shared;
        entry->queue.push_front(std::move(req));  // recovery runs first
        queued_requests_++;
        ScheduleLocked(token, *entry);
        return;  // worker responds after Recover()
      }
    }
  }
  WriteResponse(conn.shared, resp);
}

// ---------------------------------------------------------------------------
// Workers: round-robin session dispatch.
// ---------------------------------------------------------------------------

void Server::WorkerLoop() {
  std::unique_lock<std::mutex> l(mu_);
  for (;;) {
    work_cv_.wait(l, [&] { return workers_exit_ || !ready_.empty(); });
    if (workers_exit_ && (abort_ || ready_.empty())) return;
    if (ready_.empty()) continue;
    const std::string token = std::move(ready_.front());
    ready_.pop_front();
    auto it = sessions_.find(token);
    if (it == sessions_.end()) continue;  // closed while queued
    SessionEntry& entry = *it->second;
    entry.in_ready = false;
    if (entry.running || entry.degraded || entry.queue.empty()) continue;
    Request req = std::move(entry.queue.front());
    entry.queue.pop_front();
    queued_requests_--;
    entry.running = true;
    running_requests_++;
    entry.running_conn = req.conn;
    entry.running_cancel = req.cancel;
    entry.running_since = std::chrono::steady_clock::now();
    entry.stuck_flagged = false;
    // Idempotency replay: a redelivered key answers with the response the
    // original delivery already acknowledged, without re-executing — this
    // is what makes client retries exactly-once for edits. Checked under
    // mu_ (the window belongs to the session entry).
    std::string replay_resp;
    bool replay = false;
    if (!req.idem_key.empty()) {
      for (const auto& kv : entry.idem_window) {
        if (kv.first == req.idem_key) {
          replay_resp = kv.second;
          replay = true;
          break;
        }
      }
    }
    l.unlock();

    std::string deferred_resp;
    std::string executed_resp;
    bool close_session = false;
    if (replay) {
      WriteResponse(req.conn, replay_resp);
    } else {
      close_session =
          ExecuteRequest(token, entry, req, &deferred_resp, &executed_resp);
    }

    std::deque<Request> doomed;
    l.lock();
    running_requests_--;
    stats_.requests_executed++;
    if (replay) stats_.idem_replays++;
    auto it2 = sessions_.find(token);
    if (it2 != sessions_.end()) {
      SessionEntry& e2 = *it2->second;
      e2.running = false;
      e2.running_conn.reset();
      e2.running_cancel = CancellationToken();
      if (close_session) {
        doomed.swap(e2.queue);
        queued_requests_ -= doomed.size();
        sessions_.erase(it2);
      } else {
        // Only acknowledged ("ok ...") responses enter the dedup window:
        // a stored error would wedge every retry of that key, while
        // re-executing a failed edit is safe — nothing was committed.
        if (!replay && !req.idem_key.empty() &&
            options_.idempotency_window > 0 &&
            executed_resp.compare(0, 2, "ok") == 0) {
          e2.idem_window.emplace_back(req.idem_key, executed_resp);
          while (e2.idem_window.size() > options_.idempotency_window) {
            e2.idem_window.pop_front();
          }
        }
        // Re-enqueue at the tail: one request per turn keeps heavy
        // sessions from starving the rest (round-robin fairness).
        ScheduleLocked(token, e2);
      }
    }
    if (queued_requests_ == 0 && running_requests_ == 0) {
      drain_cv_.notify_all();
    }
    l.unlock();
    if (close_session) {
      // Acknowledged only after the slot is free: a client that reads
      // "ok closed" may immediately re-open without racing the erase.
      WriteResponse(req.conn, deferred_resp);
    }
    for (Request& d : doomed) {
      WriteResponse(d.conn, Err(StatusCode::kNotFound, "session closed"));
    }
    l.lock();
  }
}

bool Server::ExecuteRequest(const std::string& token, SessionEntry& entry,
                            Request& req, std::string* deferred_resp,
                            std::string* executed_resp) {
  if (FaultFire("serve.slow_task")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (!req.conn->alive.load(std::memory_order_relaxed)) {
    // The requester vanished; running an edit now would commit work the
    // client never saw acknowledged.
    std::lock_guard<std::mutex> l(mu_);
    stats_.requests_dropped++;
    return false;
  }
  if (req.deadline.expired()) {
    WriteResponse(req.conn, Err(StatusCode::kDeadlineExceeded,
                                "request expired before execution"));
    std::lock_guard<std::mutex> l(mu_);
    stats_.requests_expired++;
    return false;
  }
  bool close_session = false;
  const std::string resp = ExecuteSessionCommand(entry, req, &close_session);
  if (close_session) {
    *deferred_resp = resp;  // written by the caller after the erase
  } else {
    *executed_resp = resp;  // recorded in the idem window if "ok ..."
    WriteResponse(req.conn, resp);
  }
  return close_session;
}

void Server::DegradeSession(SessionEntry& entry, const Status& why) {
  std::deque<Request> doomed;
  {
    std::lock_guard<std::mutex> l(mu_);
    entry.degraded = true;
    // Drop the live state: the fsync'd journal + checkpoint on disk are
    // authoritative now, and resume rebuilds exactly from them. Keeping a
    // possibly-diverged in-memory session would let later edits build on
    // state the client was never promised.
    entry.session.reset();
    stats_.sessions_degraded++;
    doomed.swap(entry.queue);
    queued_requests_ -= doomed.size();
    if (queued_requests_ == 0 && running_requests_ == 0) {
      drain_cv_.notify_all();
    }
  }
  const std::string msg =
      Err(StatusCode::kFailedPrecondition,
          "session degraded (" + why.message() + "); resume " + entry.token +
              " to continue");
  for (Request& d : doomed) WriteResponse(d.conn, msg);
}

std::string Server::ExecuteSessionCommand(SessionEntry& entry, Request& req,
                                          bool* close_session) {
  std::string_view rest = req.line;
  const std::string_view verb = TakeToken(rest);
  DebugSession& s = *entry.session;

  // Journal/checkpoint failures on a durable session poison it: the
  // response is the error, and the session degrades so nothing can build
  // on top of in-memory state that disk never saw.
  auto finish_edit = [&](const Status& st,
                         const std::string& ok_what) -> std::string {
    if (st.ok()) {
      if (s.has_run()) {
        return StrFormat("ok %s matches=%zu", ok_what.c_str(),
                         s.Run().Count());
      }
      return "ok " + ok_what;
    }
    if (st.code() == StatusCode::kIoError && entry.durable && s.durable()) {
      const std::string resp =
          Err(st.code(), st.message() + "; session degraded, resume " +
                             entry.token + " to continue");
      DegradeSession(entry, st);  // invalidates `s`
      return resp;
    }
    if (st.code() == StatusCode::kResourceExhausted) {
      // Budget denial: the edit did not commit, so a retry after pressure
      // passes is safe — tell the client when.
      return ErrShed(st.message());
    }
    return Err(st);
  };

  if (verb == "resume") {
    Status rs = s.Recover(entry.dir, options_.checkpoint_every);
    if (!rs.ok()) {
      // ResourceExhausted recovery failures get the retry hint: the disk
      // state is intact, so resuming again once pressure passes succeeds.
      const std::string resp = rs.code() == StatusCode::kResourceExhausted
                                   ? ErrShed(rs.message())
                                   : Err(rs);
      DegradeSession(entry, rs);
      return resp;
    }
    {
      std::lock_guard<std::mutex> l(mu_);
      stats_.sessions_resumed++;
    }
    return StrFormat("ok token=%s matches=%zu", entry.token.c_str(),
                     s.Run().Count());
  }

  if (verb == "run") {
    RunControl control(req.cancel, req.deadline);
    MatchResult r = s.Run(control);
    if (r.partial) {
      if (r.status.code() == StatusCode::kResourceExhausted &&
          r.pairs_completed == 0) {
        // Nothing ran at all — a pure budget denial, worth a retry hint
        // instead of a partial-progress report.
        return ErrShed(r.status.message());
      }
      return StrFormat("ok partial=1 reason=%s completed=%zu matches=%zu",
                       StatusCodeName(r.status.code()), r.pairs_completed,
                       r.MatchCount());
    }
    if (entry.durable && !s.durable()) {
      // Durability starts at the first complete run; a failure here is
      // retryable (`run` again) because nothing was journaled yet.
      Status ds = s.EnableDurability(entry.dir, options_.checkpoint_every);
      if (!ds.ok()) {
        return Err(ds.code(),
                   "run ok but durability enable failed (retry run): " +
                       ds.message());
      }
    }
    return StrFormat("ok matches=%zu pairs=%zu", r.MatchCount(),
                     s.candidates().size());
  }

  if (verb == "add_rule") {
    if (TrimAscii(rest).empty()) {
      return Err(StatusCode::kParseError, "add_rule takes a rule in DSL");
    }
    Result<RuleId> r = s.AddRuleText(rest);
    if (!r.ok()) return finish_edit(r.status(), "");
    const std::vector<Rule>& rules = s.function().rules();
    std::string what = "rule=?";
    for (size_t i = 0; i < rules.size(); ++i) {
      if (rules[i].id() == *r) {
        what = StrFormat("rule=%s pos=%zu", rules[i].name().c_str(), i);
        break;
      }
    }
    return finish_edit(Status::Ok(), what);
  }
  if (verb == "remove_rule") {
    size_t pos = 0;
    if (!TakeIndex(rest, &pos)) {
      return Err(StatusCode::kParseError, "remove_rule takes a rule index");
    }
    const std::vector<Rule>& rules = s.function().rules();
    if (pos >= rules.size()) {
      return Err(StatusCode::kNotFound, "rule index out of range");
    }
    return finish_edit(s.RemoveRule(rules[pos].id()), "removed");
  }
  if (verb == "add_pred") {
    size_t pos = 0;
    if (!TakeIndex(rest, &pos)) {
      return Err(StatusCode::kParseError,
                 "add_pred takes a rule index and a predicate");
    }
    const std::vector<Rule>& rules = s.function().rules();
    if (pos >= rules.size()) {
      return Err(StatusCode::kNotFound, "rule index out of range");
    }
    Result<Rule> parsed = ParseRule(rest, s.catalog());
    if (!parsed.ok()) return Err(parsed.status());
    if (parsed->size() != 1) {
      return Err(StatusCode::kParseError, "expected exactly one predicate");
    }
    return finish_edit(
        s.AddPredicate(rules[pos].id(), parsed->predicate(0)).status(),
        "added");
  }
  if (verb == "remove_pred") {
    size_t rpos = 0, ppos = 0;
    if (!TakeIndex(rest, &rpos) || !TakeIndex(rest, &ppos)) {
      return Err(StatusCode::kParseError,
                 "remove_pred takes rule and predicate indices");
    }
    const std::vector<Rule>& rules = s.function().rules();
    if (rpos >= rules.size() || ppos >= rules[rpos].size()) {
      return Err(StatusCode::kNotFound, "index out of range");
    }
    return finish_edit(
        s.RemovePredicate(rules[rpos].id(), rules[rpos].predicate(ppos).id),
        "removed");
  }
  if (verb == "set_threshold") {
    size_t rpos = 0, ppos = 0;
    double threshold = 0;
    if (!TakeIndex(rest, &rpos) || !TakeIndex(rest, &ppos) ||
        !ParseDouble(TrimAscii(rest), &threshold)) {
      return Err(StatusCode::kParseError,
                 "set_threshold takes rule index, predicate index, value");
    }
    const std::vector<Rule>& rules = s.function().rules();
    if (rpos >= rules.size() || ppos >= rules[rpos].size()) {
      return Err(StatusCode::kNotFound, "index out of range");
    }
    return finish_edit(
        s.SetThreshold(rules[rpos].id(), rules[rpos].predicate(ppos).id,
                       threshold),
        "set");
  }
  if (verb == "undo") {
    return finish_edit(s.Undo(), "undone");
  }
  if (verb == "rules") {
    const std::vector<Rule>& rules = s.function().rules();
    std::string resp = StrFormat("ok rules=%zu", rules.size());
    for (const Rule& r : rules) {
      resp += " ; ";
      resp += r.empty() ? r.name() + " (empty)" : RuleToDsl(r, s.catalog());
    }
    return resp;
  }
  if (verb == "digest") {
    const uint32_t d = SessionStateDigest(s);
    return StrFormat("ok digest=%08x matches=%zu", d, s.Run().Count());
  }
  if (verb == "checkpoint") {
    if (!s.durable()) {
      return Err(StatusCode::kFailedPrecondition,
                 "session is not durable (or has not completed a run)");
    }
    return finish_edit(s.Checkpoint(), "checkpointed");
  }
  if (verb == "close") {
    *close_session = true;
    if (s.durable()) {
      Status cs = s.Checkpoint();
      if (!cs.ok()) {
        // Still close, but tell the client the final checkpoint failed;
        // the journal already holds every acknowledged edit.
        return Err(cs.code(),
                   "closed, but final checkpoint failed: " + cs.message());
      }
    }
    return "ok closed";
  }
  return Err(StatusCode::kParseError,
             "unknown command: " + std::string(verb));
}

// ---------------------------------------------------------------------------
// Shutdown paths.
// ---------------------------------------------------------------------------

void Server::JoinThreads() {
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (poll_thread_.joinable()) poll_thread_.join();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  // Threads are gone, so no Reserve can be in flight: now it is safe to
  // unhook the reclaimers that capture `this`.
  if (budget_ != nullptr) {
    budget_->RemoveReclaimer(id_reclaimer_);
    budget_->RemoveReclaimer(token_reclaimer_);
  }
}

void Server::Shutdown() {
  {
    std::unique_lock<std::mutex> l(mu_);
    if (state_ != State::kRunning) return;
    state_ = State::kDraining;
    if (wake_fds_[1] >= 0) (void)!::write(wake_fds_[1], "w", 1);
    // Everything already admitted drains through the workers; new
    // requests are refused above.
    drain_cv_.wait(
        l, [&] { return queued_requests_ == 0 && running_requests_ == 0; });
    workers_exit_ = true;
    watchdog_exit_ = true;
    work_cv_.notify_all();
    watchdog_cv_.notify_all();
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> l(mu_);
    state_ = State::kStopped;
    if (wake_fds_[1] >= 0) (void)!::write(wake_fds_[1], "w", 1);
  }
  if (poll_thread_.joinable()) poll_thread_.join();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  if (budget_ != nullptr) {
    budget_->RemoveReclaimer(id_reclaimer_);
    budget_->RemoveReclaimer(token_reclaimer_);
  }

  // All threads are gone: checkpoint every durable session so restart
  // recovery replays an empty (or tiny) journal.
  std::lock_guard<std::mutex> l(mu_);
  for (auto& kv : sessions_) {
    SessionEntry& entry = *kv.second;
    if (entry.session != nullptr && entry.session->durable()) {
      (void)entry.session->Checkpoint();  // journal still holds the edits
    }
  }
  sessions_.clear();
  for (auto& kv : conns_) kv.second->shared->Kill();
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void Server::Abort() {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (state_ == State::kIdle || state_ == State::kStopped) {
      state_ = State::kStopped;
      return;
    }
    state_ = State::kStopped;
    abort_ = true;
    workers_exit_ = true;
    watchdog_exit_ = true;
    for (auto& kv : sessions_) {
      if (kv.second->running) kv.second->running_cancel.RequestCancel();
    }
    for (auto& kv : conns_) kv.second->shared->Kill();
    work_cv_.notify_all();
    watchdog_cv_.notify_all();
    if (wake_fds_[1] >= 0) (void)!::write(wake_fds_[1], "w", 1);
  }
  JoinThreads();

  std::lock_guard<std::mutex> l(mu_);
  // No checkpoints: disk keeps exactly the fsync'd journal + last
  // checkpoint, as a real crash would.
  sessions_.clear();
  conns_.clear();
  ready_.clear();
  queued_requests_ = 0;
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void Server::FillGovernorStatsLocked(Stats& s) const {
  if (budget_ != nullptr) {
    s.mem_used_bytes = budget_->used();
    s.mem_limit_bytes = budget_->limit();
    const MemoryBudget::Stats bs = budget_->stats();
    s.mem_denials = bs.denials;
    s.mem_reclaim_runs = bs.reclaim_runs;
    s.mem_reclaimed_bytes = bs.reclaimed_bytes;
  }
  for (const auto& kv : sessions_) {
    const SessionEntry& entry = *kv.second;
    // Skip running sessions: their caches are being mutated by a worker
    // and walking them here would race.
    if (entry.running || entry.session == nullptr) continue;
    const DebugSession::MemoryFootprint fp = entry.session->Footprint();
    s.memo_bytes += fp.memo_bytes;
    s.token_cache_bytes += fp.token_cache_bytes;
    s.id_cache_bytes += fp.id_cache_bytes;
    s.interner_bytes += fp.interner_bytes;
  }
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> l(mu_);
  Stats s = stats_;
  s.live_sessions = sessions_.size();
  s.live_connections = conns_.size();
  FillGovernorStatsLocked(s);
  return s;
}

}  // namespace emdbg
