#include "src/serve/session_digest.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/core/rule_parser.h"
#include "src/util/crc32c.h"

namespace emdbg {

uint32_t SessionStateDigest(DebugSession& session) {
  const Bitmap& matches = session.Run();
  // The rules vector is kept in evaluation order, which the cost model is
  // free to permute between runs (and a recovered session replays edits in
  // a different order than the original saw them). The digest fingerprints
  // logical state, so hash the rules as a sorted multiset of DSL lines.
  std::vector<std::string> lines;
  lines.reserve(session.function().rules().size());
  for (const Rule& rule : session.function().rules()) {
    // Empty rules have no DSL form; fold in a stable marker instead.
    if (rule.empty()) {
      lines.push_back("!empty " + rule.name());
    } else {
      lines.push_back(RuleToDsl(rule, session.catalog()));
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string rules_text;
  for (const std::string& line : lines) {
    rules_text += line;
    rules_text += "\n";
  }
  uint32_t crc = Crc32c(rules_text);
  const std::vector<uint64_t>& words = matches.words();
  crc = Crc32cExtend(crc, words.data(), words.size() * sizeof(uint64_t));
  return crc;
}

}  // namespace emdbg
