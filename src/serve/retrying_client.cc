#include "src/serve/retrying_client.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <utility>

#include "src/util/fault_injection.h"
#include "src/util/string_util.h"

namespace emdbg {

namespace {

std::string_view FirstToken(std::string_view s) {
  s = TrimAscii(s);
  const size_t sp = s.find_first_of(" \t");
  return sp == std::string_view::npos ? s : s.substr(0, sp);
}

/// Verbs that change session state and therefore need an idempotency key.
/// Reads (run, rules, digest, stats, ping) are safe to repeat outright.
bool IsMutatingVerb(std::string_view verb) {
  return verb == "add_rule" || verb == "remove_rule" || verb == "add_pred" ||
         verb == "remove_pred" || verb == "set_threshold" || verb == "undo" ||
         verb == "checkpoint";
}

void SleepMs(double ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// Extracts the server's "retry_after_ms=<N>" hint (0 when absent).
double RetryAfterHint(const Status& s) {
  static constexpr std::string_view kKey = "retry_after_ms=";
  const std::string& m = s.message();
  const size_t pos = m.find(kKey);
  if (pos == std::string::npos) return 0;
  return std::atof(m.c_str() + pos + kKey.size());
}

}  // namespace

RetryingClient::RetryingClient(std::string host, uint16_t port,
                               RetryPolicy policy)
    : host_(std::move(host)),
      port_(port),
      policy_(policy),
      rng_(policy.seed) {}

Status RetryingClient::EnsureConnected() {
  if (client_.connected()) return Status::Ok();
  Result<ServeClient> c =
      ServeClient::Connect(host_, port_, policy_.connect_timeout_ms);
  if (!c.ok()) return c.status();
  client_ = std::move(*c);
  reconnects_++;
  if (token_.empty()) return Status::Ok();
  // Re-bind the new connection to our session. A server that lost the
  // live session (crash) answers NotFound; one that degraded it (journal
  // failure) answers FailedPrecondition. Both are recoverable from the
  // fsync'd journal when the session is durable.
  Result<std::string> r = client_.Call("attach " + token_);
  if (r.ok()) return Status::Ok();
  const StatusCode code = r.status().code();
  if (durable_ && (code == StatusCode::kNotFound ||
                   code == StatusCode::kFailedPrecondition)) {
    Result<std::string> rr = client_.Call("resume " + token_);
    if (rr.ok()) return Status::Ok();
    return rr.status();
  }
  return r.status();
}

double RetryingClient::BackoffMs(int attempt, const Status& last) {
  double base = policy_.initial_backoff_ms *
                std::pow(policy_.backoff_multiplier, attempt - 1);
  base = std::min(base, policy_.max_backoff_ms);
  base = std::max(base, RetryAfterHint(last));
  // Multiplicative jitter in [0.5, 1.0): retrying clients decorrelate
  // instead of stampeding the server in lockstep.
  return base * (0.5 + 0.5 * rng_.NextDouble());
}

Result<std::string> RetryingClient::Call(std::string_view command) {
  std::string framed;
  if (IsMutatingVerb(FirstToken(command))) {
    framed = StrFormat("idem=c%llu-%llu ",
                       static_cast<unsigned long long>(policy_.seed),
                       static_cast<unsigned long long>(seq_++));
  }
  framed.append(command.data(), command.size());

  Status last = Status::Internal("retry loop did not run");
  const int attempts = std::max(1, policy_.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      retries_++;
      SleepMs(BackoffMs(attempt, last));
    }
    Status cs = EnsureConnected();
    if (!cs.ok()) {
      last = cs;
      continue;
    }
    Result<std::string> r = client_.Call(framed);
    if (r.ok()) {
      if (FaultFire("serve.retry")) {
        // Lost-acknowledgement drill: the server applied and answered,
        // but "the network ate it". Retrying the same idempotency key
        // must replay, not re-apply.
        last = Status::IoError("injected lost acknowledgement");
        continue;
      }
      return r;
    }
    const StatusCode code = r.status().code();
    last = r.status();
    if (code == StatusCode::kIoError) {
      // Transport death mid-call: outcome indeterminate, which is exactly
      // what the idempotency key is for. Reconnect and retry.
      client_.Close();
      continue;
    }
    if (code == StatusCode::kResourceExhausted) {
      continue;  // backoff honours the retry_after_ms hint
    }
    if (code == StatusCode::kFailedPrecondition && durable_ &&
        !token_.empty() &&
        r.status().message().find("degraded") != std::string::npos) {
      // The session degraded under us; resume inline, then retry the
      // command (its edit never committed — degradation happens only on
      // a failed journal write, before the acknowledgement).
      Result<std::string> rr = client_.Call("resume " + token_);
      if (!rr.ok() && rr.status().code() == StatusCode::kIoError) {
        client_.Close();
      }
      continue;
    }
    return r;  // a real answer (parse error, not-found, ...) — no retry
  }
  return last;
}

Status RetryingClient::Open(bool durable, std::string token) {
  durable_ = durable;
  token_.clear();
  std::string cmd = durable ? "open durable" : "open";
  if (!token.empty()) cmd += " token=" + token;
  Result<std::string> r = Call(cmd);
  if (!r.ok()) {
    if (r.status().code() == StatusCode::kAlreadyExists && !token.empty()) {
      // A lost ack from a previous open attempt: the session exists, so
      // adopt it.
      return Attach(std::move(token), durable);
    }
    return r.status();
  }
  static constexpr std::string_view kKey = "token=";
  const size_t pos = r->find(kKey);
  if (pos == std::string::npos) {
    return Status::Internal("open response lacks a token: " + *r);
  }
  std::string_view rest = std::string_view(*r).substr(pos + kKey.size());
  token_ = std::string(FirstToken(rest));
  return Status::Ok();
}

Status RetryingClient::Attach(std::string token, bool durable) {
  token_ = std::move(token);
  durable_ = durable;
  client_.Close();  // force the reconnect path, which attaches/resumes
  return EnsureConnected();
}

void RetryingClient::Close() { client_.Close(); }

}  // namespace emdbg
