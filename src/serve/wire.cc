#include "src/serve/wire.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/util/string_util.h"

namespace emdbg {

void EncodeFrame(std::string_view payload, std::string* out) {
  const uint32_t n = static_cast<uint32_t>(payload.size());
  char header[4];
  header[0] = static_cast<char>(n & 0xff);
  header[1] = static_cast<char>((n >> 8) & 0xff);
  header[2] = static_cast<char>((n >> 16) & 0xff);
  header[3] = static_cast<char>((n >> 24) & 0xff);
  out->append(header, 4);
  out->append(payload);
}

uint32_t DecodeFrameLength(const char* header) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(header);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

bool ExtractFrame(std::string* buffer, std::string* payload,
                  size_t max_frame, bool* error) {
  *error = false;
  if (buffer->size() < 4) return false;
  const uint32_t n = DecodeFrameLength(buffer->data());
  if (n > max_frame) {
    *error = true;
    return false;
  }
  if (buffer->size() < 4 + static_cast<size_t>(n)) return false;
  payload->assign(buffer->data() + 4, n);
  buffer->erase(0, 4 + static_cast<size_t>(n));
  return true;
}

namespace {

/// send() with MSG_NOSIGNAL so a peer that vanished mid-write surfaces as
/// EPIPE instead of killing the process; falls back to write() for
/// non-socket fds (pipes in tests).
ssize_t SendSome(int fd, const char* data, size_t n) {
  const ssize_t r = ::send(fd, data, n, MSG_NOSIGNAL);
  if (r < 0 && errno == ENOTSOCK) return ::write(fd, data, n);
  return r;
}

}  // namespace

Status WriteFrameFd(int fd, std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 4);
  EncodeFrame(payload, &frame);
  size_t off = 0;
  // A peer that stops reading would stall us in EAGAIN forever; bound the
  // total stall so a server worker can shed the connection instead.
  int stalls = 0;
  while (off < frame.size()) {
    const ssize_t n = SendSome(fd, frame.data() + off, frame.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      stalls = 0;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (++stalls > 10) {
        return Status::IoError("frame write stalled: peer not reading");
      }
      struct pollfd p = {fd, POLLOUT, 0};
      (void)::poll(&p, 1, 500);
      continue;
    }
    return Status::IoError(
        StrFormat("frame write failed: %s", std::strerror(errno)));
  }
  return Status::Ok();
}

namespace {

/// Reads exactly `n` bytes (blocking; polls through EAGAIN so it also
/// works on a nonblocking fd). `eof_ok` allows a clean EOF at offset 0.
Status ReadExact(int fd, char* out, size_t n, bool eof_ok) {
  size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd, out + off, n - off);
    if (r > 0) {
      off += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      if (eof_ok && off == 0) return Status::IoError("connection closed");
      return Status::IoError("connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      struct pollfd p = {fd, POLLIN, 0};
      (void)::poll(&p, 1, 1000);
      continue;
    }
    return Status::IoError(
        StrFormat("frame read failed: %s", std::strerror(errno)));
  }
  return Status::Ok();
}

}  // namespace

Status ReadFrameFd(int fd, std::string* payload, size_t max_frame) {
  char header[4];
  EMDBG_RETURN_IF_ERROR(ReadExact(fd, header, 4, /*eof_ok=*/true));
  const uint32_t n = DecodeFrameLength(header);
  if (n > max_frame) {
    return Status::ParseError(
        StrFormat("frame length %u exceeds limit %zu", n, max_frame));
  }
  payload->resize(n);
  if (n == 0) return Status::Ok();
  return ReadExact(fd, payload->data(), n, /*eof_ok=*/false);
}

}  // namespace emdbg
