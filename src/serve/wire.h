#ifndef EMDBG_SERVE_WIRE_H_
#define EMDBG_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace emdbg {

/// Length-prefixed framing for the debug service (see DESIGN.md, "Service
/// architecture"). One frame = a 4-byte little-endian payload length
/// followed by that many payload bytes. Requests and responses are each
/// one frame; payloads are single text lines ("set_threshold 0 1 0.8",
/// "ok matches=412", "err ResourceExhausted session table full"), so the
/// protocol stays greppable in packet dumps while the framing keeps
/// parsing trivial and injection-proof (no in-band delimiters).

/// Upper bound a receiver enforces before allocating; a frame claiming
/// more is a protocol error and the connection is dropped.
inline constexpr size_t kMaxFrameBytes = 1 << 20;

/// Appends the 4-byte header + payload to `out` (for buffered writers).
void EncodeFrame(std::string_view payload, std::string* out);

/// Parses the length header from 4 raw bytes.
uint32_t DecodeFrameLength(const char* header);

/// Incremental frame extractor for a nonblocking read buffer: when
/// `buffer` starts with a complete frame, moves its payload into
/// `payload`, strips it from `buffer`, and returns true. Sets `*error`
/// (and returns false) when the buffered header is malformed — a length
/// above `max_frame` — which the caller must treat as fatal for the
/// connection.
bool ExtractFrame(std::string* buffer, std::string* payload, size_t max_frame,
                  bool* error);

/// Blocking frame IO over a socket/pipe fd (used by the client and the
/// tests; the server's poll loop reads nonblocking and uses ExtractFrame).
/// WriteFrameFd retries on EINTR/EAGAIN (polling for writability) and
/// never raises SIGPIPE. ReadFrameFd returns IoError("connection closed")
/// on clean EOF before a frame starts, ParseError on an oversized length.
Status WriteFrameFd(int fd, std::string_view payload);
Status ReadFrameFd(int fd, std::string* payload,
                   size_t max_frame = kMaxFrameBytes);

}  // namespace emdbg

#endif  // EMDBG_SERVE_WIRE_H_
