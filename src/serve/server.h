#ifndef EMDBG_SERVE_SERVER_H_
#define EMDBG_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/debug_session.h"
#include "src/serve/wire.h"
#include "src/util/cancellation.h"
#include "src/util/memory_budget.h"

namespace emdbg {

/// Multi-tenant debug service: many concurrent DebugSessions over one
/// shared immutable corpus, behind the length-prefixed TCP protocol of
/// wire.h. Robustness properties (see DESIGN.md, "Service architecture &
/// failure model"):
///
///  * Admission control: the session table, each session's request
///    queue, and the connection count are bounded; past a bound the
///    server sheds with an explicit ResourceExhausted error instead of
///    queueing unboundedly.
///  * Per-session fairness: one poll thread parses frames and enqueues;
///    worker threads drain sessions round-robin, one request at a time,
///    so a heavy session cannot starve light ones.
///  * Deadlines & cancellation: every request carries a deadline
///    (default_deadline_ms, or the explicit argument of `run`); a request
///    that expires while queued is answered DeadlineExceeded without
///    running, and a running match stops via RunControl. A dropped
///    connection cancels its in-flight request and drops its queued ones.
///  * Durability: `open durable` sessions journal every acknowledged edit
///    (fsync before the ok response) under durability_root/<token>;
///    `resume <token>` rebuilds one after a disconnect, a server crash,
///    or kill -9. A durable session whose journal write fails is
///    *degraded* — it refuses further work until resumed from its last
///    durable state, so the in-memory and on-disk states can never
///    silently diverge.
///  * Graceful shutdown: Shutdown() refuses new connections and new
///    requests, drains everything already queued, checkpoints every
///    durable session, and joins all threads. Abort() simulates a crash
///    (no drain, no checkpoints) for recovery tests.
///
/// Protocol (one text line per frame; responses "ok ..." / "err <Code>
/// <message>"):
///
///   ping | stats
///   open [durable] [token=T]      -> ok token=T
///   attach <token>                -> ok token=T
///   resume <token>                -> ok token=T matches=N   (durable)
///   add_rule <dsl>                -> ok rule=<name> [matches=N]
///   remove_rule <rulepos>         -> ok [matches=N]
///   add_pred <rulepos> <dsl>      -> ok [matches=N]
///   remove_pred <rulepos> <predpos>
///   set_threshold <rulepos> <predpos> <t>
///   undo
///   run [deadline_ms]             -> ok matches=N pairs=M
///                                    [partial=1 reason=<Code>]
///   rules | digest | checkpoint | close
class Server {
 public:
  struct Options {
    /// 0 = kernel-assigned; read the bound port from port().
    uint16_t port = 0;
    /// Worker threads executing session requests. Cross-session
    /// parallelism: each worker runs one session's request at a time.
    size_t num_workers = 2;
    /// Bounds enforced by admission control.
    size_t max_sessions = 64;
    size_t max_queue_per_session = 16;
    size_t max_connections = 128;
    size_t max_frame_bytes = kMaxFrameBytes;
    /// Deadline stamped on every request at admission (0 = none). `run`
    /// may override with its explicit argument.
    double default_deadline_ms = 0;
    /// Threads per session's own matching pool (1 = serial; the server's
    /// concurrency normally comes from num_workers across sessions).
    size_t session_threads = 1;
    /// Pairs per block for columnar batch evaluation inside each session
    /// (1 = classic per-pair; 0 = cost-model auto; >=2 explicit, rounded
    /// up to a multiple of 64). Results are bit-identical either way.
    size_t session_block_size = 1;
    /// Out-of-core sessions: full runs stream through the sharded driver
    /// with shard-sized memo slices bounded by the session quota instead
    /// of a resident memo (see DebugSession::Options::sharded). Only
    /// meaningful with non-incremental sessions; bit-identical results.
    bool session_sharded = false;
    /// Pairs per shard for sharded sessions (0 = derive from the quota).
    size_t session_shard_pairs = 0;
    /// Durable sessions checkpoint every N journaled edits.
    size_t checkpoint_every = 16;
    /// Root directory for per-session durability ("<root>/<token>").
    /// Empty = `open durable` / `resume` are refused.
    std::string durability_root;
    /// Process-wide memory budget across every session's memo, token/id
    /// caches and interner arenas (0 = unlimited, pure accounting). Under
    /// pressure the server reclaims idle sessions' caches first; a
    /// reservation that still cannot fit surfaces as ResourceExhausted
    /// with a retry_after_ms hint instead of an OOM abort.
    size_t mem_budget_bytes = 0;
    /// Per-session quota, a child of the server budget (0 = none). A
    /// session over its quota degrades its own caches / denies its own
    /// runs without touching its neighbours.
    size_t session_quota_bytes = 0;
    /// Hint appended to ResourceExhausted responses
    /// ("... retry_after_ms=N"); RetryingClient honours it.
    double retry_after_ms = 50;
    /// Acknowledged responses remembered per session for idempotency-key
    /// dedup ("idem=K <cmd>"): a redelivered key replays the stored
    /// response instead of re-applying the edit. 0 disables dedup.
    size_t idempotency_window = 64;
    /// Watchdog sweep period (0 = disabled): flags requests running
    /// longer than stuck_task_ms in stats (tasks_stuck).
    double watchdog_interval_ms = 0;
    double stuck_task_ms = 5000;
  };

  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_shed = 0;
    uint64_t sessions_opened = 0;
    uint64_t sessions_resumed = 0;
    uint64_t sessions_degraded = 0;
    uint64_t requests_executed = 0;
    uint64_t requests_shed = 0;
    uint64_t requests_expired = 0;
    uint64_t requests_dropped = 0;
    size_t live_sessions = 0;
    size_t live_connections = 0;
    // ---- Resource governor (see Options::mem_budget_bytes). ----
    uint64_t mem_denials = 0;
    uint64_t mem_reclaim_runs = 0;
    uint64_t mem_reclaimed_bytes = 0;
    uint64_t idem_replays = 0;
    uint64_t tasks_stuck = 0;
    size_t mem_used_bytes = 0;
    size_t mem_limit_bytes = 0;
    /// Per-consumer byte counts summed over idle sessions (a running
    /// session's caches are in flux and are skipped).
    size_t memo_bytes = 0;
    size_t token_cache_bytes = 0;
    size_t id_cache_bytes = 0;
    size_t interner_bytes = 0;
  };

  /// The corpus is shared read-only by every session (see DebugSession's
  /// shared-corpus constructor); nothing here copies it.
  Server(std::shared_ptr<const Table> a, std::shared_ptr<const Table> b,
         std::shared_ptr<const CandidateSet> pairs, Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the poll thread + workers.
  Status Start();

  /// The bound port (valid after Start; useful with Options::port == 0).
  uint16_t port() const { return bound_port_; }

  /// Graceful drain: refuse new connections/requests, finish queued work,
  /// checkpoint durable sessions, join threads. Idempotent.
  void Shutdown();

  /// Simulated crash for recovery tests: stop immediately — cancel
  /// running requests, drop queues, no checkpoints. Acknowledged edits
  /// are already fsync'd, so disk is exactly what kill -9 would leave.
  void Abort();

  Stats stats() const;

 private:
  struct ConnShared;
  struct Connection;
  struct Request;
  struct SessionEntry;

  void PollLoop();
  void WorkerLoop();
  void HandleFrame(Connection& conn, std::string_view payload);
  /// Inline (poll-thread) handlers; mu_ held by caller where noted.
  void HandleOpen(Connection& conn, std::string_view rest);
  void HandleAttach(Connection& conn, std::string_view rest);
  void HandleResume(Connection& conn, std::string_view rest);
  /// Worker-side execution of one session request. Returns true when the
  /// session asked to close; in that case the response is handed back via
  /// `deferred_resp` instead of being written, so the caller can erase
  /// the entry under mu_ *before* acknowledging — a client that sees
  /// "ok closed" must be able to open into the freed slot immediately.
  /// `executed_resp` receives the response that was written (empty when
  /// the request was dropped/expired), so the caller can record it in the
  /// session's idempotency window.
  bool ExecuteRequest(const std::string& token, SessionEntry& entry,
                      Request& req, std::string* deferred_resp,
                      std::string* executed_resp);
  std::string ExecuteSessionCommand(SessionEntry& entry, Request& req,
                                    bool* close_session);
  /// Journal-failure path: drop the live session, keep the token + disk.
  void DegradeSession(SessionEntry& entry, const Status& why);

  void WriteResponse(const std::shared_ptr<ConnShared>& conn,
                     std::string_view payload);
  void ScheduleLocked(const std::string& token, SessionEntry& entry);
  void DropConnection(uint64_t conn_id);
  void JoinThreads();

  /// ResourceExhausted response with the retry_after_ms hint appended.
  std::string ErrShed(const std::string& msg) const;
  /// Root-budget reclaim hook: drops idle sessions' id caches (and, when
  /// `drop_tokens`, their token caches too). Uses try_lock on mu_ — a
  /// reclaimer must never block on the server lock — and skips running
  /// sessions, whose caches are in active use.
  size_t ReclaimSessionCaches(size_t want, bool drop_tokens);
  /// Periodic sweep flagging requests stuck past stuck_task_ms.
  void WatchdogLoop();
  /// Formats the `stats` response / fills the governor fields of Stats.
  void FillGovernorStatsLocked(Stats& s) const;

  std::shared_ptr<const Table> a_;
  std::shared_ptr<const Table> b_;
  std::shared_ptr<const CandidateSet> pairs_;
  Options options_;

  /// Root memory budget (null when unconfigured). Declared before
  /// sessions_ so it outlives every per-session child quota. Reclaimer
  /// handles are removed only after all threads joined (no Reserve can
  /// be in flight then).
  std::unique_ptr<MemoryBudget> budget_;
  uint64_t id_reclaimer_ = 0;
  uint64_t token_reclaimer_ = 0;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: wakes the poll loop
  uint16_t bound_port_ = 0;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here
  std::condition_variable drain_cv_;  // Shutdown waits here
  enum class State { kIdle, kRunning, kDraining, kStopped };
  State state_ = State::kIdle;
  bool workers_exit_ = false;
  bool abort_ = false;
  size_t running_requests_ = 0;
  size_t queued_requests_ = 0;

  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  std::unordered_map<std::string, std::unique_ptr<SessionEntry>> sessions_;
  std::deque<std::string> ready_;  // round-robin dispatch order
  Stats stats_;
  /// Connection ids double as poll-loop owner tags; 0 and 1 are reserved
  /// for the wake pipe and the listener.
  uint64_t next_conn_id_ = 2;
  uint64_t next_token_ = 1;
  uint64_t boot_id_ = 0;

  std::thread poll_thread_;
  std::vector<std::thread> workers_;
  std::thread watchdog_thread_;
  std::condition_variable watchdog_cv_;
  bool watchdog_exit_ = false;
};

}  // namespace emdbg

#endif  // EMDBG_SERVE_SERVER_H_
