#ifndef EMDBG_SERVE_CLIENT_H_
#define EMDBG_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace emdbg {

/// Blocking client for the debug service protocol (see server.h): one
/// frame out, one frame back. Used by the load generator, the soak
/// harness, and the tests; deliberately tiny — no connection pooling, no
/// retries. Thread-compatible (one thread per client).
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects to `host:port` (host is a dotted-quad, e.g. "127.0.0.1").
  /// The two-argument form blocks indefinitely; `timeout_ms >= 0` bounds
  /// the TCP handshake with a non-blocking connect + poll, so a hung or
  /// non-accepting server yields DeadlineExceeded instead of a stuck
  /// client (-1 = block).
  static Result<ServeClient> Connect(const std::string& host, uint16_t port);
  static Result<ServeClient> Connect(const std::string& host, uint16_t port,
                                     int timeout_ms);

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// One round trip. "ok ..." responses return everything after the "ok"
  /// (trimmed, possibly empty); "err <Code> <msg>" responses become a
  /// non-OK Status with that code. IoError means the connection itself
  /// failed (the server vanished mid-call — the request outcome is
  /// *indeterminate*: an edit may or may not have committed).
  Result<std::string> Call(std::string_view command);

  /// Split halves of Call, for pipelining several requests in flight.
  Status Send(std::string_view command);
  Result<std::string> ReadResponse();

  /// Graceful close.
  void Close();

  /// Abrupt close (RST via SO_LINGER 0): simulates a client crash /
  /// network drop for the fault tests.
  void CloseAbruptly();

 private:
  explicit ServeClient(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace emdbg

#endif  // EMDBG_SERVE_CLIENT_H_
