#ifndef EMDBG_SERVE_RETRYING_CLIENT_H_
#define EMDBG_SERVE_RETRYING_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/serve/client.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace emdbg {

/// Retry schedule for RetryingClient: exponential backoff with
/// multiplicative jitter, capped, and bounded by max_attempts.
struct RetryPolicy {
  int max_attempts = 5;
  double initial_backoff_ms = 10;
  double max_backoff_ms = 1000;
  double backoff_multiplier = 2.0;
  /// Handshake bound for every (re)connect (see ServeClient::Connect's
  /// three-argument overload). -1 = block.
  int connect_timeout_ms = 2000;
  /// Seeds the jitter RNG and namespaces the idempotency keys, so two
  /// clients retrying against one session can never collide.
  uint64_t seed = 1;
};

/// The client half of the service's exactly-once contract (server.h,
/// Options::idempotency_window). Wraps the deliberately retry-free
/// ServeClient with:
///
///  * automatic idempotency keys ("idem=c<seed>-<seq> <cmd>") on every
///    mutating verb, so a retry after a lost acknowledgement replays the
///    server's stored response instead of applying the edit twice;
///  * exponential backoff with jitter, honouring the server's
///    "retry_after_ms=" hint on ResourceExhausted sheds;
///  * transparent reconnect (bounded by connect_timeout_ms) with
///    `attach <token>`, falling back to `resume <token>` for durable
///    sessions the server lost (crash) or degraded (journal failure).
///
/// The `serve.retry` fault site fires after a successful response and
/// discards it — the lost-ack drill: the client retries the same key and
/// the server's dedup window must keep the edit exactly-once.
///
/// Thread-compatible (one thread per client), like ServeClient.
class RetryingClient {
 public:
  RetryingClient(std::string host, uint16_t port, RetryPolicy policy = {});

  /// Opens a fresh session (optionally durable) and remembers its token.
  /// A non-empty `token` requests that specific token ("open ... token=T"),
  /// so a client restarted after a crash can resume deterministically; an
  /// AlreadyExists answer then attaches/resumes instead — an earlier
  /// attempt (whose ack was lost) actually landed.
  Status Open(bool durable, std::string token = "");

  /// Adopts an existing session token (e.g. to resume after a crash of a
  /// previous client process); connects and attaches/resumes eagerly.
  Status Attach(std::string token, bool durable);

  /// One command with the full retry treatment. Same response contract as
  /// ServeClient::Call. Errors other than IoError / ResourceExhausted /
  /// degraded-session are returned immediately — they are answers, not
  /// transport failures.
  Result<std::string> Call(std::string_view command);

  const std::string& token() const { return token_; }
  bool connected() const { return client_.connected(); }

  /// Observability for the tests and the load generator.
  uint64_t retries() const { return retries_; }
  uint64_t reconnects() const { return reconnects_; }

  void Close();

 private:
  Status EnsureConnected();
  /// Backoff for the attempt about to run (attempt >= 1), honouring any
  /// "retry_after_ms=" hint embedded in the previous failure.
  double BackoffMs(int attempt, const Status& last);

  std::string host_;
  uint16_t port_;
  RetryPolicy policy_;
  ServeClient client_;
  std::string token_;
  bool durable_ = false;
  Rng rng_;
  uint64_t seq_ = 0;
  uint64_t retries_ = 0;
  uint64_t reconnects_ = 0;
};

}  // namespace emdbg

#endif  // EMDBG_SERVE_RETRYING_CLIENT_H_
