#ifndef EMDBG_SERVE_SESSION_DIGEST_H_
#define EMDBG_SERVE_SESSION_DIGEST_H_

#include <cstdint>

#include "src/core/debug_session.h"

namespace emdbg {

/// Canonical fingerprint of a session's analyst-visible state: CRC-32C
/// over the rule set (precise DSL, in evaluation order) chained with the
/// match bitmap words. Two sessions over the same corpus have equal
/// digests iff they hold the same rules and the same match decisions —
/// the soak harness uses this to prove a recovered session is
/// bit-identical to a fault-free serial replay of its acknowledged edits.
///
/// Forces the session up to date (calls Run()), so the session must be
/// runnable; call only from the thread that owns the session.
uint32_t SessionStateDigest(DebugSession& session);

}  // namespace emdbg

#endif  // EMDBG_SERVE_SESSION_DIGEST_H_
