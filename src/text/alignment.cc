#include "src/text/alignment.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <vector>

namespace emdbg {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

bool CharEq(char x, char y) {
  return std::tolower(static_cast<unsigned char>(x)) ==
         std::tolower(static_cast<unsigned char>(y));
}

/// Affine-gap DP (Gotoh). Three matrices rolled into two rows each:
/// M = best score ending in a match/mismatch, X = gap in a, Y = gap in b.
/// `local` selects Smith-Waterman (floors at 0, tracks global best).
double Align(std::string_view a, std::string_view b,
             const AlignmentParams& p, bool local) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<double> prev_m(m + 1, kNegInf);
  std::vector<double> prev_x(m + 1, kNegInf);  // gap in a (consume b)
  std::vector<double> prev_y(m + 1, kNegInf);  // gap in b (consume a)
  std::vector<double> cur_m(m + 1);
  std::vector<double> cur_x(m + 1);
  std::vector<double> cur_y(m + 1);

  prev_m[0] = 0.0;
  for (size_t j = 1; j <= m; ++j) {
    prev_x[j] = p.gap_open + static_cast<double>(j - 1) * p.gap_extend;
    if (local) prev_x[j] = std::max(prev_x[j], kNegInf);
  }
  double best = 0.0;

  for (size_t i = 1; i <= n; ++i) {
    cur_m[0] = kNegInf;
    cur_x[0] = kNegInf;
    cur_y[0] = p.gap_open + static_cast<double>(i - 1) * p.gap_extend;
    for (size_t j = 1; j <= m; ++j) {
      const double sub = CharEq(a[i - 1], b[j - 1]) ? p.match : p.mismatch;
      double diag_best =
          std::max({prev_m[j - 1], prev_x[j - 1], prev_y[j - 1]});
      if (local) diag_best = std::max(diag_best, 0.0);
      cur_m[j] = diag_best + sub;
      // Gap in a: extend horizontally over b.
      cur_x[j] = std::max(
          std::max(cur_m[j - 1], cur_y[j - 1]) + p.gap_open,
          cur_x[j - 1] + p.gap_extend);
      // Gap in b: extend vertically over a.
      cur_y[j] = std::max(
          std::max(prev_m[j], prev_x[j]) + p.gap_open,
          prev_y[j] + p.gap_extend);
      if (local) {
        best = std::max({best, cur_m[j], cur_x[j], cur_y[j]});
      }
    }
    std::swap(prev_m, cur_m);
    std::swap(prev_x, cur_x);
    std::swap(prev_y, cur_y);
  }
  if (local) return best;
  return std::max({prev_m[m], prev_x[m], prev_y[m]});
}

}  // namespace

double NeedlemanWunschSimilarity(std::string_view a, std::string_view b,
                                 const AlignmentParams& params) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const double raw = Align(a, b, params, /*local=*/false);
  const double denom =
      params.match * static_cast<double>(std::max(a.size(), b.size()));
  if (denom <= 0.0) return 0.0;
  return std::clamp(raw / denom, 0.0, 1.0);
}

double SmithWatermanSimilarity(std::string_view a, std::string_view b,
                               const AlignmentParams& params) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const double raw = Align(a, b, params, /*local=*/true);
  const double denom =
      params.match * static_cast<double>(std::min(a.size(), b.size()));
  if (denom <= 0.0) return 0.0;
  return std::clamp(raw / denom, 0.0, 1.0);
}

}  // namespace emdbg
