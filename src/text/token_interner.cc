#include "src/text/token_interner.h"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace emdbg {

TokenId TokenInterner::Intern(std::string_view token) {
  const auto it = map_.find(token);
  if (it != map_.end()) return it->second;
  const TokenId id = static_cast<TokenId>(tokens_.size());
  const std::string_view stored = Store(token);
  tokens_.push_back(stored);
  map_.emplace(stored, id);
  return id;
}

TokenId TokenInterner::Find(std::string_view token) const {
  const auto it = map_.find(token);
  return it == map_.end() ? kInvalidTokenId : it->second;
}

std::shared_ptr<const std::vector<uint32_t>> TokenInterner::LexRanks() {
  if (ranks_ != nullptr && ranks_->size() == tokens_.size()) return ranks_;
  std::vector<uint32_t> order(tokens_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [this](uint32_t x, uint32_t y) {
    return tokens_[x] < tokens_[y];
  });
  auto ranks = std::make_shared<std::vector<uint32_t>>(tokens_.size());
  for (uint32_t pos = 0; pos < order.size(); ++pos) {
    (*ranks)[order[pos]] = pos;
  }
  ranks_ = std::move(ranks);
  return ranks_;
}

std::string_view TokenInterner::Store(std::string_view token) {
  if (chunks_.empty() ||
      chunks_.back().capacity - chunks_.back().used < token.size()) {
    Chunk chunk;
    chunk.capacity = std::max(kChunkBytes, token.size());
    chunk.data = std::make_unique<char[]>(chunk.capacity);
    chunks_.push_back(std::move(chunk));
  }
  Chunk& chunk = chunks_.back();
  char* dst = chunk.data.get() + chunk.used;
  std::memcpy(dst, token.data(), token.size());
  chunk.used += token.size();
  return std::string_view(dst, token.size());
}

size_t TokenInterner::ArenaBytes() const {
  size_t bytes = chunks_.capacity() * sizeof(Chunk);
  for (const Chunk& c : chunks_) bytes += c.capacity;
  return bytes;
}

size_t TokenInterner::DictionaryBytes() const {
  // unordered_map: buckets + one node per entry (libstdc++ node = hash +
  // next pointer + value); tokens_: one string_view per id.
  size_t bytes = tokens_.capacity() * sizeof(std::string_view);
  bytes += map_.bucket_count() * sizeof(void*);
  bytes += map_.size() *
           (sizeof(std::pair<std::string_view, TokenId>) + 2 * sizeof(void*));
  if (ranks_ != nullptr) bytes += ranks_->capacity() * sizeof(uint32_t);
  return bytes;
}

}  // namespace emdbg
