#include "src/text/tokenizer.h"

#include <algorithm>
#include <cctype>

#include "src/util/string_util.h"

namespace emdbg {

const char* TokenizerKindName(TokenizerKind kind) {
  switch (kind) {
    case TokenizerKind::kWhitespace:
      return "whitespace";
    case TokenizerKind::kAlnum:
      return "alnum";
    case TokenizerKind::kQGram3:
      return "qgram3";
  }
  return "unknown";
}

TokenList WhitespaceTokenize(std::string_view text) {
  return SplitWhitespace(text);
}

TokenList AlnumTokenize(std::string_view text) {
  TokenList out;
  std::string cur;
  for (char c : text) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      cur.push_back(
          static_cast<char>(std::tolower(uc)));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

TokenList QGramTokenize(std::string_view text, size_t q, char pad) {
  TokenList out;
  if (text.empty() || q == 0) return out;
  std::string padded;
  padded.reserve(text.size() + 2 * (q - 1));
  padded.append(q - 1, pad);
  for (char c : text) {
    padded.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  padded.append(q - 1, pad);
  out.reserve(padded.size() - q + 1);
  for (size_t i = 0; i + q <= padded.size(); ++i) {
    out.push_back(padded.substr(i, q));
  }
  return out;
}

TokenList Tokenize(TokenizerKind kind, std::string_view text) {
  switch (kind) {
    case TokenizerKind::kWhitespace:
      return WhitespaceTokenize(text);
    case TokenizerKind::kAlnum:
      return AlnumTokenize(text);
    case TokenizerKind::kQGram3:
      return QGramTokenize(text, 3);
  }
  return {};
}

std::vector<std::string> ToSortedUnique(const TokenList& tokens) {
  std::vector<std::string> out = tokens;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace emdbg
