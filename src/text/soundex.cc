#include "src/text/soundex.h"

#include <cctype>

#include "src/text/set_similarity.h"
#include "src/text/tokenizer.h"

namespace emdbg {

namespace {

// Soundex digit for an upper-case letter; '0' for vowels and similar
// "ignored" letters, '-' for H/W (which are transparent for adjacency).
char SoundexDigit(char upper) {
  switch (upper) {
    case 'B':
    case 'F':
    case 'P':
    case 'V':
      return '1';
    case 'C':
    case 'G':
    case 'J':
    case 'K':
    case 'Q':
    case 'S':
    case 'X':
    case 'Z':
      return '2';
    case 'D':
    case 'T':
      return '3';
    case 'L':
      return '4';
    case 'M':
    case 'N':
      return '5';
    case 'R':
      return '6';
    case 'H':
    case 'W':
      return '-';
    default:
      return '0';  // A E I O U Y
  }
}

}  // namespace

std::string SoundexCode(std::string_view word) {
  std::string letters;
  letters.reserve(word.size());
  for (char c : word) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      letters.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  if (letters.empty()) return "";
  std::string code;
  code.push_back(letters[0]);
  char last_digit = SoundexDigit(letters[0]);
  for (size_t i = 1; i < letters.size() && code.size() < 4; ++i) {
    const char d = SoundexDigit(letters[i]);
    if (d == '-') continue;  // H/W: transparent, keep last_digit as-is
    if (d != '0' && d != last_digit) code.push_back(d);
    last_digit = d;
  }
  while (code.size() < 4) code.push_back('0');
  return code;
}

double SoundexSimilarity(std::string_view a, std::string_view b) {
  TokenList codes_a;
  for (const std::string& t : WhitespaceTokenize(a)) {
    std::string code = SoundexCode(t);
    if (!code.empty()) codes_a.push_back(std::move(code));
  }
  TokenList codes_b;
  for (const std::string& t : WhitespaceTokenize(b)) {
    std::string code = SoundexCode(t);
    if (!code.empty()) codes_b.push_back(std::move(code));
  }
  return JaccardSimilarity(codes_a, codes_b);
}

}  // namespace emdbg
