#ifndef EMDBG_TEXT_JARO_H_
#define EMDBG_TEXT_JARO_H_

#include <string_view>

namespace emdbg {

/// Jaro similarity in [0,1]. Two empty strings have similarity 1; one empty
/// string against a non-empty one has similarity 0.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity: Jaro boosted by a shared prefix of up to
/// `max_prefix` characters with scaling factor `prefix_weight` (standard
/// parameters p=0.1, l<=4). `prefix_weight` must satisfy
/// prefix_weight * max_prefix <= 1 for the result to stay in [0,1].
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_weight = 0.1,
                             size_t max_prefix = 4);

}  // namespace emdbg

#endif  // EMDBG_TEXT_JARO_H_
