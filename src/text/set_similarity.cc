#include "src/text/set_similarity.h"

#include <algorithm>

namespace emdbg {

namespace {

// Intersection size of two sorted unique vectors.
size_t SortedIntersectionSize(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i < a.size() && j < b.size()) {
    const int cmp = a[i].compare(b[j]);
    if (cmp == 0) {
      ++count;
      ++i;
      ++j;
    } else if (cmp < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

}  // namespace

size_t IntersectionSize(const TokenList& a, const TokenList& b) {
  return SortedIntersectionSize(ToSortedUnique(a), ToSortedUnique(b));
}

double JaccardSimilarity(const TokenList& a, const TokenList& b) {
  const auto sa = ToSortedUnique(a);
  const auto sb = ToSortedUnique(b);
  if (sa.empty() && sb.empty()) return 1.0;
  const size_t inter = SortedIntersectionSize(sa, sb);
  const size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double DiceSimilarity(const TokenList& a, const TokenList& b) {
  const auto sa = ToSortedUnique(a);
  const auto sb = ToSortedUnique(b);
  if (sa.empty() && sb.empty()) return 1.0;
  const size_t inter = SortedIntersectionSize(sa, sb);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(sa.size() + sb.size());
}

double OverlapCoefficient(const TokenList& a, const TokenList& b) {
  const auto sa = ToSortedUnique(a);
  const auto sb = ToSortedUnique(b);
  if (sa.empty() || sb.empty()) return sa.empty() && sb.empty() ? 1.0 : 0.0;
  const size_t inter = SortedIntersectionSize(sa, sb);
  return static_cast<double>(inter) /
         static_cast<double>(std::min(sa.size(), sb.size()));
}

double TrigramSimilarity(std::string_view a, std::string_view b) {
  return JaccardSimilarity(QGramTokenize(a, 3), QGramTokenize(b, 3));
}

}  // namespace emdbg
