#include "src/text/set_similarity.h"

#include <algorithm>

namespace emdbg {

size_t SortedUniqueIntersectionSize(const std::vector<std::string>& a,
                                    const std::vector<std::string>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i < a.size() && j < b.size()) {
    const int cmp = a[i].compare(b[j]);
    if (cmp == 0) {
      ++count;
      ++i;
      ++j;
    } else if (cmp < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

size_t IntersectionSize(const TokenList& a, const TokenList& b) {
  return SortedUniqueIntersectionSize(ToSortedUnique(a), ToSortedUnique(b));
}

double JaccardSortedUnique(const std::vector<std::string>& a,
                           const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t inter = SortedUniqueIntersectionSize(a, b);
  const size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double DiceSortedUnique(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t inter = SortedUniqueIntersectionSize(a, b);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size());
}

double OverlapSortedUnique(const std::vector<std::string>& a,
                           const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return a.empty() && b.empty() ? 1.0 : 0.0;
  const size_t inter = SortedUniqueIntersectionSize(a, b);
  return static_cast<double>(inter) /
         static_cast<double>(std::min(a.size(), b.size()));
}

double JaccardSimilarity(const TokenList& a, const TokenList& b) {
  return JaccardSortedUnique(ToSortedUnique(a), ToSortedUnique(b));
}

double DiceSimilarity(const TokenList& a, const TokenList& b) {
  return DiceSortedUnique(ToSortedUnique(a), ToSortedUnique(b));
}

double OverlapCoefficient(const TokenList& a, const TokenList& b) {
  return OverlapSortedUnique(ToSortedUnique(a), ToSortedUnique(b));
}

double TrigramSimilarity(std::string_view a, std::string_view b) {
  return JaccardSimilarity(QGramTokenize(a, 3), QGramTokenize(b, 3));
}

}  // namespace emdbg
