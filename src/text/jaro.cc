#include "src/text/jaro.h"

#include <algorithm>
#include <vector>

namespace emdbg {

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t max_len = std::max(a.size(), b.size());
  // Match window: characters at distance <= floor(max/2) - 1 count.
  const size_t window = max_len / 2 == 0 ? 0 : max_len / 2 - 1;

  std::vector<char> a_matched(a.size(), 0);
  std::vector<char> b_matched(b.size(), 0);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = 1;
        b_matched[j] = 1;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions between the matched subsequences.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  const double t = static_cast<double>(transpositions) / 2.0;
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) + (m - t) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_weight, size_t max_prefix) {
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t limit = std::min({a.size(), b.size(), max_prefix});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_weight * (1.0 - jaro);
}

}  // namespace emdbg
