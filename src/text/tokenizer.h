#ifndef EMDBG_TEXT_TOKENIZER_H_
#define EMDBG_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace emdbg {

/// A token sequence in document order (duplicates preserved).
using TokenList = std::vector<std::string>;

/// Tokenization schemes used by set-based similarity functions. The paper
/// computes Jaccard/cosine/TF-IDF over either word tokens or q-grams
/// (footnote 1: "In practice we often compute Jaccard over the sets of
/// q-grams of the two names, e.g., where q = 3").
enum class TokenizerKind {
  kWhitespace,  ///< split on whitespace runs
  kAlnum,       ///< maximal [A-Za-z0-9]+ runs, lower-cased
  kQGram3,      ///< padded character 3-grams, lower-cased
};

const char* TokenizerKindName(TokenizerKind kind);

/// Splits on whitespace runs; no case folding.
TokenList WhitespaceTokenize(std::string_view text);

/// Maximal alphanumeric runs, lower-cased. "Sony DSC-W800" →
/// {"sony","dsc","w800"}.
TokenList AlnumTokenize(std::string_view text);

/// Padded character q-grams over the lower-cased string. With q=3,
/// "abc" → {"##a","#ab","abc","bc#","c##"} using '#' padding. Returns an
/// empty list for an empty string.
TokenList QGramTokenize(std::string_view text, size_t q, char pad = '#');

/// Dispatch on `kind`.
TokenList Tokenize(TokenizerKind kind, std::string_view text);

/// Sorted unique view of a token list (set semantics for Jaccard etc.).
std::vector<std::string> ToSortedUnique(const TokenList& tokens);

}  // namespace emdbg

#endif  // EMDBG_TEXT_TOKENIZER_H_
