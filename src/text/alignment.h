#ifndef EMDBG_TEXT_ALIGNMENT_H_
#define EMDBG_TEXT_ALIGNMENT_H_

#include <string_view>

namespace emdbg {

/// Sequence-alignment similarities, normalized to [0, 1].

/// Parameters for the alignment scorers. Scores are per character:
/// `match` for equal characters (case-insensitive ASCII), `mismatch` for
/// substitutions, `gap_open`/`gap_extend` for affine gaps.
struct AlignmentParams {
  double match = 2.0;
  double mismatch = -1.0;
  double gap_open = -1.5;
  double gap_extend = -0.5;
};

/// Global alignment (Needleman-Wunsch with affine gaps), normalized by
/// the best achievable score (match * min(|a|, |b|) plus the unavoidable
/// gap cost of the length difference... we normalize by match * max-len so
/// the score of identical strings is 1 and unrelated strings approach 0).
/// Both-empty inputs score 1.0.
double NeedlemanWunschSimilarity(std::string_view a, std::string_view b,
                                 const AlignmentParams& params = {});

/// Local alignment (Smith-Waterman with affine gaps), normalized by
/// match * min(|a|, |b|) — 1.0 when the shorter string aligns perfectly
/// inside the longer one (substring semantics, useful for model numbers
/// embedded in titles). Both-empty inputs score 1.0; empty-vs-nonempty 0.
double SmithWatermanSimilarity(std::string_view a, std::string_view b,
                               const AlignmentParams& params = {});

}  // namespace emdbg

#endif  // EMDBG_TEXT_ALIGNMENT_H_
