#ifndef EMDBG_TEXT_SET_SIMILARITY_H_
#define EMDBG_TEXT_SET_SIMILARITY_H_

#include <string_view>

#include "src/text/tokenizer.h"

namespace emdbg {

/// Set-overlap similarity measures over token lists. All of these apply set
/// semantics (duplicates collapse); both-empty inputs score 1.0 for Jaccard/
/// Dice and 0.0 for overlap of empty-vs-nonempty, matching the usual EM
/// library conventions (e.g. py_stringmatching).

/// |A ∩ B| / |A ∪ B|.
double JaccardSimilarity(const TokenList& a, const TokenList& b);

/// 2|A ∩ B| / (|A| + |B|).
double DiceSimilarity(const TokenList& a, const TokenList& b);

/// |A ∩ B| / min(|A|, |B|).
double OverlapCoefficient(const TokenList& a, const TokenList& b);

/// Raw intersection size under set semantics.
size_t IntersectionSize(const TokenList& a, const TokenList& b);

/// Jaccard over padded character 3-grams of the raw strings — "Trigram" in
/// the paper's Table 3.
double TrigramSimilarity(std::string_view a, std::string_view b);

}  // namespace emdbg

#endif  // EMDBG_TEXT_SET_SIMILARITY_H_
