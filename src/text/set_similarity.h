#ifndef EMDBG_TEXT_SET_SIMILARITY_H_
#define EMDBG_TEXT_SET_SIMILARITY_H_

#include <string_view>
#include <vector>

#include "src/text/tokenizer.h"

namespace emdbg {

/// Set-overlap similarity measures over token lists. All of these apply set
/// semantics (duplicates collapse); both-empty inputs score 1.0 for Jaccard/
/// Dice and 0.0 for overlap of empty-vs-nonempty, matching the usual EM
/// library conventions (e.g. py_stringmatching).
///
/// The TokenList overloads call ToSortedUnique internally — one sort and
/// one allocation per argument per call. Callers that evaluate many pairs
/// should sort once and use the pre-sorted overloads (PairContext goes one
/// step further and runs these kernels over interned integer ids; see
/// src/text/id_kernels.h).

/// |A ∩ B| / |A ∪ B|.
double JaccardSimilarity(const TokenList& a, const TokenList& b);

/// 2|A ∩ B| / (|A| + |B|).
double DiceSimilarity(const TokenList& a, const TokenList& b);

/// |A ∩ B| / min(|A|, |B|).
double OverlapCoefficient(const TokenList& a, const TokenList& b);

/// Raw intersection size under set semantics.
size_t IntersectionSize(const TokenList& a, const TokenList& b);

/// Pre-sorted variants: both arguments must be sorted and duplicate-free
/// (e.g. from ToSortedUnique) — no per-call re-sorting.
double JaccardSortedUnique(const std::vector<std::string>& a,
                           const std::vector<std::string>& b);
double DiceSortedUnique(const std::vector<std::string>& a,
                        const std::vector<std::string>& b);
double OverlapSortedUnique(const std::vector<std::string>& a,
                           const std::vector<std::string>& b);
size_t SortedUniqueIntersectionSize(const std::vector<std::string>& a,
                                    const std::vector<std::string>& b);

/// Jaccard over padded character 3-grams of the raw strings — "Trigram" in
/// the paper's Table 3.
double TrigramSimilarity(std::string_view a, std::string_view b);

}  // namespace emdbg

#endif  // EMDBG_TEXT_SET_SIMILARITY_H_
