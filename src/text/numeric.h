#ifndef EMDBG_TEXT_NUMERIC_H_
#define EMDBG_TEXT_NUMERIC_H_

#include <string_view>

namespace emdbg {

/// Relative numeric similarity of two attribute strings:
///   1 - |x - y| / max(|x|, |y|), clamped to [0, 1].
/// Non-numeric or empty inputs score 0.0 unless both parse and are equal.
/// Two zeros score 1.0. Useful for price/year attributes in the generated
/// datasets.
double NumericSimilarity(std::string_view a, std::string_view b);

/// Absolute-tolerance variant: 1 - min(|x - y| / tolerance, 1).
double NumericAbsoluteSimilarity(std::string_view a, std::string_view b,
                                 double tolerance);

}  // namespace emdbg

#endif  // EMDBG_TEXT_NUMERIC_H_
