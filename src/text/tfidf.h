#ifndef EMDBG_TEXT_TFIDF_H_
#define EMDBG_TEXT_TFIDF_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/text/tokenizer.h"

namespace emdbg {

/// A sparse, L2-normalized TF-IDF vector: (term, weight) pairs sorted by
/// term. Weights are > 0 and the vector has unit norm unless empty.
struct TfIdfVector {
  std::vector<std::pair<std::string, double>> entries;

  bool empty() const { return entries.empty(); }
};

/// Corpus statistics for TF-IDF weighting. Build once over the token lists
/// of an attribute's values (both tables), then reuse for every pair — this
/// corresponds to the paper's setting where TF-IDF features carry document
/// frequency state and are therefore among the most expensive (Table 3).
class TfIdfModel {
 public:
  TfIdfModel() = default;

  /// Adds one document's tokens to the corpus statistics.
  void AddDocument(const TokenList& tokens);

  /// Builds from a whole corpus.
  static TfIdfModel Build(const std::vector<TokenList>& corpus);

  size_t document_count() const { return doc_count_; }
  size_t vocabulary_size() const { return df_.size(); }

  /// Smoothed inverse document frequency:
  /// idf(t) = ln((1 + N) / (1 + df(t))) + 1. Unseen terms get df = 0.
  double Idf(const std::string& term) const;

  /// TF-IDF vector of a token list, L2-normalized.
  TfIdfVector Vectorize(const TokenList& tokens) const;

  /// Cosine of two normalized vectors (dot product).
  static double Cosine(const TfIdfVector& a, const TfIdfVector& b);

  /// Convenience: cosine TF-IDF similarity of two token lists. Both-empty
  /// inputs score 1.0.
  double Similarity(const TokenList& a, const TokenList& b) const;

 private:
  size_t doc_count_ = 0;
  std::unordered_map<std::string, size_t> df_;
};

}  // namespace emdbg

#endif  // EMDBG_TEXT_TFIDF_H_
