#ifndef EMDBG_TEXT_EXACT_H_
#define EMDBG_TEXT_EXACT_H_

#include <string_view>

namespace emdbg {

/// 1.0 iff the two strings are byte-identical, else 0.0. The cheapest
/// feature in Table 3 of the paper (0.2 µs on modelno).
double ExactMatch(std::string_view a, std::string_view b);

/// Case-insensitive (ASCII) variant.
double ExactMatchIgnoreCase(std::string_view a, std::string_view b);

}  // namespace emdbg

#endif  // EMDBG_TEXT_EXACT_H_
