#ifndef EMDBG_TEXT_ID_KERNELS_H_
#define EMDBG_TEXT_ID_KERNELS_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/text/token_interner.h"
#include "src/text/tokenizer.h"

namespace emdbg {

/// Integer-id fast path for the set-family similarity kernels.
///
/// Every kernel here is a drop-in replacement for its string counterpart in
/// set_similarity/cosine/tfidf/soft_tfidf/monge_elkan and returns
/// *bit-identical* doubles: intersection kernels only exchange string
/// comparisons for integer comparisons (counts are exact), and the
/// floating-point kernels accumulate in byte-lexicographic token order —
/// exactly the order the string path inherits from std::map / sorted
/// vectors — via TokenInterner::LexRanks(). The differential tests in
/// tests/text/id_kernels_differential_test.cc enforce this for all 16
/// similarity functions.

/// Per-record token ids.
struct TokenIds {
  std::vector<TokenId> doc;     ///< document order, parallel to the TokenList
  std::vector<TokenId> sorted;  ///< sorted-unique by raw id value
};

/// Interns every token of `tokens` (mutating `interner`) and returns the
/// document-order id list.
std::vector<TokenId> InternDocIds(const TokenList& tokens,
                                  TokenInterner& interner);

/// Sorted-unique (by raw id value) copy of a document-order id list.
std::vector<TokenId> SortedUniqueIds(std::span<const TokenId> doc);

/// Term-frequency vector in byte-lexicographic token order (the order
/// std::map<std::string, int> iterates in), with the squared L2 norm
/// accumulated in that same order — matches CosineSimilarity's norm loop
/// bit-for-bit.
struct IdTfVector {
  std::vector<std::pair<TokenId, uint32_t>> entries;  ///< (id, count)
  double norm_sq = 0.0;
};

IdTfVector MakeIdTfVector(std::span<const TokenId> doc,
                          const std::vector<uint32_t>& rank);

/// L2-normalized TF-IDF weight vector in byte-lexicographic token order —
/// replicates TfIdfModel::Vectorize bit-for-bit given
/// idf_by_id[id] == model.Idf(interner.Text(id)).
struct IdWeightVector {
  std::vector<std::pair<TokenId, double>> entries;  ///< (id, weight)
};

IdWeightVector MakeIdWeightVector(const IdTfVector& tf,
                                  std::span<const double> idf_by_id);

/// |A ∩ B| over sorted-unique id arrays. Uses a branch-light linear merge,
/// switching to galloping (exponential search) probes of the longer array
/// when the lengths are heavily skewed.
size_t IdIntersectionSize(std::span<const TokenId> a,
                          std::span<const TokenId> b);

/// Set-overlap kernels over sorted-unique id arrays; same empty-input
/// conventions as the string versions in set_similarity.h.
double IdJaccard(std::span<const TokenId> a, std::span<const TokenId> b);
double IdDice(std::span<const TokenId> a, std::span<const TokenId> b);
double IdOverlap(std::span<const TokenId> a, std::span<const TokenId> b);

/// Term-frequency cosine (CosineSimilarity) over prebuilt tf vectors.
double IdCosineTf(const IdTfVector& a, const IdTfVector& b,
                  const std::vector<uint32_t>& rank);

/// TF-IDF cosine (TfIdfModel::Similarity) over prebuilt weight vectors.
/// `a_empty`/`b_empty` are the emptiness of the underlying *token lists*
/// (weight vectors are empty exactly when the token lists are, but the
/// caller already knows and it keeps the contract explicit).
double IdTfIdfCosine(const IdWeightVector& a, const IdWeightVector& b,
                     const std::vector<uint32_t>& rank);

/// Soft TF-IDF (SoftTfIdfSimilarity) over prebuilt weight vectors. Exact
/// token matches short-circuit the inner Jaro-Winkler scan via a rank
/// binary search; fuzzy-only terms fall back to the same lexicographic
/// scan as the string path, reading token bytes from the interner.
double IdSoftTfIdf(const IdWeightVector& a, const IdWeightVector& b,
                   const std::vector<uint32_t>& rank,
                   const TokenInterner& interner, double threshold = 0.9);

/// Monge-Elkan (symmetric) with an integer-id candidate filter: a token
/// that also occurs on the other side scores exactly 1.0 without running
/// any Jaro-Winkler comparisons (JW(t, t) == 1.0 and 1.0 is the loop's
/// early-exit maximum, so the skip is bit-identical).
double IdMongeElkan(const TokenList& a_tokens, const TokenList& b_tokens,
                    const TokenIds& a_ids, const TokenIds& b_ids);

/// One direction (exposed for tests, mirrors MongeElkanDirected).
double IdMongeElkanDirected(const TokenList& a_tokens, const TokenIds& a_ids,
                            const TokenList& b_tokens, const TokenIds& b_ids);

}  // namespace emdbg

#endif  // EMDBG_TEXT_ID_KERNELS_H_
