#ifndef EMDBG_TEXT_LEVENSHTEIN_H_
#define EMDBG_TEXT_LEVENSHTEIN_H_

#include <cstddef>
#include <string_view>

namespace emdbg {

/// Unit-cost edit distance (insert/delete/substitute). Computed with
/// Myers' bit-parallel algorithm (Myers 1999, multi-block for patterns
/// longer than 64 bytes): O(ceil(m/64) * n) word operations instead of the
/// scalar DP's O(m * n) cell updates, with identical results (edit
/// distance is an integer — there is nothing to drift).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Bounded edit distance: returns min(distance, bound+1). Bit-parallel
/// with per-column early exit — once even the best remaining completion
/// cannot come back under `bound`, it stops scanning (preserving the
/// banded DP's early-exit contract).
size_t LevenshteinDistanceBounded(std::string_view a, std::string_view b,
                                  size_t bound);

/// Reference two-row scalar DP (kept as the differential-test oracle for
/// the bit-parallel implementation).
size_t LevenshteinDistanceScalar(std::string_view a, std::string_view b);

/// Reference banded scalar DP: min(distance, bound+1) exploring only cells
/// within `bound` of the diagonal (differential-test oracle).
size_t LevenshteinDistanceBoundedScalar(std::string_view a,
                                        std::string_view b, size_t bound);

/// Similarity in [0,1]: 1 - distance / max(|a|,|b|). Two empty strings are
/// defined to have similarity 1.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

}  // namespace emdbg

#endif  // EMDBG_TEXT_LEVENSHTEIN_H_
