#ifndef EMDBG_TEXT_LEVENSHTEIN_H_
#define EMDBG_TEXT_LEVENSHTEIN_H_

#include <cstddef>
#include <string_view>

namespace emdbg {

/// Unit-cost edit distance (insert/delete/substitute), two-row DP.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Banded edit distance: returns min(distance, bound+1) without exploring
/// cells further than `bound` off-diagonal. Useful when callers only need
/// "distance <= k".
size_t LevenshteinDistanceBounded(std::string_view a, std::string_view b,
                                  size_t bound);

/// Similarity in [0,1]: 1 - distance / max(|a|,|b|). Two empty strings are
/// defined to have similarity 1.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

}  // namespace emdbg

#endif  // EMDBG_TEXT_LEVENSHTEIN_H_
