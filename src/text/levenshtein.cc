#include "src/text/levenshtein.h"

#include <algorithm>
#include <vector>

namespace emdbg {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // keep the DP row short
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0) return n;
  std::vector<size_t> row(m + 1);
  for (size_t i = 0; i <= m; ++i) row[i] = i;
  for (size_t j = 1; j <= n; ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= m; ++i) {
      const size_t subst = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, subst});
    }
  }
  return row[m];
}

size_t LevenshteinDistanceBounded(std::string_view a, std::string_view b,
                                  size_t bound) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t m = a.size();
  const size_t n = b.size();
  if (n - m > bound) return bound + 1;
  if (m == 0) return n;
  const size_t kInf = bound + 1;
  std::vector<size_t> row(m + 1, kInf);
  for (size_t i = 0; i <= std::min(m, bound); ++i) row[i] = i;
  for (size_t j = 1; j <= n; ++j) {
    // Only cells with |i - j| <= bound can be <= bound.
    const size_t lo = j > bound ? j - bound : 1;
    const size_t hi = std::min(m, j + bound);
    size_t prev_diag = lo >= 2 ? row[lo - 1] : (lo == 1 ? row[0] : 0);
    if (lo == 1) prev_diag = row[0];
    row[0] = j <= bound ? j : kInf;
    size_t row_min = kInf;
    for (size_t i = lo; i <= hi; ++i) {
      const size_t subst = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      const size_t del = row[i] == kInf ? kInf : row[i] + 1;
      const size_t ins = row[i - 1] == kInf ? kInf : row[i - 1] + 1;
      row[i] = std::min({del, ins, subst, kInf});
      row_min = std::min(row_min, row[i]);
    }
    if (lo >= 2) row[lo - 1] = kInf;  // out of band now
    if (row_min >= kInf) return kInf;
  }
  return std::min(row[m], kInf);
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  const size_t d = LevenshteinDistance(a, b);
  return 1.0 - static_cast<double>(d) / static_cast<double>(max_len);
}

}  // namespace emdbg
