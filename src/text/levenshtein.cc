#include "src/text/levenshtein.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

namespace emdbg {

namespace {

// Myers' bit-parallel edit distance. The pattern `a` (m rows, m >= 1) is
// encoded as per-character match masks; each text character of `b` then
// advances a whole 64-row column of the DP matrix with ~17 word ops. For
// m > 64 the column is split into ceil(m/64) blocks chained by the
// horizontal delta carries (the edlib/Hyyro block formulation). The score
// tracks row m exactly: D[m][j] changes by the Ph/Mh bit at row m, so the
// returned value equals the scalar DP's.
//
// `bound == SIZE_MAX` disables the early exit; otherwise the scan stops as
// soon as D[m][j] - (n - j) > bound (the score can decrease by at most one
// per remaining column), returning bound + 1 per the bounded contract.
size_t MyersDistance(std::string_view a, std::string_view b, size_t bound) {
  const size_t m = a.size();
  const size_t n = b.size();
  const size_t blocks = (m + 63) >> 6;

  // Peq[c * blocks + k]: match mask of pattern block k for byte c. Small
  // patterns (the common case) stay on the stack.
  constexpr size_t kInlineBlocks = 4;  // up to 256-byte patterns
  std::array<uint64_t, 256 * kInlineBlocks> peq_stack;
  std::array<uint64_t, kInlineBlocks> pv_stack;
  std::array<uint64_t, kInlineBlocks> mv_stack;
  std::vector<uint64_t> heap;
  uint64_t* peq = peq_stack.data();
  uint64_t* pv = pv_stack.data();
  uint64_t* mv = mv_stack.data();
  if (blocks > kInlineBlocks) {
    heap.assign(256 * blocks + 2 * blocks, 0);
    peq = heap.data();
    pv = peq + 256 * blocks;
    mv = pv + blocks;
  } else {
    std::fill(peq, peq + 256 * blocks, 0);
  }
  for (size_t i = 0; i < m; ++i) {
    const auto c = static_cast<unsigned char>(a[i]);
    peq[static_cast<size_t>(c) * blocks + (i >> 6)] |= uint64_t{1}
                                                       << (i & 63);
  }
  for (size_t k = 0; k < blocks; ++k) {
    pv[k] = ~uint64_t{0};
    mv[k] = 0;
  }

  size_t score = m;
  const uint64_t last_bit = uint64_t{1} << ((m - 1) & 63);
  const size_t top = blocks - 1;
  for (size_t j = 0; j < n; ++j) {
    const uint64_t* eq_col =
        peq + static_cast<size_t>(static_cast<unsigned char>(b[j])) * blocks;
    int hin = 1;  // row 0 is D[0][j] = j: +1 every column
    for (size_t k = 0; k < blocks; ++k) {
      uint64_t eq = eq_col[k];
      const uint64_t pvk = pv[k];
      const uint64_t mvk = mv[k];
      const uint64_t xv = eq | mvk;
      if (hin < 0) eq |= 1;
      const uint64_t xh = (((eq & pvk) + pvk) ^ pvk) | eq;
      uint64_t ph = mvk | ~(xh | pvk);
      uint64_t mh = pvk & xh;
      if (k == top) {
        if (ph & last_bit) {
          ++score;
        } else if (mh & last_bit) {
          --score;
        }
      }
      int hout = 0;
      if (ph >> 63) {
        hout = 1;
      } else if (mh >> 63) {
        hout = -1;
      }
      ph <<= 1;
      mh <<= 1;
      if (hin > 0) {
        ph |= 1;
      } else if (hin < 0) {
        mh |= 1;
      }
      pv[k] = mh | ~(xv | ph);
      mv[k] = ph & xv;
      hin = hout;
    }
    // Even if every remaining column decrements the score, can it still
    // come back under the bound? (For the unbounded call bound is
    // SIZE_MAX, so the first test is always false.)
    if (score > bound && score - bound > n - (j + 1)) return bound + 1;
  }
  return score;
}

}  // namespace

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // shorter string = pattern
  if (a.empty()) return b.size();
  return MyersDistance(a, b, static_cast<size_t>(-1));
}

size_t LevenshteinDistanceBounded(std::string_view a, std::string_view b,
                                  size_t bound) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t m = a.size();
  const size_t n = b.size();
  if (n - m > bound) return bound + 1;
  if (m == 0) return n;  // n <= bound here, so min(n, bound+1) == n
  return std::min(MyersDistance(a, b, bound), bound + 1);
}

size_t LevenshteinDistanceScalar(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // keep the DP row short
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0) return n;
  std::vector<size_t> row(m + 1);
  for (size_t i = 0; i <= m; ++i) row[i] = i;
  for (size_t j = 1; j <= n; ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= m; ++i) {
      const size_t subst = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, subst});
    }
  }
  return row[m];
}

size_t LevenshteinDistanceBoundedScalar(std::string_view a,
                                        std::string_view b, size_t bound) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t m = a.size();
  const size_t n = b.size();
  if (n - m > bound) return bound + 1;
  if (m == 0) return n;
  const size_t kInf = bound + 1;
  std::vector<size_t> row(m + 1, kInf);
  for (size_t i = 0; i <= std::min(m, bound); ++i) row[i] = i;
  for (size_t j = 1; j <= n; ++j) {
    // Only cells with |i - j| <= bound can be <= bound.
    const size_t lo = j > bound ? j - bound : 1;
    const size_t hi = std::min(m, j + bound);
    size_t prev_diag = row[lo - 1];
    row[0] = j <= bound ? j : kInf;
    size_t row_min = kInf;
    for (size_t i = lo; i <= hi; ++i) {
      const size_t subst = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      const size_t del = row[i] == kInf ? kInf : row[i] + 1;
      const size_t ins = row[i - 1] == kInf ? kInf : row[i - 1] + 1;
      row[i] = std::min({del, ins, subst, kInf});
      row_min = std::min(row_min, row[i]);
    }
    if (lo >= 2) row[lo - 1] = kInf;  // out of band now
    if (row_min >= kInf) return kInf;
  }
  return std::min(row[m], kInf);
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  const size_t d = LevenshteinDistance(a, b);
  return 1.0 - static_cast<double>(d) / static_cast<double>(max_len);
}

}  // namespace emdbg
