#include "src/text/id_kernels.h"

#include <algorithm>
#include <cmath>

#include "src/text/jaro.h"

namespace emdbg {

std::vector<TokenId> InternDocIds(const TokenList& tokens,
                                  TokenInterner& interner) {
  std::vector<TokenId> ids;
  ids.reserve(tokens.size());
  for (const std::string& t : tokens) ids.push_back(interner.Intern(t));
  return ids;
}

std::vector<TokenId> SortedUniqueIds(std::span<const TokenId> doc) {
  std::vector<TokenId> out(doc.begin(), doc.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

IdTfVector MakeIdTfVector(std::span<const TokenId> doc,
                          const std::vector<uint32_t>& rank) {
  IdTfVector out;
  std::vector<TokenId> lex(doc.begin(), doc.end());
  std::sort(lex.begin(), lex.end(), [&rank](TokenId x, TokenId y) {
    return rank[x] < rank[y];
  });
  for (size_t i = 0; i < lex.size();) {
    size_t j = i;
    while (j < lex.size() && lex[j] == lex[i]) ++j;
    out.entries.emplace_back(lex[i], static_cast<uint32_t>(j - i));
    i = j;
  }
  // Same accumulation order and operand types as CosineSimilarity's
  // "norm += double(f) * f" loop over the lex-ordered tf map.
  for (const auto& [id, count] : out.entries) {
    out.norm_sq += static_cast<double>(count) * count;
  }
  return out;
}

IdWeightVector MakeIdWeightVector(const IdTfVector& tf,
                                  std::span<const double> idf_by_id) {
  // Mirrors TfIdfModel::Vectorize: weights and the norm accumulate over
  // entries in lexicographic term order, then one multiply per entry.
  IdWeightVector out;
  out.entries.reserve(tf.entries.size());
  double norm_sq = 0.0;
  for (const auto& [id, count] : tf.entries) {
    const double w = static_cast<double>(count) * idf_by_id[id];
    out.entries.emplace_back(id, w);
    norm_sq += w * w;
  }
  if (norm_sq > 0.0) {
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (auto& [id, w] : out.entries) w *= inv;
  }
  return out;
}

namespace {

/// Index of the first element >= key in [lo, n), by exponential then binary
/// search — O(log gap) instead of O(log n) when matches cluster.
size_t Gallop(const TokenId* data, size_t lo, size_t n, TokenId key) {
  size_t step = 1;
  size_t hi = lo;
  while (hi < n && data[hi] < key) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > n) hi = n;
  return static_cast<size_t>(
      std::lower_bound(data + lo, data + hi, key) - data);
}

size_t GallopIntersectionSize(std::span<const TokenId> small,
                              std::span<const TokenId> large) {
  size_t count = 0;
  size_t j = 0;
  for (const TokenId key : small) {
    j = Gallop(large.data(), j, large.size(), key);
    if (j == large.size()) break;
    if (large[j] == key) {
      ++count;
      ++j;
    }
  }
  return count;
}

}  // namespace

size_t IdIntersectionSize(std::span<const TokenId> a,
                          std::span<const TokenId> b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return 0;
  if (b.size() / a.size() >= 16) return GallopIntersectionSize(a, b);
  // Branch-light linear merge: advance via comparison results instead of
  // three-way branching.
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  const size_t na = a.size();
  const size_t nb = b.size();
  while (i < na && j < nb) {
    const TokenId x = a[i];
    const TokenId y = b[j];
    count += (x == y);
    i += (x <= y);
    j += (y <= x);
  }
  return count;
}

double IdJaccard(std::span<const TokenId> a, std::span<const TokenId> b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t inter = IdIntersectionSize(a, b);
  const size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double IdDice(std::span<const TokenId> a, std::span<const TokenId> b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t inter = IdIntersectionSize(a, b);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size());
}

double IdOverlap(std::span<const TokenId> a, std::span<const TokenId> b) {
  if (a.empty() || b.empty()) return a.empty() && b.empty() ? 1.0 : 0.0;
  const size_t inter = IdIntersectionSize(a, b);
  return static_cast<double>(inter) /
         static_cast<double>(std::min(a.size(), b.size()));
}

double IdCosineTf(const IdTfVector& a, const IdTfVector& b,
                  const std::vector<uint32_t>& rank) {
  if (a.entries.empty() && b.entries.empty()) return 1.0;
  if (a.entries.empty() || b.entries.empty()) return 0.0;
  double dot = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.entries.size() && j < b.entries.size()) {
    const uint32_t ra = rank[a.entries[i].first];
    const uint32_t rb = rank[b.entries[j].first];
    if (ra == rb) {
      dot += static_cast<double>(a.entries[i].second) * b.entries[j].second;
      ++i;
      ++j;
    } else if (ra < rb) {
      ++i;
    } else {
      ++j;
    }
  }
  return std::min(1.0, dot / (std::sqrt(a.norm_sq) * std::sqrt(b.norm_sq)));
}

double IdTfIdfCosine(const IdWeightVector& a, const IdWeightVector& b,
                     const std::vector<uint32_t>& rank) {
  if (a.entries.empty() && b.entries.empty()) return 1.0;
  if (a.entries.empty() || b.entries.empty()) return 0.0;
  double dot = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.entries.size() && j < b.entries.size()) {
    const uint32_t ra = rank[a.entries[i].first];
    const uint32_t rb = rank[b.entries[j].first];
    if (ra == rb) {
      dot += a.entries[i].second * b.entries[j].second;
      ++i;
      ++j;
    } else if (ra < rb) {
      ++i;
    } else {
      ++j;
    }
  }
  return std::min(1.0, dot);
}

double IdSoftTfIdf(const IdWeightVector& a, const IdWeightVector& b,
                   const std::vector<uint32_t>& rank,
                   const TokenInterner& interner, double threshold) {
  if (a.entries.empty() && b.entries.empty()) return 1.0;
  if (a.entries.empty() || b.entries.empty()) return 0.0;
  double score = 0.0;
  for (const auto& [id_a, weight_a] : a.entries) {
    // Exact-match shortcut: if a's term also occurs in b, the best partner
    // is that term with similarity exactly 1.0 (Jaro-Winkler reaches 1.0
    // only on equal strings), so the string path's scan would end on the
    // same (sim, weight) pair.
    const uint32_t ra = rank[id_a];
    const auto it = std::lower_bound(
        b.entries.begin(), b.entries.end(), ra,
        [&rank](const std::pair<TokenId, double>& e, uint32_t key) {
          return rank[e.first] < key;
        });
    double best_sim = 0.0;
    double best_weight = 0.0;
    if (it != b.entries.end() && it->first == id_a) {
      best_sim = 1.0;
      best_weight = it->second;
    } else {
      const std::string_view term_a = interner.Text(id_a);
      for (const auto& [id_b, weight_b] : b.entries) {
        const double sim = JaroWinklerSimilarity(term_a, interner.Text(id_b));
        if (sim > best_sim || (sim == best_sim && weight_b > best_weight)) {
          best_sim = sim;
          best_weight = weight_b;
        }
      }
    }
    if (best_sim >= threshold) {
      score += weight_a * best_weight * best_sim;
    }
  }
  return std::min(score, 1.0);
}

double IdMongeElkanDirected(const TokenList& a_tokens, const TokenIds& a_ids,
                            const TokenList& b_tokens,
                            const TokenIds& b_ids) {
  if (a_tokens.empty() && b_tokens.empty()) return 1.0;
  if (a_tokens.empty() || b_tokens.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < a_tokens.size(); ++i) {
    double best = 0.0;
    if (std::binary_search(b_ids.sorted.begin(), b_ids.sorted.end(),
                           a_ids.doc[i])) {
      // The string path's inner loop would stop at this token with
      // best == JW(t, t) == 1.0 exactly.
      best = 1.0;
    } else {
      for (const std::string& tb : b_tokens) {
        best = std::max(best, JaroWinklerSimilarity(a_tokens[i], tb));
        if (best == 1.0) break;
      }
    }
    sum += best;
  }
  return sum / static_cast<double>(a_tokens.size());
}

double IdMongeElkan(const TokenList& a_tokens, const TokenList& b_tokens,
                    const TokenIds& a_ids, const TokenIds& b_ids) {
  return (IdMongeElkanDirected(a_tokens, a_ids, b_tokens, b_ids) +
          IdMongeElkanDirected(b_tokens, b_ids, a_tokens, a_ids)) /
         2.0;
}

}  // namespace emdbg
