#include "src/text/cosine.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace emdbg {

namespace {

std::map<std::string, int> TermFrequencies(const TokenList& tokens) {
  std::map<std::string, int> tf;
  for (const std::string& t : tokens) ++tf[t];
  return tf;
}

}  // namespace

double CosineSimilarity(const TokenList& a, const TokenList& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const auto tfa = TermFrequencies(a);
  const auto tfb = TermFrequencies(b);
  double dot = 0.0;
  auto ia = tfa.begin();
  auto ib = tfb.begin();
  while (ia != tfa.end() && ib != tfb.end()) {
    const int cmp = ia->first.compare(ib->first);
    if (cmp == 0) {
      dot += static_cast<double>(ia->second) * ib->second;
      ++ia;
      ++ib;
    } else if (cmp < 0) {
      ++ia;
    } else {
      ++ib;
    }
  }
  double norm_a = 0.0;
  for (const auto& [_, f] : tfa) norm_a += static_cast<double>(f) * f;
  double norm_b = 0.0;
  for (const auto& [_, f] : tfb) norm_b += static_cast<double>(f) * f;
  // Guard against floating-point drift pushing identical vectors above 1.
  return std::min(1.0, dot / (std::sqrt(norm_a) * std::sqrt(norm_b)));
}

double CosineSetSimilarity(const TokenList& a, const TokenList& b) {
  if (a.empty() && b.empty()) return 1.0;
  const auto sa = ToSortedUnique(a);
  const auto sb = ToSortedUnique(b);
  if (sa.empty() || sb.empty()) return 0.0;
  size_t i = 0;
  size_t j = 0;
  size_t inter = 0;
  while (i < sa.size() && j < sb.size()) {
    const int cmp = sa[i].compare(sb[j]);
    if (cmp == 0) {
      ++inter;
      ++i;
      ++j;
    } else if (cmp < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  return static_cast<double>(inter) /
         std::sqrt(static_cast<double>(sa.size()) *
                   static_cast<double>(sb.size()));
}

}  // namespace emdbg
