#include "src/text/monge_elkan.h"

#include <algorithm>

#include "src/text/jaro.h"

namespace emdbg {

double MongeElkanDirected(const TokenList& a, const TokenList& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  double sum = 0.0;
  for (const std::string& ta : a) {
    double best = 0.0;
    for (const std::string& tb : b) {
      best = std::max(best, JaroWinklerSimilarity(ta, tb));
      if (best == 1.0) break;
    }
    sum += best;
  }
  return sum / static_cast<double>(a.size());
}

double MongeElkanSimilarity(const TokenList& a, const TokenList& b) {
  return (MongeElkanDirected(a, b) + MongeElkanDirected(b, a)) / 2.0;
}

}  // namespace emdbg
