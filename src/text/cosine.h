#ifndef EMDBG_TEXT_COSINE_H_
#define EMDBG_TEXT_COSINE_H_

#include "src/text/tokenizer.h"

namespace emdbg {

/// Term-frequency cosine similarity between two token lists (duplicates
/// weight the vectors). Both-empty inputs score 1.0; empty-vs-nonempty 0.0.
double CosineSimilarity(const TokenList& a, const TokenList& b);

/// Set-semantics cosine: |A ∩ B| / sqrt(|A| · |B|) over unique tokens.
double CosineSetSimilarity(const TokenList& a, const TokenList& b);

}  // namespace emdbg

#endif  // EMDBG_TEXT_COSINE_H_
