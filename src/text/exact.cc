#include "src/text/exact.h"

#include "src/util/string_util.h"

namespace emdbg {

double ExactMatch(std::string_view a, std::string_view b) {
  return a == b ? 1.0 : 0.0;
}

double ExactMatchIgnoreCase(std::string_view a, std::string_view b) {
  return EqualsIgnoreCase(a, b) ? 1.0 : 0.0;
}

}  // namespace emdbg
