#ifndef EMDBG_TEXT_MONGE_ELKAN_H_
#define EMDBG_TEXT_MONGE_ELKAN_H_

#include "src/text/tokenizer.h"

namespace emdbg {

/// Monge-Elkan similarity: for every token of `a`, take the best
/// Jaro-Winkler score against the tokens of `b`, and average. The standard
/// hybrid token/character measure for dirty multi-word strings; asymmetric
/// by definition, so the symmetric variant averages both directions:
///
///   ME(a, b) = (1/|a|) Σ_i max_j jw(a_i, b_j)
///   sym(a, b) = (ME(a, b) + ME(b, a)) / 2
///
/// Both-empty inputs score 1.0; empty-vs-nonempty 0.0.
double MongeElkanSimilarity(const TokenList& a, const TokenList& b);

/// The asymmetric one-direction score (exposed for tests).
double MongeElkanDirected(const TokenList& a, const TokenList& b);

}  // namespace emdbg

#endif  // EMDBG_TEXT_MONGE_ELKAN_H_
