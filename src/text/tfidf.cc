#include "src/text/tfidf.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace emdbg {

void TfIdfModel::AddDocument(const TokenList& tokens) {
  ++doc_count_;
  // Each distinct term counts once per document.
  std::vector<std::string> uniq = ToSortedUnique(tokens);
  for (const std::string& t : uniq) ++df_[t];
}

TfIdfModel TfIdfModel::Build(const std::vector<TokenList>& corpus) {
  TfIdfModel model;
  for (const TokenList& doc : corpus) model.AddDocument(doc);
  return model;
}

double TfIdfModel::Idf(const std::string& term) const {
  const auto it = df_.find(term);
  const double df = it == df_.end() ? 0.0 : static_cast<double>(it->second);
  return std::log((1.0 + static_cast<double>(doc_count_)) / (1.0 + df)) + 1.0;
}

TfIdfVector TfIdfModel::Vectorize(const TokenList& tokens) const {
  std::map<std::string, int> tf;
  for (const std::string& t : tokens) ++tf[t];
  TfIdfVector vec;
  vec.entries.reserve(tf.size());
  double norm_sq = 0.0;
  for (const auto& [term, count] : tf) {
    const double w = static_cast<double>(count) * Idf(term);
    vec.entries.emplace_back(term, w);
    norm_sq += w * w;
  }
  if (norm_sq > 0.0) {
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (auto& [_, w] : vec.entries) w *= inv;
  }
  return vec;
}

double TfIdfModel::Cosine(const TfIdfVector& a, const TfIdfVector& b) {
  double dot = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.entries.size() && j < b.entries.size()) {
    const int cmp = a.entries[i].first.compare(b.entries[j].first);
    if (cmp == 0) {
      dot += a.entries[i].second * b.entries[j].second;
      ++i;
      ++j;
    } else if (cmp < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  return dot;
}

double TfIdfModel::Similarity(const TokenList& a, const TokenList& b) const {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  // Clamp floating-point drift on identical vectors.
  return std::min(1.0, Cosine(Vectorize(a), Vectorize(b)));
}

}  // namespace emdbg
