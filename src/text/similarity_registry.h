#ifndef EMDBG_TEXT_SIMILARITY_REGISTRY_H_
#define EMDBG_TEXT_SIMILARITY_REGISTRY_H_

#include <string_view>
#include <vector>

#include "src/text/tfidf.h"
#include "src/text/tokenizer.h"
#include "src/util/status.h"

namespace emdbg {

/// The similarity functions available to matching rules — the same catalog
/// as Table 3 of the paper, plus a few extras (overlap, dice, numeric).
/// All return scores in [0, 1].
enum class SimFunction {
  kExactMatch = 0,
  kJaro,
  kJaroWinkler,
  kLevenshtein,
  kCosine,
  kTrigram,
  kJaccard,
  kSoundex,
  kTfIdf,
  kSoftTfIdf,
  kOverlap,
  kDice,
  kNumeric,
  kMongeElkan,       ///< avg best Jaro-Winkler per token (hybrid measure)
  kNeedlemanWunsch,  ///< global affine-gap alignment
  kSmithWaterman,    ///< local affine-gap alignment (substring semantics)
};

/// Number of enumerators in SimFunction (for array sizing / iteration).
inline constexpr int kNumSimFunctions = 16;

/// What token representation a function consumes.
enum class TokenNeed {
  kNone,    ///< works on the raw strings
  kWords,   ///< lower-cased alphanumeric word tokens
  kQGram3,  ///< padded character 3-grams
};

/// Static metadata for one similarity function.
struct SimFunctionInfo {
  SimFunction fn;
  /// Canonical snake_case name used by the rule DSL, e.g. "jaro_winkler".
  const char* name;
  /// Display name matching the paper's Table 3, e.g. "Jaro Winkler".
  const char* display_name;
  TokenNeed tokens;
  /// True for TF-IDF-family functions that need corpus statistics.
  bool needs_tfidf;
  /// True for functions with an interned token-id fast path (PairContext
  /// evaluates them over sorted uint32 id arrays / id-indexed weight
  /// vectors instead of heap-allocated strings; bit-identical results —
  /// see src/text/id_kernels.h).
  bool id_path;
  /// Rough relative cost used only as a prior before the cost model has
  /// measured anything (1 = an exact match).
  double cost_hint;
};

/// Metadata lookup. `fn` must be a valid enumerator.
const SimFunctionInfo& GetSimFunctionInfo(SimFunction fn);

/// All functions, in enum order.
const std::vector<SimFunction>& AllSimFunctions();

/// Parses a canonical or display name (case-insensitive; spaces, dashes and
/// underscores are interchangeable). Returns NotFound for unknown names.
Result<SimFunction> SimFunctionFromName(std::string_view name);

/// One side of a similarity computation. `text` is required; the token
/// pointers are optional precomputed views (the matcher's PairContext fills
/// them in so repeated features do not re-tokenize). When a needed token
/// list is absent, ComputeSimilarity tokenizes on the fly.
struct SimArg {
  std::string_view text;
  const TokenList* words = nullptr;
  const TokenList* qgrams = nullptr;
};

/// Computes `fn` over a pair of attribute values. `model` must be non-null
/// for TF-IDF-family functions (checked; returns 0.0 and is a programming
/// error caught by tests otherwise).
double ComputeSimilarity(SimFunction fn, const SimArg& a, const SimArg& b,
                         const TfIdfModel* model = nullptr);

/// Convenience overload for plain strings (tokenizes internally).
double ComputeSimilarity(SimFunction fn, std::string_view a,
                         std::string_view b,
                         const TfIdfModel* model = nullptr);

}  // namespace emdbg

#endif  // EMDBG_TEXT_SIMILARITY_REGISTRY_H_
