#include "src/text/numeric.h"

#include <algorithm>
#include <cmath>

#include "src/util/string_util.h"

namespace emdbg {

double NumericSimilarity(std::string_view a, std::string_view b) {
  double x = 0.0;
  double y = 0.0;
  if (!ParseDouble(a, &x) || !ParseDouble(b, &y)) return 0.0;
  if (x == y) return 1.0;
  const double denom = std::max(std::fabs(x), std::fabs(y));
  if (denom == 0.0) return 1.0;
  const double sim = 1.0 - std::fabs(x - y) / denom;
  return std::clamp(sim, 0.0, 1.0);
}

double NumericAbsoluteSimilarity(std::string_view a, std::string_view b,
                                 double tolerance) {
  double x = 0.0;
  double y = 0.0;
  if (!ParseDouble(a, &x) || !ParseDouble(b, &y)) return 0.0;
  if (tolerance <= 0.0) return x == y ? 1.0 : 0.0;
  const double sim = 1.0 - std::min(std::fabs(x - y) / tolerance, 1.0);
  return sim;
}

}  // namespace emdbg
