#ifndef EMDBG_TEXT_SOFT_TFIDF_H_
#define EMDBG_TEXT_SOFT_TFIDF_H_

#include "src/text/tfidf.h"
#include "src/text/tokenizer.h"

namespace emdbg {

/// Soft TF-IDF similarity (Cohen, Ravikumar & Fienberg 2003): TF-IDF cosine
/// where tokens need not match exactly — a token of `a` contributes if some
/// token of `b` has Jaro-Winkler similarity above `threshold`, weighted by
/// that similarity. This is the most expensive feature in the paper's
/// Table 3 (66 µs on title×title) because of the all-pairs token
/// comparison.
///
/// `model` supplies the IDF weights; it should be built over the combined
/// corpus of the attribute's values from both tables.
double SoftTfIdfSimilarity(const TfIdfModel& model, const TokenList& a,
                           const TokenList& b, double threshold = 0.9);

}  // namespace emdbg

#endif  // EMDBG_TEXT_SOFT_TFIDF_H_
