#include "src/text/similarity_registry.h"

#include <array>
#include <cctype>
#include <string>

#include "src/text/alignment.h"
#include "src/text/cosine.h"
#include "src/text/exact.h"
#include "src/text/jaro.h"
#include "src/text/levenshtein.h"
#include "src/text/monge_elkan.h"
#include "src/text/numeric.h"
#include "src/text/set_similarity.h"
#include "src/text/soft_tfidf.h"
#include "src/text/soundex.h"
#include "src/util/string_util.h"

namespace emdbg {

namespace {

// Cost hints loosely follow the paper's Table 3 ordering (exact match
// cheapest ... soft TF-IDF most expensive).
constexpr std::array<SimFunctionInfo, kNumSimFunctions> kInfos = {{
    {SimFunction::kExactMatch, "exact_match", "Exact Match", TokenNeed::kNone,
     false, false, 1.0},
    {SimFunction::kJaro, "jaro", "Jaro", TokenNeed::kNone, false, false, 2.5},
    {SimFunction::kJaroWinkler, "jaro_winkler", "Jaro Winkler",
     TokenNeed::kNone, false, false, 3.9},
    {SimFunction::kLevenshtein, "levenshtein", "Levenshtein",
     TokenNeed::kNone, false, false, 6.1},
    {SimFunction::kCosine, "cosine", "Cosine", TokenNeed::kWords, false, true,
     16.9},
    {SimFunction::kTrigram, "trigram", "Trigram", TokenNeed::kQGram3, false,
     true, 24.0},
    {SimFunction::kJaccard, "jaccard", "Jaccard", TokenNeed::kWords, false,
     true, 33.8},
    {SimFunction::kSoundex, "soundex", "Soundex", TokenNeed::kNone, false,
     false, 43.9},
    {SimFunction::kTfIdf, "tf_idf", "TF-IDF", TokenNeed::kWords, true, true,
     60.9},
    {SimFunction::kSoftTfIdf, "soft_tf_idf", "Soft TF-IDF", TokenNeed::kWords,
     true, true, 109.5},
    {SimFunction::kOverlap, "overlap", "Overlap", TokenNeed::kWords, false,
     true, 30.0},
    {SimFunction::kDice, "dice", "Dice", TokenNeed::kWords, false, true,
     33.0},
    {SimFunction::kNumeric, "numeric", "Numeric", TokenNeed::kNone, false,
     false, 1.5},
    {SimFunction::kMongeElkan, "monge_elkan", "Monge-Elkan",
     TokenNeed::kWords, false, true, 45.0},
    {SimFunction::kNeedlemanWunsch, "needleman_wunsch", "Needleman-Wunsch",
     TokenNeed::kNone, false, false, 28.0},
    {SimFunction::kSmithWaterman, "smith_waterman", "Smith-Waterman",
     TokenNeed::kNone, false, false, 30.0},
}};

std::string NormalizeName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (c == ' ' || c == '-' || c == '_') continue;
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace

const SimFunctionInfo& GetSimFunctionInfo(SimFunction fn) {
  return kInfos[static_cast<size_t>(fn)];
}

const std::vector<SimFunction>& AllSimFunctions() {
  static const std::vector<SimFunction>& all = *new std::vector<SimFunction>(
      [] {
        std::vector<SimFunction> v;
        for (const auto& info : kInfos) v.push_back(info.fn);
        return v;
      }());
  return all;
}

Result<SimFunction> SimFunctionFromName(std::string_view name) {
  const std::string key = NormalizeName(name);
  for (const auto& info : kInfos) {
    if (NormalizeName(info.name) == key ||
        NormalizeName(info.display_name) == key) {
      return info.fn;
    }
  }
  return Status::NotFound(
      StrFormat("unknown similarity function '%.*s'",
                static_cast<int>(name.size()), name.data()));
}

namespace {

// Resolves the token list for one side, tokenizing locally if the caller
// did not precompute. `storage` keeps a locally-computed list alive.
const TokenList& ResolveTokens(const SimArg& arg, TokenNeed need,
                               TokenList& storage) {
  if (need == TokenNeed::kWords) {
    if (arg.words != nullptr) return *arg.words;
    storage = AlnumTokenize(arg.text);
    return storage;
  }
  if (arg.qgrams != nullptr) return *arg.qgrams;
  storage = QGramTokenize(arg.text, 3);
  return storage;
}

}  // namespace

double ComputeSimilarity(SimFunction fn, const SimArg& a, const SimArg& b,
                         const TfIdfModel* model) {
  switch (fn) {
    case SimFunction::kExactMatch:
      return ExactMatch(a.text, b.text);
    case SimFunction::kJaro:
      return JaroSimilarity(a.text, b.text);
    case SimFunction::kJaroWinkler:
      return JaroWinklerSimilarity(a.text, b.text);
    case SimFunction::kLevenshtein:
      return LevenshteinSimilarity(a.text, b.text);
    case SimFunction::kSoundex:
      return SoundexSimilarity(a.text, b.text);
    case SimFunction::kNumeric:
      return NumericSimilarity(a.text, b.text);
    case SimFunction::kNeedlemanWunsch:
      return NeedlemanWunschSimilarity(a.text, b.text);
    case SimFunction::kSmithWaterman:
      return SmithWatermanSimilarity(a.text, b.text);
    default:
      break;
  }
  const TokenNeed need = GetSimFunctionInfo(fn).tokens;
  TokenList sa;
  TokenList sb;
  const TokenList& ta = ResolveTokens(a, need, sa);
  const TokenList& tb = ResolveTokens(b, need, sb);
  switch (fn) {
    case SimFunction::kCosine:
      return CosineSimilarity(ta, tb);
    case SimFunction::kTrigram:
      return JaccardSimilarity(ta, tb);
    case SimFunction::kJaccard:
      return JaccardSimilarity(ta, tb);
    case SimFunction::kOverlap:
      return OverlapCoefficient(ta, tb);
    case SimFunction::kDice:
      return DiceSimilarity(ta, tb);
    case SimFunction::kMongeElkan:
      return MongeElkanSimilarity(ta, tb);
    case SimFunction::kTfIdf:
      if (model == nullptr) return 0.0;
      return model->Similarity(ta, tb);
    case SimFunction::kSoftTfIdf:
      if (model == nullptr) return 0.0;
      return SoftTfIdfSimilarity(*model, ta, tb);
    default:
      return 0.0;
  }
}

double ComputeSimilarity(SimFunction fn, std::string_view a,
                         std::string_view b, const TfIdfModel* model) {
  return ComputeSimilarity(fn, SimArg{a, nullptr, nullptr},
                           SimArg{b, nullptr, nullptr}, model);
}

}  // namespace emdbg
