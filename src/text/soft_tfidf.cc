#include "src/text/soft_tfidf.h"

#include <algorithm>

#include "src/text/jaro.h"

namespace emdbg {

double SoftTfIdfSimilarity(const TfIdfModel& model, const TokenList& a,
                           const TokenList& b, double threshold) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const TfIdfVector va = model.Vectorize(a);
  const TfIdfVector vb = model.Vectorize(b);
  double score = 0.0;
  for (const auto& [term_a, weight_a] : va.entries) {
    // Best fuzzy partner of term_a in b.
    double best_sim = 0.0;
    double best_weight = 0.0;
    for (const auto& [term_b, weight_b] : vb.entries) {
      const double sim = JaroWinklerSimilarity(term_a, term_b);
      if (sim > best_sim || (sim == best_sim && weight_b > best_weight)) {
        best_sim = sim;
        best_weight = weight_b;
      }
    }
    if (best_sim >= threshold) {
      score += weight_a * best_weight * best_sim;
    }
  }
  // The vectors are unit-norm, so score is already a cosine-like value;
  // clamp defensively against floating-point drift.
  return std::min(score, 1.0);
}

}  // namespace emdbg
