#ifndef EMDBG_TEXT_SOUNDEX_H_
#define EMDBG_TEXT_SOUNDEX_H_

#include <string>
#include <string_view>

namespace emdbg {

/// American Soundex code of `word` (e.g. "Robert" → "R163"). Non-letter
/// characters are ignored; an input with no letters yields "".
std::string SoundexCode(std::string_view word);

/// Phonetic similarity of two strings: each is whitespace-tokenized, every
/// token is Soundex-encoded, and the result is the Jaccard similarity of the
/// two code sets. Single-token inputs therefore reduce to code equality
/// (0 or 1).
double SoundexSimilarity(std::string_view a, std::string_view b);

}  // namespace emdbg

#endif  // EMDBG_TEXT_SOUNDEX_H_
