#ifndef EMDBG_TEXT_TOKEN_INTERNER_H_
#define EMDBG_TEXT_TOKEN_INTERNER_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace emdbg {

/// Id of an interned token. Ids are dense and assigned in first-seen order,
/// so id order is *not* lexicographic — kernels that need lexicographic
/// iteration (TF-IDF dot products, cosine) go through LexRanks().
using TokenId = uint32_t;

inline constexpr TokenId kInvalidTokenId = 0xffffffffu;

/// Arena-backed token dictionary: maps distinct token strings to dense
/// uint32 ids and back. Token bytes are copied once into chunked arena
/// storage (chunks never move, so the string_views handed out stay valid
/// for the interner's lifetime) and every subsequent occurrence of the
/// token costs one hash lookup instead of a heap allocation.
///
/// Thread-safety follows the PairContext token-cache contract: Intern()
/// mutates and must not race with anything; Find()/Text()/size() and a
/// LexRanks() snapshot taken *after* the last Intern() are safe to use from
/// many threads concurrently. PairContext does all interning in the serial
/// part of Prewarm (or in single-threaded first-touch fills) and only then
/// lets workers loose on the read-only views.
class TokenInterner {
 public:
  TokenInterner() = default;
  TokenInterner(const TokenInterner&) = delete;
  TokenInterner& operator=(const TokenInterner&) = delete;

  /// Returns the id of `token`, interning it if new.
  TokenId Intern(std::string_view token);

  /// Id of an already-interned token; kInvalidTokenId if absent.
  TokenId Find(std::string_view token) const;

  /// The interned bytes of `id` (valid for the interner's lifetime).
  std::string_view Text(TokenId id) const { return tokens_[id]; }

  /// Number of distinct tokens interned.
  uint32_t size() const { return static_cast<uint32_t>(tokens_.size()); }

  /// Snapshot of byte-lexicographic ranks: (*ranks)[id] is the position of
  /// Text(id) among all currently-interned tokens sorted by operator< on
  /// their bytes. Rebuilt lazily after interning grows the dictionary.
  ///
  /// Key invariant: interning *new* tokens never reorders existing ones, so
  /// any array sorted by an older snapshot's ranks remains sorted under a
  /// newer snapshot — cached id vectors survive vocabulary growth.
  std::shared_ptr<const std::vector<uint32_t>> LexRanks();

  /// Heap bytes held by the arena chunks (token byte storage).
  size_t ArenaBytes() const;

  /// Approximate heap bytes of the id<->token maps (dictionary overhead on
  /// top of the arena, including the rank snapshot if built).
  size_t DictionaryBytes() const;

 private:
  /// Copies `token` into the arena and returns a stable view.
  std::string_view Store(std::string_view token);

  static constexpr size_t kChunkBytes = 1 << 16;

  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };

  std::vector<Chunk> chunks_;
  std::vector<std::string_view> tokens_;  // id -> arena bytes
  std::unordered_map<std::string_view, TokenId> map_;
  std::shared_ptr<const std::vector<uint32_t>> ranks_;  // stale if size differs
};

}  // namespace emdbg

#endif  // EMDBG_TEXT_TOKEN_INTERNER_H_
