#include "src/util/thread_pool.h"

#include <algorithm>

namespace emdbg {

namespace {

size_t RoundUp(size_t v, size_t a) { return (v + a - 1) / a * a; }

/// Appends [begin, end) to a per-worker completed list, merging with the
/// previous range when adjacent (a worker draining its own span claims
/// consecutive chunks, so the common case collapses to one range).
void AppendRange(std::vector<std::pair<size_t, size_t>>& ranges,
                 size_t begin, size_t end) {
  if (begin >= end) return;
  if (!ranges.empty() && ranges.back().second == begin) {
    ranges.back().second = end;
  } else {
    ranges.emplace_back(begin, end);
  }
}

}  // namespace

/// One ParallelFor in flight. Per-worker cursors are cacheline-padded:
/// `next` is hammered by fetch_add from the owner and, near the tail, by
/// thieves; padding keeps that contention off neighboring cursors.
struct ThreadPool::Job {
  struct alignas(64) Cursor {
    std::atomic<size_t> next{0};
    size_t end = 0;
  };

  size_t grain = kIndexAlign;
  bool steal = true;
  const ItemFn* body = nullptr;
  const RunControl* control = nullptr;
  /// Tripped by the first worker whose StopCheck fires; other workers
  /// observe it once per item and drain without claiming more chunks.
  std::atomic<bool> stop{false};
  std::unique_ptr<Cursor[]> cursors;
  /// Per-worker exact completion records (disjoint ranges, in claim
  /// order for that worker).
  std::vector<std::vector<std::pair<size_t, size_t>>> completed;
};

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  num_workers_ = num_threads;
  threads_.reserve(num_workers_ - 1);
  for (size_t w = 1; w < num_workers_; ++w) {
    threads_.emplace_back([this, w] { ThreadLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ThreadLoop(size_t worker) {
  uint64_t seen = 0;
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ > seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    RunWorker(*job, worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--busy_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunWorker(Job& job, size_t w) {
  StopCheck stop(*job.control);
  std::vector<std::pair<size_t, size_t>>& done = job.completed[w];

  // Runs one claimed chunk; false = the run was stopped inside it. The
  // completed list records exactly the items whose body ran: a stop
  // between items records the partial prefix and nothing else.
  auto run_chunk = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (job.stop.load(std::memory_order_relaxed) || stop.ShouldStop()) {
        job.stop.store(true, std::memory_order_relaxed);
        AppendRange(done, begin, i);
        return false;
      }
      (*job.body)(w, i);
    }
    AppendRange(done, begin, end);
    return true;
  };

  // Own span first (locality), then one circular scan over the other
  // workers' cursors. Spans are never refilled, so a cursor observed
  // exhausted stays exhausted and one scan suffices.
  const size_t k = num_workers_;
  for (size_t v = w; v < w + k; ++v) {
    if (v != w && !job.steal) return;
    Job::Cursor& cursor = job.cursors[v % k];
    while (true) {
      if (job.stop.load(std::memory_order_relaxed)) return;
      if (cursor.next.load(std::memory_order_relaxed) >= cursor.end) break;
      const size_t begin =
          cursor.next.fetch_add(job.grain, std::memory_order_relaxed);
      if (begin >= cursor.end) break;
      if (!run_chunk(begin, std::min(begin + job.grain, cursor.end))) {
        return;
      }
    }
  }
}

ThreadPool::ForResult ThreadPool::ParallelFor(size_t n,
                                              const RunControl& control,
                                              const ItemFn& body,
                                              ForOptions options) {
  ForResult result;
  if (n == 0) return result;
  std::lock_guard<std::mutex> serialize(run_mu_);

  const size_t k = num_workers_;
  const size_t align = std::max<size_t>(1, options.align);
  Job job;
  job.grain = options.grain != 0
                  ? RoundUp(options.grain, align)
                  : std::max(align, RoundUp(n / (k * 16 + 1), align));
  job.steal = options.steal;
  job.body = &body;
  job.control = &control;
  job.cursors = std::make_unique<Job::Cursor[]>(k);
  job.completed.resize(k);

  // Equal aligned spans; dynamics come from chunked claiming + stealing.
  const size_t span = std::max(RoundUp((n + k - 1) / k, align), align);
  for (size_t w = 0; w < k; ++w) {
    job.cursors[w].next.store(std::min(w * span, n),
                              std::memory_order_relaxed);
    job.cursors[w].end = std::min((w + 1) * span, n);
  }

  if (k > 1) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &job;
      busy_workers_ = k - 1;
      ++generation_;
    }
    work_cv_.notify_all();
  }

  RunWorker(job, 0);  // the calling thread is worker 0

  if (k > 1) {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return busy_workers_ == 0; });
    job_ = nullptr;
  }

  if (job.stop.load(std::memory_order_relaxed)) {
    result.stopped = true;
    result.status = control.StopStatus();
    for (std::vector<std::pair<size_t, size_t>>& ranges : job.completed) {
      for (const auto& r : ranges) {
        result.items_completed += r.second - r.first;
      }
      result.completed.insert(result.completed.end(), ranges.begin(),
                              ranges.end());
    }
    std::sort(result.completed.begin(), result.completed.end());
  } else {
    result.items_completed = n;
  }
  return result;
}

}  // namespace emdbg
