#ifndef EMDBG_UTIL_SPILL_FILE_H_
#define EMDBG_UTIL_SPILL_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>

#include "src/util/memory_budget.h"
#include "src/util/status.h"

namespace emdbg {

/// CRC-framed byte streams for out-of-core runs (external sort runs,
/// spilled memo shards). A spill file is scratch the process writes and
/// reads back within one run, but it flows through the same disks and
/// page caches as everything else, so every frame carries a CRC-32C —
/// bit rot or a concurrent truncation surfaces as a clean ParseError at
/// read time, never as silently wrong match results.
///
/// Format:
///   magic "EMDBGSPL" (8 bytes), version u32 (= 1), frame_bytes u32
///   then frames until EOF, each:
///     payload_size u32 | crc32c(payload) u32 | payload bytes
///
/// EOF exactly on a frame boundary is a clean end of stream; EOF inside
/// a frame is DataLoss-style corruption (reported as ParseError).
/// `frame_bytes` in the header is advisory (the writer's buffer size);
/// a single Write larger than the buffer becomes its own oversized
/// frame, so readers size their buffer per frame, not from the header.
///
/// Unlike state_io's atomic snapshots, spill streams are append-only
/// scratch: no temp+rename (a crashed run deletes its spill dir), but
/// Close() flushes everything, so a successfully closed stream reads
/// back complete.
///
/// Memory accounting: writer and reader bill their frame buffer to the
/// optional MemoryBudget (consumer "spill.buffer"), so even out-of-core
/// machinery itself stays inside the budget it exists to enforce.
///
/// Fault sites: "spill.write" fires in Write/Close (simulated IO error
/// on flush), "spill.read" fires on frame reads. Both are in the
/// robustness matrix: an injected spill fault must abort the run with a
/// clean Status, never corrupt results.
class SpillWriter {
 public:
  struct Options {
    /// Frame payload size (buffered bytes before a flush).
    size_t frame_bytes = 1u << 20;
    /// Bills the frame buffer; may be null.
    MemoryBudget* budget = nullptr;
  };

  SpillWriter() = default;
  ~SpillWriter();

  SpillWriter(SpillWriter&& other) noexcept;
  SpillWriter& operator=(SpillWriter&& other) noexcept;
  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  /// Creates/truncates `path` and writes the stream header.
  static Result<SpillWriter> Create(const std::string& path,
                                    const Options& options);
  static Result<SpillWriter> Create(const std::string& path) {
    return Create(path, Options{});
  }

  /// Appends `size` payload bytes (buffered; frames flush as the buffer
  /// fills). After any error the writer is dead: further Writes return
  /// the same failure category.
  Status Write(const void* data, size_t size);

  template <typename T>
  Status WritePod(const T& v) {
    static_assert(std::is_trivially_copyable<T>::value,
                  "spill streams hold plain bytes");
    return Write(&v, sizeof(T));
  }

  /// Flushes the final frame and closes the file. Idempotent.
  Status Close();

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  /// Total payload bytes accepted by Write().
  uint64_t payload_bytes() const { return payload_bytes_; }

 private:
  Status FlushFrame();
  void Abandon();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::string buffer_;
  size_t frame_bytes_ = 0;
  uint64_t payload_bytes_ = 0;
  bool failed_ = false;
  MemoryReservation billing_;
};

/// Sequential reader for a stream written by SpillWriter. Presents the
/// concatenated frame payloads as one byte stream; frame boundaries are
/// invisible to callers.
class SpillReader {
 public:
  struct Options {
    /// Bills the frame buffer (grown to the largest frame seen); may be
    /// null.
    MemoryBudget* budget = nullptr;
  };

  SpillReader() = default;
  ~SpillReader();

  SpillReader(SpillReader&& other) noexcept;
  SpillReader& operator=(SpillReader&& other) noexcept;
  SpillReader(const SpillReader&) = delete;
  SpillReader& operator=(const SpillReader&) = delete;

  /// Opens `path` and validates the header.
  static Result<SpillReader> Open(const std::string& path,
                                  const Options& options);
  static Result<SpillReader> Open(const std::string& path) {
    return Open(path, Options{});
  }

  /// Reads exactly `size` bytes (across frames as needed). OutOfRange
  /// when the stream ends cleanly before `size` bytes; ParseError on CRC
  /// mismatch or mid-frame truncation; IoError on read failures.
  Status Read(void* out, size_t size);

  template <typename T>
  Status ReadPod(T* v) {
    static_assert(std::is_trivially_copyable<T>::value,
                  "spill streams hold plain bytes");
    return Read(v, sizeof(T));
  }

  /// True when every payload byte has been consumed and the file ends on
  /// a clean frame boundary. Corrupt tails surface on the Read that hits
  /// them, not here.
  bool AtEnd();

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  /// Payload bytes consumed so far.
  uint64_t bytes_read() const { return bytes_read_; }

  void Close();

 private:
  /// Loads the next frame into the buffer. OutOfRange on clean EOF.
  Status FillBuffer();
  Status BillBuffer(size_t capacity);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::string buffer_;
  size_t pos_ = 0;
  uint64_t bytes_read_ = 0;
  MemoryBudget* budget_ = nullptr;
  size_t billed_ = 0;
  bool failed_ = false;
};

}  // namespace emdbg

#endif  // EMDBG_UTIL_SPILL_FILE_H_
