#include "src/util/status.h"

namespace emdbg {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

bool StatusCodeFromName(std::string_view name, StatusCode* out) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,
      StatusCode::kInvalidArgument,
      StatusCode::kNotFound,
      StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,
      StatusCode::kFailedPrecondition,
      StatusCode::kInternal,
      StatusCode::kIoError,
      StatusCode::kParseError,
      StatusCode::kCancelled,
      StatusCode::kDeadlineExceeded,
      StatusCode::kResourceExhausted,
  };
  for (const StatusCode code : kAll) {
    if (name == StatusCodeName(code)) {
      *out = code;
      return true;
    }
  }
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace emdbg
