#include "src/util/memory_budget.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/util/fault_injection.h"

namespace emdbg {

MemoryBudget::MemoryBudget(size_t limit_bytes, std::string name)
    : parent_(nullptr), limit_(limit_bytes), name_(std::move(name)) {}

MemoryBudget::MemoryBudget(MemoryBudget* parent, size_t limit_bytes,
                           std::string name)
    : parent_(parent), limit_(limit_bytes), name_(std::move(name)) {}

MemoryBudget::~MemoryBudget() {
  // Safety net for leaked billing: a drained child holds 0 bytes, but if
  // a consumer died without releasing, give the bytes back to the parent
  // so one session's leak cannot permanently shrink the shared budget.
  const size_t leaked = used_.load(std::memory_order_relaxed);
  if (parent_ != nullptr && leaked > 0) parent_->Release(leaked);
}

bool MemoryBudget::ChargeLocal(size_t bytes) {
  size_t cur = used_.load(std::memory_order_relaxed);
  for (;;) {
    if (limit_ != 0 && bytes > limit_ - std::min(cur, limit_)) return false;
    if (used_.compare_exchange_weak(cur, cur + bytes,
                                    std::memory_order_relaxed)) {
      size_t now = cur + bytes;
      size_t peak = peak_.load(std::memory_order_relaxed);
      while (now > peak &&
             !peak_.compare_exchange_weak(peak, now,
                                          std::memory_order_relaxed)) {
      }
      return true;
    }
  }
}

void MemoryBudget::UnchargeLocal(size_t bytes) {
  size_t cur = used_.load(std::memory_order_relaxed);
  for (;;) {
    size_t next = cur >= bytes ? cur - bytes : 0;
    if (used_.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

size_t MemoryBudget::RunReclaimers(size_t want) {
  std::lock_guard<std::mutex> lock(reclaim_mu_);
  reclaim_runs_.fetch_add(1, std::memory_order_relaxed);
  // Eviction order: cheapest-to-rebuild class first, coldest first within
  // a class. Sort a view of indices so registration order is preserved in
  // the registry itself.
  std::vector<size_t> order(reclaimers_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    const Reclaimer& ra = reclaimers_[a];
    const Reclaimer& rb = reclaimers_[b];
    if (ra.priority != rb.priority) return ra.priority < rb.priority;
    return ra.last_touch < rb.last_touch;
  });
  size_t freed_total = 0;
  for (size_t idx : order) {
    // Re-check fit before each (potentially expensive) eviction: a
    // concurrent Release may already have made room.
    if (limit_ != 0 &&
        want <= limit_ - std::min(used_.load(std::memory_order_relaxed),
                                  limit_)) {
      break;
    }
    Reclaimer& r = reclaimers_[idx];
    if (!r.fn) continue;
    size_t freed = r.fn(want);
    freed_total += freed;
    if (freed > 0) {
      reclaimed_bytes_.fetch_add(freed, std::memory_order_relaxed);
    }
  }
  return freed_total;
}

namespace {

/// EMDBG_BUDGET_TRACE=1 prints every reservation (site, bytes, outcome)
/// to stderr — the tool that pins a divergence-under-denial to the exact
/// reservation index an injected fault landed on.
bool BudgetTraceEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("EMDBG_BUDGET_TRACE");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return enabled;
}

}  // namespace

void MemoryBudget::RecordDenial(std::string_view consumer, size_t bytes) {
  denials_.fetch_add(1, std::memory_order_relaxed);
  std::string entry(consumer.empty() ? std::string_view("?") : consumer);
  entry += '(' + std::to_string(bytes) + ')';
  std::lock_guard<std::mutex> lock(denial_mu_);
  if (denied_consumers_.size() >= 32) {
    denied_consumers_.erase(denied_consumers_.begin());
  }
  denied_consumers_.push_back(std::move(entry));
}

std::vector<std::string> MemoryBudget::DeniedConsumers() const {
  std::lock_guard<std::mutex> lock(denial_mu_);
  return denied_consumers_;
}

Status MemoryBudget::Reserve(size_t bytes, std::string_view consumer) {
  if (bytes == 0) return Status::Ok();
  const uint64_t seq = reserves_.fetch_add(1, std::memory_order_relaxed);
  if (FaultFire("mem.reserve")) {
    RecordDenial(consumer, bytes);
    if (BudgetTraceEnabled()) {
      std::fprintf(stderr, "[budget %s] #%llu %.*s %zu B -> DENIED(fault)\n",
                   name_.c_str(), static_cast<unsigned long long>(seq),
                   static_cast<int>(consumer.size()), consumer.data(),
                   bytes);
    }
    return Status::ResourceExhausted(
        "memory budget '" + name_ + "': injected reservation failure (" +
        std::to_string(bytes) + " bytes)");
  }
  if (!ChargeLocal(bytes)) {
    // Over the local limit: try evicting reclaimable caches, then retry
    // once. Reclaim callbacks call Release (lock-free), not Reserve, so
    // this cannot recurse.
    RunReclaimers(bytes);
    if (!ChargeLocal(bytes)) {
      RecordDenial(consumer, bytes);
      if (BudgetTraceEnabled()) {
        std::fprintf(stderr, "[budget %s] #%llu %.*s %zu B -> DENIED\n",
                     name_.c_str(), static_cast<unsigned long long>(seq),
                     static_cast<int>(consumer.size()), consumer.data(),
                     bytes);
      }
      return Status::ResourceExhausted(
          "memory budget '" + name_ + "': need " + std::to_string(bytes) +
          " bytes, used " + std::to_string(used()) + " of " +
          std::to_string(limit_) + " (nothing left to reclaim)");
    }
  }
  if (parent_ != nullptr) {
    Status s = parent_->Reserve(bytes, consumer);
    if (!s.ok()) {
      UnchargeLocal(bytes);
      RecordDenial(consumer, bytes);
      return s;
    }
  }
  if (BudgetTraceEnabled()) {
    std::fprintf(stderr, "[budget %s] #%llu %.*s %zu B -> ok\n",
                 name_.c_str(), static_cast<unsigned long long>(seq),
                 static_cast<int>(consumer.size()), consumer.data(), bytes);
  }
  return Status::Ok();
}

Status MemoryBudget::TryReserve(size_t bytes, std::string_view consumer) {
  if (bytes == 0) return Status::Ok();
  reserves_.fetch_add(1, std::memory_order_relaxed);
  if (!ChargeLocal(bytes)) {
    RecordDenial(consumer, bytes);
    return Status::ResourceExhausted(
        "memory budget '" + name_ + "': need " + std::to_string(bytes) +
        " bytes, used " + std::to_string(used()) + " of " +
        std::to_string(limit_));
  }
  if (parent_ != nullptr) {
    Status s = parent_->TryReserve(bytes, consumer);
    if (!s.ok()) {
      UnchargeLocal(bytes);
      RecordDenial(consumer, bytes);
      return s;
    }
  }
  return Status::Ok();
}

void MemoryBudget::Release(size_t bytes) {
  if (bytes == 0) return;
  UnchargeLocal(bytes);
  if (parent_ != nullptr) parent_->Release(bytes);
}

size_t MemoryBudget::remaining() const {
  if (limit_ == 0) return SIZE_MAX;
  size_t u = used();
  return u >= limit_ ? 0 : limit_ - u;
}

MemoryBudget::Stats MemoryBudget::stats() const {
  Stats s;
  s.reserves = reserves_.load(std::memory_order_relaxed);
  s.denials = denials_.load(std::memory_order_relaxed);
  s.reclaim_runs = reclaim_runs_.load(std::memory_order_relaxed);
  s.reclaimed_bytes = reclaimed_bytes_.load(std::memory_order_relaxed);
  return s;
}

uint64_t MemoryBudget::AddReclaimer(int priority, std::string name,
                                    std::function<size_t(size_t)> fn) {
  std::lock_guard<std::mutex> lock(reclaim_mu_);
  uint64_t id = next_reclaimer_id_++;
  Reclaimer r;
  r.id = id;
  r.priority = priority;
  r.last_touch = touch_clock_.fetch_add(1, std::memory_order_relaxed);
  r.name = std::move(name);
  r.fn = std::move(fn);
  reclaimers_.push_back(std::move(r));
  return id;
}

void MemoryBudget::RemoveReclaimer(uint64_t id) {
  std::lock_guard<std::mutex> lock(reclaim_mu_);
  reclaimers_.erase(
      std::remove_if(reclaimers_.begin(), reclaimers_.end(),
                     [id](const Reclaimer& r) { return r.id == id; }),
      reclaimers_.end());
}

void MemoryBudget::Touch(uint64_t id) {
  uint64_t now = touch_clock_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(reclaim_mu_);
  for (Reclaimer& r : reclaimers_) {
    if (r.id == id) {
      r.last_touch = now;
      return;
    }
  }
}

Result<MemoryReservation> MemoryReservation::Make(MemoryBudget* budget,
                                                  size_t bytes,
                                                  std::string_view consumer) {
  if (budget == nullptr) return MemoryReservation(nullptr, 0);
  EMDBG_RETURN_IF_ERROR(budget->Reserve(bytes, consumer));
  return MemoryReservation(budget, bytes);
}

}  // namespace emdbg
