#include "src/util/csv.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/util/fault_injection.h"
#include "src/util/string_util.h"

namespace emdbg {

bool CsvParser::Fail(std::string message, size_t line, size_t column) {
  status_ = Status::ParseError(
      StrFormat("%s at line %zu, column %zu", message.c_str(), line, column));
  // Park the cursor at EOF so subsequent NextRow calls return false.
  pos_ = data_.size();
  return false;
}

bool CsvParser::NextRow(CsvRow* row) {
  if (!status_.ok() || pos_ >= data_.size()) return false;
  row->clear();
  ++line_;
  column_ = 1;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  // Where the currently open quote started, for error reporting.
  size_t quote_line = 0, quote_column = 0;

  // Advances past `c`, keeping the line/column cursor in sync. Newlines
  // only advance `line_` when inside quotes — outside quotes they end the
  // row and NextRow bumps the counter itself.
  auto advance = [&](char c) {
    ++pos_;
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
  };

  auto check_field_limit = [&]() {
    if (field.size() >= limits_.max_field_bytes) {
      return Fail(StrFormat("field exceeds %zu bytes",
                            limits_.max_field_bytes),
                  line_, column_);
    }
    return true;
  };
  auto push_field = [&]() {
    if (row->size() >= limits_.max_row_fields) {
      return Fail(StrFormat("row exceeds %zu fields",
                            limits_.max_row_fields),
                  line_, column_);
    }
    row->push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
    return true;
  };

  while (pos_ < data_.size()) {
    const char c = data_[pos_];
    if (c == '\0') {
      // NUL bytes never appear in legitimate CSV text; they usually mean
      // a binary file or truncated/corrupted download was passed in.
      return Fail("embedded NUL byte", line_, column_);
    }
    if (in_quotes) {
      if (c == '"') {
        if (pos_ + 1 < data_.size() && data_[pos_ + 1] == '"') {
          if (!check_field_limit()) return false;
          field.push_back('"');
          advance(c);
          advance(data_[pos_]);
        } else {
          in_quotes = false;
          advance(c);
        }
      } else {
        if (!check_field_limit()) return false;
        field.push_back(c);
        advance(c);
      }
      continue;
    }
    if (c == '"' && field.empty() && !field_was_quoted) {
      in_quotes = true;
      field_was_quoted = true;
      quote_line = line_;
      quote_column = column_;
      advance(c);
    } else if (c == delim_) {
      if (!push_field()) return false;
      advance(c);
    } else if (c == '\n' || c == '\r') {
      ++pos_;
      if (c == '\r' && pos_ < data_.size() && data_[pos_] == '\n') ++pos_;
      return push_field();
    } else {
      if (!check_field_limit()) return false;
      field.push_back(c);
      advance(c);
    }
  }
  if (in_quotes) {
    return Fail("unterminated quoted field: end of input reached with the "
                "quote still open; quote opened",
                quote_line, quote_column);
  }
  return push_field();
}

Result<std::vector<CsvRow>> ParseCsv(std::string_view data, char delim) {
  CsvParser parser(data, delim);
  std::vector<CsvRow> rows;
  CsvRow row;
  while (parser.NextRow(&row)) rows.push_back(row);
  if (!parser.status().ok()) return parser.status();
  return rows;
}

std::string CsvEscape(std::string_view field, char delim) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == '"' || c == delim || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string WriteCsv(const std::vector<CsvRow>& rows, char delim) {
  std::string out;
  for (const CsvRow& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out.push_back(delim);
      out.append(CsvEscape(row[i], delim));
    }
    out.push_back('\n');
  }
  return out;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open %s", path.c_str()));
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) {
    return Status::IoError(StrFormat("error reading %s", path.c_str()));
  }
  return out;
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open %s for write",
                                     path.c_str()));
  }
  const size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const int close_rc = std::fclose(f);
  if (written != data.size() || close_rc != 0) {
    return Status::IoError(StrFormat("error writing %s", path.c_str()));
  }
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  // Temp file in the same directory so rename(2) stays within one
  // filesystem and is atomic.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError(StrFormat("cannot open %s for write: %s",
                                     tmp.c_str(), std::strerror(errno)));
  }
  // Injected torn write: half the payload reaches the temp file, then the
  // "crash" — the temp file is deliberately left behind (as a real crash
  // would) and the rename never happens, so `path` keeps its old content.
  if (FaultFire("state.atomic_write")) {
    const size_t half = data.size() / 2;
    size_t torn = 0;
    while (torn < half) {
      const ssize_t n = ::write(fd, data.data() + torn, half - torn);
      if (n <= 0) break;
      torn += static_cast<size_t>(n);
    }
    ::close(fd);
    return Status::IoError(
        StrFormat("torn write to %s (injected)", tmp.c_str()));
  }
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IoError(StrFormat("error writing %s: %s", tmp.c_str(),
                                       std::strerror(err)));
    }
    off += static_cast<size_t>(n);
  }
  // Data must be on disk before the rename makes it visible, or a crash
  // could leave a renamed-but-empty file.
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IoError(StrFormat("fsync %s failed: %s", tmp.c_str(),
                                     std::strerror(err)));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError(StrFormat("close %s failed", tmp.c_str()));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return Status::IoError(StrFormat("rename %s -> %s failed: %s",
                                     tmp.c_str(), path.c_str(),
                                     std::strerror(err)));
  }
  return Status::Ok();
}

}  // namespace emdbg
