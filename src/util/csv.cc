#include "src/util/csv.h"

#include <cstdio>

#include "src/util/string_util.h"

namespace emdbg {

bool CsvParser::NextRow(CsvRow* row) {
  if (!status_.ok() || pos_ >= data_.size()) return false;
  row->clear();
  ++line_;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  while (pos_ < data_.size()) {
    const char c = data_[pos_];
    if (in_quotes) {
      if (c == '"') {
        if (pos_ + 1 < data_.size() && data_[pos_ + 1] == '"') {
          field.push_back('"');
          pos_ += 2;
        } else {
          in_quotes = false;
          ++pos_;
        }
      } else {
        field.push_back(c);
        ++pos_;
      }
      continue;
    }
    if (c == '"' && field.empty() && !field_was_quoted) {
      in_quotes = true;
      field_was_quoted = true;
      ++pos_;
    } else if (c == delim_) {
      row->push_back(std::move(field));
      field.clear();
      field_was_quoted = false;
      ++pos_;
    } else if (c == '\n' || c == '\r') {
      ++pos_;
      if (c == '\r' && pos_ < data_.size() && data_[pos_] == '\n') ++pos_;
      row->push_back(std::move(field));
      return true;
    } else {
      field.push_back(c);
      ++pos_;
    }
  }
  if (in_quotes) {
    status_ = Status::ParseError(
        StrFormat("unterminated quoted field at line %zu", line_));
    return false;
  }
  row->push_back(std::move(field));
  return true;
}

Result<std::vector<CsvRow>> ParseCsv(std::string_view data, char delim) {
  CsvParser parser(data, delim);
  std::vector<CsvRow> rows;
  CsvRow row;
  while (parser.NextRow(&row)) rows.push_back(row);
  if (!parser.status().ok()) return parser.status();
  return rows;
}

std::string CsvEscape(std::string_view field, char delim) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == '"' || c == delim || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string WriteCsv(const std::vector<CsvRow>& rows, char delim) {
  std::string out;
  for (const CsvRow& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out.push_back(delim);
      out.append(CsvEscape(row[i], delim));
    }
    out.push_back('\n');
  }
  return out;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open %s", path.c_str()));
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) {
    return Status::IoError(StrFormat("error reading %s", path.c_str()));
  }
  return out;
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open %s for write",
                                     path.c_str()));
  }
  const size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const int close_rc = std::fclose(f);
  if (written != data.size() || close_rc != 0) {
    return Status::IoError(StrFormat("error writing %s", path.c_str()));
  }
  return Status::Ok();
}

}  // namespace emdbg
