#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace emdbg {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (q <= 0.0) return values.front();
  if (q >= 1.0) return values.back();
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Median(std::vector<double> values) {
  return Quantile(std::move(values), 0.5);
}

}  // namespace emdbg
