#include "src/util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <cctype>

namespace emdbg {

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

namespace {
bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view TrimAscii(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && IsAsciiSpace(s[begin])) ++begin;
  while (end > begin && IsAsciiSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsAsciiSpace(s[i])) ++i;
    const size_t start = i;
    while (i < s.size() && !IsAsciiSpace(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = TrimAscii(s);
  if (s.empty() || s.size() > 64) return false;
  char buf[65];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + s.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = TrimAscii(s);
  if (s.empty() || s.size() > 32) return false;
  char buf[33];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + s.size()) return false;
  *out = v;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace emdbg
