#include "src/util/crc32c.h"

#include <array>

namespace emdbg {

namespace {

/// Table for the reflected Castagnoli polynomial 0x82F63B78.
constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace emdbg
