#ifndef EMDBG_UTIL_CANCELLATION_H_
#define EMDBG_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "src/util/status.h"

namespace emdbg {

/// Cooperative cancellation & deadlines for long matching runs.
///
/// The paper's premise is interactivity: an analyst edits a rule and
/// expects feedback in seconds. A mistyped threshold can make a predicate
/// pathologically expensive, so every matcher accepts a `RunControl` and
/// checks it once per candidate pair. A run that is cancelled or exceeds
/// its deadline stops cleanly and returns a *partial* `MatchResult` — the
/// pairs completed so far plus a `Status` explaining why — instead of
/// freezing the session.
///
/// Typical use:
///
///   CancellationToken token;                 // shared with a ^C handler
///   RunControl control(token, Deadline::AfterMillis(500));
///   MatchResult r = matcher.Run(fn, pairs, ctx, control);
///   if (r.partial) { /* r.evaluated marks the valid prefix */ }

/// A shared, thread-safe cancel flag. Copies refer to the same flag.
/// `RequestCancel` is async-signal-safe (a relaxed atomic store), so a
/// SIGINT handler may trip it directly — see `SigintCancellation`.
class CancellationToken {
 public:
  CancellationToken()
      : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void RequestCancel() const noexcept {
    flag_->store(true, std::memory_order_relaxed);
  }
  void Reset() const noexcept {
    flag_->store(false, std::memory_order_relaxed);
  }
  bool cancelled() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }

  /// The raw flag, for installing in a signal handler.
  std::atomic<bool>* flag() const noexcept { return flag_.get(); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// An optional wall-clock budget. Default-constructed = no deadline.
class Deadline {
 public:
  Deadline() = default;

  static Deadline AfterMillis(double ms) {
    Deadline d;
    d.has_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  bool has_deadline() const { return has_; }
  bool expired() const { return has_ && Clock::now() >= at_; }

  /// Milliseconds until expiry; negative if already expired, +inf if none.
  double remaining_millis() const;

 private:
  using Clock = std::chrono::steady_clock;
  bool has_ = false;
  Clock::time_point at_{};
};

/// What every matcher consumes: an optional cancellation token plus an
/// optional deadline. Default-constructed = run to completion.
class RunControl {
 public:
  RunControl() = default;
  explicit RunControl(CancellationToken token)
      : token_(std::move(token)), has_token_(true) {}
  explicit RunControl(Deadline deadline) : deadline_(deadline) {}
  RunControl(CancellationToken token, Deadline deadline)
      : token_(std::move(token)), has_token_(true), deadline_(deadline) {}

  /// True if this control can ever stop a run (token or deadline set).
  bool can_stop() const { return has_token_ || deadline_.has_deadline(); }

  bool cancelled() const { return has_token_ && token_.cancelled(); }
  bool deadline_expired() const { return deadline_.expired(); }
  const Deadline& deadline() const { return deadline_; }

  /// Why a run stopped: Cancelled beats DeadlineExceeded; OK if neither.
  Status StopStatus() const;

 private:
  CancellationToken token_;
  bool has_token_ = false;
  Deadline deadline_;
};

/// Per-thread checkpoint helper. The token is loaded on every call (one
/// relaxed atomic load); the deadline clock is sampled every
/// `deadline_stride` calls to keep the steady_clock overhead off the
/// per-pair path. Once tripped it stays tripped.
class StopCheck {
 public:
  explicit StopCheck(const RunControl& control,
                     uint32_t deadline_stride = 32)
      : control_(control),
        armed_(control.can_stop()),
        stride_(deadline_stride == 0 ? 1 : deadline_stride) {}

  /// Call once per unit of work (candidate pair). True = stop now.
  bool ShouldStop() {
    if (!armed_) return false;
    if (tripped_) return true;
    if (control_.cancelled()) {
      tripped_ = true;
      return true;
    }
    if (count_++ % stride_ == 0 && control_.deadline_expired()) {
      tripped_ = true;
      return true;
    }
    return false;
  }

  bool tripped() const { return tripped_; }

  /// The stop reason (valid once tripped; OK otherwise).
  Status Reason() const { return control_.StopStatus(); }

 private:
  const RunControl& control_;
  bool armed_;
  bool tripped_ = false;
  uint32_t stride_;
  uint32_t count_ = 0;
};

/// RAII SIGINT→token bridge for interactive tools: while alive, Ctrl-C
/// trips `token` (first press cancels the current run; the process stays
/// alive). The previous handler is restored on destruction. Only one
/// instance may be alive per process.
class SigintCancellation {
 public:
  explicit SigintCancellation(CancellationToken token);
  ~SigintCancellation();

  SigintCancellation(const SigintCancellation&) = delete;
  SigintCancellation& operator=(const SigintCancellation&) = delete;

 private:
  CancellationToken token_;  // keeps the flag alive for the handler
};

/// RAII bridge from the process-termination signals to a token, for tools
/// that must drain instead of dying mid-write: SIGINT, SIGTERM, and
/// SIGHUP all trip `token` (cancelling any in-flight run); SIGTERM/SIGHUP
/// additionally latch `exit_requested`, so the tool's main loop can
/// distinguish "cancel the current run, keep the session" (Ctrl-C) from
/// "checkpoint durable state and exit" (service shutdown semantics).
///
/// SIGINT is installed with SA_RESTART (an interactive prompt read
/// resumes); SIGTERM/SIGHUP are installed *without* it, so a blocking
/// stdin read fails with EINTR and the main loop gets to run its drain
/// path promptly. Only one instance (of this or SigintCancellation) may
/// be alive per process.
class ShutdownSignals {
 public:
  explicit ShutdownSignals(CancellationToken token);
  ~ShutdownSignals();

  ShutdownSignals(const ShutdownSignals&) = delete;
  ShutdownSignals& operator=(const ShutdownSignals&) = delete;

  /// True once SIGTERM or SIGHUP has been received.
  bool exit_requested() const noexcept;

 private:
  CancellationToken token_;  // keeps the flag alive for the handler
};

}  // namespace emdbg

#endif  // EMDBG_UTIL_CANCELLATION_H_
