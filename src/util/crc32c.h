#ifndef EMDBG_UTIL_CRC32C_H_
#define EMDBG_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace emdbg {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum used by the
/// durable-state formats (state files, edit journal) to detect torn writes
/// and bit rot. Software table-driven implementation; fast enough for the
/// session-file sizes involved (a few MB at checkpoint time).

/// Extends a running CRC with `size` bytes. Start with `crc = 0`.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

/// One-shot CRC of a buffer.
inline uint32_t Crc32c(const void* data, size_t size) {
  return Crc32cExtend(0, data, size);
}

inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data.data(), data.size());
}

}  // namespace emdbg

#endif  // EMDBG_UTIL_CRC32C_H_
