#include "src/util/fault_injection.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

namespace emdbg {

namespace {

struct SiteState {
  FaultInjection::Plan plan;
  uint64_t calls = 0;
  uint64_t failures = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, SiteState> sites;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: used from atexit paths
  return *r;
}

/// Armed-site count, readable without the lock. Nonzero = slow path.
std::atomic<size_t> g_armed{0};

/// SplitMix64: the per-call decision for probability plans is a pure
/// function of (seed, call index), so schedules replay exactly.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void FaultInjection::Arm(std::string_view site, const Plan& plan) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto [it, inserted] = r.sites.insert_or_assign(std::string(site),
                                                 SiteState{plan, 0, 0});
  (void)it;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjection::Disarm(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.sites.erase(std::string(site)) > 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjection::DisarmAll() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  g_armed.fetch_sub(r.sites.size(), std::memory_order_relaxed);
  r.sites.clear();
}

bool FaultInjection::AnyArmed() {
  return g_armed.load(std::memory_order_relaxed) != 0;
}

bool FaultInjection::Fire(std::string_view site) {
  if (!AnyArmed()) return false;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(std::string(site));
  if (it == r.sites.end()) return false;
  SiteState& s = it->second;
  const uint64_t index = s.calls++;
  if (index < s.plan.skip) return false;
  if (s.failures >= s.plan.max_failures) return false;
  bool fail;
  if (s.plan.probability > 0.0) {
    const double u =
        static_cast<double>(Mix(s.plan.seed ^ index) >> 11) * 0x1.0p-53;
    fail = u < s.plan.probability;
  } else if (s.plan.every == 0) {
    fail = index == s.plan.skip && s.failures == 0;
  } else {
    fail = (index - s.plan.skip) % s.plan.every == 0;
  }
  if (fail) ++s.failures;
  return fail;
}

uint64_t FaultInjection::Calls(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(std::string(site));
  return it == r.sites.end() ? 0 : it->second.calls;
}

uint64_t FaultInjection::Failures(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(std::string(site));
  return it == r.sites.end() ? 0 : it->second.failures;
}

}  // namespace emdbg
