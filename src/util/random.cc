#include "src/util/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace emdbg {

void Rng::Seed(uint64_t seed) {
  // PCG initialization: fixed odd increment, advance once to mix the seed.
  state_ = 0;
  inc_ = (seed << 1u) | 1u;
  Next();
  state_ += 0x853c49e6748fea9bULL + seed;
  Next();
  zipf_n_ = 0;
  zipf_s_ = -1.0;
  zipf_cdf_.clear();
}

uint32_t Rng::Next() {
  const uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const uint32_t xorshifted =
      static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  const uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((~rot + 1u) & 31));
}

uint64_t Rng::Next64() {
  return (static_cast<uint64_t>(Next()) << 32) | Next();
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Lemire-style rejection over 64 bits.
  const uint64_t threshold = (~bound + 1) % bound;  // = 2^64 mod bound
  while (true) {
    const uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 random bits → [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Gaussian() {
  // Box-Muller; one value per call keeps the generator stateless w.r.t.
  // interleaving with other draws.
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  if (n == 0) return 0;
  if (s <= 0.0) return Uniform(n);
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = sum;
    }
    for (auto& v : zipf_cdf_) v /= sum;
  }
  const double u = NextDouble();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  if (k >= n) {
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), size_t{0});
    Shuffle(all);
    return all;
  }
  // Partial Fisher-Yates over an index array is fine at our scales; for very
  // large n with tiny k, fall back to hash-free rejection via sorting.
  if (n <= 1u << 22) {
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), size_t{0});
    for (size_t i = 0; i < k; ++i) {
      const size_t j = i + static_cast<size_t>(Uniform(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  std::vector<size_t> picked;
  picked.reserve(k + k / 4);
  while (picked.size() < k) {
    while (picked.size() < k) {
      picked.push_back(static_cast<size_t>(Uniform(n)));
    }
    std::sort(picked.begin(), picked.end());
    picked.erase(std::unique(picked.begin(), picked.end()), picked.end());
  }
  Shuffle(picked);
  return picked;
}

}  // namespace emdbg
