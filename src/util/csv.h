#ifndef EMDBG_UTIL_CSV_H_
#define EMDBG_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace emdbg {

/// RFC-4180-style CSV support (quoted fields, embedded quotes doubled,
/// embedded newlines inside quotes). Used to persist generated datasets and
/// to load external tables into `Table`s.

/// One parsed row.
using CsvRow = std::vector<std::string>;

/// Streaming CSV parser over an in-memory buffer.
class CsvParser {
 public:
  explicit CsvParser(std::string_view data, char delim = ',')
      : data_(data), delim_(delim) {}

  /// Reads the next row into `row`. Returns false at end of input.
  /// Malformed input (unterminated quote) yields a ParseError status via
  /// `status()` and stops the stream.
  bool NextRow(CsvRow* row);

  const Status& status() const { return status_; }

  /// 1-based line number of the row most recently returned.
  size_t line() const { return line_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  size_t line_ = 0;
  char delim_;
  Status status_;
};

/// Parses a whole buffer. Returns ParseError on malformed input.
Result<std::vector<CsvRow>> ParseCsv(std::string_view data, char delim = ',');

/// Escapes a single field if needed (quotes, delimiter, newline).
std::string CsvEscape(std::string_view field, char delim = ',');

/// Serializes rows to CSV text with "\n" line endings.
std::string WriteCsv(const std::vector<CsvRow>& rows, char delim = ',');

/// Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file (truncates).
Status WriteStringToFile(const std::string& path, std::string_view data);

}  // namespace emdbg

#endif  // EMDBG_UTIL_CSV_H_
