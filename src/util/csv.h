#ifndef EMDBG_UTIL_CSV_H_
#define EMDBG_UTIL_CSV_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace emdbg {

/// RFC-4180-style CSV support (quoted fields, embedded quotes doubled,
/// embedded newlines inside quotes). Used to persist generated datasets and
/// to load external tables into `Table`s.

/// One parsed row.
using CsvRow = std::vector<std::string>;

/// Defensive limits applied while parsing. Untrusted input that exceeds
/// them yields a ParseError with line/column context instead of unbounded
/// allocation. The defaults are far above anything a legitimate entity-
/// matching table contains.
struct CsvLimits {
  /// Maximum bytes in a single field.
  size_t max_field_bytes = 16u << 20;  // 16 MiB
  /// Maximum fields in a single row.
  size_t max_row_fields = 1u << 20;  // ~1M
};

/// Streaming CSV parser over an in-memory buffer.
class CsvParser {
 public:
  explicit CsvParser(std::string_view data, char delim = ',')
      : CsvParser(data, delim, CsvLimits{}) {}
  CsvParser(std::string_view data, char delim, CsvLimits limits)
      : data_(data), delim_(delim), limits_(limits) {}

  /// Reads the next row into `row`. Returns false at end of input.
  /// Malformed input (unterminated quote, embedded NUL byte, a field or
  /// row exceeding the limits) yields a ParseError status via `status()`
  /// — with the line and column where the problem starts — and stops the
  /// stream.
  bool NextRow(CsvRow* row);

  const Status& status() const { return status_; }

  /// 1-based line number of the row most recently returned.
  size_t line() const { return line_; }

 private:
  /// Sets a ParseError at the current position and fails the stream.
  bool Fail(std::string message, size_t line, size_t column);

  std::string_view data_;
  size_t pos_ = 0;
  size_t line_ = 0;
  size_t column_ = 0;  // 1-based byte column within the current line
  char delim_;
  CsvLimits limits_;
  Status status_;
};

/// Parses a whole buffer. Returns ParseError on malformed input.
Result<std::vector<CsvRow>> ParseCsv(std::string_view data, char delim = ',');

/// Escapes a single field if needed (quotes, delimiter, newline).
std::string CsvEscape(std::string_view field, char delim = ',');

/// Serializes rows to CSV text with "\n" line endings.
std::string WriteCsv(const std::vector<CsvRow>& rows, char delim = ',');

/// Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file (truncates). Not atomic: a crash mid-write
/// leaves a partial file. Use WriteFileAtomic for durable state.
Status WriteStringToFile(const std::string& path, std::string_view data);

/// Crash-safe write: writes to a temp file in the same directory, fsyncs
/// it, then renames over `path`. Readers either see the old file or the
/// complete new one, never a torn write.
Status WriteFileAtomic(const std::string& path, std::string_view data);

}  // namespace emdbg

#endif  // EMDBG_UTIL_CSV_H_
