#ifndef EMDBG_UTIL_STATS_H_
#define EMDBG_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace emdbg {

/// Streaming mean/variance accumulator (Welford). Used for benchmark
/// reporting and for the cost model's per-feature timing estimates.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (Chan et al. parallel form).
  void Merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample using linear interpolation between order statistics.
/// `q` in [0,1]. Sorts a copy; intended for offline reporting.
double Quantile(std::vector<double> values, double q);

double Mean(const std::vector<double>& values);
double Median(std::vector<double> values);

}  // namespace emdbg

#endif  // EMDBG_UTIL_STATS_H_
