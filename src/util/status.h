#ifndef EMDBG_UTIL_STATUS_H_
#define EMDBG_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace emdbg {

/// Error categories used across the library. Keep this list short: a code
/// is for dispatch, the message is for humans.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kParseError,
  kCancelled,
  kDeadlineExceeded,
  /// A bounded resource (session table, request queue, connection slots)
  /// is full; the caller should back off and retry. This is the explicit
  /// load-shedding signal of the debug service.
  kResourceExhausted,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName: parses "InvalidArgument" etc. Returns false
/// on an unknown name. Used by the wire protocol to round-trip statuses.
bool StatusCodeFromName(std::string_view name, StatusCode* out);

/// A cheap, exception-free error carrier. All fallible APIs in emdbg return
/// `Status` (or `Result<T>` when they also produce a value).
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type `T` or a non-OK `Status`. Modeled after
/// absl::StatusOr with just enough surface for this library.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error keeps call sites terse:
  ///   Result<int> Parse(...) { if (bad) return Status::ParseError(...);
  ///                            return 42; }
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Returns the error status; OK if this holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  /// Value accessors. Undefined behaviour if !ok(); call sites must check.
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::move(std::get<T>(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace emdbg

/// Propagates a non-OK Status from an expression, like absl's macro.
#define EMDBG_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::emdbg::Status _emdbg_status = (expr);          \
    if (!_emdbg_status.ok()) return _emdbg_status;   \
  } while (false)

#endif  // EMDBG_UTIL_STATUS_H_
