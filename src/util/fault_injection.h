#ifndef EMDBG_UTIL_FAULT_INJECTION_H_
#define EMDBG_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <string_view>

// Deterministic fault injection for robustness tests.
//
// Production code guards its fragile operations with named injection
// points ("sites"): `if (FaultInjection::Fire("journal.fsync")) { fail }`.
// Untouched, every site is a single relaxed atomic load — no locks, no
// allocation — so the hooks stay in release builds. Tests (and the soak
// harness) arm sites with deterministic plans: skip the first K calls,
// then fail once, every Nth call, or with a seeded pseudo-random
// probability that is a pure function of (seed, call index) — so a soak
// run with the same seed injects byte-identical fault schedules.
//
// Sites currently wired in:
//   journal.write      EditJournal::Append, before the record is written
//   journal.fsync      EditJournal::Append, at the fsync (the record may
//                      already be in the file: the "committed on disk but
//                      never acknowledged" case recovery must tolerate)
//   state.atomic_write WriteFileAtomic: the write tears partway through
//                      and the temp file is left behind (crash
//                      mid-checkpoint; the rename never happens)
//   serve.accept       Server: drop an incoming connection at accept
//   serve.read         Server: drop an established connection mid-read
//   serve.slow_task    Server worker: sleep before executing a request
//   serve.session      Server: fail session creation (allocation-failure
//                      stand-in at the admission point)
//   mem.reserve        MemoryBudget::Reserve: deny a reservation outright
//                      (allocation failure at any governed consumer —
//                      memo fills, token/id caches, matcher scratch)
//   serve.retry        RetryingClient: drop a successfully-received
//                      response before returning it, forcing a retry of
//                      the same idempotency key (duplicate-delivery drill)
//
// Compiled in by default; -DEMDBG_FAULT_INJECTION=0 turns every Fire()
// into a constant false for zero-cost builds.

#ifndef EMDBG_FAULT_INJECTION
#define EMDBG_FAULT_INJECTION 1
#endif

namespace emdbg {

class FaultInjection {
 public:
  /// When a site should fail. All counters are per-site and deterministic.
  struct Plan {
    /// Calls that succeed before injection starts.
    uint64_t skip = 0;
    /// After `skip`: 0 = fail exactly once; N = fail every Nth call
    /// (call skip, skip+N, skip+2N, ...).
    uint64_t every = 0;
    /// Cap on injected failures (applies to `every` and `probability`).
    uint64_t max_failures = UINT64_MAX;
    /// When > 0, overrides the counter schedule after `skip`: each call
    /// fails independently with this probability, derived purely from
    /// (seed, per-site call index) — rerunning with the same seed gives
    /// the same schedule.
    double probability = 0.0;
    uint64_t seed = 1;
  };

  /// Arms `site` with `plan` (replacing any existing plan and resetting
  /// its counters).
  static void Arm(std::string_view site, const Plan& plan);

  /// Disarms one site / all sites. Counters are discarded.
  static void Disarm(std::string_view site);
  static void DisarmAll();

  /// The per-site hook: true = the caller must simulate a failure now.
  /// Cheap no-op (one relaxed atomic load) while nothing is armed.
  static bool Fire(std::string_view site);

  /// Calls / injected failures observed at `site` since it was armed.
  static uint64_t Calls(std::string_view site);
  static uint64_t Failures(std::string_view site);

  /// True when at least one site is armed (the fast-path gate).
  static bool AnyArmed();
};

#if EMDBG_FAULT_INJECTION
inline bool FaultFire(std::string_view site) {
  return FaultInjection::Fire(site);
}
#else
inline bool FaultFire(std::string_view) { return false; }
#endif

}  // namespace emdbg

#endif  // EMDBG_UTIL_FAULT_INJECTION_H_
