#ifndef EMDBG_UTIL_RANDOM_H_
#define EMDBG_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace emdbg {

/// Deterministic PRNG (PCG-XSH-RR 64/32) with convenience distributions.
///
/// All randomized parts of the library (dataset generation, rule sampling,
/// experiment sweeps) take an explicit `Rng&` so runs are reproducible from
/// a single seed — a requirement for the paper-reproduction benches.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 32-bit value.
  uint32_t Next();

  /// Uniform 64-bit value.
  uint64_t Next64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Zipf-distributed rank in [0, n) with exponent `s` (s=0 → uniform).
  /// Used by the dataset generator to give vocabularies realistic skew.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k > n returns all of [0,n)),
  /// in random order.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

 private:
  uint64_t state_ = 0;
  uint64_t inc_ = 0;
  // Cached harmonic normalizer for Zipf(n, s); recomputed when (n, s) change.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace emdbg

#endif  // EMDBG_UTIL_RANDOM_H_
