#ifndef EMDBG_UTIL_THREAD_POOL_H_
#define EMDBG_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/cancellation.h"
#include "src/util/status.h"

namespace emdbg {

/// Persistent, cancellation-aware work-stealing thread pool.
///
/// The paper's value proposition is sub-second re-matching inside the
/// analyst's edit loop, so the execution engine must not pay a thread
/// spawn per run and must not let one skewed partition dominate
/// wall-clock (early exit makes per-pair cost wildly uneven: matches stop
/// at the first true rule, non-matches evaluate every predicate). Workers
/// are created once and reused across runs; each `ParallelFor` partitions
/// the index range into per-worker spans drained through atomic
/// chunk-claiming cursors, and a worker whose span is exhausted steals
/// chunks from the other workers' cursors until no unclaimed work remains.
///
/// Index alignment contract: every claimed chunk starts at a multiple of
/// `kIndexAlign` (= one Bitmap word = 64 bits). Two workers therefore
/// never process indices sharing a 64-bit bitmap word, so a body may
/// Set/Clear bit `i` of shared `Bitmap`s — and write row `i` of a
/// `DenseMemo` — without any synchronization. This is what lets the
/// matching engine record per-rule/per-predicate decision bitmaps from
/// concurrent workers with zero locking.
///
/// Cancellation: `ParallelFor` checks the `RunControl` once per item (the
/// same once-per-pair contract as the serial matchers). On a stop, every
/// worker drains cleanly — no detached threads — and the result reports
/// the *exact* set of items whose body ran, as disjoint index ranges;
/// callers translate those into a partial result's `evaluated` bitmap.
class ThreadPool {
 public:
  /// Chunk boundaries are multiples of this (see alignment contract).
  static constexpr size_t kIndexAlign = 64;

  /// body(worker, index): `worker` is in [0, num_workers()) and stable for
  /// the duration of one item — use it to index per-worker accumulators.
  using ItemFn = std::function<void(size_t worker, size_t index)>;

  struct ForOptions {
    /// Items per claimed chunk; 0 = auto (range / (workers * 16), at
    /// least one alignment unit). Rounded up to a multiple of `align`.
    size_t grain = 0;
    /// When false, workers only drain their own static span (the
    /// equal-partition baseline that work stealing replaces; kept for
    /// benchmarking the difference).
    bool steal = true;
    /// Chunk-boundary alignment. The kIndexAlign default gives the
    /// no-shared-bitmap-words contract for per-pair bodies. Iterations
    /// whose *items* already own disjoint word ranges — the block
    /// matcher's 64-aligned pair blocks — pass 1 so tiny block counts
    /// still spread across workers. 0 is treated as 1.
    size_t align = kIndexAlign;
  };

  /// Outcome of one ParallelFor. On a complete run, `stopped` is false
  /// and every index in [0, n) was processed exactly once. On a stopped
  /// run, `completed` holds the exact set of processed indices as
  /// disjoint, sorted ranges.
  struct ForResult {
    bool stopped = false;
    /// Stop reason (kCancelled / kDeadlineExceeded) when stopped.
    Status status;
    size_t items_completed = 0;
    /// Populated only when stopped: disjoint [begin, end) index ranges,
    /// sorted by begin, whose bodies ran to completion.
    std::vector<std::pair<size_t, size_t>> completed;

    bool complete() const { return !stopped; }
  };

  /// 0 = std::thread::hardware_concurrency(). The pool owns
  /// num_workers() - 1 background threads; the thread calling
  /// ParallelFor participates as worker 0, so `num_threads = 1` runs
  /// inline with no background thread at all.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, including the calling thread.
  size_t num_workers() const { return num_workers_; }

  /// Runs body over every index in [0, n), dynamically load-balanced.
  /// Blocks until all workers have drained (run to completion or stopped
  /// by `control`). Concurrent calls from different threads serialize.
  /// (Overloads instead of `options = {}` defaults: gcc 12 rejects brace
  /// defaults of nested NSDMI aggregates inside the enclosing class.)
  ForResult ParallelFor(size_t n, const RunControl& control,
                        const ItemFn& body, ForOptions options);
  ForResult ParallelFor(size_t n, const RunControl& control,
                        const ItemFn& body) {
    return ParallelFor(n, control, body, ForOptions{});
  }

  /// Uncontrolled convenience overloads: run to completion.
  ForResult ParallelFor(size_t n, const ItemFn& body, ForOptions options) {
    return ParallelFor(n, RunControl(), body, options);
  }
  ForResult ParallelFor(size_t n, const ItemFn& body) {
    return ParallelFor(n, RunControl(), body, ForOptions{});
  }

  /// Fold with per-worker accumulators (false-sharing padded): item(w, i,
  /// acc) mutates worker w's accumulator; the accumulators are combined
  /// into one T at the end with combine(total, acc). The combination
  /// order is by worker id, so combine should be commutative-associative
  /// for deterministic results (all matching uses are sums).
  template <typename T, typename ItemAcc, typename Combine>
  T ParallelReduce(size_t n, const RunControl& control, T init,
                   const ItemAcc& item, const Combine& combine) {
    return ParallelReduce(n, control, std::move(init), item, combine,
                          ForOptions{}, nullptr);
  }

  template <typename T, typename ItemAcc, typename Combine>
  T ParallelReduce(size_t n, const RunControl& control, T init,
                   const ItemAcc& item, const Combine& combine,
                   ForOptions options, ForResult* result = nullptr) {
    struct alignas(64) Padded {
      T value;
    };
    std::vector<Padded> acc(num_workers(), Padded{init});
    ForResult r = ParallelFor(
        n, control,
        [&](size_t w, size_t i) { item(w, i, acc[w].value); }, options);
    T total = std::move(init);
    for (Padded& a : acc) combine(total, a.value);
    if (result != nullptr) *result = std::move(r);
    return total;
  }

 private:
  struct Job;

  void ThreadLoop(size_t worker);
  /// Drains the job as worker `w`: own span first, then steals.
  void RunWorker(Job& job, size_t w);

  size_t num_workers_;
  std::vector<std::thread> threads_;

  /// Serializes ParallelFor calls (the pool is a per-session resource;
  /// nested/concurrent fan-out degrades to taking turns, never deadlock).
  std::mutex run_mu_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  Job* job_ = nullptr;
  size_t busy_workers_ = 0;
  bool shutdown_ = false;
};

}  // namespace emdbg

#endif  // EMDBG_UTIL_THREAD_POOL_H_
