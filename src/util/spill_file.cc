#include "src/util/spill_file.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/util/crc32c.h"
#include "src/util/fault_injection.h"

namespace emdbg {

namespace {

constexpr char kMagic[8] = {'E', 'M', 'D', 'B', 'G', 'S', 'P', 'L'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = sizeof(kMagic) + 2 * sizeof(uint32_t);
constexpr size_t kMinFrameBytes = 4096;

}  // namespace

// ---------------------------------------------------------------------------
// SpillWriter

SpillWriter::~SpillWriter() { Abandon(); }

SpillWriter::SpillWriter(SpillWriter&& other) noexcept
    : path_(std::move(other.path_)),
      file_(other.file_),
      buffer_(std::move(other.buffer_)),
      frame_bytes_(other.frame_bytes_),
      payload_bytes_(other.payload_bytes_),
      failed_(other.failed_),
      billing_(std::move(other.billing_)) {
  other.file_ = nullptr;
}

SpillWriter& SpillWriter::operator=(SpillWriter&& other) noexcept {
  if (this != &other) {
    Abandon();
    path_ = std::move(other.path_);
    file_ = other.file_;
    buffer_ = std::move(other.buffer_);
    frame_bytes_ = other.frame_bytes_;
    payload_bytes_ = other.payload_bytes_;
    failed_ = other.failed_;
    billing_ = std::move(other.billing_);
    other.file_ = nullptr;
  }
  return *this;
}

void SpillWriter::Abandon() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  billing_.reset();
}

Result<SpillWriter> SpillWriter::Create(const std::string& path,
                                        const Options& options) {
  SpillWriter w;
  w.path_ = path;
  w.frame_bytes_ = std::max(options.frame_bytes, kMinFrameBytes);
  Result<MemoryReservation> billing =
      MemoryReservation::Make(options.budget, w.frame_bytes_, "spill.buffer");
  if (!billing.ok()) return billing.status();
  w.billing_ = std::move(*billing);
  w.buffer_.reserve(w.frame_bytes_);
  w.file_ = std::fopen(path.c_str(), "wb");
  if (w.file_ == nullptr) {
    return Status::IoError("spill: cannot create '" + path + "'");
  }
  char header[kHeaderBytes];
  std::memcpy(header, kMagic, sizeof(kMagic));
  uint32_t version = kVersion;
  uint32_t frame = static_cast<uint32_t>(
      std::min<size_t>(w.frame_bytes_, UINT32_MAX));
  std::memcpy(header + sizeof(kMagic), &version, sizeof(version));
  std::memcpy(header + sizeof(kMagic) + sizeof(version), &frame,
              sizeof(frame));
  if (std::fwrite(header, 1, kHeaderBytes, w.file_) != kHeaderBytes) {
    w.Abandon();
    return Status::IoError("spill: header write failed for '" + path + "'");
  }
  return w;
}

Status SpillWriter::FlushFrame() {
  if (buffer_.empty()) return Status::Ok();
  if (FaultFire("spill.write")) {
    failed_ = true;
    return Status::IoError("spill: injected write failure at '" + path_ +
                           "'");
  }
  const uint32_t size = static_cast<uint32_t>(buffer_.size());
  const uint32_t crc = Crc32c(buffer_.data(), buffer_.size());
  if (std::fwrite(&size, 1, sizeof(size), file_) != sizeof(size) ||
      std::fwrite(&crc, 1, sizeof(crc), file_) != sizeof(crc) ||
      std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
          buffer_.size()) {
    failed_ = true;
    return Status::IoError("spill: frame write failed at '" + path_ + "'");
  }
  buffer_.clear();
  return Status::Ok();
}

Status SpillWriter::Write(const void* data, size_t size) {
  if (file_ == nullptr || failed_) {
    return Status::FailedPrecondition("spill: writer '" + path_ +
                                      "' is closed or failed");
  }
  const char* p = static_cast<const char*>(data);
  // Oversized writes flush the pending frame, then go out as one frame of
  // their own — frames are self-describing, so readers do not care.
  if (size >= frame_bytes_ && buffer_.empty()) {
    buffer_.assign(p, size);
    payload_bytes_ += size;
    return FlushFrame();
  }
  while (size > 0) {
    const size_t room = frame_bytes_ - buffer_.size();
    const size_t take = std::min(room, size);
    buffer_.append(p, take);
    p += take;
    size -= take;
    payload_bytes_ += take;
    if (buffer_.size() >= frame_bytes_) {
      EMDBG_RETURN_IF_ERROR(FlushFrame());
    }
  }
  return Status::Ok();
}

Status SpillWriter::Close() {
  if (file_ == nullptr) return Status::Ok();
  Status s = failed_ ? Status::IoError("spill: writer '" + path_ +
                                       "' failed before Close")
                     : FlushFrame();
  if (s.ok() && std::fflush(file_) != 0) {
    s = Status::IoError("spill: flush failed at '" + path_ + "'");
  }
  if (std::fclose(file_) != 0 && s.ok()) {
    s = Status::IoError("spill: close failed at '" + path_ + "'");
  }
  file_ = nullptr;
  billing_.reset();
  return s;
}

// ---------------------------------------------------------------------------
// SpillReader

SpillReader::~SpillReader() { Close(); }

SpillReader::SpillReader(SpillReader&& other) noexcept
    : path_(std::move(other.path_)),
      file_(other.file_),
      buffer_(std::move(other.buffer_)),
      pos_(other.pos_),
      bytes_read_(other.bytes_read_),
      budget_(other.budget_),
      billed_(other.billed_),
      failed_(other.failed_) {
  other.file_ = nullptr;
  other.budget_ = nullptr;
  other.billed_ = 0;
}

SpillReader& SpillReader::operator=(SpillReader&& other) noexcept {
  if (this != &other) {
    Close();
    path_ = std::move(other.path_);
    file_ = other.file_;
    buffer_ = std::move(other.buffer_);
    pos_ = other.pos_;
    bytes_read_ = other.bytes_read_;
    budget_ = other.budget_;
    billed_ = other.billed_;
    failed_ = other.failed_;
    other.file_ = nullptr;
    other.budget_ = nullptr;
    other.billed_ = 0;
  }
  return *this;
}

void SpillReader::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (budget_ != nullptr && billed_ > 0) {
    budget_->Release(billed_);
    billed_ = 0;
  }
  budget_ = nullptr;
}

Status SpillReader::BillBuffer(size_t capacity) {
  if (budget_ == nullptr || capacity <= billed_) return Status::Ok();
  EMDBG_RETURN_IF_ERROR(budget_->Reserve(capacity - billed_,
                                         "spill.buffer"));
  billed_ = capacity;
  return Status::Ok();
}

Result<SpillReader> SpillReader::Open(const std::string& path,
                                      const Options& options) {
  SpillReader r;
  r.path_ = path;
  r.budget_ = options.budget;
  r.file_ = std::fopen(path.c_str(), "rb");
  if (r.file_ == nullptr) {
    return Status::IoError("spill: cannot open '" + path + "'");
  }
  char header[kHeaderBytes];
  if (std::fread(header, 1, kHeaderBytes, r.file_) != kHeaderBytes) {
    return Status::ParseError("spill: '" + path + "' is truncated (header)");
  }
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("spill: '" + path + "' has a bad magic");
  }
  uint32_t version = 0;
  std::memcpy(&version, header + sizeof(kMagic), sizeof(version));
  if (version != kVersion) {
    return Status::ParseError("spill: '" + path + "' has version " +
                              std::to_string(version) + ", expected " +
                              std::to_string(kVersion));
  }
  return r;
}

Status SpillReader::FillBuffer() {
  uint32_t meta[2];  // payload_size, crc
  const size_t got = std::fread(meta, 1, sizeof(meta), file_);
  if (got == 0 && std::feof(file_)) {
    return Status::OutOfRange("spill: end of stream at '" + path_ + "'");
  }
  if (got != sizeof(meta)) {
    failed_ = true;
    return Status::ParseError("spill: '" + path_ +
                              "' is truncated mid frame header");
  }
  if (FaultFire("spill.read")) {
    failed_ = true;
    return Status::IoError("spill: injected read failure at '" + path_ +
                           "'");
  }
  const size_t size = meta[0];
  EMDBG_RETURN_IF_ERROR(BillBuffer(std::max(size, kMinFrameBytes)));
  buffer_.resize(size);
  if (size > 0 && std::fread(&buffer_[0], 1, size, file_) != size) {
    failed_ = true;
    return Status::ParseError("spill: '" + path_ +
                              "' is truncated mid frame payload");
  }
  if (Crc32c(buffer_.data(), buffer_.size()) != meta[1]) {
    failed_ = true;
    return Status::ParseError("spill: CRC mismatch in '" + path_ + "'");
  }
  pos_ = 0;
  return Status::Ok();
}

Status SpillReader::Read(void* out, size_t size) {
  if (file_ == nullptr || failed_) {
    return Status::FailedPrecondition("spill: reader '" + path_ +
                                      "' is closed or failed");
  }
  char* p = static_cast<char*>(out);
  while (size > 0) {
    if (pos_ >= buffer_.size()) {
      EMDBG_RETURN_IF_ERROR(FillBuffer());
    }
    const size_t take = std::min(size, buffer_.size() - pos_);
    std::memcpy(p, buffer_.data() + pos_, take);
    pos_ += take;
    p += take;
    size -= take;
    bytes_read_ += take;
  }
  return Status::Ok();
}

bool SpillReader::AtEnd() {
  if (file_ == nullptr || failed_) return true;
  if (pos_ < buffer_.size()) return false;
  Status s = FillBuffer();
  if (s.ok()) return false;
  return s.code() == StatusCode::kOutOfRange;
}

}  // namespace emdbg
