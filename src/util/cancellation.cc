#include "src/util/cancellation.h"

#include <csignal>
#include <limits>

namespace emdbg {

double Deadline::remaining_millis() const {
  if (!has_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double, std::milli>(at_ - Clock::now())
      .count();
}

Status RunControl::StopStatus() const {
  if (cancelled()) return Status::Cancelled("run cancelled by caller");
  if (deadline_expired()) {
    return Status::DeadlineExceeded("run exceeded its deadline");
  }
  return Status::Ok();
}

namespace {

/// The flag the signal handler writes. Owned (kept alive) by the
/// SigintCancellation instance; only ever written with a relaxed store,
/// which is async-signal-safe.
std::atomic<bool>* g_sigint_flag = nullptr;

void (*g_previous_handler)(int) = SIG_DFL;

extern "C" void EmdbgSigintHandler(int) {
  std::atomic<bool>* flag = g_sigint_flag;
  if (flag != nullptr) flag->store(true, std::memory_order_relaxed);
}

}  // namespace

SigintCancellation::SigintCancellation(CancellationToken token)
    : token_(std::move(token)) {
  g_sigint_flag = token_.flag();
#if defined(_WIN32)
  g_previous_handler = std::signal(SIGINT, EmdbgSigintHandler);
#else
  // sigaction with SA_RESTART so interrupted reads (the REPL prompt)
  // resume instead of failing with EINTR.
  struct sigaction sa = {};
  struct sigaction old = {};
  sa.sa_handler = EmdbgSigintHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGINT, &sa, &old);
  g_previous_handler = old.sa_handler;
#endif
}

SigintCancellation::~SigintCancellation() {
  std::signal(SIGINT, g_previous_handler);
  g_sigint_flag = nullptr;
}

namespace {

std::atomic<bool> g_exit_requested{false};

extern "C" void EmdbgTerminateHandler(int) {
  g_exit_requested.store(true, std::memory_order_relaxed);
  std::atomic<bool>* flag = g_sigint_flag;
  if (flag != nullptr) flag->store(true, std::memory_order_relaxed);
}

}  // namespace

ShutdownSignals::ShutdownSignals(CancellationToken token)
    : token_(std::move(token)) {
  g_sigint_flag = token_.flag();
  g_exit_requested.store(false, std::memory_order_relaxed);
#if defined(_WIN32)
  std::signal(SIGINT, EmdbgSigintHandler);
  std::signal(SIGTERM, EmdbgTerminateHandler);
#else
  struct sigaction sa = {};
  sa.sa_handler = EmdbgSigintHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;  // prompt reads resume after Ctrl-C
  sigaction(SIGINT, &sa, nullptr);
  struct sigaction term = {};
  term.sa_handler = EmdbgTerminateHandler;
  sigemptyset(&term.sa_mask);
  term.sa_flags = 0;  // no SA_RESTART: blocked reads return EINTR
  sigaction(SIGTERM, &term, nullptr);
  sigaction(SIGHUP, &term, nullptr);
#endif
}

ShutdownSignals::~ShutdownSignals() {
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
#if !defined(_WIN32)
  std::signal(SIGHUP, SIG_DFL);
#endif
  g_sigint_flag = nullptr;
}

bool ShutdownSignals::exit_requested() const noexcept {
  return g_exit_requested.load(std::memory_order_relaxed);
}

}  // namespace emdbg
