#ifndef EMDBG_UTIL_STRING_UTIL_H_
#define EMDBG_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace emdbg {

/// ASCII-only helpers. Entity-matching corpora in this repo are synthetic
/// ASCII, so we avoid locale machinery on purpose.

/// Lower-cases ASCII letters; other bytes pass through.
std::string ToLowerAscii(std::string_view s);

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimAscii(std::string_view s);

/// Splits on `delim`; keeps empty fields ("a,,b" → {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits on runs of ASCII whitespace; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive (ASCII) equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Parses a double, requiring the whole string to be consumed.
bool ParseDouble(std::string_view s, double* out);

/// Parses a signed 64-bit integer, requiring the whole string to be consumed.
bool ParseInt64(std::string_view s, int64_t* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace emdbg

#endif  // EMDBG_UTIL_STRING_UTIL_H_
