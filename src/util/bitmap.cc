#include "src/util/bitmap.h"

#include <bit>

namespace emdbg {

namespace {
constexpr size_t WordsFor(size_t bits) { return (bits + 63) / 64; }
}  // namespace

namespace bitspan {

void Fill(uint64_t* dst, size_t nbits, bool value) {
  const size_t w = Words(nbits);
  if (w == 0) return;
  for (size_t i = 0; i < w; ++i) dst[i] = value ? ~uint64_t{0} : 0;
  dst[w - 1] &= TailMask(nbits);
}

void And(uint64_t* dst, const uint64_t* src, size_t nbits) {
  const size_t w = Words(nbits);
  for (size_t i = 0; i < w; ++i) dst[i] &= src[i];
}

void Or(uint64_t* dst, const uint64_t* src, size_t nbits) {
  const size_t w = Words(nbits);
  if (w == 0) return;
  for (size_t i = 0; i < w; ++i) dst[i] |= src[i];
  dst[w - 1] &= TailMask(nbits);
}

void AndNot(uint64_t* dst, const uint64_t* src, size_t nbits) {
  const size_t w = Words(nbits);
  for (size_t i = 0; i < w; ++i) dst[i] &= ~src[i];
}

size_t Count(const uint64_t* words, size_t nbits) {
  const size_t w = Words(nbits);
  if (w == 0) return 0;
  size_t count = 0;
  for (size_t i = 0; i + 1 < w; ++i) {
    count += static_cast<size_t>(std::popcount(words[i]));
  }
  count += static_cast<size_t>(std::popcount(words[w - 1] & TailMask(nbits)));
  return count;
}

size_t CountAnd(const uint64_t* a, const uint64_t* b, size_t nbits) {
  const size_t w = Words(nbits);
  if (w == 0) return 0;
  size_t count = 0;
  for (size_t i = 0; i + 1 < w; ++i) {
    count += static_cast<size_t>(std::popcount(a[i] & b[i]));
  }
  count += static_cast<size_t>(
      std::popcount(a[w - 1] & b[w - 1] & TailMask(nbits)));
  return count;
}

bool Any(const uint64_t* words, size_t nbits) {
  const size_t w = Words(nbits);
  if (w == 0) return false;
  for (size_t i = 0; i + 1 < w; ++i) {
    if (words[i] != 0) return true;
  }
  return (words[w - 1] & TailMask(nbits)) != 0;
}

}  // namespace bitspan

Bitmap::Bitmap(size_t size, bool initial)
    : size_(size),
      words_(WordsFor(size), initial ? ~uint64_t{0} : uint64_t{0}) {
  TrimTail();
}

void Bitmap::TrimTail() {
  const size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

void Bitmap::Fill(bool value) {
  for (auto& w : words_) w = value ? ~uint64_t{0} : uint64_t{0};
  TrimTail();
}

void Bitmap::Resize(size_t size, bool value) {
  const size_t old_size = size_;
  // Make previously-unused tail bits match `value` before growing into them.
  if (size > old_size && value) {
    const size_t tail = old_size & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() |= ~((uint64_t{1} << tail) - 1);
    }
  }
  words_.resize(WordsFor(size), value ? ~uint64_t{0} : uint64_t{0});
  size_ = size;
  TrimTail();
}

size_t Bitmap::Count() const {
  size_t count = 0;
  for (uint64_t w : words_) count += static_cast<size_t>(std::popcount(w));
  return count;
}

std::vector<size_t> Bitmap::ToIndices() const {
  std::vector<size_t> out;
  out.reserve(Count());
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(wi * 64 + static_cast<size_t>(bit));
      w &= w - 1;
    }
  }
  return out;
}

size_t Bitmap::FindNext(size_t from) const {
  if (from >= size_) return size_;
  size_t wi = from >> 6;
  uint64_t w = words_[wi] & (~uint64_t{0} << (from & 63));
  while (true) {
    if (w != 0) {
      const size_t i = wi * 64 + static_cast<size_t>(std::countr_zero(w));
      return i < size_ ? i : size_;
    }
    if (++wi >= words_.size()) return size_;
    w = words_[wi];
  }
}

Bitmap& Bitmap::operator|=(const Bitmap& other) {
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

Bitmap& Bitmap::operator&=(const Bitmap& other) {
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

Bitmap Bitmap::FromWords(size_t size, std::vector<uint64_t> words) {
  Bitmap bm;
  bm.size_ = size;
  bm.words_ = std::move(words);
  bm.words_.resize(WordsFor(size), 0);
  bm.TrimTail();
  return bm;
}

Bitmap& Bitmap::Subtract(const Bitmap& other) {
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

void Bitmap::OrSpan(size_t bit_offset, const uint64_t* words, size_t nbits) {
  const size_t w0 = bit_offset >> 6;
  const size_t w = bitspan::Words(nbits);
  if (w == 0) return;
  for (size_t i = 0; i + 1 < w; ++i) words_[w0 + i] |= words[i];
  words_[w0 + w - 1] |= words[w - 1] & bitspan::TailMask(nbits);
  TrimTail();
}

void Bitmap::AndNotSpan(size_t bit_offset, const uint64_t* words,
                        size_t nbits) {
  const size_t w0 = bit_offset >> 6;
  const size_t w = bitspan::Words(nbits);
  if (w == 0) return;
  for (size_t i = 0; i + 1 < w; ++i) words_[w0 + i] &= ~words[i];
  words_[w0 + w - 1] &= ~(words[w - 1] & bitspan::TailMask(nbits));
}

void Bitmap::ExtractSpan(size_t bit_offset, uint64_t* out,
                         size_t nbits) const {
  const size_t w0 = bit_offset >> 6;
  const size_t w = bitspan::Words(nbits);
  if (w == 0) return;
  for (size_t i = 0; i + 1 < w; ++i) out[i] = words_[w0 + i];
  out[w - 1] = words_[w0 + w - 1] & bitspan::TailMask(nbits);
}

}  // namespace emdbg
