#ifndef EMDBG_UTIL_MEMORY_BUDGET_H_
#define EMDBG_UTIL_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace emdbg {

/// Hierarchical memory accountant: the resource-governance backbone (see
/// DESIGN.md, "Resource governance & overload behavior").
///
/// A root budget caps the whole process (or server); child budgets cap one
/// tenant each (per-session quotas). Every large consumer — DenseMemo
/// allocations via MatchState, PairContext token/id caches, sharded-memo
/// fills, per-worker matcher scratch — calls Reserve() *before* allocating
/// and Release() when the bytes are freed, so the first sign of pressure
/// is a clean ResourceExhausted Status instead of the OOM killer.
///
/// Graceful degradation: a budget keeps a registry of *reclaimable*
/// consumers — caches whose loss costs time, never correctness (token
/// caches, interned-id columns, cold memo shards). When a reservation
/// does not fit, Reserve() runs reclaimers in eviction order (lowest
/// priority class first; least-recently-touched first within a class)
/// until the request fits or nothing more can be freed. Only then does it
/// deny.
///
/// Thread-safety: Reserve/Release/used/stats are lock-free atomics on the
/// hot path; the reclaimer registry is mutex-protected and only locked
/// when a reservation actually overflows. Reclaim callbacks run with the
/// registry lock held: they must not add or remove reclaimers, but
/// calling Release() from inside one is fine (and expected).
///
/// Fault injection: the "mem.reserve" site makes any reservation deny
/// without consulting limits or reclaimers — the allocation-failure
/// drill for the robustness matrix.
class MemoryBudget {
 public:
  /// Eviction order for reclaimer registration: lower classes are evicted
  /// first (cheapest to rebuild → most expensive).
  static constexpr int kReclaimIdCaches = 0;    // re-internable from tokens
  static constexpr int kReclaimTokenCaches = 1; // re-tokenizable from text
  static constexpr int kReclaimMemoShards = 2;  // recomputable similarities

  /// Root budget. `limit_bytes` 0 = unlimited (pure accounting).
  explicit MemoryBudget(size_t limit_bytes = 0,
                        std::string name = "global");

  /// Child budget (per-session quota): reservations must fit the child's
  /// own limit *and* charge the parent (which may reclaim/deny in turn).
  /// The parent must outlive the child, and the child must be drained
  /// (all consumers released) before it is destroyed.
  MemoryBudget(MemoryBudget* parent, size_t limit_bytes, std::string name);

  ~MemoryBudget();

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Reserves `bytes`, reclaiming registered caches if needed.
  /// ResourceExhausted when the bytes cannot be found at this level or any
  /// ancestor. Reserving 0 bytes always succeeds. `consumer` names the
  /// reservation site ("state.memo", "ctx.cache", ...) for the denial log
  /// — when a reservation is denied (budget pressure or an injected
  /// mem.reserve fault), the site lands in DeniedConsumers(), so tests
  /// and operators can see *which* degradation path a failure exercised.
  Status Reserve(size_t bytes, std::string_view consumer = {});

  /// Reserve without ever running reclaimers (at this level or any
  /// ancestor). The only variant safe to call from *inside* a reclaim
  /// callback — the registry mutex is held there, so a reclaiming
  /// Reserve would self-deadlock. Also skips the mem.reserve fault site
  /// (it is billing true-up, not new allocation).
  Status TryReserve(size_t bytes, std::string_view consumer = {});

  /// Returns the reserved bytes. Must match a prior successful Reserve
  /// (releasing more than reserved is clamped, never underflows).
  void Release(size_t bytes);

  size_t limit() const { return limit_; }
  bool unlimited() const { return limit_ == 0; }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  /// Bytes still reservable at this level (SIZE_MAX when unlimited;
  /// ancestors may still be tighter).
  size_t remaining() const;
  const std::string& name() const { return name_; }
  MemoryBudget* parent() const { return parent_; }

  struct Stats {
    uint64_t reserves = 0;
    uint64_t denials = 0;
    uint64_t reclaim_runs = 0;
    uint64_t reclaimed_bytes = 0;
  };
  Stats stats() const;

  /// The most recent denied reservations, oldest first, formatted as
  /// "consumer(bytes)" — capped at the last 32. Diagnosing aid: a
  /// digest-divergence under injected mem.reserve faults names the
  /// reservation site whose degradation path misbehaved.
  std::vector<std::string> DeniedConsumers() const;

  /// Registers a reclaimable consumer. `fn(want_bytes)` should drop up to
  /// `want_bytes` of cache (calling Release for what it frees) and return
  /// the bytes actually freed. Returns a handle for RemoveReclaimer /
  /// Touch. Each budget runs only its own registry — register
  /// cross-tenant caches on the shared root, tenant-private caches on
  /// that tenant's quota.
  uint64_t AddReclaimer(int priority, std::string name,
                        std::function<size_t(size_t)> fn);
  void RemoveReclaimer(uint64_t id);

  /// Marks the consumer recently used; reclaim prefers the coldest
  /// (least-recently-touched) consumer within a priority class.
  void Touch(uint64_t id);

 private:
  /// Atomically charges bytes against the local limit; false if it would
  /// overflow the limit.
  bool ChargeLocal(size_t bytes);
  void UnchargeLocal(size_t bytes);
  /// Runs reclaimers (coldest first in eviction order) until at least
  /// `want` bytes fit locally or every reclaimer has been tried. Returns
  /// total bytes reported freed.
  size_t RunReclaimers(size_t want);

  struct Reclaimer {
    uint64_t id;
    int priority;
    uint64_t last_touch;
    std::string name;
    std::function<size_t(size_t)> fn;
  };

  MemoryBudget* const parent_ = nullptr;
  const size_t limit_;
  const std::string name_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<uint64_t> reserves_{0};
  std::atomic<uint64_t> denials_{0};
  std::atomic<uint64_t> reclaim_runs_{0};
  std::atomic<uint64_t> reclaimed_bytes_{0};

  /// Appends `consumer` to the capped denial log (both Reserve variants,
  /// every denial path — local, ancestor, injected).
  void RecordDenial(std::string_view consumer, size_t bytes);

  std::mutex reclaim_mu_;
  std::vector<Reclaimer> reclaimers_;
  uint64_t next_reclaimer_id_ = 1;
  std::atomic<uint64_t> touch_clock_{1};

  mutable std::mutex denial_mu_;
  std::vector<std::string> denied_consumers_;
};

/// RAII reservation: releases on destruction. Movable, not copyable.
/// A default-constructed (or budget-less) reservation is a no-op, so
/// budget-optional code paths stay branch-free at release time.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  MemoryReservation(MemoryBudget* budget, size_t bytes)
      : budget_(budget), bytes_(bytes) {}
  ~MemoryReservation() { reset(); }

  MemoryReservation(MemoryReservation&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      reset();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  /// Reserves `bytes` from `budget` (null budget = always succeeds,
  /// tracks nothing). `consumer` feeds the budget's denial log.
  static Result<MemoryReservation> Make(MemoryBudget* budget, size_t bytes,
                                        std::string_view consumer = {});

  size_t bytes() const { return bytes_; }
  void reset() {
    if (budget_ != nullptr && bytes_ > 0) budget_->Release(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }

 private:
  MemoryBudget* budget_ = nullptr;
  size_t bytes_ = 0;
};

}  // namespace emdbg

#endif  // EMDBG_UTIL_MEMORY_BUDGET_H_
