#ifndef EMDBG_UTIL_BITMAP_H_
#define EMDBG_UTIL_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace emdbg {

/// A fixed-size dynamic bitset. The incremental-matching engine stores one
/// bitmap per rule ("pairs this rule matched") and one per predicate ("pairs
/// this predicate rejected"), so compactness and fast scans matter
/// (Sec. 6.1 / 7.4 of the paper).
class Bitmap {
 public:
  Bitmap() = default;
  /// Creates a bitmap of `size` bits, all set to `initial`.
  explicit Bitmap(size_t size, bool initial = false);

  Bitmap(const Bitmap&) = default;
  Bitmap& operator=(const Bitmap&) = default;
  Bitmap(Bitmap&&) = default;
  Bitmap& operator=(Bitmap&&) = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  void Assign(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  /// Sets every bit to `value`.
  void Fill(bool value);

  /// Grows (or shrinks) to `size` bits; new bits are `value`.
  void Resize(size_t size, bool value = false);

  /// Number of set bits.
  size_t Count() const;

  /// Returns the indices of all set bits, in increasing order.
  std::vector<size_t> ToIndices() const;

  /// Index of the first set bit at or after `from`, or `size()` if none.
  size_t FindNext(size_t from) const;

  /// In-place bitwise ops; `other` must have the same size.
  Bitmap& operator|=(const Bitmap& other);
  Bitmap& operator&=(const Bitmap& other);
  /// Clears every bit that is set in `other` (this &= ~other).
  Bitmap& Subtract(const Bitmap& other);

  friend bool operator==(const Bitmap& a, const Bitmap& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Bytes of heap memory used by the word array (for the Sec. 7.4-style
  /// memory accounting).
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Raw 64-bit word storage (for binary persistence). Bit i lives at
  /// words()[i / 64] bit (i % 64); tail bits beyond size() are zero.
  const std::vector<uint64_t>& words() const { return words_; }

  /// Reconstructs a bitmap from persisted words. `words` must have
  /// exactly ceil(size / 64) entries; tail bits are cleared defensively.
  static Bitmap FromWords(size_t size, std::vector<uint64_t> words);

 private:
  // Zeroes the unused high bits of the last word so Count()/equality stay
  // correct after Fill(true) or Resize.
  void TrimTail();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace emdbg

#endif  // EMDBG_UTIL_BITMAP_H_
