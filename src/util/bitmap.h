#ifndef EMDBG_UTIL_BITMAP_H_
#define EMDBG_UTIL_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace emdbg {

/// Word-level span algebra over raw uint64_t arrays — the block matcher's
/// per-block masks (undecided / active / pass) live in worker scratch, not
/// in Bitmap objects, and are combined a word at a time (CNF/DNF as
/// AND/OR/ANDNOT instead of per-pair branches).
///
/// Every helper operates on ceil(nbits / 64) words and maintains the
/// invariant that bits at positions >= nbits are zero. Inputs are masked
/// defensively (a garbage tail in `src` never leaks into `dst`), so
/// Count() and Bitmap::OrSpan stay exact at every block length.
namespace bitspan {

/// Words needed for `nbits` bits.
constexpr size_t Words(size_t nbits) { return (nbits + 63) / 64; }

/// Valid-bit mask of the last word: all ones when nbits is a multiple of
/// 64 (or zero), else ones in the low nbits % 64 positions.
constexpr uint64_t TailMask(size_t nbits) {
  const size_t tail = nbits & 63;
  return tail == 0 ? ~uint64_t{0} : (uint64_t{1} << tail) - 1;
}

/// Sets all nbits to `value` (tail bits stay zero).
void Fill(uint64_t* dst, size_t nbits, bool value);

/// dst &= src.
void And(uint64_t* dst, const uint64_t* src, size_t nbits);

/// dst |= src.
void Or(uint64_t* dst, const uint64_t* src, size_t nbits);

/// dst &= ~src.
void AndNot(uint64_t* dst, const uint64_t* src, size_t nbits);

/// Number of set bits in [0, nbits).
size_t Count(const uint64_t* words, size_t nbits);

/// popcount(a & b) without materializing the intersection.
size_t CountAnd(const uint64_t* a, const uint64_t* b, size_t nbits);

/// True if any bit in [0, nbits) is set.
bool Any(const uint64_t* words, size_t nbits);

}  // namespace bitspan

/// A fixed-size dynamic bitset. The incremental-matching engine stores one
/// bitmap per rule ("pairs this rule matched") and one per predicate ("pairs
/// this predicate rejected"), so compactness and fast scans matter
/// (Sec. 6.1 / 7.4 of the paper).
class Bitmap {
 public:
  Bitmap() = default;
  /// Creates a bitmap of `size` bits, all set to `initial`.
  explicit Bitmap(size_t size, bool initial = false);

  Bitmap(const Bitmap&) = default;
  Bitmap& operator=(const Bitmap&) = default;
  Bitmap(Bitmap&&) = default;
  Bitmap& operator=(Bitmap&&) = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  void Assign(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  /// Sets every bit to `value`.
  void Fill(bool value);

  /// Grows (or shrinks) to `size` bits; new bits are `value`.
  void Resize(size_t size, bool value = false);

  /// Number of set bits.
  size_t Count() const;

  /// Returns the indices of all set bits, in increasing order.
  std::vector<size_t> ToIndices() const;

  /// Index of the first set bit at or after `from`, or `size()` if none.
  size_t FindNext(size_t from) const;

  /// In-place bitwise ops; `other` must have the same size.
  Bitmap& operator|=(const Bitmap& other);
  Bitmap& operator&=(const Bitmap& other);
  /// Clears every bit that is set in `other` (this &= ~other).
  Bitmap& Subtract(const Bitmap& other);

  friend bool operator==(const Bitmap& a, const Bitmap& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Bytes of heap memory used by the word array (for the Sec. 7.4-style
  /// memory accounting).
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Raw 64-bit word storage (for binary persistence). Bit i lives at
  /// words()[i / 64] bit (i % 64); tail bits beyond size() are zero.
  const std::vector<uint64_t>& words() const { return words_; }

  /// Reconstructs a bitmap from persisted words. `words` must have
  /// exactly ceil(size / 64) entries; tail bits are cleared defensively.
  static Bitmap FromWords(size_t size, std::vector<uint64_t> words);

  // ---- Word-aligned span access (the block matcher's bulk writes).
  // `bit_offset` must be a multiple of 64 and bit_offset + nbits <=
  // size(); spans therefore never straddle a partial leading word, and
  // two writers touching disjoint 64-aligned spans never share a word
  // (the ThreadPool alignment contract extended to spans). The incoming
  // span's tail is masked defensively. ----

  /// ORs `nbits` bits of `words` into this bitmap at `bit_offset`.
  void OrSpan(size_t bit_offset, const uint64_t* words, size_t nbits);

  /// Clears every bit of the span that is set in `words`
  /// (this &= ~span over [bit_offset, bit_offset + nbits)).
  void AndNotSpan(size_t bit_offset, const uint64_t* words, size_t nbits);

  /// Copies [bit_offset, bit_offset + nbits) into `out`
  /// (ceil(nbits / 64) words, tail cleared).
  void ExtractSpan(size_t bit_offset, uint64_t* out, size_t nbits) const;

 private:
  // Zeroes the unused high bits of the last word so Count()/equality stay
  // correct after Fill(true) or Resize.
  void TrimTail();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace emdbg

#endif  // EMDBG_UTIL_BITMAP_H_
