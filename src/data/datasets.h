#ifndef EMDBG_DATA_DATASETS_H_
#define EMDBG_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "src/data/generator.h"
#include "src/util/status.h"

namespace emdbg {

/// The six dataset shapes of the paper's Table 2, re-created synthetically.
/// Table/candidate sizes match the paper; content is generated (see
/// DESIGN.md, "Substitutions").
enum class DatasetId {
  kProducts = 0,    ///< Walmart/Amazon electronics: 2554 x 22074, 291649 pairs
  kRestaurants,     ///< Yelp/Foursquare: 3279 x 25376, 24965 pairs
  kBooks,           ///< Amazon/B&N: 3099 x 3560, 28540 pairs
  kBreakfast,       ///< Walmart/Amazon: 3669 x 4165, 73297 pairs
  kMovies,          ///< Amazon/Bestbuy: 5526 x 4373, 17725 pairs
  kVideoGames,      ///< TheGamesDB/MobyGames: 3742 x 6739, 22697 pairs
};

inline constexpr int kNumDatasets = 6;

/// Profile for one of the six paper datasets at full Table 2 scale.
DatasetProfile PaperDatasetProfile(DatasetId id);

/// All six, in Table 2 order.
std::vector<DatasetProfile> AllPaperDatasetProfiles();

/// Returns `profile` shrunk by `factor` in both table sizes and candidate
/// count (rule sets and behaviour shapes are preserved; useful to keep
/// benches fast). factor = 1.0 is a no-op; factor must be in (0, 1].
DatasetProfile ScaleProfile(DatasetProfile profile, double factor);

/// Parses a dataset name ("products", "books", ...). Case-insensitive.
Result<DatasetId> DatasetIdFromName(std::string_view name);

const char* DatasetName(DatasetId id);

/// Formats Table 2-style statistics for a generated dataset.
std::string DescribeDataset(const DatasetProfile& profile,
                            const GeneratedDataset& ds);

}  // namespace emdbg

#endif  // EMDBG_DATA_DATASETS_H_
