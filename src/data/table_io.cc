#include "src/data/table_io.h"

#include "src/util/csv.h"
#include "src/util/string_util.h"

namespace emdbg {

Result<Table> TableFromCsv(std::string_view csv_text,
                           std::string table_name) {
  CsvParser parser(csv_text);
  CsvRow header;
  if (!parser.NextRow(&header)) {
    if (!parser.status().ok()) return parser.status();
    return Status::ParseError("empty CSV input: missing header row");
  }
  Table table(std::move(table_name), Schema(header));
  CsvRow row;
  while (parser.NextRow(&row)) {
    // A lone trailing newline parses as a single empty field; skip it.
    if (row.size() == 1 && row[0].empty()) continue;
    if (row.size() != header.size()) {
      return Status::ParseError(
          StrFormat("line %zu: expected %zu fields, got %zu", parser.line(),
                    header.size(), row.size()));
    }
    EMDBG_RETURN_IF_ERROR(table.AppendRow(row));
  }
  if (!parser.status().ok()) return parser.status();
  return table;
}

Result<Table> LoadTableCsv(const std::string& path) {
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return TableFromCsv(*text, path);
}

std::string TableToCsv(const Table& table) {
  std::vector<CsvRow> rows;
  rows.reserve(table.num_rows() + 1);
  rows.push_back(table.schema().names());
  for (const Row& r : table.rows()) rows.push_back(r);
  return WriteCsv(rows);
}

Status SaveTableCsv(const Table& table, const std::string& path) {
  return WriteStringToFile(path, TableToCsv(table));
}

}  // namespace emdbg
