#include "src/data/table_io.h"

#include "src/util/csv.h"
#include "src/util/string_util.h"

namespace emdbg {

namespace {

/// Prefixes a load error with the source name so a multi-file startup
/// (the debug service loads tables, candidates, and rules in one go)
/// reports exactly which artifact is bad and where.
Status WithContext(const Status& s, const std::string& source) {
  if (s.ok()) return s;
  return Status(s.code(),
                StrFormat("%s: %s", source.c_str(), s.message().c_str()));
}

}  // namespace

Result<Table> TableFromCsv(std::string_view csv_text,
                           std::string table_name) {
  CsvParser parser(csv_text);
  CsvRow header;
  if (!parser.NextRow(&header)) {
    if (!parser.status().ok()) {
      return WithContext(parser.status(), table_name);
    }
    return Status::ParseError(StrFormat(
        "%s: empty CSV input: missing header row", table_name.c_str()));
  }
  Table table(table_name, Schema(header));
  CsvRow row;
  while (parser.NextRow(&row)) {
    // A lone trailing newline parses as a single empty field; skip it.
    if (row.size() == 1 && row[0].empty()) continue;
    if (row.size() != header.size()) {
      return Status::ParseError(StrFormat(
          "%s: line %zu: expected %zu fields, got %zu", table_name.c_str(),
          parser.line(), header.size(), row.size()));
    }
    const Status append = table.AppendRow(row);
    if (!append.ok()) {
      return Status(append.code(),
                    StrFormat("%s: line %zu: %s", table_name.c_str(),
                              parser.line(), append.message().c_str()));
    }
  }
  if (!parser.status().ok()) return WithContext(parser.status(), table_name);
  return table;
}

Result<Table> LoadTableCsv(const std::string& path) {
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return TableFromCsv(*text, path);
}

std::string TableToCsv(const Table& table) {
  std::vector<CsvRow> rows;
  rows.reserve(table.num_rows() + 1);
  rows.push_back(table.schema().names());
  for (const Row& r : table.rows()) rows.push_back(r);
  return WriteCsv(rows);
}

Status SaveTableCsv(const Table& table, const std::string& path) {
  return WriteStringToFile(path, TableToCsv(table));
}

}  // namespace emdbg
