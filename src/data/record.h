#ifndef EMDBG_DATA_RECORD_H_
#define EMDBG_DATA_RECORD_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/util/status.h"

namespace emdbg {

/// Index of an attribute within a Schema.
using AttrIndex = size_t;

/// Ordered list of attribute names shared by all records of a Table.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> attribute_names);

  size_t size() const { return names_.size(); }
  const std::string& name(AttrIndex i) const { return names_[i]; }
  const std::vector<std::string>& names() const { return names_; }

  /// Index of `name`, or NotFound.
  Result<AttrIndex> Find(std::string_view name) const;

  /// True if `name` exists.
  bool Contains(std::string_view name) const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.names_ == b.names_;
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, AttrIndex> index_;
};

/// One record: attribute values positionally aligned with a Schema. A plain
/// value holder — Table owns storage and pairs rows with the schema.
using Row = std::vector<std::string>;

}  // namespace emdbg

#endif  // EMDBG_DATA_RECORD_H_
