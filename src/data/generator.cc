#include "src/data/generator.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "src/util/string_util.h"

namespace emdbg {

namespace generator_internal {

std::string MakeWord(Rng& rng, int syllables) {
  static constexpr const char* kOnsets[] = {
      "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n",  "p",
      "r", "s", "t", "v", "w", "z", "br", "ch", "cl", "cr", "dr", "fl",
      "gr", "pl", "pr", "sh", "sl", "sp", "st", "th", "tr"};
  static constexpr const char* kVowels[] = {"a",  "e",  "i",  "o",  "u",
                                            "ai", "ea", "ee", "io", "ou"};
  static constexpr const char* kCodas[] = {"",  "",  "",  "n", "r", "s",
                                           "t", "l", "m", "x", "nd", "st"};
  std::string word;
  for (int s = 0; s < syllables; ++s) {
    word += kOnsets[rng.Uniform(std::size(kOnsets))];
    word += kVowels[rng.Uniform(std::size(kVowels))];
    if (s + 1 == syllables) word += kCodas[rng.Uniform(std::size(kCodas))];
  }
  return word;
}

namespace {

// Introduces one character-level typo: substitute, delete, insert, or
// transpose at a random position.
std::string Typo(const std::string& value, Rng& rng) {
  if (value.empty()) return value;
  std::string out = value;
  const size_t pos = rng.Uniform(out.size());
  switch (rng.Uniform(4)) {
    case 0:  // substitute
      out[pos] = static_cast<char>('a' + rng.Uniform(26));
      break;
    case 1:  // delete
      out.erase(pos, 1);
      break;
    case 2:  // insert
      out.insert(pos, 1, static_cast<char>('a' + rng.Uniform(26)));
      break;
    default:  // transpose
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      break;
  }
  return out;
}

std::string FlipCase(const std::string& value, Rng& rng) {
  std::string out = value;
  for (char& c : out) {
    if (rng.Bernoulli(0.3)) {
      const unsigned char uc = static_cast<unsigned char>(c);
      if (std::islower(uc)) {
        c = static_cast<char>(std::toupper(uc));
      } else if (std::isupper(uc)) {
        c = static_cast<char>(std::tolower(uc));
      }
    }
  }
  return out;
}

// Token-level edit for multi-word values: drop, swap, duplicate, or
// abbreviate one token.
std::string TokenEdit(const std::string& value, Rng& rng) {
  std::vector<std::string> tokens = SplitWhitespace(value);
  if (tokens.size() < 2) return Typo(value, rng);
  const size_t pos = rng.Uniform(tokens.size());
  switch (rng.Uniform(4)) {
    case 0:  // drop
      tokens.erase(tokens.begin() + static_cast<ptrdiff_t>(pos));
      break;
    case 1:  // swap with neighbor
      if (pos + 1 < tokens.size()) std::swap(tokens[pos], tokens[pos + 1]);
      break;
    case 2:  // duplicate
      tokens.insert(tokens.begin() + static_cast<ptrdiff_t>(pos),
                    tokens[pos]);
      break;
    default:  // abbreviate: "corporation" -> "corp."
      if (tokens[pos].size() > 4) {
        tokens[pos] = tokens[pos].substr(0, 1 + rng.Uniform(3)) + ".";
      }
      break;
  }
  return Join(tokens, " ");
}

// Numeric jitter for price/year-like values.
std::string NumericJitter(const std::string& value, AttrKind kind, Rng& rng) {
  double x = 0.0;
  if (!ParseDouble(value, &x)) return Typo(value, rng);
  if (kind == AttrKind::kYear) {
    return StrFormat("%d", static_cast<int>(x) +
                               static_cast<int>(rng.UniformInt(-1, 1)));
  }
  const double jittered = x * rng.UniformDouble(0.95, 1.05);
  return StrFormat("%.2f", jittered);
}

// Reformats a phone number: drop the area code or change separators, like
// the paper's "(206-453-1978)" vs "(453 1978)" example.
std::string PhoneEdit(const std::string& value, Rng& rng) {
  std::vector<std::string> parts = Split(value, '-');
  switch (rng.Uniform(3)) {
    case 0:  // drop area code
      if (parts.size() == 3) return parts[1] + " " + parts[2];
      break;
    case 1:  // space separators
      return Join(parts, " ");
    default:  // no separators
      return Join(parts, "");
  }
  return value;
}

}  // namespace

std::string Perturb(const std::string& value, AttrKind kind, Rng& rng) {
  switch (kind) {
    case AttrKind::kPrice:
    case AttrKind::kYear:
      return NumericJitter(value, kind, rng);
    case AttrKind::kPhone:
      return PhoneEdit(value, rng);
    case AttrKind::kZip:
      return Typo(value, rng);
    case AttrKind::kModelNo:
    case AttrKind::kBrand:
    case AttrKind::kCity:
    case AttrKind::kCategory: {
      // Short single-token values: typo or case noise.
      return rng.Bernoulli(0.5) ? Typo(value, rng) : FlipCase(value, rng);
    }
    case AttrKind::kTitle:
    case AttrKind::kName:
    case AttrKind::kStreet: {
      const double roll = rng.NextDouble();
      if (roll < 0.45) return TokenEdit(value, rng);
      if (roll < 0.80) return Typo(value, rng);
      return FlipCase(value, rng);
    }
  }
  return value;
}

}  // namespace generator_internal

namespace {

using generator_internal::MakeWord;
using generator_internal::Perturb;

/// Shared word lists for a dataset, synthesized once per profile seed.
struct Vocabulary {
  std::vector<std::string> brands;
  std::vector<std::string> categories;
  std::vector<std::string> descriptors;  // Zipf-sampled title words
  std::vector<std::string> first_names;
  std::vector<std::string> last_names;
  std::vector<std::string> cities;
  std::vector<std::string> street_words;

  static Vocabulary Make(Rng& rng, size_t num_categories) {
    Vocabulary v;
    auto fill = [&rng](std::vector<std::string>& out, size_t n,
                       int syllables) {
      std::unordered_set<std::string> seen;
      while (out.size() < n) {
        std::string w = MakeWord(rng, syllables);
        if (seen.insert(w).second) out.push_back(std::move(w));
      }
    };
    fill(v.brands, 48, 2);
    fill(v.categories, std::max<size_t>(num_categories, 2), 3);
    fill(v.descriptors, 1200, 2);
    fill(v.first_names, 120, 2);
    fill(v.last_names, 200, 2);
    fill(v.cities, 60, 3);
    fill(v.street_words, 80, 2);
    return v;
  }
};

/// The latent entity behind a record. Twins render the same entity; the
/// twin's rendering is then perturbed per-attribute.
struct Entity {
  size_t category_id = 0;
  std::string brand;
  std::string category;
  std::string model_code;
  std::vector<std::string> title_words;
  std::string first_name;
  std::string last_name;
  std::string phone;
  std::string street;
  std::string city;
  std::string zip;
  std::string price;
  std::string year;
};

Entity MakeEntity(const Vocabulary& vocab, Rng& rng) {
  Entity e;
  e.category_id = rng.Zipf(vocab.categories.size(), 0.5);
  e.category = vocab.categories[e.category_id];
  e.brand = vocab.brands[rng.Zipf(vocab.brands.size(), 0.8)];
  e.model_code = StrFormat(
      "%c%c-%04d%c", static_cast<char>('A' + rng.Uniform(26)),
      static_cast<char>('A' + rng.Uniform(26)),
      static_cast<int>(rng.Uniform(10000)),
      static_cast<char>('A' + rng.Uniform(26)));
  const size_t num_words = 2 + rng.Uniform(4);
  for (size_t i = 0; i < num_words; ++i) {
    e.title_words.push_back(
        vocab.descriptors[rng.Zipf(vocab.descriptors.size(), 1.0)]);
  }
  e.first_name = vocab.first_names[rng.Uniform(vocab.first_names.size())];
  e.last_name = vocab.last_names[rng.Uniform(vocab.last_names.size())];
  e.phone = StrFormat("%03d-%03d-%04d",
                      static_cast<int>(200 + rng.Uniform(800)),
                      static_cast<int>(100 + rng.Uniform(900)),
                      static_cast<int>(rng.Uniform(10000)));
  e.street = StrFormat("%d %s %s", static_cast<int>(1 + rng.Uniform(9999)),
                       vocab.street_words[rng.Uniform(
                           vocab.street_words.size())].c_str(),
                       rng.Bernoulli(0.5) ? "st" : "ave");
  e.city = vocab.cities[rng.Zipf(vocab.cities.size(), 0.7)];
  e.zip = StrFormat("%05d", static_cast<int>(rng.Uniform(100000)));
  e.price = StrFormat("%.2f", rng.UniformDouble(5.0, 999.0));
  e.year = StrFormat("%d", static_cast<int>(1980 + rng.Uniform(41)));
  return e;
}

std::string RenderAttribute(const Entity& e, AttrKind kind) {
  switch (kind) {
    case AttrKind::kTitle: {
      std::string title = e.brand + " " + Join(e.title_words, " ") + " " +
                          e.model_code;
      return title;
    }
    case AttrKind::kName:
      return e.first_name + " " + e.last_name;
    case AttrKind::kBrand:
      return e.brand;
    case AttrKind::kCategory:
      return e.category;
    case AttrKind::kModelNo:
      return e.model_code;
    case AttrKind::kPhone:
      return e.phone;
    case AttrKind::kStreet:
      return e.street;
    case AttrKind::kCity:
      return e.city;
    case AttrKind::kZip:
      return e.zip;
    case AttrKind::kPrice:
      return e.price;
    case AttrKind::kYear:
      return e.year;
  }
  return "";
}

Row RenderRow(const Entity& e, const std::vector<AttributeSpec>& attrs) {
  Row row;
  row.reserve(attrs.size());
  for (const AttributeSpec& spec : attrs) {
    row.push_back(RenderAttribute(e, spec.kind));
  }
  return row;
}

Row PerturbRow(Row row, const std::vector<AttributeSpec>& attrs, Rng& rng) {
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (rng.Bernoulli(attrs[i].missing_prob)) {
      row[i].clear();
      continue;
    }
    if (rng.Bernoulli(attrs[i].dirtiness)) {
      row[i] = Perturb(row[i], attrs[i].kind, rng);
      // Occasionally pile on a second edit for extra-dirty values.
      if (rng.Bernoulli(0.25)) {
        row[i] = Perturb(row[i], attrs[i].kind, rng);
      }
    }
  }
  return row;
}

}  // namespace

GeneratedDataset GenerateDataset(const DatasetProfile& profile) {
  Rng rng(profile.seed);
  const Vocabulary vocab = Vocabulary::Make(rng, profile.num_categories);

  std::vector<std::string> attr_names;
  for (const AttributeSpec& spec : profile.attributes) {
    attr_names.push_back(spec.name);
  }
  const Schema schema(attr_names);

  GeneratedDataset ds;
  ds.a = Table(profile.name + "_A", schema);
  ds.b = Table(profile.name + "_B", schema);

  // Entities for table A; remember each row's category for blocking.
  std::vector<Entity> a_entities;
  a_entities.reserve(profile.table_a_rows);
  for (size_t i = 0; i < profile.table_a_rows; ++i) {
    a_entities.push_back(MakeEntity(vocab, rng));
    (void)ds.a.AppendRow(RenderRow(a_entities.back(), profile.attributes));
  }

  // Choose which A rows get a twin in B.
  const size_t max_twins = std::min(profile.table_a_rows,
                                    profile.table_b_rows);
  const size_t num_twins = std::min(
      max_twins, static_cast<size_t>(profile.twin_fraction *
                                     static_cast<double>(max_twins)));
  std::vector<size_t> twin_a_rows =
      rng.SampleIndices(profile.table_a_rows, num_twins);

  std::vector<size_t> b_category;  // category id per B row, for blocking
  b_category.reserve(profile.table_b_rows);

  // First, emit the twins (B rows 0..num_twins-1 in shuffled A order).
  for (const size_t a_row : twin_a_rows) {
    const Entity& e = a_entities[a_row];
    Row twin = PerturbRow(RenderRow(e, profile.attributes),
                          profile.attributes, rng);
    const uint32_t b_row = static_cast<uint32_t>(ds.b.num_rows());
    (void)ds.b.AppendRow(std::move(twin));
    b_category.push_back(e.category_id);
    ds.true_matches.push_back(
        PairId{static_cast<uint32_t>(a_row), b_row});
  }
  // Fill the rest of B with fresh entities.
  while (ds.b.num_rows() < profile.table_b_rows) {
    const Entity e = MakeEntity(vocab, rng);
    (void)ds.b.AppendRow(RenderRow(e, profile.attributes));
    b_category.push_back(e.category_id);
  }

  // ---- Simulated blocking: same-category candidate sampling. ----
  // Index B rows by category.
  std::unordered_map<size_t, std::vector<uint32_t>> b_by_category;
  for (uint32_t row = 0; row < b_category.size(); ++row) {
    b_by_category[b_category[row]].push_back(row);
  }

  CandidateSet candidates;
  candidates.Reserve(profile.candidate_pairs + ds.true_matches.size());
  std::unordered_set<uint64_t> taken;
  taken.reserve(profile.candidate_pairs * 2);
  auto key_of = [](PairId p) {
    return (static_cast<uint64_t>(p.a) << 32) | p.b;
  };
  for (const PairId& m : ds.true_matches) {
    if (taken.insert(key_of(m)).second) candidates.Add(m);
  }

  // Sample same-category B partners for random A rows until the target is
  // reached (mostly within-category "blocked" negatives, with a small
  // fraction of random cross-category pairs). Dedup as we go; the attempt
  // cap guards against profiles whose target exceeds the number of
  // distinct pairs the tables can supply.
  const size_t target = std::max(profile.candidate_pairs,
                                 ds.true_matches.size());
  size_t attempts = 0;
  const size_t max_attempts = target * 50 + 1000;
  while (candidates.size() < target && attempts < max_attempts) {
    ++attempts;
    const uint32_t a_row =
        static_cast<uint32_t>(rng.Uniform(profile.table_a_rows));
    const auto it = b_by_category.find(a_entities[a_row].category_id);
    const std::vector<uint32_t>* pool = nullptr;
    if (it != b_by_category.end() && !it->second.empty()) {
      pool = &it->second;
    }
    uint32_t b_row;
    if (pool != nullptr && rng.Bernoulli(0.9)) {
      b_row = (*pool)[rng.Uniform(pool->size())];
    } else {
      b_row = static_cast<uint32_t>(rng.Uniform(profile.table_b_rows));
    }
    const PairId p{a_row, b_row};
    if (taken.insert(key_of(p)).second) candidates.Add(p);
  }
  candidates.SortAndDedup();

  // Labels aligned with the final pair order.
  std::unordered_set<uint64_t> match_keys;
  match_keys.reserve(ds.true_matches.size() * 2);
  for (const PairId& m : ds.true_matches) {
    match_keys.insert((static_cast<uint64_t>(m.a) << 32) | m.b);
  }
  ds.labels = PairLabels(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const PairId& p = candidates.pair(i);
    if (match_keys.count((static_cast<uint64_t>(p.a) << 32) | p.b)) {
      ds.labels.Set(i);
    }
  }
  ds.candidates = std::move(candidates);
  return ds;
}

}  // namespace emdbg
