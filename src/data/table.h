#ifndef EMDBG_DATA_TABLE_H_
#define EMDBG_DATA_TABLE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/data/record.h"
#include "src/util/status.h"

namespace emdbg {

/// An in-memory relational table: a schema plus rows of string values.
/// Entity matching in this library always operates over two Tables (A, B)
/// and a set of candidate row-index pairs.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_attributes() const { return schema_.size(); }

  /// Appends a row. Returns InvalidArgument if arity mismatches the schema.
  Status AppendRow(Row row);

  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Value of attribute `attr` in row `row_index`.
  const std::string& Value(size_t row_index, AttrIndex attr) const {
    return rows_[row_index][attr];
  }

  /// All values of one attribute (column view, copies references only).
  std::vector<std::string_view> Column(AttrIndex attr) const;

  /// Total bytes of string payload (for memory reporting).
  size_t PayloadBytes() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace emdbg

#endif  // EMDBG_DATA_TABLE_H_
