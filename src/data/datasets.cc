#include "src/data/datasets.h"

#include <algorithm>

#include "src/util/string_util.h"

namespace emdbg {

namespace {

// Common attribute bundles. Dirtiness values are tuned so that generated
// twins land in a similarity range where thresholded predicates have
// non-trivial selectivities (like real dirty data).
std::vector<AttributeSpec> ProductAttributes() {
  return {
      {"title", AttrKind::kTitle, 0.55, 0.01},
      {"modelno", AttrKind::kModelNo, 0.35, 0.05},
      {"brand", AttrKind::kBrand, 0.25, 0.03},
      {"category", AttrKind::kCategory, 0.10, 0.01},
      {"price", AttrKind::kPrice, 0.50, 0.10},
  };
}

std::vector<AttributeSpec> RestaurantAttributes() {
  return {
      {"name", AttrKind::kName, 0.45, 0.01},
      {"street", AttrKind::kStreet, 0.50, 0.05},
      {"city", AttrKind::kCity, 0.20, 0.02},
      {"zip", AttrKind::kZip, 0.25, 0.05},
      {"phone", AttrKind::kPhone, 0.40, 0.10},
      {"category", AttrKind::kCategory, 0.15, 0.02},
  };
}

std::vector<AttributeSpec> BookAttributes() {
  return {
      {"title", AttrKind::kTitle, 0.45, 0.01},
      {"author", AttrKind::kName, 0.35, 0.03},
      {"isbn", AttrKind::kModelNo, 0.20, 0.08},
      {"year", AttrKind::kYear, 0.30, 0.05},
      {"price", AttrKind::kPrice, 0.55, 0.10},
      {"category", AttrKind::kCategory, 0.10, 0.01},
  };
}

std::vector<AttributeSpec> MovieAttributes() {
  return {
      {"title", AttrKind::kTitle, 0.40, 0.01},
      {"director", AttrKind::kName, 0.35, 0.05},
      {"year", AttrKind::kYear, 0.25, 0.03},
      {"studio", AttrKind::kBrand, 0.30, 0.05},
      {"category", AttrKind::kCategory, 0.10, 0.01},
  };
}

std::vector<AttributeSpec> GameAttributes() {
  return {
      {"title", AttrKind::kTitle, 0.45, 0.01},
      {"platform", AttrKind::kBrand, 0.20, 0.02},
      {"publisher", AttrKind::kBrand, 0.35, 0.05},
      {"year", AttrKind::kYear, 0.25, 0.03},
      {"category", AttrKind::kCategory, 0.10, 0.01},
  };
}

}  // namespace

DatasetProfile PaperDatasetProfile(DatasetId id) {
  DatasetProfile p;
  switch (id) {
    case DatasetId::kProducts:
      p.name = "products";
      p.table_a_rows = 2554;
      p.table_b_rows = 22074;
      p.candidate_pairs = 291649;
      p.twin_fraction = 0.45;
      p.attributes = ProductAttributes();
      p.num_categories = 24;
      p.seed = 1701;
      break;
    case DatasetId::kRestaurants:
      p.name = "restaurants";
      p.table_a_rows = 3279;
      p.table_b_rows = 25376;
      p.candidate_pairs = 24965;
      p.twin_fraction = 0.40;
      p.attributes = RestaurantAttributes();
      p.num_categories = 40;
      p.seed = 1702;
      break;
    case DatasetId::kBooks:
      p.name = "books";
      p.table_a_rows = 3099;
      p.table_b_rows = 3560;
      p.candidate_pairs = 28540;
      p.twin_fraction = 0.55;
      p.attributes = BookAttributes();
      p.num_categories = 18;
      p.seed = 1703;
      break;
    case DatasetId::kBreakfast:
      p.name = "breakfast";
      p.table_a_rows = 3669;
      p.table_b_rows = 4165;
      p.candidate_pairs = 73297;
      p.twin_fraction = 0.50;
      p.attributes = ProductAttributes();
      p.num_categories = 12;
      p.seed = 1704;
      break;
    case DatasetId::kMovies:
      p.name = "movies";
      p.table_a_rows = 5526;
      p.table_b_rows = 4373;
      p.candidate_pairs = 17725;
      p.twin_fraction = 0.45;
      p.attributes = MovieAttributes();
      p.num_categories = 22;
      p.seed = 1705;
      break;
    case DatasetId::kVideoGames:
      p.name = "video_games";
      p.table_a_rows = 3742;
      p.table_b_rows = 6739;
      p.candidate_pairs = 22697;
      p.twin_fraction = 0.50;
      p.attributes = GameAttributes();
      p.num_categories = 16;
      p.seed = 1706;
      break;
  }
  return p;
}

std::vector<DatasetProfile> AllPaperDatasetProfiles() {
  std::vector<DatasetProfile> out;
  for (int i = 0; i < kNumDatasets; ++i) {
    out.push_back(PaperDatasetProfile(static_cast<DatasetId>(i)));
  }
  return out;
}

DatasetProfile ScaleProfile(DatasetProfile profile, double factor) {
  factor = std::clamp(factor, 1e-6, 1.0);
  auto scale = [factor](size_t n) {
    return std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(n) * factor));
  };
  profile.table_a_rows = scale(profile.table_a_rows);
  profile.table_b_rows = scale(profile.table_b_rows);
  profile.candidate_pairs = scale(profile.candidate_pairs);
  return profile;
}

const char* DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kProducts:
      return "products";
    case DatasetId::kRestaurants:
      return "restaurants";
    case DatasetId::kBooks:
      return "books";
    case DatasetId::kBreakfast:
      return "breakfast";
    case DatasetId::kMovies:
      return "movies";
    case DatasetId::kVideoGames:
      return "video_games";
  }
  return "unknown";
}

Result<DatasetId> DatasetIdFromName(std::string_view name) {
  for (int i = 0; i < kNumDatasets; ++i) {
    const DatasetId id = static_cast<DatasetId>(i);
    if (EqualsIgnoreCase(name, DatasetName(id))) return id;
  }
  return Status::NotFound(StrFormat("unknown dataset '%.*s'",
                                    static_cast<int>(name.size()),
                                    name.data()));
}

std::string DescribeDataset(const DatasetProfile& profile,
                            const GeneratedDataset& ds) {
  return StrFormat(
      "%-12s tableA=%zu tableB=%zu candidates=%zu matches=%zu "
      "match_rate=%.3f attrs=%zu",
      profile.name.c_str(), ds.a.num_rows(), ds.b.num_rows(),
      ds.candidates.size(), ds.true_matches.size(), ds.MatchRate(),
      profile.attributes.size());
}

}  // namespace emdbg
