#ifndef EMDBG_DATA_TABLE_IO_H_
#define EMDBG_DATA_TABLE_IO_H_

#include <string>

#include "src/data/table.h"
#include "src/util/status.h"

namespace emdbg {

/// Parses CSV text (first row = header) into a Table named `table_name`.
/// Rows whose arity differs from the header produce a ParseError.
Result<Table> TableFromCsv(std::string_view csv_text,
                           std::string table_name);

/// Loads a CSV file into a Table named after the file path.
Result<Table> LoadTableCsv(const std::string& path);

/// Serializes a Table to CSV text with a header row.
std::string TableToCsv(const Table& table);

/// Writes a Table to a CSV file.
Status SaveTableCsv(const Table& table, const std::string& path);

}  // namespace emdbg

#endif  // EMDBG_DATA_TABLE_IO_H_
