#include "src/data/candidate_io.h"

#include "src/util/csv.h"
#include "src/util/string_util.h"

namespace emdbg {

Status SaveCandidatesCsv(const CandidateSet& candidates,
                         const PairLabels* labels,
                         const std::string& path) {
  if (labels != nullptr && labels->size() != candidates.size()) {
    return Status::InvalidArgument(
        "labels size must match candidate count");
  }
  std::string out = labels != nullptr ? "a,b,label\n" : "a,b\n";
  for (size_t i = 0; i < candidates.size(); ++i) {
    const PairId p = candidates.pair(i);
    if (labels != nullptr) {
      out += StrFormat("%u,%u,%d\n", p.a, p.b, labels->Get(i) ? 1 : 0);
    } else {
      out += StrFormat("%u,%u\n", p.a, p.b);
    }
  }
  return WriteStringToFile(path, out);
}

Result<LoadedCandidates> LoadCandidatesCsv(const std::string& path) {
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  CsvParser parser(*text);
  CsvRow header;
  if (!parser.NextRow(&header)) {
    if (!parser.status().ok()) {
      return Status(parser.status().code(),
                    StrFormat("%s: %s", path.c_str(),
                              parser.status().message().c_str()));
    }
    return Status::ParseError(
        StrFormat("%s: empty candidate file", path.c_str()));
  }
  if (header.size() < 2 || header[0] != "a" || header[1] != "b") {
    return Status::ParseError(
        StrFormat("%s: expected header 'a,b[,label]'", path.c_str()));
  }
  const bool has_labels = header.size() >= 3 && header[2] == "label";

  LoadedCandidates out;
  out.has_labels = has_labels;
  std::vector<bool> label_bits;
  CsvRow row;
  while (parser.NextRow(&row)) {
    if (row.size() == 1 && row[0].empty()) continue;  // trailing newline
    if (row.size() != header.size()) {
      return Status::ParseError(
          StrFormat("%s: line %zu: expected %zu fields, got %zu",
                    path.c_str(), parser.line(), header.size(),
                    row.size()));
    }
    int64_t a = 0;
    int64_t b = 0;
    if (!ParseInt64(row[0], &a) || !ParseInt64(row[1], &b) || a < 0 ||
        b < 0) {
      return Status::ParseError(StrFormat("%s: line %zu: bad pair indices",
                                          path.c_str(), parser.line()));
    }
    out.candidates.Add(
        PairId{static_cast<uint32_t>(a), static_cast<uint32_t>(b)});
    if (has_labels) {
      int64_t label = 0;
      if (!ParseInt64(row[2], &label) || (label != 0 && label != 1)) {
        return Status::ParseError(
            StrFormat("%s: line %zu: label must be 0 or 1", path.c_str(),
                      parser.line()));
      }
      label_bits.push_back(label == 1);
    }
  }
  if (!parser.status().ok()) {
    return Status(parser.status().code(),
                  StrFormat("%s: %s", path.c_str(),
                            parser.status().message().c_str()));
  }
  if (has_labels) {
    out.labels = PairLabels(out.candidates.size());
    for (size_t i = 0; i < label_bits.size(); ++i) {
      if (label_bits[i]) out.labels.Set(i);
    }
  }
  return out;
}

}  // namespace emdbg
