#ifndef EMDBG_DATA_GENERATOR_H_
#define EMDBG_DATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/block/candidate_pairs.h"
#include "src/data/table.h"
#include "src/util/random.h"

namespace emdbg {

/// Semantic kind of a generated attribute. The kind controls both how
/// canonical values are synthesized and which perturbations a matched twin
/// can receive (typos, token drops, abbreviations, numeric jitter, ...).
enum class AttrKind {
  kTitle,    ///< brand + category + model + descriptor words
  kName,     ///< person-style "first last"
  kBrand,    ///< single vocabulary word
  kCategory, ///< small closed vocabulary; also the blocking key
  kModelNo,  ///< alphanumeric code like "ZX-4821B"
  kPhone,    ///< "206-453-1978"
  kStreet,   ///< "482 Maple Ave"
  kCity,     ///< city vocabulary word
  kZip,      ///< 5 digits
  kPrice,    ///< "129.99"
  kYear,     ///< "2009"
};

/// Spec of one attribute in a generated dataset.
struct AttributeSpec {
  std::string name;
  AttrKind kind = AttrKind::kTitle;
  /// Probability that a matched twin's value is perturbed (possibly several
  /// times). 0 = twins agree exactly on this attribute.
  double dirtiness = 0.3;
  /// Probability that a value is missing (empty string) in table B.
  double missing_prob = 0.02;
};

/// Shape of a synthetic dataset, mirroring one row of the paper's Table 2.
struct DatasetProfile {
  std::string name;
  size_t table_a_rows = 1000;
  size_t table_b_rows = 1000;
  /// Target number of candidate pairs after (simulated) blocking. All true
  /// matches are included; the remainder are same-category negatives.
  size_t candidate_pairs = 10000;
  /// Fraction of table-A rows that have a matching twin in table B.
  double twin_fraction = 0.5;
  std::vector<AttributeSpec> attributes;
  /// Number of distinct blocking categories (controls negative sampling).
  size_t num_categories = 20;
  uint64_t seed = 42;
};

/// A generated dataset: two tables, the ground-truth matches, and a
/// blocked candidate set with labels aligned to it.
struct GeneratedDataset {
  Table a;
  Table b;
  std::vector<PairId> true_matches;
  CandidateSet candidates;
  PairLabels labels;

  /// Fraction of candidates that are true matches.
  double MatchRate() const {
    return candidates.empty()
               ? 0.0
               : static_cast<double>(labels.Count()) /
                     static_cast<double>(candidates.size());
  }
};

/// Generates a dataset from `profile`. Deterministic in `profile.seed`.
GeneratedDataset GenerateDataset(const DatasetProfile& profile);

/// Internal helpers exposed for testing.
namespace generator_internal {

/// Applies one random string perturbation (typo / token drop / swap /
/// abbreviation / case flip) appropriate for `kind`.
std::string Perturb(const std::string& value, AttrKind kind, Rng& rng);

/// Synthesizes a pronounceable lower-case word of `syllables` syllables.
std::string MakeWord(Rng& rng, int syllables);

}  // namespace generator_internal

}  // namespace emdbg

#endif  // EMDBG_DATA_GENERATOR_H_
