#ifndef EMDBG_DATA_CANDIDATE_IO_H_
#define EMDBG_DATA_CANDIDATE_IO_H_

#include <string>

#include "src/block/candidate_pairs.h"
#include "src/util/status.h"

namespace emdbg {

/// CSV persistence for candidate sets and their labels, so an analyst can
/// run blocking once and iterate on rules across sessions (the paper's
/// maintainability theme). Format: header "a,b[,label]" then one row per
/// pair; label is 0/1 and optional.

/// Writes "a,b" rows (plus "label" when `labels` is non-null; its size
/// must equal the candidate count).
Status SaveCandidatesCsv(const CandidateSet& candidates,
                         const PairLabels* labels, const std::string& path);

/// Loaded candidate set with optional labels (empty bitmap when the file
/// had no label column).
struct LoadedCandidates {
  CandidateSet candidates;
  PairLabels labels;
  bool has_labels = false;
};

Result<LoadedCandidates> LoadCandidatesCsv(const std::string& path);

}  // namespace emdbg

#endif  // EMDBG_DATA_CANDIDATE_IO_H_
