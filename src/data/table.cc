#include "src/data/table.h"

#include "src/util/string_util.h"

namespace emdbg {

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        StrFormat("row arity %zu != schema arity %zu in table '%s'",
                  row.size(), schema_.size(), name_.c_str()));
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

std::vector<std::string_view> Table::Column(AttrIndex attr) const {
  std::vector<std::string_view> out;
  out.reserve(rows_.size());
  for (const Row& r : rows_) out.emplace_back(r[attr]);
  return out;
}

size_t Table::PayloadBytes() const {
  size_t bytes = 0;
  for (const Row& r : rows_) {
    for (const std::string& v : r) bytes += v.size();
  }
  return bytes;
}

}  // namespace emdbg
