#include "src/data/record.h"

#include "src/util/string_util.h"

namespace emdbg {

Schema::Schema(std::vector<std::string> attribute_names)
    : names_(std::move(attribute_names)) {
  for (AttrIndex i = 0; i < names_.size(); ++i) index_[names_[i]] = i;
}

Result<AttrIndex> Schema::Find(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return Status::NotFound(
        StrFormat("attribute '%.*s' not in schema",
                  static_cast<int>(name.size()), name.data()));
  }
  return it->second;
}

bool Schema::Contains(std::string_view name) const {
  return index_.count(std::string(name)) > 0;
}

}  // namespace emdbg
