/// SpillWriter/SpillReader: the CRC-framed byte streams under the
/// out-of-core machinery. Round trips across frame boundaries, oversized
/// single-write frames, clean-EOF vs corrupt-tail behavior, budget
/// billing of the frame buffers, and the "spill.write"/"spill.read"
/// fault sites.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/fault_injection.h"
#include "src/util/memory_budget.h"
#include "src/util/spill_file.h"

namespace emdbg {
namespace {

class SpillFileTest : public ::testing::Test {
 protected:
  SpillFileTest() { FaultInjection::DisarmAll(); }
  ~SpillFileTest() override { FaultInjection::DisarmAll(); }

  std::string Path(const std::string& name) {
    return ::testing::TempDir() + "spill_file_test_" + name + ".spill";
  }
};

TEST_F(SpillFileTest, RoundTripsAcrossFrameBoundaries) {
  const std::string path = Path("roundtrip");
  // Minimum frame size is 4 KiB; write well past several frames.
  SpillWriter::Options wopts;
  wopts.frame_bytes = 4096;
  auto writer = SpillWriter::Create(path, wopts);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 4000; ++i) {
    values.push_back(i * 2654435761u);
    ASSERT_TRUE(writer->WritePod(values.back()).ok());
  }
  EXPECT_EQ(writer->payload_bytes(), values.size() * sizeof(uint64_t));
  ASSERT_TRUE(writer->Close().ok());

  auto reader = SpillReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  for (uint64_t expected : values) {
    uint64_t got = 0;
    ASSERT_TRUE(reader->Read(&got, sizeof(got)).ok());
    ASSERT_EQ(got, expected);
  }
  EXPECT_TRUE(reader->AtEnd());
  uint64_t extra = 0;
  EXPECT_EQ(reader->Read(&extra, sizeof(extra)).code(),
            StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST_F(SpillFileTest, OversizedWriteBecomesItsOwnFrame) {
  const std::string path = Path("oversized");
  SpillWriter::Options wopts;
  wopts.frame_bytes = 4096;
  auto writer = SpillWriter::Create(path, wopts);
  ASSERT_TRUE(writer.ok());
  // One write far larger than the frame buffer, surrounded by small ones.
  std::string big(64 * 1024, 'x');
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<char>(i % 251);
  ASSERT_TRUE(writer->Write("pre", 3).ok());
  ASSERT_TRUE(writer->Write(big.data(), big.size()).ok());
  ASSERT_TRUE(writer->Write("post", 4).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto reader = SpillReader::Open(path);
  ASSERT_TRUE(reader.ok());
  char pre[3], post[4];
  std::string got(big.size(), 0);
  ASSERT_TRUE(reader->Read(pre, 3).ok());
  ASSERT_TRUE(reader->Read(&got[0], got.size()).ok());
  ASSERT_TRUE(reader->Read(post, 4).ok());
  EXPECT_EQ(std::memcmp(pre, "pre", 3), 0);
  EXPECT_EQ(got, big);
  EXPECT_EQ(std::memcmp(post, "post", 4), 0);
  EXPECT_TRUE(reader->AtEnd());
  std::remove(path.c_str());
}

TEST_F(SpillFileTest, CorruptPayloadSurfacesAsParseError) {
  const std::string path = Path("corrupt");
  auto writer = SpillWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  std::string payload(1000, 'a');
  ASSERT_TRUE(writer->Write(payload.data(), payload.size()).ok());
  ASSERT_TRUE(writer->Close().ok());

  // Flip one payload byte (past the 16-byte header + 8-byte frame meta).
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 16 + 8 + 100, SEEK_SET), 0);
    ASSERT_EQ(std::fputc('b', f), 'b');
    std::fclose(f);
  }
  auto reader = SpillReader::Open(path);
  ASSERT_TRUE(reader.ok());
  std::string got(payload.size(), 0);
  EXPECT_EQ(reader->Read(&got[0], got.size()).code(),
            StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST_F(SpillFileTest, TruncatedTailSurfacesAsParseError) {
  const std::string path = Path("truncated");
  auto writer = SpillWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  std::string payload(1000, 'a');
  ASSERT_TRUE(writer->Write(payload.data(), payload.size()).ok());
  ASSERT_TRUE(writer->Close().ok());

  ASSERT_EQ(truncate(path.c_str(), 16 + 8 + 500), 0);
  auto reader = SpillReader::Open(path);
  ASSERT_TRUE(reader.ok());
  std::string got(payload.size(), 0);
  EXPECT_EQ(reader->Read(&got[0], got.size()).code(),
            StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST_F(SpillFileTest, BadMagicAndVersionRejectedAtOpen) {
  const std::string path = Path("magic");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("NOTSPILLxxxxxxxx", 1, 16, f);
    std::fclose(f);
  }
  EXPECT_EQ(SpillReader::Open(path).status().code(),
            StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST_F(SpillFileTest, FrameBuffersAreBilledAndReleased) {
  MemoryBudget budget(1u << 20, "spill-test");
  const std::string path = Path("billing");
  {
    SpillWriter::Options wopts;
    wopts.budget = &budget;
    auto writer = SpillWriter::Create(path, wopts);
    ASSERT_TRUE(writer.ok());
    EXPECT_GT(budget.used(), 0u) << "writer frame buffer not billed";
    uint64_t v = 42;
    ASSERT_TRUE(writer->WritePod(v).ok());
    ASSERT_TRUE(writer->Close().ok());
    EXPECT_EQ(budget.used(), 0u) << "writer billing leaked after Close";

    SpillReader::Options ropts;
    ropts.budget = &budget;
    auto reader = SpillReader::Open(path, ropts);
    ASSERT_TRUE(reader.ok());
    uint64_t got = 0;
    ASSERT_TRUE(reader->Read(&got, sizeof(got)).ok());
    EXPECT_EQ(got, 42u);
    EXPECT_GT(budget.used(), 0u) << "reader frame buffer not billed";
  }
  EXPECT_EQ(budget.used(), 0u) << "billing leaked after destruction";
  std::remove(path.c_str());
}

TEST_F(SpillFileTest, WriterDeniedByExhaustedBudget) {
  MemoryBudget budget(1024, "tiny");  // smaller than the min frame buffer
  SpillWriter::Options wopts;
  wopts.budget = &budget;
  auto writer = SpillWriter::Create(Path("denied"), wopts);
  EXPECT_EQ(writer.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(SpillFileTest, InjectedWriteFaultFailsCleanly) {
  const std::string path = Path("wfault");
  auto writer = SpillWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  std::string payload(100, 'z');
  ASSERT_TRUE(writer->Write(payload.data(), payload.size()).ok());

  FaultInjection::Plan plan;
  plan.every = 1;
  FaultInjection::Arm("spill.write", plan);
  EXPECT_EQ(writer->Close().code(), StatusCode::kIoError);
  FaultInjection::DisarmAll();
  // The writer is dead after a failure; further writes refuse.
  EXPECT_EQ(writer->Write(payload.data(), 1).code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST_F(SpillFileTest, InjectedReadFaultFailsCleanly) {
  const std::string path = Path("rfault");
  auto writer = SpillWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  std::string payload(100, 'z');
  ASSERT_TRUE(writer->Write(payload.data(), payload.size()).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto reader = SpillReader::Open(path);
  ASSERT_TRUE(reader.ok());
  FaultInjection::Plan plan;
  plan.every = 1;
  FaultInjection::Arm("spill.read", plan);
  std::string got(payload.size(), 0);
  EXPECT_EQ(reader->Read(&got[0], got.size()).code(), StatusCode::kIoError);
  FaultInjection::DisarmAll();
  EXPECT_EQ(reader->Read(&got[0], 1).code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace emdbg
