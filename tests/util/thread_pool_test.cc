#include "src/util/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/bitmap.h"
#include "src/util/cancellation.h"

namespace emdbg {
namespace {

using ForOptions = ThreadPool::ForOptions;
using ForResult = ThreadPool::ForResult;

TEST(ThreadPoolTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> visits(kN);
  const ForResult r = pool.ParallelFor(kN, [&](size_t, size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.items_completed, kN);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, WorkerIdsAreInRange) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  std::atomic<bool> bad{false};
  pool.ParallelFor(5'000, [&](size_t w, size_t) {
    if (w >= 3) bad.store(true);
  });
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPoolTest, ZeroItemsAndSingleWorker) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_workers(), 1u);
  std::atomic<size_t> count{0};
  ForResult r = pool.ParallelFor(0, [&](size_t, size_t) { ++count; });
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(count.load(), 0u);
  r = pool.ParallelFor(1'000, [&](size_t, size_t) { ++count; });
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(count.load(), 1'000u);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossRuns) {
  ThreadPool pool(4);
  for (int run = 0; run < 20; ++run) {
    std::atomic<size_t> count{0};
    const ForResult r = pool.ParallelFor(
        997, [&](size_t, size_t) { count.fetch_add(1); });
    ASSERT_TRUE(r.complete());
    ASSERT_EQ(count.load(), 997u);
  }
}

TEST(ThreadPoolTest, SharedBitmapWordsNeverCollide) {
  // The alignment contract: chunk boundaries are multiples of 64, so two
  // workers never write the same Bitmap word. Setting bit i for every
  // item must therefore produce an all-ones bitmap with plain
  // (unsynchronized) writes — under TSan this test is the proof.
  ThreadPool pool(4);
  constexpr size_t kN = 64 * 257 + 13;  // deliberately not word-aligned
  Bitmap bm(kN);
  const ForResult r =
      pool.ParallelFor(kN, [&](size_t, size_t i) { bm.Set(i); });
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(bm.Count(), kN);
}

TEST(ThreadPoolTest, GrainIsRoundedToAlignment) {
  ThreadPool pool(4);
  Bitmap bm(5'000);
  // A pathological grain of 1 must still respect the 64-index alignment.
  const ForResult r = pool.ParallelFor(
      5'000, RunControl(), [&](size_t, size_t i) { bm.Set(i); },
      ForOptions{.grain = 1});
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(bm.Count(), 5'000u);
}

TEST(ThreadPoolTest, StaticScheduleCoversEverything) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(8'000);
  const ForResult r = pool.ParallelFor(
      8'000, RunControl(),
      [&](size_t, size_t i) { visits[i].fetch_add(1); },
      ForOptions{.steal = false});
  EXPECT_TRUE(r.complete());
  for (size_t i = 0; i < visits.size(); ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, PreCancelledRunsNothing) {
  ThreadPool pool(4);
  CancellationToken cancel;
  cancel.RequestCancel();
  std::atomic<size_t> count{0};
  const ForResult r = pool.ParallelFor(
      10'000, RunControl(cancel),
      [&](size_t, size_t) { count.fetch_add(1); }, ForOptions{});
  EXPECT_TRUE(r.stopped);
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(count.load(), 0u);
  EXPECT_EQ(r.items_completed, 0u);
  EXPECT_TRUE(r.completed.empty());
}

TEST(ThreadPoolTest, CancelledRunReportsExactCompletedSet) {
  // The partial-result contract: `completed` names exactly the items
  // whose body ran — no more, no fewer. Cancel from inside the body so
  // the test is deterministic regardless of scheduling.
  ThreadPool pool(4);
  constexpr size_t kN = 50'000;
  for (const size_t trigger : {0u, 100u, 12'345u}) {
    CancellationToken cancel;
    std::vector<std::atomic<int>> visits(kN);
    std::atomic<size_t> ran{0};
    const ForResult r = pool.ParallelFor(
        kN, RunControl(cancel),
        [&](size_t, size_t i) {
          visits[i].fetch_add(1, std::memory_order_relaxed);
          if (ran.fetch_add(1) >= trigger) cancel.RequestCancel();
        },
        ForOptions{});
    ASSERT_TRUE(r.stopped);
    ASSERT_EQ(r.status.code(), StatusCode::kCancelled);
    // Reported ranges are disjoint, sorted, and match the visited set.
    Bitmap reported(kN);
    size_t total = 0, prev_end = 0;
    for (const auto& [begin, end] : r.completed) {
      ASSERT_LT(begin, end);
      ASSERT_GE(begin, prev_end);
      prev_end = end;
      total += end - begin;
      for (size_t i = begin; i < end; ++i) reported.Set(i);
    }
    ASSERT_EQ(total, r.items_completed);
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(visits[i].load() == 1, reported.Get(i))
          << "index " << i << " trigger " << trigger;
      ASSERT_LE(visits[i].load(), 1);
    }
  }
}

TEST(ThreadPoolTest, DeadlineStopsTheRun) {
  ThreadPool pool(2);
  const RunControl control(Deadline::AfterMillis(0));
  std::atomic<size_t> count{0};
  const ForResult r = pool.ParallelFor(
      1'000'000, control, [&](size_t, size_t) { count.fetch_add(1); },
      ForOptions{});
  EXPECT_TRUE(r.stopped);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(r.items_completed, 1'000'000u);
}

TEST(ThreadPoolTest, ParallelReduceSumsAcrossWorkers) {
  ThreadPool pool(4);
  constexpr size_t kN = 100'000;
  const uint64_t total = pool.ParallelReduce(
      kN, RunControl(), uint64_t{0},
      [](size_t, size_t i, uint64_t& acc) { acc += i; },
      [](uint64_t& into, const uint64_t& v) { into += v; });
  EXPECT_EQ(total, uint64_t{kN} * (kN - 1) / 2);
}

TEST(ThreadPoolTest, HardwareDefaultHasAtLeastOneWorker) {
  ThreadPool pool;  // 0 = hardware_concurrency
  EXPECT_GE(pool.num_workers(), 1u);
  std::atomic<size_t> count{0};
  pool.ParallelFor(100, [&](size_t, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100u);
}

}  // namespace
}  // namespace emdbg
