#include "src/util/fault_injection.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace emdbg {
namespace {

/// Every test disarms on both ends: the registry is process-global and
/// other suites (journal fault tests, serve soak) use the same sites.
class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() { FaultInjection::DisarmAll(); }
  ~FaultInjectionTest() override { FaultInjection::DisarmAll(); }
};

TEST_F(FaultInjectionTest, UnarmedSiteNeverFires) {
  EXPECT_FALSE(FaultInjection::AnyArmed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(FaultInjection::Fire("test.unarmed"));
  }
  EXPECT_EQ(FaultInjection::Calls("test.unarmed"), 0u)
      << "unarmed sites must not even allocate counter state";
}

TEST_F(FaultInjectionTest, ArmingOneSiteLeavesOthersAlone) {
  FaultInjection::Plan plan;
  plan.skip = 0;  // fail the first call
  FaultInjection::Arm("test.a", plan);
  EXPECT_TRUE(FaultInjection::AnyArmed());
  EXPECT_FALSE(FaultInjection::Fire("test.b"));
  EXPECT_TRUE(FaultInjection::Fire("test.a"));
}

TEST_F(FaultInjectionTest, DefaultPlanFailsExactlyOnce) {
  FaultInjection::Arm("test.once", FaultInjection::Plan{});
  EXPECT_TRUE(FaultInjection::Fire("test.once"));
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(FaultInjection::Fire("test.once"));
  }
  EXPECT_EQ(FaultInjection::Calls("test.once"), 21u);
  EXPECT_EQ(FaultInjection::Failures("test.once"), 1u);
}

TEST_F(FaultInjectionTest, SkipDelaysTheSingleFailure) {
  FaultInjection::Plan plan;
  plan.skip = 3;
  FaultInjection::Arm("test.skip", plan);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(FaultInjection::Fire("test.skip")) << "call " << i;
  }
  EXPECT_TRUE(FaultInjection::Fire("test.skip")) << "4th call must fail";
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(FaultInjection::Fire("test.skip"));
  }
  EXPECT_EQ(FaultInjection::Failures("test.skip"), 1u);
}

TEST_F(FaultInjectionTest, EveryNthFailsOnSchedule) {
  FaultInjection::Plan plan;
  plan.skip = 2;
  plan.every = 3;
  FaultInjection::Arm("test.every", plan);
  std::vector<int> failed_at;
  for (int i = 0; i < 12; ++i) {
    if (FaultInjection::Fire("test.every")) failed_at.push_back(i);
  }
  // 0-based call indices: skip, skip+every, skip+2*every, ...
  EXPECT_EQ(failed_at, (std::vector<int>{2, 5, 8, 11}));
  EXPECT_EQ(FaultInjection::Failures("test.every"), 4u);
}

TEST_F(FaultInjectionTest, MaxFailuresCapsTheSchedule) {
  FaultInjection::Plan plan;
  plan.every = 2;
  plan.max_failures = 3;
  FaultInjection::Arm("test.cap", plan);
  int failures = 0;
  for (int i = 0; i < 50; ++i) {
    if (FaultInjection::Fire("test.cap")) ++failures;
  }
  EXPECT_EQ(failures, 3);
  EXPECT_EQ(FaultInjection::Failures("test.cap"), 3u);
}

TEST_F(FaultInjectionTest, ProbabilityScheduleIsAFunctionOfSeed) {
  FaultInjection::Plan plan;
  plan.probability = 0.3;
  plan.seed = 42;
  auto schedule = [&plan]() {
    FaultInjection::Arm("test.prob", plan);
    std::vector<bool> out;
    out.reserve(200);
    for (int i = 0; i < 200; ++i) {
      out.push_back(FaultInjection::Fire("test.prob"));
    }
    return out;
  };
  const std::vector<bool> first = schedule();
  const std::vector<bool> replay = schedule();
  EXPECT_EQ(first, replay) << "same seed must replay byte-identically";

  plan.seed = 43;
  const std::vector<bool> other = schedule();
  EXPECT_NE(first, other) << "different seeds must diverge";

  // ~30% over 200 draws: allow a generous band, no flaky tolerance needed
  // because the schedule is deterministic.
  const size_t failures = std::count(first.begin(), first.end(), true);
  EXPECT_GT(failures, 30u);
  EXPECT_LT(failures, 90u);
}

TEST_F(FaultInjectionTest, ProbabilityRespectsSkipAndCap) {
  FaultInjection::Plan plan;
  plan.probability = 1.0;
  plan.skip = 5;
  plan.max_failures = 2;
  FaultInjection::Arm("test.prob_cap", plan);
  std::vector<int> failed_at;
  for (int i = 0; i < 20; ++i) {
    if (FaultInjection::Fire("test.prob_cap")) failed_at.push_back(i);
  }
  EXPECT_EQ(failed_at, (std::vector<int>{5, 6}));
}

TEST_F(FaultInjectionTest, RearmResetsCounters) {
  FaultInjection::Plan plan;
  plan.every = 1;
  FaultInjection::Arm("test.rearm", plan);
  EXPECT_TRUE(FaultInjection::Fire("test.rearm"));
  EXPECT_EQ(FaultInjection::Calls("test.rearm"), 1u);
  FaultInjection::Arm("test.rearm", plan);
  EXPECT_EQ(FaultInjection::Calls("test.rearm"), 0u);
  EXPECT_EQ(FaultInjection::Failures("test.rearm"), 0u);
}

TEST_F(FaultInjectionTest, DisarmStopsFiringAndDropsCounters) {
  FaultInjection::Plan plan;
  plan.every = 1;
  FaultInjection::Arm("test.disarm", plan);
  EXPECT_TRUE(FaultInjection::Fire("test.disarm"));
  FaultInjection::Disarm("test.disarm");
  EXPECT_FALSE(FaultInjection::Fire("test.disarm"));
  EXPECT_EQ(FaultInjection::Calls("test.disarm"), 0u);
  EXPECT_FALSE(FaultInjection::AnyArmed());
  // Disarming a site that was never armed is a no-op, not an error.
  FaultInjection::Disarm("test.never_armed");
  EXPECT_FALSE(FaultInjection::AnyArmed());
}

TEST_F(FaultInjectionTest, DisarmAllClearsEverySite) {
  FaultInjection::Plan plan;
  plan.every = 1;
  FaultInjection::Arm("test.x", plan);
  FaultInjection::Arm("test.y", plan);
  EXPECT_TRUE(FaultInjection::AnyArmed());
  FaultInjection::DisarmAll();
  EXPECT_FALSE(FaultInjection::AnyArmed());
  EXPECT_FALSE(FaultInjection::Fire("test.x"));
  EXPECT_FALSE(FaultInjection::Fire("test.y"));
}

}  // namespace
}  // namespace emdbg
