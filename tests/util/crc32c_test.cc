#include "src/util/crc32c.h"

#include <string>

#include <gtest/gtest.h>

namespace emdbg {
namespace {

// Known-answer vectors: the standard CRC-32C check value plus the iSCSI
// test vectors from RFC 3720 Appendix B.4.
TEST(Crc32cTest, StandardCheckValue) {
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, EmptyInputIsZero) { EXPECT_EQ(Crc32c(""), 0u); }

TEST(Crc32cTest, Rfc3720Zeros) {
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32cTest, Rfc3720Ones) {
  const std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, Rfc3720Incrementing) {
  std::string data(32, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i);
  }
  EXPECT_EQ(Crc32c(data), 0x46DD794Eu);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, Crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, SingleBitFlipChangesCrc) {
  std::string data = "durable state must notice bit rot";
  const uint32_t clean = Crc32c(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32c(data), clean)
          << "flip byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<char>(1 << bit);
    }
  }
}

}  // namespace
}  // namespace emdbg
