#include "src/util/string_util.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("Hello World 123"), "hello world 123");
  EXPECT_EQ(ToLowerAscii(""), "");
  EXPECT_EQ(ToLowerAscii("ABC-def"), "abc-def");
}

TEST(StringUtilTest, TrimAscii) {
  EXPECT_EQ(TrimAscii("  abc  "), "abc");
  EXPECT_EQ(TrimAscii("\t\r\nx\n"), "x");
  EXPECT_EQ(TrimAscii("   "), "");
  EXPECT_EQ(TrimAscii(""), "");
  EXPECT_EQ(TrimAscii("no-trim"), "no-trim");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a  b\tc\n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("jaccard(title)", "jaccard"));
  EXPECT_FALSE(StartsWith("jac", "jaccard"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "file.csv"));
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Jaccard", "jaccard"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("0.75", &v));
  EXPECT_DOUBLE_EQ(v, 0.75);
  EXPECT_TRUE(ParseDouble(" -1.5e2 ", &v));
  EXPECT_DOUBLE_EQ(v, -150.0);
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64(" -7 ", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12a", &v));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

}  // namespace
}  // namespace emdbg
