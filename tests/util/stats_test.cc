#include "src/util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10.0;
    all.Add(v);
    (i < 20 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(QuantileTest, Endpoints) {
  std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.75), 7.5);
}

TEST(QuantileTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(MeanMedianTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

}  // namespace
}  // namespace emdbg
