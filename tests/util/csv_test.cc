#include "src/util/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(CsvTest, SimpleRows) {
  auto rows = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (CsvRow{"a", "b", "c"}));
  EXPECT_EQ((*rows)[1], (CsvRow{"1", "2", "3"}));
}

TEST(CsvTest, MissingTrailingNewline) {
  auto rows = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (CsvRow{"1", "2"}));
}

TEST(CsvTest, QuotedFieldWithDelimiterAndNewline) {
  auto rows = ParseCsv("\"a,b\",\"line1\nline2\",plain\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], (CsvRow{"a,b", "line1\nline2", "plain"}));
}

TEST(CsvTest, EscapedQuotes) {
  auto rows = ParseCsv("\"she said \"\"hi\"\"\"\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0], "she said \"hi\"");
}

TEST(CsvTest, CrLfLineEndings) {
  auto rows = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (CsvRow{"1", "2"}));
}

TEST(CsvTest, EmptyFields) {
  auto rows = ParseCsv(",,\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0], (CsvRow{"", "", ""}));
}

TEST(CsvTest, UnterminatedQuoteIsParseError) {
  auto rows = ParseCsv("\"oops\n");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, CustomDelimiter) {
  auto rows = ParseCsv("a|b\n1|2\n", '|');
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0], (CsvRow{"a", "b"}));
}

TEST(CsvTest, EscapeOnlyWhenNeeded) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("has \"q\""), "\"has \"\"q\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, RoundTrip) {
  const std::vector<CsvRow> rows = {
      {"id", "name", "note"},
      {"1", "Smith, John", "said \"hello\""},
      {"2", "", "multi\nline"},
  };
  auto parsed = ParseCsv(WriteCsv(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, rows);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/emdbg_csv_test.csv";
  ASSERT_TRUE(WriteStringToFile(path, "x,y\n1,2\n").ok());
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "x,y\n1,2\n");
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileIsIoError) {
  auto text = ReadFileToString("/nonexistent/path/file.csv");
  ASSERT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, UnterminatedQuoteReportsOpeningPosition) {
  // The quote opens on line 2, column 3; input ends before it closes.
  auto rows = ParseCsv("a,b\n1,\"oops\n2,3\n");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kParseError);
  EXPECT_NE(rows.status().message().find("unterminated"),
            std::string::npos)
      << rows.status();
  EXPECT_NE(rows.status().message().find("line 2"), std::string::npos)
      << rows.status();
  EXPECT_NE(rows.status().message().find("column 3"), std::string::npos)
      << rows.status();
}

TEST(CsvTest, EmbeddedNulByteIsParseError) {
  const std::string data{"a,b\n1,x\0y\n", 10};
  auto rows = ParseCsv(data);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kParseError);
  EXPECT_NE(rows.status().message().find("NUL"), std::string::npos)
      << rows.status();
  EXPECT_NE(rows.status().message().find("line 2"), std::string::npos)
      << rows.status();
}

TEST(CsvTest, NulInsideQuotedFieldIsParseError) {
  const std::string data{"\"a\0b\"\n", 6};
  auto rows = ParseCsv(data);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, FieldSizeLimitEnforced) {
  CsvLimits limits;
  limits.max_field_bytes = 8;
  const std::string data = "short,also\nok," + std::string(100, 'x') + "\n";
  CsvParser parser(data, ',', limits);
  CsvRow row;
  EXPECT_TRUE(parser.NextRow(&row));
  EXPECT_FALSE(parser.NextRow(&row));
  EXPECT_EQ(parser.status().code(), StatusCode::kParseError);
  EXPECT_NE(parser.status().message().find("field"), std::string::npos)
      << parser.status();
}

TEST(CsvTest, RowFieldCountLimitEnforced) {
  CsvLimits limits;
  limits.max_row_fields = 4;
  CsvParser parser("a,b,c,d,e,f\n", ',', limits);
  CsvRow row;
  EXPECT_FALSE(parser.NextRow(&row));
  EXPECT_EQ(parser.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, DefaultLimitsAcceptNormalInput) {
  // A wide-ish row with a biggish field stays well inside the defaults.
  const std::string big_field(1 << 16, 'y');
  std::string data = big_field;
  for (int i = 0; i < 200; ++i) data += ",f";
  data += "\n";
  auto rows = ParseCsv(data);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ((*rows)[0].size(), 201u);
}

TEST(CsvTest, FailedStreamStaysFailed) {
  const std::string data{"bad\0byte\nmore,rows\n", 19};
  CsvParser parser(data);
  CsvRow row;
  EXPECT_FALSE(parser.NextRow(&row));
  EXPECT_FALSE(parser.NextRow(&row)) << "a failed stream must not resume";
  EXPECT_EQ(parser.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, AtomicWriteRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/emdbg_csv_atomic_test.csv";
  ASSERT_TRUE(WriteFileAtomic(path, "first\n").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "second\n").ok());
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "second\n");
  EXPECT_FALSE(std::remove((path + ".tmp").c_str()) == 0)
      << "temp file must not linger";
  std::remove(path.c_str());
}

TEST(CsvTest, AtomicWriteToBadDirectoryIsIoError) {
  EXPECT_EQ(WriteFileAtomic("/nonexistent/dir/file.txt", "x").code(),
            StatusCode::kIoError);
}

TEST(CsvTest, ParserReportsLineNumbers) {
  CsvParser parser("a\nb\nc\n");
  CsvRow row;
  EXPECT_TRUE(parser.NextRow(&row));
  EXPECT_EQ(parser.line(), 1u);
  EXPECT_TRUE(parser.NextRow(&row));
  EXPECT_TRUE(parser.NextRow(&row));
  EXPECT_EQ(parser.line(), 3u);
  EXPECT_FALSE(parser.NextRow(&row));
}

}  // namespace
}  // namespace emdbg
