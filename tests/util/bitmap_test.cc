#include "src/util/bitmap.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace emdbg {
namespace {

TEST(BitmapTest, StartsCleared) {
  Bitmap bm(100);
  EXPECT_EQ(bm.size(), 100u);
  EXPECT_EQ(bm.Count(), 0u);
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(bm.Get(i));
}

TEST(BitmapTest, InitialTrueRespectsSize) {
  Bitmap bm(70, true);
  EXPECT_EQ(bm.Count(), 70u);  // tail bits beyond size must not count
}

TEST(BitmapTest, SetClearGet) {
  Bitmap bm(130);
  bm.Set(0);
  bm.Set(64);
  bm.Set(129);
  EXPECT_TRUE(bm.Get(0));
  EXPECT_TRUE(bm.Get(64));
  EXPECT_TRUE(bm.Get(129));
  EXPECT_EQ(bm.Count(), 3u);
  bm.Clear(64);
  EXPECT_FALSE(bm.Get(64));
  EXPECT_EQ(bm.Count(), 2u);
}

TEST(BitmapTest, AssignDispatches) {
  Bitmap bm(10);
  bm.Assign(3, true);
  EXPECT_TRUE(bm.Get(3));
  bm.Assign(3, false);
  EXPECT_FALSE(bm.Get(3));
}

TEST(BitmapTest, FillBothWays) {
  Bitmap bm(67);
  bm.Fill(true);
  EXPECT_EQ(bm.Count(), 67u);
  bm.Fill(false);
  EXPECT_EQ(bm.Count(), 0u);
}

TEST(BitmapTest, ResizeGrowWithTrue) {
  Bitmap bm(10);
  bm.Set(9);
  bm.Resize(100, true);
  EXPECT_EQ(bm.size(), 100u);
  EXPECT_TRUE(bm.Get(9));
  EXPECT_FALSE(bm.Get(0));
  // New bits [10, 100) are all true.
  EXPECT_EQ(bm.Count(), 91u);
}

TEST(BitmapTest, ResizeShrinkDropsBits) {
  Bitmap bm(100, true);
  bm.Resize(40);
  EXPECT_EQ(bm.Count(), 40u);
  bm.Resize(100);
  EXPECT_EQ(bm.Count(), 40u);  // regrown bits default to false
}

TEST(BitmapTest, ToIndices) {
  Bitmap bm(200);
  bm.Set(1);
  bm.Set(63);
  bm.Set(64);
  bm.Set(199);
  EXPECT_EQ(bm.ToIndices(), (std::vector<size_t>{1, 63, 64, 199}));
}

TEST(BitmapTest, FindNext) {
  Bitmap bm(150);
  bm.Set(5);
  bm.Set(70);
  EXPECT_EQ(bm.FindNext(0), 5u);
  EXPECT_EQ(bm.FindNext(5), 5u);
  EXPECT_EQ(bm.FindNext(6), 70u);
  EXPECT_EQ(bm.FindNext(71), 150u);  // none -> size()
  EXPECT_EQ(bm.FindNext(999), 150u);
}

TEST(BitmapTest, IterationViaFindNextVisitsAllSetBits) {
  Bitmap bm(300);
  Rng rng(7);
  std::vector<size_t> expected;
  for (int k = 0; k < 40; ++k) {
    const size_t i = static_cast<size_t>(rng.Uniform(300));
    if (!bm.Get(i)) expected.push_back(i);
    bm.Set(i);
  }
  std::sort(expected.begin(), expected.end());
  std::vector<size_t> seen;
  for (size_t i = bm.FindNext(0); i < bm.size(); i = bm.FindNext(i + 1)) {
    seen.push_back(i);
  }
  EXPECT_EQ(seen, expected);
}

TEST(BitmapTest, BitwiseOps) {
  Bitmap a(10);
  Bitmap b(10);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  Bitmap u = a;
  u |= b;
  EXPECT_EQ(u.ToIndices(), (std::vector<size_t>{1, 2, 3}));
  Bitmap n = a;
  n &= b;
  EXPECT_EQ(n.ToIndices(), (std::vector<size_t>{2}));
  Bitmap d = a;
  d.Subtract(b);
  EXPECT_EQ(d.ToIndices(), (std::vector<size_t>{1}));
}

TEST(BitmapTest, Equality) {
  Bitmap a(65);
  Bitmap b(65);
  EXPECT_EQ(a, b);
  a.Set(64);
  EXPECT_FALSE(a == b);
  b.Set(64);
  EXPECT_EQ(a, b);
}

TEST(BitmapTest, MemoryBytes) {
  Bitmap bm(1024);
  EXPECT_EQ(bm.MemoryBytes(), 1024 / 8);
  Bitmap odd(65);
  EXPECT_EQ(odd.MemoryBytes(), 16u);  // two 64-bit words
}

TEST(BitmapTest, EmptyBitmap) {
  Bitmap bm;
  EXPECT_TRUE(bm.empty());
  EXPECT_EQ(bm.Count(), 0u);
  EXPECT_EQ(bm.FindNext(0), 0u);
  EXPECT_TRUE(bm.ToIndices().empty());
}

}  // namespace
}  // namespace emdbg
