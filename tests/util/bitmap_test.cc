#include "src/util/bitmap.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/util/random.h"

namespace emdbg {
namespace {

TEST(BitmapTest, StartsCleared) {
  Bitmap bm(100);
  EXPECT_EQ(bm.size(), 100u);
  EXPECT_EQ(bm.Count(), 0u);
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(bm.Get(i));
}

TEST(BitmapTest, InitialTrueRespectsSize) {
  Bitmap bm(70, true);
  EXPECT_EQ(bm.Count(), 70u);  // tail bits beyond size must not count
}

TEST(BitmapTest, SetClearGet) {
  Bitmap bm(130);
  bm.Set(0);
  bm.Set(64);
  bm.Set(129);
  EXPECT_TRUE(bm.Get(0));
  EXPECT_TRUE(bm.Get(64));
  EXPECT_TRUE(bm.Get(129));
  EXPECT_EQ(bm.Count(), 3u);
  bm.Clear(64);
  EXPECT_FALSE(bm.Get(64));
  EXPECT_EQ(bm.Count(), 2u);
}

TEST(BitmapTest, AssignDispatches) {
  Bitmap bm(10);
  bm.Assign(3, true);
  EXPECT_TRUE(bm.Get(3));
  bm.Assign(3, false);
  EXPECT_FALSE(bm.Get(3));
}

TEST(BitmapTest, FillBothWays) {
  Bitmap bm(67);
  bm.Fill(true);
  EXPECT_EQ(bm.Count(), 67u);
  bm.Fill(false);
  EXPECT_EQ(bm.Count(), 0u);
}

TEST(BitmapTest, ResizeGrowWithTrue) {
  Bitmap bm(10);
  bm.Set(9);
  bm.Resize(100, true);
  EXPECT_EQ(bm.size(), 100u);
  EXPECT_TRUE(bm.Get(9));
  EXPECT_FALSE(bm.Get(0));
  // New bits [10, 100) are all true.
  EXPECT_EQ(bm.Count(), 91u);
}

TEST(BitmapTest, ResizeShrinkDropsBits) {
  Bitmap bm(100, true);
  bm.Resize(40);
  EXPECT_EQ(bm.Count(), 40u);
  bm.Resize(100);
  EXPECT_EQ(bm.Count(), 40u);  // regrown bits default to false
}

TEST(BitmapTest, ToIndices) {
  Bitmap bm(200);
  bm.Set(1);
  bm.Set(63);
  bm.Set(64);
  bm.Set(199);
  EXPECT_EQ(bm.ToIndices(), (std::vector<size_t>{1, 63, 64, 199}));
}

TEST(BitmapTest, FindNext) {
  Bitmap bm(150);
  bm.Set(5);
  bm.Set(70);
  EXPECT_EQ(bm.FindNext(0), 5u);
  EXPECT_EQ(bm.FindNext(5), 5u);
  EXPECT_EQ(bm.FindNext(6), 70u);
  EXPECT_EQ(bm.FindNext(71), 150u);  // none -> size()
  EXPECT_EQ(bm.FindNext(999), 150u);
}

TEST(BitmapTest, IterationViaFindNextVisitsAllSetBits) {
  Bitmap bm(300);
  Rng rng(7);
  std::vector<size_t> expected;
  for (int k = 0; k < 40; ++k) {
    const size_t i = static_cast<size_t>(rng.Uniform(300));
    if (!bm.Get(i)) expected.push_back(i);
    bm.Set(i);
  }
  std::sort(expected.begin(), expected.end());
  std::vector<size_t> seen;
  for (size_t i = bm.FindNext(0); i < bm.size(); i = bm.FindNext(i + 1)) {
    seen.push_back(i);
  }
  EXPECT_EQ(seen, expected);
}

TEST(BitmapTest, BitwiseOps) {
  Bitmap a(10);
  Bitmap b(10);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  Bitmap u = a;
  u |= b;
  EXPECT_EQ(u.ToIndices(), (std::vector<size_t>{1, 2, 3}));
  Bitmap n = a;
  n &= b;
  EXPECT_EQ(n.ToIndices(), (std::vector<size_t>{2}));
  Bitmap d = a;
  d.Subtract(b);
  EXPECT_EQ(d.ToIndices(), (std::vector<size_t>{1}));
}

TEST(BitmapTest, Equality) {
  Bitmap a(65);
  Bitmap b(65);
  EXPECT_EQ(a, b);
  a.Set(64);
  EXPECT_FALSE(a == b);
  b.Set(64);
  EXPECT_EQ(a, b);
}

TEST(BitmapTest, MemoryBytes) {
  Bitmap bm(1024);
  EXPECT_EQ(bm.MemoryBytes(), 1024 / 8);
  Bitmap odd(65);
  EXPECT_EQ(odd.MemoryBytes(), 16u);  // two 64-bit words
}

TEST(BitmapTest, EmptyBitmap) {
  Bitmap bm;
  EXPECT_TRUE(bm.empty());
  EXPECT_EQ(bm.Count(), 0u);
  EXPECT_EQ(bm.FindNext(0), 0u);
  EXPECT_TRUE(bm.ToIndices().empty());
}

// ---- Word-span algebra (bitspan) and the 64-aligned span members.
// Every boundary the block matcher can produce: empty, sub-word, exactly
// one word, one word + 1, and multi-word with/without a partial tail. ----

constexpr size_t kBoundarySizes[] = {0, 1, 63, 64, 65, 127, 128};

/// Reference bit-vector for differential checks of the word-span ops.
std::vector<bool> RefBits(const uint64_t* words, size_t nbits) {
  std::vector<bool> out(nbits);
  for (size_t i = 0; i < nbits; ++i) {
    out[i] = (words[i >> 6] >> (i & 63)) & 1u;
  }
  return out;
}

TEST(BitSpanTest, TailMask) {
  EXPECT_EQ(bitspan::TailMask(64), ~uint64_t{0});
  EXPECT_EQ(bitspan::TailMask(0), ~uint64_t{0});
  EXPECT_EQ(bitspan::TailMask(1), uint64_t{1});
  EXPECT_EQ(bitspan::TailMask(63), (uint64_t{1} << 63) - 1);
  EXPECT_EQ(bitspan::TailMask(65), uint64_t{1});
}

TEST(BitSpanTest, FillRespectsTail) {
  for (const size_t n : kBoundarySizes) {
    std::vector<uint64_t> w(bitspan::Words(n) + 1, 0xdeadbeefdeadbeefull);
    bitspan::Fill(w.data(), n, true);
    EXPECT_EQ(bitspan::Count(w.data(), n), n) << "n=" << n;
    if (bitspan::Words(n) > 0) {
      // Bits past n in the last word must be zero.
      EXPECT_EQ(w[bitspan::Words(n) - 1] & ~bitspan::TailMask(n), 0u)
          << "n=" << n;
    }
    // The guard word past the span is untouched.
    EXPECT_EQ(w[bitspan::Words(n)], 0xdeadbeefdeadbeefull);
    bitspan::Fill(w.data(), n, false);
    EXPECT_EQ(bitspan::Count(w.data(), n), 0u) << "n=" << n;
    EXPECT_FALSE(bitspan::Any(w.data(), n));
  }
}

TEST(BitSpanTest, CombinesMatchReferenceAtEveryBoundary) {
  Rng rng(11);
  for (const size_t n : kBoundarySizes) {
    const size_t words = bitspan::Words(n);
    std::vector<uint64_t> a(words + 1, 0), b(words + 1, 0);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Uniform(2)) a[i >> 6] |= uint64_t{1} << (i & 63);
      if (rng.Uniform(2)) b[i >> 6] |= uint64_t{1} << (i & 63);
    }
    // Poison b's tail: defensive masking must keep it out of dst.
    if (words > 0 && (n & 63) != 0) {
      b[words - 1] |= ~bitspan::TailMask(n);
    }
    const std::vector<bool> ra = RefBits(a.data(), n);
    const std::vector<bool> rb = RefBits(b.data(), n);

    std::vector<uint64_t> d = a;
    bitspan::And(d.data(), b.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(RefBits(d.data(), n)[i], ra[i] && rb[i]) << n << ":" << i;
    }

    d = a;
    bitspan::Or(d.data(), b.data(), n);
    std::vector<bool> ro = RefBits(d.data(), n);
    size_t expect_count = 0;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(ro[i], ra[i] || rb[i]) << n << ":" << i;
      if (ra[i] || rb[i]) ++expect_count;
    }
    // Or must not smear b's poisoned tail into d's tail word.
    EXPECT_EQ(bitspan::Count(d.data(), n), expect_count);
    if (words > 0) {
      EXPECT_EQ(d[words - 1] & ~bitspan::TailMask(n), 0u) << "n=" << n;
    }

    d = a;
    bitspan::AndNot(d.data(), b.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(RefBits(d.data(), n)[i], ra[i] && !rb[i]) << n << ":" << i;
    }

    size_t and_count = 0;
    for (size_t i = 0; i < n; ++i) and_count += (ra[i] && rb[i]) ? 1 : 0;
    EXPECT_EQ(bitspan::CountAnd(a.data(), b.data(), n), and_count);
    EXPECT_EQ(bitspan::Any(a.data(), n),
              std::find(ra.begin(), ra.end(), true) != ra.end());
  }
}

TEST(BitSpanTest, CountIgnoresPoisonedTail) {
  for (const size_t n : kBoundarySizes) {
    if (n == 0) continue;
    std::vector<uint64_t> w(bitspan::Words(n), ~uint64_t{0});
    EXPECT_EQ(bitspan::Count(w.data(), n), n) << "n=" << n;
    EXPECT_TRUE(bitspan::Any(w.data(), n));
  }
}

TEST(BitmapTest, OrSpanAtEveryBoundary) {
  for (const size_t n : kBoundarySizes) {
    for (const size_t offset : {size_t{0}, size_t{64}, size_t{128}}) {
      Bitmap bm(offset + n + 64);
      bm.Set(0);  // pre-existing bit outside the span must survive
      std::vector<uint64_t> span(bitspan::Words(n), ~uint64_t{0});
      bm.OrSpan(offset, span.data(), n);
      EXPECT_EQ(bm.Count(), n + (offset > 0 ? 1 : n > 0 ? 0 : 1))
          << "n=" << n << " off=" << offset;
      for (size_t i = 0; i < n; ++i) EXPECT_TRUE(bm.Get(offset + i));
      // The bit just past the span stays clear (tail-masked input) —
      // except bit 0, which this test pre-sets.
      if (offset + n > 0) {
        EXPECT_FALSE(bm.Get(offset + n)) << "n=" << n << " off=" << offset;
      }
    }
  }
}

TEST(BitmapTest, AndNotSpanClearsOnlySpanBits) {
  for (const size_t n : kBoundarySizes) {
    Bitmap bm(128 + n + 64, true);
    std::vector<uint64_t> span(bitspan::Words(n), ~uint64_t{0});
    bm.AndNotSpan(128, span.data(), n);
    EXPECT_EQ(bm.Count(), bm.size() - n) << "n=" << n;
    for (size_t i = 0; i < n; ++i) EXPECT_FALSE(bm.Get(128 + i));
    if (n > 0) EXPECT_TRUE(bm.Get(128 + n));
  }
}

TEST(BitmapTest, ExtractSpanRoundTrips) {
  Rng rng(23);
  for (const size_t n : kBoundarySizes) {
    Bitmap bm(64 + n + 64);
    for (size_t i = 0; i < bm.size(); ++i) {
      if (rng.Uniform(2)) bm.Set(i);
    }
    std::vector<uint64_t> out(bitspan::Words(n) + 1, 0xffffffffffffffffull);
    bm.ExtractSpan(64, out.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ((out[i >> 6] >> (i & 63)) & 1u, bm.Get(64 + i) ? 1u : 0u)
          << "n=" << n << " i=" << i;
    }
    if (bitspan::Words(n) > 0) {
      EXPECT_EQ(out[bitspan::Words(n) - 1] & ~bitspan::TailMask(n), 0u);
    }
    // Round-trip: OR the extracted span into an empty bitmap.
    Bitmap back(bm.size());
    back.OrSpan(64, out.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(back.Get(64 + i), bm.Get(64 + i));
    }
  }
}

}  // namespace
}  // namespace emdbg
