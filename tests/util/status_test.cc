#include "src/util/status.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad threshold");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad threshold");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad threshold");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
}

Status FailingStep() { return Status::Internal("boom"); }

Status UsesReturnIfError() {
  EMDBG_RETURN_IF_ERROR(FailingStep());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(UsesReturnIfError(), Status::Internal("boom"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello world");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello world");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace emdbg
