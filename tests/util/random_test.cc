#include "src/util/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, ReseedResetsStream) {
  Rng rng(5);
  const uint64_t first = rng.Next64();
  rng.Next64();
  rng.Seed(5);
  EXPECT_EQ(rng.Next64(), first);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(10);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(12);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliRespectsProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(14);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(15);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 1.0) < 10) ++low;
  }
  // With s=1, the first 10 of 100 ranks carry well over a third of mass.
  EXPECT_GT(low, n / 3);
}

TEST(RngTest, ZipfZeroSkewIsUniformish) {
  Rng rng(16);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 0.0) < 10) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.10, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(18);
  const auto sample = rng.SampleIndices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleIndicesAllWhenKTooLarge) {
  Rng rng(19);
  const auto sample = rng.SampleIndices(10, 50);
  EXPECT_EQ(sample.size(), 10u);
  std::set<size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 10u);
}

}  // namespace
}  // namespace emdbg
