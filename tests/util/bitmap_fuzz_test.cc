/// Randomized differential test: Bitmap against a std::vector<bool>
/// reference model through long random operation sequences.

#include <vector>

#include <gtest/gtest.h>

#include "src/util/bitmap.h"
#include "src/util/random.h"

namespace emdbg {
namespace {

class BitmapModel {
 public:
  explicit BitmapModel(size_t size) : bits_(size, false) {}

  void Set(size_t i) { bits_[i] = true; }
  void Clear(size_t i) { bits_[i] = false; }
  void Fill(bool v) { std::fill(bits_.begin(), bits_.end(), v); }
  void Resize(size_t size, bool v) { bits_.resize(size, v); }

  size_t Count() const {
    size_t n = 0;
    for (bool b : bits_) n += b ? 1 : 0;
    return n;
  }
  std::vector<size_t> Indices() const {
    std::vector<size_t> out;
    for (size_t i = 0; i < bits_.size(); ++i) {
      if (bits_[i]) out.push_back(i);
    }
    return out;
  }
  size_t FindNext(size_t from) const {
    for (size_t i = from; i < bits_.size(); ++i) {
      if (bits_[i]) return i;
    }
    return bits_.size();
  }
  size_t size() const { return bits_.size(); }
  bool Get(size_t i) const { return bits_[i]; }

 private:
  std::vector<bool> bits_;
};

TEST(BitmapFuzzTest, MatchesReferenceModel) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    size_t size = 1 + rng.Uniform(300);
    Bitmap bm(size);
    BitmapModel model(size);
    for (int step = 0; step < 400; ++step) {
      const uint64_t op = rng.Uniform(6);
      if (op == 0 && size > 0) {
        const size_t i = rng.Uniform(size);
        bm.Set(i);
        model.Set(i);
      } else if (op == 1 && size > 0) {
        const size_t i = rng.Uniform(size);
        bm.Clear(i);
        model.Clear(i);
      } else if (op == 2) {
        const bool v = rng.Bernoulli(0.5);
        bm.Fill(v);
        model.Fill(v);
      } else if (op == 3) {
        const size_t new_size = 1 + rng.Uniform(300);
        const bool v = rng.Bernoulli(0.5);
        bm.Resize(new_size, v);
        model.Resize(new_size, v);
        size = new_size;
      } else if (op == 4 && size > 0) {
        const size_t from = rng.Uniform(size + 10);
        ASSERT_EQ(bm.FindNext(from), model.FindNext(from)) << step;
      } else {
        ASSERT_EQ(bm.Count(), model.Count()) << step;
      }
    }
    // Full-state comparison at the end of each trial.
    ASSERT_EQ(bm.size(), model.size());
    ASSERT_EQ(bm.ToIndices(), model.Indices());
    for (size_t i = 0; i < size; ++i) {
      ASSERT_EQ(bm.Get(i), model.Get(i)) << i;
    }
  }
}

TEST(BitmapFuzzTest, BitwiseOpsMatchReference) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t size = 1 + rng.Uniform(200);
    Bitmap a(size);
    Bitmap b(size);
    std::vector<bool> ra(size, false);
    std::vector<bool> rb(size, false);
    for (size_t i = 0; i < size; ++i) {
      if (rng.Bernoulli(0.4)) {
        a.Set(i);
        ra[i] = true;
      }
      if (rng.Bernoulli(0.4)) {
        b.Set(i);
        rb[i] = true;
      }
    }
    Bitmap or_bm = a;
    or_bm |= b;
    Bitmap and_bm = a;
    and_bm &= b;
    Bitmap sub_bm = a;
    sub_bm.Subtract(b);
    for (size_t i = 0; i < size; ++i) {
      ASSERT_EQ(or_bm.Get(i), ra[i] || rb[i]);
      ASSERT_EQ(and_bm.Get(i), ra[i] && rb[i]);
      ASSERT_EQ(sub_bm.Get(i), ra[i] && !rb[i]);
    }
  }
}

}  // namespace
}  // namespace emdbg
